#!/usr/bin/env python3
"""Energy, heat and the scale-out question (paper SVI.C.1 + conclusion).

Prints the energy/availability picture for the Table II configurations
and the scale-up-vs-scale-out comparison the paper's conclusion points
at — the numbers behind "utilization and energy consumption [are]
significant factors in comparing this approach to an 'equivalent'
scale-out implementation".

Run:  python examples/energy_and_scaleout.py
"""

from __future__ import annotations

from repro.experiments import run_experiment


def main() -> None:
    for exp_id in ("ext-energy", "ext-scaleout"):
        result = run_experiment(exp_id)
        print(result.render())
        print("=" * 78)


if __name__ == "__main__":
    main()
