#!/usr/bin/env python3
"""Iterative MapReduce: k-means on the scale-up runtime.

The persistent-container idea SupMR borrows from Twister [8] exists for
iterative jobs like this one: each iteration is a full map/reduce pass.
Generates three Gaussian clusters, recovers their centers, and reports
per-iteration movement.

Run:  python examples/kmeans_clustering.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.apps.kmeans import run_kmeans

CENTERS = [(0.0, 0.0), (10.0, 0.0), (5.0, 8.0)]


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="supmr-kmeans-"))
    rng = np.random.default_rng(21)
    lines = []
    for cx, cy in CENTERS:
        pts = rng.normal((cx, cy), 0.8, size=(400, 2))
        lines.extend(b"%f %f" % (x, y) for x, y in pts)
    rng.shuffle(lines)
    points = workdir / "points.txt"
    points.write_bytes(b"\n".join(lines) + b"\n")
    print(f"generated {len(lines)} points around {CENTERS}")

    result = run_kmeans(
        [points],
        initial_centroids=[(1.0, 1.0), (9.0, 1.0), (4.0, 6.0)],
        max_iters=15,
        tol=1e-4,
    )
    print(f"converged={result.converged} after {result.iterations} iterations")
    for i, (cx, cy) in enumerate(sorted(result.centroids)):
        print(f"  centroid {i}: ({cx:7.3f}, {cy:7.3f})")
    recovered = sorted(result.centroids)
    for got, want in zip(recovered, sorted(CENTERS)):
        err = ((got[0] - want[0]) ** 2 + (got[1] - want[1]) ** 2) ** 0.5
        print(f"  matches {want} within {err:.3f}")


if __name__ == "__main__":
    main()
