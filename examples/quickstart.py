#!/usr/bin/env python3
"""Quickstart: word count on the baseline runtime vs SupMR.

Generates a small Zipf text corpus, runs the same job through both
runtimes, verifies the outputs match, and prints the Table II-style
phase breakdown side by side.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import PhoenixRuntime, RuntimeOptions, run_ingest_mr
from repro.analysis.tables import AsciiTable
from repro.apps.wordcount import make_wordcount_job
from repro.util.units import fmt_seconds
from repro.workloads import generate_text_file


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="supmr-quickstart-"))
    corpus = workdir / "corpus.txt"
    nbytes = generate_text_file(corpus, 4_000_000, vocab_size=5000, seed=42)
    print(f"generated {nbytes / 1e6:.1f} MB corpus at {corpus}")

    # The original runtime: ingest everything, then map/reduce/merge.
    baseline = PhoenixRuntime().run(make_wordcount_job([corpus]))

    # SupMR: 512 KB ingest chunks streamed through the pipeline, p-way merge.
    supmr = run_ingest_mr(
        make_wordcount_job([corpus]),
        RuntimeOptions.supmr_interfile("512KB"),
    )

    assert dict(baseline.output) == dict(supmr.output), "outputs must match"

    table = AsciiTable(["runtime", "read", "map", "reduce", "merge", "total"])
    b = baseline.timings
    s = supmr.timings
    table.add_row("phoenix (baseline)", fmt_seconds(b.read_s),
                  fmt_seconds(b.map_s), fmt_seconds(b.reduce_s),
                  fmt_seconds(b.merge_s), fmt_seconds(b.total_s))
    table.add_row(f"supmr ({supmr.n_chunks} chunks)",
                  f"{fmt_seconds(s.read_map_s)} (pipelined read+map)", "-",
                  fmt_seconds(s.reduce_s), fmt_seconds(s.merge_s),
                  fmt_seconds(s.total_s))
    print()
    print(table.render())

    top = sorted(baseline.output, key=lambda kv: -kv[1])[:5]
    print("\nmost frequent words:")
    for word, count in top:
        print(f"  {word.decode():<12s} {count}")
    print(f"\n{baseline.n_output_pairs} distinct words; outputs identical "
          f"across runtimes — see DESIGN.md for how the paper-scale timing "
          f"experiments are reproduced on the simulated testbed.")


if __name__ == "__main__":
    main()
