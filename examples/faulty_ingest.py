#!/usr/bin/env python3
"""Word count on a machine that keeps misbehaving — and still finishes.

Generates a small Zipf corpus, then runs the same SupMR job three ways:

* clean — no faults, the reference;
* faulted — one transient read error per ingest chunk, 0.2% record
  corruption, and an occasional map-task crash, all recovered (retry,
  quarantine, task re-execution);
* fail-fast — the same faults with a zero retry budget, which dies on
  the first injected read error (``RetryExhausted``).

Prints the fault log of the recovered run and shows its output equals
the reference minus exactly the quarantined records.

Run:  python examples/faulty_ingest.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import RuntimeOptions, run_ingest_mr
from repro.apps.wordcount import make_wordcount_job
from repro.errors import RetryExhausted
from repro.faults.plan import parse_faults
from repro.faults.policy import RecoveryPolicy
from repro.workloads import generate_text_file

FAULTS = "ingest.read=once,record.corrupt=0.002,map.task=0.02"
SEED = 7


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="supmr-faults-"))
    corpus = workdir / "corpus.txt"
    nbytes = generate_text_file(corpus, 500_000, vocab_size=2000, seed=SEED)
    print(f"generated {nbytes / 1e6:.1f} MB corpus at {corpus}")

    options = RuntimeOptions.supmr_interfile("64KB")
    clean = run_ingest_mr(make_wordcount_job([corpus]), options)
    print(f"clean run: {clean.n_output_pairs} distinct words, "
          f"{sum(v for _k, v in clean.output)} total")

    plan = parse_faults(FAULTS, seed=SEED)
    faulted_options = options.with_(
        fault_plan=plan,
        recovery=RecoveryPolicy(max_retries=3, skip_budget=100),
    )
    result = run_ingest_mr(make_wordcount_job([corpus]), faulted_options)
    log = result.fault_log

    print(f"\nfaulted run survived {log.injected} injected faults:")
    print(f"  summary: {log.summary()}")
    for event in list(log.events)[:8]:
        print(f"  [{event.time_s:7.3f}s] {event.site:<16} "
              f"{event.action:<12} {event.detail}")
    if len(log.events) > 8:
        print(f"  ... and {len(log.events) - 8} more events")

    lost = sum(v for _k, v in clean.output) - sum(v for _k, v in result.output)
    print(f"\noutput: reference minus the {log.quarantined} quarantined "
          f"record(s) — {lost} word occurrence(s) lost, zero duplicated")
    assert result.counters["records_quarantined"] == log.quarantined

    fail_fast = options.with_(
        fault_plan=plan, recovery=RecoveryPolicy(max_retries=0),
    )
    try:
        run_ingest_mr(make_wordcount_job([corpus]), fail_fast)
    except RetryExhausted as exc:
        print(f"\nzero retry budget dies as designed: {exc}")
        print(f"  caused by: {exc.__cause__!r}")


if __name__ == "__main__":
    main()
