#!/usr/bin/env python3
"""Out-of-core word count: sweep the memory budget, watch runs appear.

Generates a small Zipf corpus, runs the same SupMR job unbudgeted and
under progressively tighter intermediate-memory budgets, verifies every
run produces byte-identical output, and prints the spill behaviour —
run counts, spilled bytes, accounted peak vs budget, combine ratio.

Run:  python examples/spill_budget.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import RuntimeOptions, run_ingest_mr
from repro.analysis.tables import AsciiTable
from repro.apps.wordcount import make_wordcount_job
from repro.util.units import fmt_bytes
from repro.workloads import generate_text_file

BUDGETS = [None, "1MB", "256KB", "64KB"]


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="supmr-spill-"))
    corpus = workdir / "corpus.txt"
    nbytes = generate_text_file(corpus, 1_000_000, vocab_size=4000, seed=7)
    print(f"generated {nbytes / 1e6:.1f} MB corpus at {corpus}")

    options = RuntimeOptions.supmr_interfile("32KB")
    reference = None
    table = AsciiTable(
        ["budget", "spill runs", "spilled", "peak accounted",
         "merge passes", "output identical"]
    )
    for budget in BUDGETS:
        opts = options if budget is None else options.with_(memory_budget=budget)
        result = run_ingest_mr(make_wordcount_job([corpus]), opts)
        if reference is None:
            reference = result.output
        identical = result.output == reference
        assert identical, "out-of-core output must match in-memory output"
        s = result.spill_stats
        if s is None:
            table.add_row("unlimited", "0", "-", "-", "-", str(identical))
        else:
            assert s.within_budget, "accounted peak must stay under budget"
            table.add_row(
                budget, str(s.runs), fmt_bytes(s.spilled_bytes),
                f"{fmt_bytes(s.peak_accounted_bytes)} / {fmt_bytes(s.budget_bytes)}",
                str(s.merge_passes), str(identical),
            )
    print()
    print(table.render())
    print("\nTighter budgets spill more runs yet the output never changes;")
    print("the accounted peak stays under the budget by construction.")


if __name__ == "__main__":
    main()
