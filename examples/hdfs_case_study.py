#!/usr/bin/env python3
"""The paper's HDFS case study (section VI.C.3, Fig. 7), parameterized.

Simulates word count ingesting from a 32-node HDFS behind one 1 Gbit
link, then sweeps the link speed to show Conclusion 4 from the other
side: as ingest gets faster, the map phase becomes a larger fraction of
the job and the pipeline's absolute win grows.

Run:  python examples/hdfs_case_study.py
"""

from __future__ import annotations

from repro.analysis.tables import AsciiTable
from repro.analysis.traces import mean_utilization, sparkline
from repro.simhw.hdfs import HdfsSpec
from repro.simrt.hdfs_case import simulate_hdfs_case_study


def main() -> None:
    case = simulate_hdfs_case_study()
    b, s = case.baseline, case.supmr
    print("paper configuration: 30 GB word count, 32 datanodes, 1 Gbit link")
    print(f"  original runtime: {b.timings.total_s:7.1f}s  "
          f"(ingest util {mean_utilization(b.samples, 0, b.timings.read_s):.1f}%)")
    print(f"  SupMR           : {s.timings.total_s:7.1f}s  "
          f"(ingest util "
          f"{mean_utilization(s.samples, 0, s.timings.read_map_s):.1f}%)")
    print(f"  speedup: {case.speedup_seconds:.1f}s  (paper: ~7s)")
    print()
    print("utilization traces (0-100%):")
    print(f"  baseline {sparkline(b.samples, width=68)}")
    print(f"  supmr    {sparkline(s.samples, width=68)}")

    print("\nlink-speed sweep (Conclusion 4: the *relative* win tracks the "
          "map share — the overlap can only ever hide the map time):")
    table = AsciiTable(["link", "baseline (s)", "supmr (s)", "speedup (s)",
                        "speedup (x)", "map share"])
    for gbits in (0.5, 1.0, 2.0, 5.0, 10.0):
        sweep = simulate_hdfs_case_study(
            hdfs_spec=HdfsSpec(link_gbits=gbits), monitor_interval=5.0
        )
        bt = sweep.baseline.timings
        table.add_row(
            f"{gbits:g} Gbit", f"{bt.total_s:.1f}",
            f"{sweep.supmr.timings.total_s:.1f}",
            f"{sweep.speedup_seconds:.1f}",
            f"{sweep.speedup_factor:.3f}x",
            f"{100 * bt.map_s / bt.total_s:.1f}%",
        )
    print(table.render())


if __name__ == "__main__":
    main()
