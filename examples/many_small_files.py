#!/usr/bin/env python3
"""Intra-file chunking: the Hadoop many-small-files workload.

Recreates the paper's section III.A.1 example — 30 input files with an
intra-file chunk size of 4 files yields 8 ingest chunks (7 x 4 files +
1 x 2 files) — and runs word count and an inverted index over the
corpus through the pipeline.

Run:  python examples/many_small_files.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import PhoenixRuntime, RuntimeOptions, run_ingest_mr
from repro.apps.inverted_index import make_inverted_index_job, write_index_corpus
from repro.apps.wordcount import make_wordcount_job
from repro.chunking import plan_intrafile_chunks
from repro.workloads import generate_small_files


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="supmr-smallfiles-"))

    # --- the paper's 30-files / size-4 chunk plan ------------------------
    paths = generate_small_files(workdir / "corpus", 30, 20_000, seed=9)
    plan = plan_intrafile_chunks(paths, 4)
    print(f"{len(paths)} files, 4 per chunk -> {plan.n_chunks} chunks "
          f"(paper example: 8)")
    sizes = [len(c.sources) for c in plan.chunks]
    print(f"files per chunk: {sizes}")
    for note in plan.notes:
        print(f"note: {note}")

    # --- word count through the intra-file pipeline ----------------------
    baseline = PhoenixRuntime().run(make_wordcount_job(paths))
    supmr = run_ingest_mr(
        make_wordcount_job(paths), RuntimeOptions.supmr_intrafile(4)
    )
    assert dict(baseline.output) == dict(supmr.output)
    print(f"\nword count: {supmr.n_output_pairs} distinct words, "
          f"{supmr.n_chunks} ingest chunks, "
          f"{supmr.container_stats.rounds} map rounds "
          f"(persistent container)")

    # --- inverted index over a self-identifying corpus -------------------
    docs = {
        f"doc{i:02d}": " ".join(
            line.decode() for line in paths[i].read_bytes().splitlines()[:3]
        )
        for i in range(8)
    }
    index_paths = write_index_corpus(workdir / "indexed", docs)
    result = run_ingest_mr(
        make_inverted_index_job(index_paths),
        RuntimeOptions.supmr_intrafile(3),
    )
    print(f"\ninverted index: {result.n_output_pairs} terms; sample postings:")
    for word, docs_list in result.output[:5]:
        print(f"  {word.decode():<12s} -> {[d.decode() for d in docs_list]}")


if __name__ == "__main__":
    main()
