#!/usr/bin/env python3
"""Chunk-size tuning: the paper's future work, end to end.

Shows the three ways to pick an ingest chunk size on the simulated
paper testbed:

1. hand-picked (the paper's 1 GB / 50 GB),
2. the offline model optimizer (closed form + refinement),
3. the online feedback loop, cold-started at 0.25 GB,

and renders the adaptive run's pipeline timeline.

Run:  python examples/chunk_tuning.py
"""

from __future__ import annotations

from repro.analysis.tables import AsciiTable
from repro.analysis.timeline import overlap_fraction, render_round_timeline
from repro.simrt.costmodel import GB_SI, PAPER_WORDCOUNT
from repro.simrt.supmr_sim import simulate_supmr_job
from repro.tuning import FeedbackTuner, optimal_chunk_size, simulate_supmr_adaptive

INPUT = 155 * GB_SI


def main() -> None:
    table = AsciiTable(["configuration", "chunk", "read+map (s)", "total (s)"])

    for label, chunk in (("paper 1GB", 1 * GB_SI), ("paper 50GB", 50 * GB_SI)):
        run = simulate_supmr_job(PAPER_WORDCOUNT, INPUT, chunk,
                                 monitor_interval=20.0)
        table.add_row(label, f"{chunk / GB_SI:g}GB",
                      f"{run.timings.read_map_s:.2f}",
                      f"{run.timings.total_s:.2f}")

    best = optimal_chunk_size(PAPER_WORDCOUNT, INPUT)
    model_run = simulate_supmr_job(PAPER_WORDCOUNT, INPUT, best.chunk_bytes,
                                   monitor_interval=20.0)
    table.add_row("model tuner", f"{best.chunk_bytes / GB_SI:.2f}GB",
                  f"{model_run.timings.read_map_s:.2f}",
                  f"{model_run.timings.total_s:.2f}")

    tuner = FeedbackTuner(initial_chunk_bytes=0.25 * GB_SI,
                          round_overhead_s=PAPER_WORDCOUNT.round_overhead_s)
    adaptive = simulate_supmr_adaptive(PAPER_WORDCOUNT, INPUT, tuner,
                                       monitor_interval=20.0)
    table.add_row("feedback tuner (cold)", "adaptive",
                  f"{adaptive.timings.read_map_s:.2f}",
                  f"{adaptive.timings.total_s:.2f}")

    print("word count, 155 GB, simulated paper testbed:")
    print(table.render())
    print(f"\nclosed form c* = {best.closed_form_bytes / GB_SI:.2f} GB; "
          f"refined optimum {best.chunk_bytes / GB_SI:.2f} GB "
          f"({best.n_chunks} chunks)")
    sizes = adaptive.extras["chunk_sizes"]
    print(f"feedback ramp: {[round(s / GB_SI, 2) for s in sizes[:8]]} ... GB")
    print(f"estimated rates at end: ingest "
          f"{adaptive.extras['final_estimate_ingest_bw'] / 1e6:.0f} MB/s, "
          f"map {adaptive.extras['final_estimate_map_bw'] / 1e6:.0f} MB/s")

    # Zoom the timeline into the first 15 rounds so the lanes are visible.
    head = adaptive.timings.rounds[:15]
    print()
    print(render_round_timeline(head))
    print(f"overlap: {100 * overlap_fraction(adaptive.timings.rounds):.0f}% "
          "of all map time ran under ingest")


if __name__ == "__main__":
    main()
