#!/usr/bin/env python3
"""Terasort: the paper's merge-bottleneck workload, both merge algorithms.

Generates terasort-format records, sorts them with the baseline (2-way
merge rounds) and SupMR (single-pass p-way merge), verifies identical
output, and shows the work accounting behind the paper's 3.13x merge
speedup: pairwise merging re-scans every record once per round.

Run:  python examples/terasort.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import PhoenixRuntime, RuntimeOptions, run_ingest_mr
from repro.analysis.tables import AsciiTable
from repro.apps.sortapp import make_sort_job
from repro.core.options import MergeAlgorithm
from repro.sortlib.merge_sort import total_items_scanned
from repro.workloads import generate_terasort_file

N_RECORDS = 30_000


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="supmr-terasort-"))
    datafile = workdir / "records.dat"
    written = generate_terasort_file(datafile, N_RECORDS, seed=7)
    print(f"generated {N_RECORDS} records ({written / 1e6:.1f} MB)")

    options = RuntimeOptions.baseline(num_mappers=8, num_reducers=8)
    baseline = PhoenixRuntime(options).run(make_sort_job([datafile]))

    supmr = run_ingest_mr(
        make_sort_job([datafile]),
        RuntimeOptions.supmr_interfile("512KB", num_mappers=8, num_reducers=8),
    )
    assert baseline.output == supmr.output, "sorted outputs must match"
    keys = [k for k, _v in supmr.output]
    assert keys == sorted(keys)

    table = AsciiTable(["runtime", "merge algorithm", "merge rounds",
                        "merge (s)", "total (s)"])
    table.add_row("phoenix", MergeAlgorithm.PAIRWISE.value,
                  baseline.counters["merge_rounds"],
                  f"{baseline.timings.merge_s:.3f}",
                  f"{baseline.timings.total_s:.3f}")
    table.add_row("supmr", MergeAlgorithm.PWAY.value,
                  supmr.counters["merge_rounds"],
                  f"{supmr.timings.merge_s:.3f}",
                  f"{supmr.timings.total_s:.3f}")
    print()
    print(table.render())

    # The mechanism behind the paper's 3.13x merge speedup: item touches.
    n_runs = 8
    per_run = N_RECORDS // n_runs
    touches = total_items_scanned([per_run] * n_runs)
    print(f"\nwork accounting for {n_runs} sorted runs of {per_run} records:")
    print(f"  pairwise rounds touch {touches} items "
          f"({touches / N_RECORDS:.2f}x the input)")
    print(f"  p-way single pass touches {N_RECORDS} items (1.00x)")
    print("\nAt the paper's 60 GB / 32 runs that ratio is what turns a "
          "191 s merge into a 61 s merge (Fig. 6, Table II).")


if __name__ == "__main__":
    main()
