#!/usr/bin/env python3
"""Regenerate every table and figure of the paper on the simulated testbed.

Runs the full experiment registry (Table II, Figs. 1/3/5/6/7, headline
claims), prints each report with ASCII utilization traces, and writes
the CSV trace artifacts next to this script (./paper_artifacts/).

Run:  python examples/paper_experiments.py
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import available_experiments, run_experiment


def main() -> None:
    out_dir = Path(__file__).parent / "paper_artifacts"
    out_dir.mkdir(exist_ok=True)
    worst = 0.0
    for exp_id in available_experiments():
        result = run_experiment(exp_id)
        print(result.render())
        print("=" * 78)
        for name, content in result.artifacts.items():
            (out_dir / name).write_text(content)
        big = [c for c in result.comparisons if c.paper >= 1.0]
        if big:
            worst = max(worst, max(c.relative_error for c in big))
    print(f"\nartifacts written to {out_dir}/")
    print(f"worst relative error on >=1s/1x cells: {100 * worst:.1f}% "
          "(see EXPERIMENTS.md for the full paper-vs-measured record)")


if __name__ == "__main__":
    main()
