"""ASCII tables and speedup accounting."""

from __future__ import annotations

import pytest

from repro.analysis.speedup import phase_speedups
from repro.analysis.tables import AsciiTable
from repro.core.result import PhaseTimings
from repro.errors import ExperimentError


class TestAsciiTable:
    def test_renders_header_and_rows(self):
        table = AsciiTable(["a", "bb"])
        table.add_row(1, "xyz")
        out = table.render()
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-+-" in lines[1]
        assert "xyz" in lines[2]

    def test_column_count_enforced(self):
        table = AsciiTable(["one"])
        with pytest.raises(ExperimentError):
            table.add_row(1, 2)

    def test_empty_headers_rejected(self):
        with pytest.raises(ExperimentError):
            AsciiTable([])

    def test_columns_aligned(self):
        table = AsciiTable(["col"])
        table.add_row("short")
        table.add_row("much longer cell")
        lines = table.render().splitlines()
        assert len({len(line) for line in lines[2:]}) == 1


class TestPhaseSpeedups:
    def _t(self, read, mp, red, mer, combined=False):
        return PhaseTimings(read_s=read, map_s=mp, reduce_s=red, merge_s=mer,
                            total_s=read + mp + red + mer,
                            read_map_combined=combined)

    def test_ratios(self):
        base = self._t(100, 20, 4, 40)
        opt = self._t(110, 0, 5, 12, combined=True)
        s = phase_speedups(base, opt)
        assert s.read_map == pytest.approx(120 / 110)
        assert s.merge == pytest.approx(40 / 12)
        assert s.total == pytest.approx(164 / 127)

    def test_utilization_gain(self):
        base = self._t(10, 1, 1, 1)
        opt = self._t(8, 1, 1, 1)
        s = phase_speedups(base, opt, baseline_util_pct=20.0,
                           optimized_util_pct=30.0)
        assert s.utilization_gain_pct == pytest.approx(50.0)

    def test_no_utilization_data(self):
        base = self._t(10, 1, 1, 1)
        s = phase_speedups(base, base)
        assert s.utilization_gain_pct is None

    def test_zero_optimized_phase_is_inf(self):
        base = self._t(10, 1, 1, 1)
        opt = self._t(10, 1, 1, 0)
        assert phase_speedups(base, opt).merge == float("inf")

    def test_phase_range(self):
        base = self._t(100, 20, 4, 40)
        opt = self._t(60, 0, 4, 10, combined=True)
        lo, hi = phase_speedups(base, opt).phase_range()
        assert lo <= hi
