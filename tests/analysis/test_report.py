"""JSON result reports."""

from __future__ import annotations

import json

import pytest

from repro.analysis.report import job_result_dict, sim_result_dict, to_json
from repro.apps.wordcount import make_wordcount_job
from repro.core.options import RuntimeOptions
from repro.core.supmr import run_ingest_mr
from repro.simrt.costmodel import GB_SI, PAPER_SORT
from repro.simrt.phoenix_sim import simulate_phoenix_job


@pytest.fixture(scope="module")
def wc_result(text_file):
    return run_ingest_mr(make_wordcount_job([text_file]),
                         RuntimeOptions.supmr_interfile("32KB"))


class TestJobResultReport:
    def test_dict_fields(self, wc_result):
        data = job_result_dict(wc_result)
        assert data["runtime"] == "supmr"
        assert data["n_chunks"] == wc_result.n_chunks
        assert data["timings"]["read_map_combined"] is True
        assert len(data["timings"]["rounds"]) == wc_result.n_chunks + 1
        assert "output" not in data

    def test_output_included_on_request(self, wc_result):
        data = job_result_dict(wc_result, include_output=True)
        assert len(data["output"]) == wc_result.n_output_pairs
        # bytes keys decoded for JSON
        assert isinstance(data["output"][0][0], str)

    def test_json_round_trips(self, wc_result):
        text = to_json(wc_result)
        parsed = json.loads(text)
        assert parsed["job"] == "wordcount"
        assert parsed["counters"]["merge_algorithm"] == "pway"


class TestSimResultReport:
    def test_sim_dict_fields(self):
        result = simulate_phoenix_job(PAPER_SORT, 1 * GB_SI,
                                      monitor_interval=1.0)
        data = sim_result_dict(result)
        assert data["app"] == "sort"
        assert data["spans"][0]["name"] == "read"
        assert data["samples"][0]["time"] == 0.0
        json.dumps(data)  # fully serializable

    def test_to_json_dispatches_on_type(self):
        result = simulate_phoenix_job(PAPER_SORT, 1 * GB_SI,
                                      monitor_interval=1.0)
        parsed = json.loads(to_json(result))
        assert parsed["runtime"] == "phoenix"


class TestCliJson:
    def test_wordcount_json_flag(self, text_file, capsys):
        from repro.cli import main

        assert main(["wordcount", str(text_file), "--chunk-size", "64KB",
                     "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["runtime"] == "supmr"
        assert parsed["n_output_pairs"] > 0
