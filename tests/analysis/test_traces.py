"""Trace analysis helpers."""

from __future__ import annotations

import pytest

from repro.analysis.traces import (
    mean_utilization,
    phase_mean_utilization,
    sparkline,
    step_levels,
    trace_csv,
)
from repro.simhw.monitor import UtilizationSample
from repro.simrt.phases import PhaseSpan


def mk(t, user=0.0, sys_=0.0, iow=0.0):
    return UtilizationSample(t, user, sys_, iow)


class TestMeanUtilization:
    def test_window_selection(self):
        samples = [mk(0, 100), mk(1, 50), mk(2, 0)]
        assert mean_utilization(samples, 0, 1) == pytest.approx(75.0)
        assert mean_utilization(samples) == pytest.approx(50.0)

    def test_busy_only_excludes_iowait(self):
        samples = [mk(0, user=10, iow=90)]
        assert mean_utilization(samples) == pytest.approx(100.0)
        assert mean_utilization(samples, busy_only=True) == pytest.approx(10.0)

    def test_empty_window(self):
        assert mean_utilization([], 0, 1) == 0.0

    def test_phase_means(self):
        samples = [mk(0, 100), mk(1, 100), mk(2, 10), mk(3, 10)]
        spans = [PhaseSpan("hot", 0, 1), PhaseSpan("cold", 2, 3)]
        means = phase_mean_utilization(samples, spans)
        assert means == {"hot": pytest.approx(100.0),
                         "cold": pytest.approx(10.0)}


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_width(self):
        samples = [mk(i, 50) for i in range(100)]
        assert len(sparkline(samples, width=40)) == 40

    def test_levels_map_to_glyphs(self):
        low = sparkline([mk(0, 0), mk(1, 0)], width=2)
        high = sparkline([mk(0, 100), mk(1, 100)], width=2)
        assert low != high
        assert "@" in high

    def test_gaps_render_blank(self):
        samples = [mk(0, 100), mk(10, 100)]
        line = sparkline(samples, width=10)
        assert " " in line


class TestStepLevels:
    def test_detects_plateaus(self):
        samples = ([mk(t, 100) for t in range(3)]
                   + [mk(t, 50) for t in range(3, 6)]
                   + [mk(t, 25) for t in range(6, 9)])
        levels = step_levels(samples, 0, 9)
        assert levels == [pytest.approx(100), pytest.approx(50),
                          pytest.approx(25)]

    def test_jitter_within_threshold_merges(self):
        samples = [mk(0, 50.0), mk(1, 50.5), mk(2, 49.9)]
        assert len(step_levels(samples, 0, 3)) == 1


class TestTraceCsv:
    def test_header_and_rows(self):
        csv = trace_csv([mk(0, 10, 5, 2)])
        lines = csv.strip().splitlines()
        assert lines[0] == "time_s,user_pct,sys_pct,iowait_pct,total_pct"
        assert lines[1] == "0.000,10.00,5.00,2.00,17.00"
