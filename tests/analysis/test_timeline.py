"""Pipeline timeline rendering and overlap accounting."""

from __future__ import annotations

import pytest

from repro.analysis.timeline import (
    overlap_fraction,
    render_round_timeline,
    render_supervision_summary,
    round_spans,
)
from repro.core.result import RoundTiming
from repro.errors import ExperimentError


def rounds_fixture():
    # 3 chunks: serial ingest, two overlapped rounds, final map
    return [
        RoundTiming(0, ingest_s=2.0, map_s=0.0, chunk_bytes=100),
        RoundTiming(1, ingest_s=2.0, map_s=1.0, chunk_bytes=100),
        RoundTiming(2, ingest_s=2.0, map_s=1.0, chunk_bytes=100),
        RoundTiming(3, ingest_s=0.0, map_s=1.0, chunk_bytes=0),
    ]


class TestRoundSpans:
    def test_wall_clock_total(self):
        _ing, _map, total = round_spans(rounds_fixture())
        assert total == pytest.approx(2 + 2 + 2 + 1)

    def test_overlapped_rounds_share_start(self):
        ingest, mapping, _total = round_spans(rounds_fixture())
        # round 1 starts at t=2 for both lanes
        assert ingest[1][0] == pytest.approx(2.0)
        assert mapping[0][0] == pytest.approx(2.0)

    def test_empty_rounds_raise(self):
        with pytest.raises(ExperimentError):
            round_spans([])


class TestRenderTimeline:
    def test_renders_two_lanes(self):
        art = render_round_timeline(rounds_fixture(), width=40)
        lines = art.splitlines()
        assert lines[1].startswith("ingest |")
        assert lines[2].startswith("map    |")
        assert "#" in lines[1]
        assert "=" in lines[2]

    def test_final_round_has_no_ingest(self):
        art = render_round_timeline(rounds_fixture(), width=40)
        ingest_lane = art.splitlines()[1]
        # the tail of the ingest lane is blank (final map-only round)
        inner = ingest_lane[len("ingest |"):-1]
        assert inner.rstrip().endswith("#")
        assert inner.endswith(" " * 3)

    def test_width_validated(self):
        with pytest.raises(ExperimentError):
            render_round_timeline(rounds_fixture(), width=5)

    def test_real_runtime_rounds_render(self, text_file):
        from repro.apps.wordcount import make_wordcount_job
        from repro.core.options import RuntimeOptions
        from repro.core.supmr import run_ingest_mr

        result = run_ingest_mr(
            make_wordcount_job([text_file]),
            RuntimeOptions.supmr_interfile("32KB"),
        )
        art = render_round_timeline(result.timings.rounds)
        assert f"{len(result.timings.rounds)} rounds" in art


class TestSupervisionSummary:
    def test_quiet_run_renders_nothing(self):
        assert render_supervision_summary({}) == ""
        assert render_supervision_summary(
            {"worker_respawns": 0, "merge_rounds": 3}
        ) == ""

    def test_nonzero_counters_render_in_order(self):
        line = render_supervision_summary({
            "worker_crashes": 1,
            "worker_respawns": 2,
            "task_redispatches": 3,
        })
        assert line == (
            "supervision: respawns=2 crashes=1 re-dispatches=3"
        )

    def test_shard_counters_included(self):
        line = render_supervision_summary({
            "shard_respawns": 1,
            "partitions_reassigned": 4,
            "exchange_refetches": 2,
        })
        assert "shard-respawns=1" in line
        assert "partitions-reassigned=4" in line
        assert "exchange-refetches=2" in line

    def test_unrelated_counters_ignored(self):
        assert render_supervision_summary(
            {"merge_rounds": 1, "map_tasks": 9}
        ) == ""


class TestOverlapFraction:
    def test_full_overlap(self):
        rounds = [
            RoundTiming(0, 2.0, 0.0, 1),
            RoundTiming(1, 2.0, 1.0, 1),  # map fully inside ingest
            RoundTiming(2, 0.0, 0.0, 0),
        ]
        assert overlap_fraction(rounds) == pytest.approx(1.0)

    def test_partial_overlap(self):
        rounds = [
            RoundTiming(0, 1.0, 0.0, 1),
            RoundTiming(1, 1.0, 2.0, 1),  # map-bound round: 1s hidden of 2s
            RoundTiming(2, 0.0, 2.0, 0),  # final map: nothing hidden
        ]
        assert overlap_fraction(rounds) == pytest.approx(1.0 / 4.0)

    def test_no_map_time(self):
        rounds = [RoundTiming(0, 1.0, 0.0, 1)]
        assert overlap_fraction(rounds) == 0.0
