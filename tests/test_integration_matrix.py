"""Cross-product integration: every app x every runtime configuration.

The reproduction's master equivalence claim, exhaustively: for each
application, the SupMR runtime produces the baseline's output under
every chunking strategy and merge algorithm combination.
"""

from __future__ import annotations

import pytest

from repro.apps.grep import make_grep_job
from repro.apps.histogram import make_histogram_job
from repro.apps.sortapp import make_sort_job
from repro.apps.string_match import make_string_match_job
from repro.apps.wordcount import make_wordcount_job
from repro.core.options import MergeAlgorithm, RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.core.supmr import run_ingest_mr


def _configs():
    yield "interfile-pway", RuntimeOptions.supmr_interfile("24KB")
    yield "interfile-pairwise", RuntimeOptions.supmr_interfile(
        "24KB", merge_algorithm=MergeAlgorithm.PAIRWISE)
    yield "interfile-serial", RuntimeOptions.supmr_interfile(
        "24KB", pipelined_ingest=False)
    yield "variable", RuntimeOptions.supmr_variable(["8KB", "16KB", "48KB"])
    yield "hybrid", RuntimeOptions.supmr_hybrid("64KB")
    yield "many-mappers", RuntimeOptions.supmr_interfile(
        "24KB", num_mappers=7, num_reducers=3)


def _jobs(text_file, terasort_file):
    yield "wordcount", lambda: make_wordcount_job([text_file])
    yield "sort", lambda: make_sort_job([terasort_file])
    yield "grep", lambda: make_grep_job([text_file], rb"a")
    yield "histogram", lambda: make_histogram_job([terasort_file.parent
                                                   / "_nums.txt"], 0, 10, 8)
    yield "stringmatch", lambda: make_string_match_job([text_file],
                                                       [b"th", b"qq"])


@pytest.fixture(scope="module")
def nums_file(terasort_file):
    path = terasort_file.parent / "_nums.txt"
    if not path.exists():
        path.write_bytes(b"".join(b"%d\n" % (i % 10) for i in range(500)))
    return path


@pytest.mark.parametrize("config_name,options", list(_configs()))
@pytest.mark.parametrize("app", ["wordcount", "sort", "grep", "histogram",
                                 "stringmatch"])
def test_supmr_matches_baseline(app, config_name, options, text_file,
                                terasort_file, nums_file):
    jobs = dict(_jobs(text_file, terasort_file))
    make = jobs[app]
    baseline = PhoenixRuntime(
        RuntimeOptions.baseline(options.num_mappers, options.num_reducers)
    ).run(make())
    supmr = run_ingest_mr(make(), options)
    assert supmr.output == baseline.output, (
        f"{app} under {config_name} diverged from the baseline"
    )
