"""Segment pool: naming, refcounts, stray reaping, job-exit cleanup."""

from __future__ import annotations

import os

import pytest

from repro.xfer.segments import (
    SEG_PREFIX,
    SegmentLost,
    SegmentPool,
    new_nonce,
    orphaned_segments,
    segment_name,
    shm_available,
    write_segment,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="needs working /dev/shm"
)


@pytest.fixture
def pool():
    p = SegmentPool()
    yield p
    p.cleanup()
    assert orphaned_segments([p.nonce]) == []


class TestNaming:
    def test_name_carries_nonce_pid_seq(self):
        assert segment_name("abcd1234", 42, 7) == "rxfabcd1234p42s7"

    def test_next_name_is_monotonic_and_scoped(self, pool):
        a, b = pool.next_name(), pool.next_name()
        assert a != b
        assert a.startswith(SEG_PREFIX + pool.nonce)
        assert f"p{os.getpid()}s" in a

    def test_nonces_are_distinct(self):
        assert new_nonce() != new_nonce()

    def test_owner_is_creating_process(self, pool):
        assert pool.is_owner


class TestLifecycle:
    def test_write_attach_roundtrip(self, pool):
        name = pool.next_name()
        write_segment(name, [b"hello ", b"world"])
        view = pool.attach(name)
        assert bytes(view[:11]) == b"hello world"
        pool.release(name)
        assert orphaned_segments([pool.nonce]) == []

    def test_attach_refcounts_instead_of_double_mapping(self, pool):
        name = pool.next_name()
        write_segment(name, [b"x" * 64])
        pool.attach(name)
        pool.attach(name)  # second ref, same mapping
        pool.release(name)
        assert name in pool.live_names()  # one ref still held
        pool.release(name)
        assert name not in pool.live_names()
        assert orphaned_segments([pool.nonce]) == []

    def test_attach_missing_raises_segment_lost(self, pool):
        with pytest.raises(SegmentLost):
            pool.attach(segment_name(pool.nonce, os.getpid(), 999))

    def test_release_unknown_name_is_noop(self, pool):
        pool.release("rxfnot-a-segment")


class TestReaping:
    def test_reap_is_pid_scoped(self, pool):
        fake_pid = 999999  # no such worker; simulates a SIGKILLed child
        stray = segment_name(pool.nonce, fake_pid, 1)
        write_segment(stray, [b"orphan"])
        live = pool.next_name()
        write_segment(live, [b"live"])
        pool.attach(live)
        assert pool.reap(fake_pid) == 1
        # The tracked segment survived the scoped reap.
        assert live in pool.live_names()
        assert stray not in orphaned_segments([pool.nonce])
        pool.release(live)

    def test_reap_ignores_other_jobs_nonces(self, pool):
        other = SegmentPool()
        theirs = other.next_name()
        write_segment(theirs, [b"not yours"])
        assert pool.reap() == 0
        assert theirs in orphaned_segments([other.nonce])
        other.cleanup()

    def test_cleanup_releases_and_reaps_everything(self):
        pool = SegmentPool()
        held = pool.next_name()
        write_segment(held, [b"held"])
        pool.attach(held)
        pool.attach(held)  # extra ref: cleanup must still unlink
        stray = segment_name(pool.nonce, 999998, 1)
        write_segment(stray, [b"stray"])
        assert pool.cleanup() >= 1
        assert orphaned_segments([pool.nonce]) == []
