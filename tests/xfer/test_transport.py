"""Transport codec: inline vs segment frames, resolution, fallback."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.xfer.segments import SegmentLost, orphaned_segments, shm_available
from repro.xfer.transport import (
    TRANSPORT_PIPE,
    TRANSPORT_SHM,
    PipeTransport,
    ShmTransport,
    make_transport,
    resolve_transport,
)

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="needs working /dev/shm"
)

PAYLOADS = [
    {"counts": {"a": 1, "b": 2}, "blob": b"x" * 100},
    [(b"key", (1, 2, 3)), (b"longer-key", (4,))],
    ("tuple", None, 3.5, True),
]


class TestResolve:
    def test_unknown_value_is_a_config_error(self):
        with pytest.raises(ConfigError):
            resolve_transport("carrier-pigeon")

    def test_pipe_stays_pipe(self):
        assert resolve_transport("pipe") == TRANSPORT_PIPE

    @needs_shm
    def test_auto_prefers_shm_when_available(self):
        assert resolve_transport("auto") == TRANSPORT_SHM
        assert resolve_transport(None) == TRANSPORT_SHM

    def test_make_transport_kinds(self):
        assert make_transport("pipe").kind == TRANSPORT_PIPE


class TestPipeTransport:
    @pytest.mark.parametrize("payload", PAYLOADS)
    def test_roundtrip(self, payload):
        t = PipeTransport()
        assert t.unpack(t.pack(payload)) == payload

    def test_lifecycle_hooks_are_inert(self):
        t = PipeTransport()
        frame = t.pack({"k": "v"})
        t.release(frame)
        assert t.reap() == 0
        assert t.cleanup() == 0


@needs_shm
class TestShmTransport:
    @pytest.fixture
    def transport(self):
        t = ShmTransport()
        yield t
        t.cleanup()
        assert orphaned_segments([t.nonce]) == []

    @pytest.mark.parametrize("payload", PAYLOADS)
    def test_small_payloads_stay_inline(self, transport, payload):
        frame = transport.pack(payload)
        assert frame[0] == "i"
        assert transport.unpack(frame) == payload

    def test_large_payload_rides_a_segment(self, transport):
        payload = {"big": b"z" * (1 << 20), "meta": ("r", 3)}
        frame = transport.pack(payload)
        assert frame[0] == "s"
        assert transport.unpack(frame) == payload
        # keep=False: the receiving unpack unlinked the segment.
        assert orphaned_segments([transport.nonce]) == []

    def test_numpy_cells_travel_out_of_band(self, transport):
        np = pytest.importorskip("numpy")
        cells = np.arange(1 << 16, dtype=np.int64)
        frame = transport.pack({"cells": cells})
        assert frame[0] == "s"
        (tag, name, blob_len, buf_lens) = frame
        # protocol-5 buffer_callback: the array body is a raw out-of-band
        # buffer, not re-serialized into the pickle blob.
        assert sum(buf_lens) >= cells.nbytes
        assert blob_len < cells.nbytes
        out = transport.unpack(frame)["cells"]
        assert (out == cells).all()
        # The reconstructed array owns its memory (copied before unlink):
        # writing to it must not fault or corrupt anything.
        out[0] = -1

    def test_keep_frame_survives_unpack_until_release(self, transport):
        payload = {"task": b"t" * (1 << 18)}
        frame = transport.pack(payload, keep=True)
        assert transport.unpack(frame) == payload
        assert transport.unpack(frame) == payload  # re-dispatch reuse
        transport.release(frame)
        assert orphaned_segments([transport.nonce]) == []

    def test_unpack_after_reap_raises_segment_lost(self):
        t = ShmTransport()
        frame = t.pack({"r": b"b" * (1 << 18)})  # worker-style, unmapped
        assert t.pool.reap() == 1  # parent reaps the "dead worker's" stray
        with pytest.raises(SegmentLost):
            t.unpack(frame)
        t.cleanup()

    def test_inline_threshold_is_honoured(self):
        t = ShmTransport(inline_max=64)
        small = t.pack("tiny")
        big = t.pack("x" * 256)
        assert small[0] == "i" and big[0] == "s"
        t.unpack(big)
        t.cleanup()
