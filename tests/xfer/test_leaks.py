"""The no-leak guarantee: SIGKILL cannot strand a /dev/shm segment."""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.parallel.backends import fork_available
from repro.xfer.segments import (
    SegmentPool,
    orphaned_segments,
    shm_available,
    write_segment,
)

pytestmark = [
    pytest.mark.skipif(not shm_available(), reason="needs working /dev/shm"),
    pytest.mark.skipif(not fork_available(), reason="needs os.fork"),
]


def _child_writes_and_hangs(pool: SegmentPool, ready) -> None:
    # A worker that dies between writing its result segment and posting
    # the control frame — the worst-case crash window.
    name = pool.next_name()
    write_segment(name, [b"posted-nowhere" * 1024])
    ready.set()
    time.sleep(60)


class TestSigkillReap:
    def test_killed_workers_segments_are_reaped(self):
        pool = SegmentPool()
        ctx = multiprocessing.get_context("fork")
        ready = ctx.Event()
        proc = ctx.Process(target=_child_writes_and_hangs, args=(pool, ready))
        proc.start()
        assert ready.wait(10.0), "child never wrote its segment"
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(10.0)
        # The stray exists (nobody unlinked it) until the parent reaps.
        assert pool.stray_names(proc.pid), "crash window not reproduced"
        assert pool.reap(proc.pid) >= 1
        assert pool.stray_names(proc.pid) == []
        pool.cleanup()
        assert orphaned_segments([pool.nonce]) == []

    def test_cleanup_sweeps_without_knowing_the_pid(self):
        pool = SegmentPool()
        ctx = multiprocessing.get_context("fork")
        ready = ctx.Event()
        proc = ctx.Process(target=_child_writes_and_hangs, args=(pool, ready))
        proc.start()
        assert ready.wait(10.0)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(10.0)
        assert pool.cleanup() >= 1
        assert orphaned_segments([pool.nonce]) == []


class TestJobExitGuarantee:
    def test_crash_faulted_job_leaves_dev_shm_clean(
        self, text_file, tmp_path
    ):
        """End to end: workers really SIGKILLed mid-wave, zero orphans."""
        from repro.apps.wordcount import make_wordcount_job
        from repro.core.options import RuntimeOptions
        from repro.core.supmr import SupMRRuntime
        from repro.faults import parse_faults
        from repro.faults.policy import RecoveryPolicy

        before = set(orphaned_segments())
        opts = RuntimeOptions.supmr_interfile(
            "16KB", num_mappers=4, num_reducers=3
        ).with_(
            executor_backend="process",
            transport="shm",
            persistent_pool=True,
            fault_plan=parse_faults("worker.crash=once,task.hang=once",
                                    seed=7),
            recovery=RecoveryPolicy(lease_timeout_s=2.0),
        )
        result = SupMRRuntime(opts).run(make_wordcount_job([text_file]))
        assert result.counters["transport"] == "shm"
        assert result.counters["faults_injected"] > 0, (
            "no worker was killed; the leak test is vacuous"
        )
        leaked = set(orphaned_segments()) - before
        assert not leaked, f"job leaked shm segments: {sorted(leaked)}"
