"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_experiments_defaults(self):
        args = build_parser().parse_args(["experiments"])
        assert args.ids == []


class TestGen:
    def test_gen_text(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        assert main(["gen", "text", str(path), "--size", "10KB"]) == 0
        assert path.stat().st_size == 10 * 1024
        assert "wrote" in capsys.readouterr().out

    def test_gen_terasort(self, tmp_path):
        path = tmp_path / "t.dat"
        assert main(["gen", "terasort", str(path), "--records", "50"]) == 0
        assert path.stat().st_size == 5000

    def test_gen_files(self, tmp_path):
        assert main(["gen", "files", str(tmp_path / "d"), "--files", "3",
                     "--size", "1KB"]) == 0
        assert len(list((tmp_path / "d").iterdir())) == 3


class TestJobs:
    def test_wordcount_baseline(self, text_file, capsys):
        assert main(["wordcount", str(text_file), "--baseline",
                     "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "phoenix" in out
        assert "read:" in out

    def test_wordcount_chunked(self, text_file, capsys):
        assert main(["wordcount", str(text_file),
                     "--chunk-size", "32KB"]) == 0
        out = capsys.readouterr().out
        assert "supmr" in out
        assert "pipelined" in out

    def test_wordcount_intrafile(self, small_files, capsys):
        argv = ["wordcount"] + [str(p) for p in small_files[:6]]
        argv += ["--files-per-chunk", "2"]
        assert main(argv) == 0
        assert "3 chunk(s)" in capsys.readouterr().out

    def test_sort(self, terasort_file, capsys):
        assert main(["sort", str(terasort_file),
                     "--chunk-size", "50KB"]) == 0
        assert "supmr" in capsys.readouterr().out

    def test_shards_flag_routes_to_sharded_runtime(self, text_file, capsys):
        from repro.parallel.backends import fork_available

        if not fork_available():
            pytest.skip("needs os.fork")
        assert main(["wordcount", str(text_file), "--chunk-size", "32KB",
                     "--shards", "2", "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "sharded" in out
        assert "shards: 2" in out

    def test_shard_faults_render_supervision_summary(
        self, text_file, capsys
    ):
        from repro.parallel.backends import fork_available

        if not fork_available():
            pytest.skip("needs os.fork")
        assert main(["wordcount", str(text_file), "--chunk-size", "32KB",
                     "--shards", "2", "--top", "1", "--timeline",
                     "--faults", "shard.exchange_corrupt=once"]) == 0
        out = capsys.readouterr().out
        assert "supervision:" in out
        assert "exchange-refetches=" in out

    def test_wordcount_memory_budget_reports_spill(self, text_file, capsys):
        assert main(["wordcount", str(text_file), "--baseline",
                     "--memory-budget", "64KB", "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "spill:" in out
        assert "run(s)" in out

    def test_memory_budget_json_report(self, text_file, capsys):
        import json

        assert main(["wordcount", str(text_file), "--baseline",
                     "--memory-budget", "64KB", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["spill"]["runs"] >= 1
        assert data["spill"]["within_budget"] is True

    def test_budget_below_chunk_is_an_error(self, text_file, capsys):
        rc = main(["wordcount", str(text_file), "--chunk-size", "1MB",
                   "--memory-budget", "64KB"])
        assert rc == 2
        assert "ingest chunk" in capsys.readouterr().err

    def test_config_error_returns_2(self, text_file, capsys):
        # inter-file chunking with several files is a user error
        rc = main(["wordcount", str(text_file), str(text_file),
                   "--chunk-size", "1KB"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestExperimentsCommand:
    def test_single_experiment_with_artifacts(self, tmp_path, capsys):
        assert main(["experiments", "fig6", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert (tmp_path / "fig6_supmr.csv").exists()


class TestExitCodes:
    """The shared exit-code contract (repro.exitcodes): scripts branch on
    2 = usage, 3 = fault budget exhausted, 4 = deadline expired — for
    one-shot runs and (over the service) ``repro submit --wait`` alike."""

    def test_usage_error_is_2(self, text_file, capsys):
        from repro.exitcodes import EXIT_USAGE

        rc = main(["wordcount", str(text_file), "--chunk-size", "banana"])
        assert rc == EXIT_USAGE
        assert "error:" in capsys.readouterr().err

    def test_unknown_fault_site_is_2(self, text_file, capsys):
        from repro.exitcodes import EXIT_USAGE

        rc = main(["wordcount", str(text_file), "--faults", "warp.core"])
        assert rc == EXIT_USAGE
        assert "unknown fault site" in capsys.readouterr().err

    def test_retry_exhaustion_is_3(self, text_file, capsys):
        from repro.exitcodes import EXIT_FAULTS

        # every ingest read fails (probability 1), so the retry budget
        # can never absorb the fault
        rc = main(["wordcount", str(text_file), "--chunk-size", "32KB",
                   "--faults", "ingest.read", "--retry", "1"])
        assert rc == EXIT_FAULTS
        assert "attempt(s) failed" in capsys.readouterr().err

    def test_deadline_expiry_is_4(self, text_file, capsys):
        from repro.exitcodes import EXIT_DEADLINE

        rc = main(["wordcount", str(text_file), "--chunk-size", "32KB",
                   "--job-deadline", "0.000001", "--json"])
        assert rc == EXIT_DEADLINE
        import json

        data = json.loads(capsys.readouterr().out)
        assert data["counters"]["deadline_expired"] == 1

    def test_absorbed_faults_still_exit_0(self, text_file, capsys):
        from repro.exitcodes import EXIT_OK

        rc = main(["wordcount", str(text_file), "--chunk-size", "32KB",
                   "--faults", "ingest.read=once", "--retry", "3"])
        assert rc == EXIT_OK


class TestNetworkExitCodes:
    """How network failures land on the documented exit-code contract."""

    def test_malformed_peer_address_is_2(self, text_file, capsys):
        from repro.exitcodes import EXIT_USAGE

        rc = main(["wordcount", str(text_file), "--chunk-size", "32KB",
                   "--shards", "2", "--peers", "nonsense"])
        assert rc == EXIT_USAGE
        assert "host:port" in capsys.readouterr().err

    def test_empty_peer_segment_is_2(self, text_file, capsys):
        from repro.exitcodes import EXIT_USAGE

        # a stray comma must be a typed usage error, not a silently
        # narrower pool
        rc = main(["wordcount", str(text_file), "--chunk-size", "32KB",
                   "--shards", "2", "--peers", "a:1,,b:2"])
        assert rc == EXIT_USAGE
        assert "empty segment" in capsys.readouterr().err

    def test_duplicate_peer_is_2(self, text_file, capsys):
        from repro.exitcodes import EXIT_USAGE

        rc = main(["wordcount", str(text_file), "--chunk-size", "32KB",
                   "--shards", "2", "--peers", "a:01,a:1"])
        assert rc == EXIT_USAGE
        assert "duplicate" in capsys.readouterr().err

    def test_peers_without_shards_is_2(self, text_file, capsys):
        from repro.exitcodes import EXIT_USAGE

        rc = main(["wordcount", str(text_file), "--chunk-size", "32KB",
                   "--peers", "127.0.0.1:9999"])
        assert rc == EXIT_USAGE
        assert "num_shards" in capsys.readouterr().err

    def test_unreachable_peer_at_startup_is_2(self, text_file, capsys):
        import socket

        from repro.exitcodes import EXIT_USAGE

        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        rc = main(["wordcount", str(text_file), "--chunk-size", "32KB",
                   "--shards", "2", "--retry", "0", "--net-timeout", "1",
                   "--peers", f"127.0.0.1:{port}"])
        assert rc == EXIT_USAGE
        assert "connect to agent" in capsys.readouterr().err

    def test_peer_lost_right_after_startup_degrades_in_run_to_0(
        self, text_file, capsys
    ):
        import json

        from repro.exitcodes import EXIT_OK
        from repro.parallel.backends import fork_available

        if not fork_available():
            pytest.skip("fork start method unavailable")
        from repro.net.agent import AgentServer

        # A reachable fetch-only peer accepts the dial but never pongs:
        # the link is written off before any work lands on it, every
        # shard is placed locally, and the job still exits 0.
        peer = AgentServer(accept_control=False).start()
        try:
            rc = main(["wordcount", str(text_file), "--chunk-size", "32KB",
                       "--shards", "2", "--net-timeout", "0.5",
                       "--peers", peer.addr, "--json"])
        finally:
            peer.close()
        assert rc == EXIT_OK
        data = json.loads(capsys.readouterr().out)
        assert data["counters"]["net_peers"] == 1

    def test_unabsorbable_mid_job_failure_rescued_by_fallback_is_0(
        self, text_file, capsys
    ):
        import json

        from repro.exitcodes import EXIT_OK
        from repro.parallel.backends import fork_available

        if not fork_available():
            pytest.skip("fork start method unavailable")
        from repro.net.agent import AgentServer

        # Zero retry budget + an injected transfer corruption on the
        # cross-host run fetch (two peers, so one is guaranteed): the
        # multi-host rung fails mid-job, the local fallback rung
        # finishes the work, and the job still exits 0.
        peers = [AgentServer().start(), AgentServer().start()]
        try:
            rc = main(["wordcount", str(text_file), "--chunk-size", "32KB",
                       "--shards", "2", "--net-timeout", "1",
                       "--peers", ",".join(p.addr for p in peers),
                       "--retry", "0",
                       "--faults", "net.frame.corrupt=once", "--json"])
        finally:
            for p in peers:
                p.close()
        assert rc == EXIT_OK
        data = json.loads(capsys.readouterr().out)
        assert data["counters"]["net_fallback"] == "local"
