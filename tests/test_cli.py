"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_experiments_defaults(self):
        args = build_parser().parse_args(["experiments"])
        assert args.ids == []


class TestGen:
    def test_gen_text(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        assert main(["gen", "text", str(path), "--size", "10KB"]) == 0
        assert path.stat().st_size == 10 * 1024
        assert "wrote" in capsys.readouterr().out

    def test_gen_terasort(self, tmp_path):
        path = tmp_path / "t.dat"
        assert main(["gen", "terasort", str(path), "--records", "50"]) == 0
        assert path.stat().st_size == 5000

    def test_gen_files(self, tmp_path):
        assert main(["gen", "files", str(tmp_path / "d"), "--files", "3",
                     "--size", "1KB"]) == 0
        assert len(list((tmp_path / "d").iterdir())) == 3


class TestJobs:
    def test_wordcount_baseline(self, text_file, capsys):
        assert main(["wordcount", str(text_file), "--baseline",
                     "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "phoenix" in out
        assert "read:" in out

    def test_wordcount_chunked(self, text_file, capsys):
        assert main(["wordcount", str(text_file),
                     "--chunk-size", "32KB"]) == 0
        out = capsys.readouterr().out
        assert "supmr" in out
        assert "pipelined" in out

    def test_wordcount_intrafile(self, small_files, capsys):
        argv = ["wordcount"] + [str(p) for p in small_files[:6]]
        argv += ["--files-per-chunk", "2"]
        assert main(argv) == 0
        assert "3 chunk(s)" in capsys.readouterr().out

    def test_sort(self, terasort_file, capsys):
        assert main(["sort", str(terasort_file),
                     "--chunk-size", "50KB"]) == 0
        assert "supmr" in capsys.readouterr().out

    def test_shards_flag_routes_to_sharded_runtime(self, text_file, capsys):
        from repro.parallel.backends import fork_available

        if not fork_available():
            pytest.skip("needs os.fork")
        assert main(["wordcount", str(text_file), "--chunk-size", "32KB",
                     "--shards", "2", "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "sharded" in out
        assert "shards: 2" in out

    def test_shard_faults_render_supervision_summary(
        self, text_file, capsys
    ):
        from repro.parallel.backends import fork_available

        if not fork_available():
            pytest.skip("needs os.fork")
        assert main(["wordcount", str(text_file), "--chunk-size", "32KB",
                     "--shards", "2", "--top", "1", "--timeline",
                     "--faults", "shard.exchange_corrupt=once"]) == 0
        out = capsys.readouterr().out
        assert "supervision:" in out
        assert "exchange-refetches=" in out

    def test_wordcount_memory_budget_reports_spill(self, text_file, capsys):
        assert main(["wordcount", str(text_file), "--baseline",
                     "--memory-budget", "64KB", "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "spill:" in out
        assert "run(s)" in out

    def test_memory_budget_json_report(self, text_file, capsys):
        import json

        assert main(["wordcount", str(text_file), "--baseline",
                     "--memory-budget", "64KB", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["spill"]["runs"] >= 1
        assert data["spill"]["within_budget"] is True

    def test_budget_below_chunk_is_an_error(self, text_file, capsys):
        rc = main(["wordcount", str(text_file), "--chunk-size", "1MB",
                   "--memory-budget", "64KB"])
        assert rc == 2
        assert "ingest chunk" in capsys.readouterr().err

    def test_config_error_returns_2(self, text_file, capsys):
        # inter-file chunking with several files is a user error
        rc = main(["wordcount", str(text_file), str(text_file),
                   "--chunk-size", "1KB"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestExperimentsCommand:
    def test_single_experiment_with_artifacts(self, tmp_path, capsys):
        assert main(["experiments", "fig6", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert (tmp_path / "fig6_supmr.csv").exists()
