"""Simulation kernel: clock, agenda, event semantics."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simhw.events import SimEvent, Simulator


class TestSimulatorClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_run_empty_agenda_returns_now(self, sim):
        assert sim.run() == 0.0

    def test_run_until_advances_clock_with_empty_agenda(self, sim):
        assert sim.run(until=5.0) == 5.0
        assert sim.now == 5.0

    def test_timeout_advances_clock(self, sim):
        sim.timeout(2.5)
        sim.run()
        assert sim.now == 2.5

    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        ev = sim.timeout(10.0)
        ev.callbacks.append(lambda e: fired.append(sim.now))
        sim.run(until=3.0)
        assert sim.now == 3.0
        assert fired == []
        sim.run()
        assert fired == [10.0]

    def test_events_processed_counter(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        assert sim.events_processed == 2


class TestEventOrdering:
    def test_fifo_for_same_timestamp(self, sim):
        order = []
        for i in range(5):
            ev = sim.timeout(1.0)
            ev.callbacks.append(lambda e, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_time_ordering(self, sim):
        order = []
        for delay in (3.0, 1.0, 2.0):
            ev = sim.timeout(delay)
            ev.callbacks.append(lambda e, d=delay: order.append(d))
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_call_at_runs_at_absolute_time(self, sim):
        stamps = []
        sim.call_at(4.0, lambda: stamps.append(sim.now))
        sim.run()
        assert stamps == [4.0]

    def test_call_at_in_past_raises(self, sim):
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)


class TestEventSemantics:
    def test_trigger_twice_raises(self, sim):
        ev = sim.event()
        ev.trigger(1)
        with pytest.raises(SimulationError):
            ev.trigger(2)

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_value_carried(self, sim):
        ev = sim.timeout(1.0, value="payload")
        sim.run()
        assert ev.value == "payload"

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_nan_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(float("nan"))

    def test_triggered_and_processed_flags(self, sim):
        ev = sim.event()
        assert not ev.triggered and not ev.processed
        ev.trigger(None)
        assert ev.triggered and not ev.processed
        sim.run()
        assert ev.processed

    def test_callback_added_after_processing_never_fires(self, sim):
        # Documented contract: late callbacks are not called; waiters must
        # check `processed` first (Process does).
        ev = sim.timeout(0.0)
        sim.run()
        called = []
        ev.callbacks.append(lambda e: called.append(True))
        sim.run()
        assert called == []


class TestRunGuards:
    def test_step_on_empty_agenda_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_max_events_guard(self, sim):
        def reschedule(_ev):
            nxt = sim.timeout(1.0)
            nxt.callbacks.append(reschedule)

        first = sim.timeout(1.0)
        first.callbacks.append(reschedule)
        with pytest.raises(SimulationError, match="livelocked"):
            sim.run(max_events=100)

    def test_peek_empty_is_inf(self, sim):
        assert sim.peek() == float("inf")

    def test_peek_returns_next_time(self, sim):
        sim.timeout(7.0)
        sim.timeout(3.0)
        assert sim.peek() == 3.0
