"""collectl-style utilization monitor."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simhw.cpu import CpuBank, CpuClass
from repro.simhw.monitor import UtilizationMonitor, UtilizationSample


class TestSampling:
    def test_samples_at_interval(self, sim):
        cpu = CpuBank(sim, 4)
        mon = UtilizationMonitor(sim, cpu, interval=1.0)
        mon.start()
        sim.process(cpu.occupy(3.0))

        def stopper():
            yield sim.timeout(3.5)
            mon.stop()

        sim.process(stopper())
        sim.run()
        times = [s.time for s in mon.samples]
        assert times == [0.0, 1.0, 2.0, 3.0]

    def test_busy_fraction_sampled(self, sim):
        cpu = CpuBank(sim, 4)
        mon = UtilizationMonitor(sim, cpu, interval=1.0)
        mon.start()
        sim.process(cpu.occupy(2.5, CpuClass.USER))

        def stopper():
            yield sim.timeout(2.0)
            mon.stop()

        sim.process(stopper())
        sim.run()
        # at t=1 and t=2 one of four contexts is busy
        assert mon.samples[1].user_pct == pytest.approx(25.0)
        assert mon.samples[1].sys_pct == 0.0

    def test_iowait_sampled(self, sim):
        cpu = CpuBank(sim, 4)
        cpu.io_blocked = 4
        mon = UtilizationMonitor(sim, cpu, interval=1.0)
        mon.start()
        mon.stop()
        sim.run()
        assert mon.samples[0].iowait_pct == pytest.approx(100.0)

    def test_double_start_raises(self, sim):
        mon = UtilizationMonitor(sim, CpuBank(sim, 2))
        mon.start()
        with pytest.raises(SimulationError):
            mon.start()

    def test_invalid_interval(self, sim):
        with pytest.raises(SimulationError):
            UtilizationMonitor(sim, CpuBank(sim, 2), interval=0.0)

    def test_stop_is_idempotent(self, sim):
        mon = UtilizationMonitor(sim, CpuBank(sim, 2))
        mon.start()
        mon.stop()
        mon.stop()
        sim.run()  # agenda drains


class TestSampleAggregation:
    def _mk(self, time, user, sys_, iow):
        return UtilizationSample(time, user, sys_, iow)

    def test_total_and_busy_pct(self):
        s = self._mk(0.0, 40.0, 10.0, 20.0)
        assert s.total_pct == pytest.approx(70.0)
        assert s.busy_pct == pytest.approx(50.0)

    def test_mean_total_windowed(self, sim):
        mon = UtilizationMonitor(sim, CpuBank(sim, 2))
        mon.samples.extend([
            self._mk(0.0, 100.0, 0.0, 0.0),
            self._mk(1.0, 50.0, 0.0, 0.0),
            self._mk(2.0, 0.0, 0.0, 0.0),
        ])
        assert mon.mean_total_pct(0.0, 1.0) == pytest.approx(75.0)
        assert mon.mean_total_pct() == pytest.approx(50.0)

    def test_mean_of_empty_window_is_zero(self, sim):
        mon = UtilizationMonitor(sim, CpuBank(sim, 2))
        assert mon.mean_busy_pct(10.0, 20.0) == 0.0
