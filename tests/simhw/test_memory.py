"""Memory capacity accounting and bus scans."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simhw.memory import MemoryBus


class TestCapacity:
    def test_allocate_and_free(self, sim):
        mem = MemoryBus(sim, capacity_bytes=100.0, bus_bw=10.0)
        mem.allocate(60.0)
        assert mem.allocated == 60.0
        assert mem.available == 40.0
        mem.free(60.0)
        assert mem.allocated == 0.0

    def test_overcommit_raises(self, sim):
        mem = MemoryBus(sim, 100.0, 10.0)
        mem.allocate(80.0)
        with pytest.raises(SimulationError, match="out of memory"):
            mem.allocate(30.0)

    def test_peak_tracking(self, sim):
        mem = MemoryBus(sim, 100.0, 10.0)
        mem.allocate(70.0)
        mem.free(50.0)
        mem.allocate(10.0)
        assert mem.peak_allocated == 70.0

    def test_free_more_than_allocated_raises(self, sim):
        mem = MemoryBus(sim, 100.0, 10.0)
        mem.allocate(10.0)
        with pytest.raises(SimulationError):
            mem.free(20.0)

    def test_negative_allocation_raises(self, sim):
        mem = MemoryBus(sim, 100.0, 10.0)
        with pytest.raises(SimulationError):
            mem.allocate(-1.0)

    def test_zero_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            MemoryBus(sim, 0.0, 10.0)


class TestBus:
    def _finish(self, sim, ev):
        box = {}
        ev.callbacks.append(lambda e: box.setdefault("t", sim.now))
        sim.run()
        return box["t"]

    def test_scan_capped_per_thread(self, sim):
        mem = MemoryBus(sim, 1000.0, bus_bw=100.0)
        t = self._finish(sim, mem.scan(50.0, per_thread_bw=10.0))
        assert t == pytest.approx(5.0)

    def test_bus_ceiling_shared_by_scans(self, sim):
        mem = MemoryBus(sim, 1000.0, bus_bw=100.0)
        # four scans each capped at 50 -> demand 200 > bus 100 -> 25 each
        evs = [mem.scan(25.0, per_thread_bw=50.0) for _ in range(4)]
        t = self._finish(sim, evs[0])
        assert t == pytest.approx(1.0)
        assert mem.active_scans == 0

    def test_invalid_per_thread_bw(self, sim):
        mem = MemoryBus(sim, 1000.0, 100.0)
        with pytest.raises(SimulationError):
            mem.scan(10.0, per_thread_bw=0.0)
