"""Coroutine processes: suspension, joins, failure propagation."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simhw.process import AllOf, AnyOf, join_all


class TestBasicProcesses:
    def test_process_advances_through_timeouts(self, sim):
        trace = []

        def body():
            trace.append(sim.now)
            yield sim.timeout(1.0)
            trace.append(sim.now)
            yield sim.timeout(2.0)
            trace.append(sim.now)

        sim.process(body())
        sim.run()
        assert trace == [0.0, 1.0, 3.0]

    def test_return_value_becomes_event_value(self, sim):
        def body():
            yield sim.timeout(1.0)
            return 42

        proc = sim.process(body())
        sim.run()
        assert proc.value == 42

    def test_yield_value_passes_through(self, sim):
        got = []

        def body():
            value = yield sim.timeout(1.0, value="hello")
            got.append(value)

        sim.process(body())
        sim.run()
        assert got == ["hello"]

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_yielding_non_event_raises_into_process(self, sim):
        def body():
            yield "not an event"

        sim.process(body())
        with pytest.raises(SimulationError, match="yielded"):
            sim.run()

    def test_process_alive_flag(self, sim):
        def body():
            yield sim.timeout(1.0)

        proc = sim.process(body())
        assert proc.alive
        sim.run()
        assert not proc.alive


class TestProcessComposition:
    def test_waiting_on_another_process(self, sim):
        def child():
            yield sim.timeout(2.0)
            return "done"

        results = []

        def parent():
            value = yield sim.process(child())
            results.append((sim.now, value))

        sim.process(parent())
        sim.run()
        assert results == [(2.0, "done")]

    def test_waiting_on_already_finished_process(self, sim):
        def child():
            yield sim.timeout(1.0)
            return 7

        kid = sim.process(child())

        def parent():
            yield sim.timeout(5.0)
            value = yield kid  # finished long ago
            return value

        parent_proc = sim.process(parent())
        sim.run()
        assert parent_proc.value == 7
        assert sim.now == 5.0

    def test_fork_join_with_all_of(self, sim):
        def worker(n):
            yield sim.timeout(n)
            return n * 10

        def parent():
            kids = [sim.process(worker(n)) for n in (3, 1, 2)]
            values = yield AllOf(sim, kids)
            return values

        proc = sim.process(parent())
        sim.run()
        assert proc.value == [30, 10, 20]  # original order, not finish order
        assert sim.now == 3.0

    def test_join_all_helper(self, sim):
        def worker(n):
            yield sim.timeout(n)
            return n

        def parent():
            done = yield join_all(sim, [sim.process(worker(i)) for i in (1, 2)])
            return done

        proc = sim.process(parent())
        sim.run()
        assert proc.value == [1, 2]

    def test_all_of_empty_fires_immediately(self, sim):
        def parent():
            values = yield AllOf(sim, [])
            return (sim.now, values)

        proc = sim.process(parent())
        sim.run()
        assert proc.value == (0.0, [])

    def test_any_of_returns_first(self, sim):
        def worker(n):
            yield sim.timeout(n)
            return n

        def parent():
            idx, value = yield AnyOf(
                sim, [sim.process(worker(5)), sim.process(worker(1))]
            )
            return (sim.now, idx, value)

        proc = sim.process(parent())
        sim.run()
        assert proc.value == (1.0, 1, 1)

    def test_any_of_empty_raises(self, sim):
        with pytest.raises(SimulationError):
            AnyOf(sim, [])


class TestFailurePropagation:
    def test_unwaited_failure_surfaces(self, sim):
        def body():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        sim.process(body())
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_failure_rethrown_in_waiter(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("child died")

        caught = []

        def parent():
            try:
                yield sim.process(child())
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(parent())
        sim.run()
        assert caught == ["child died"]

    def test_failure_through_all_of(self, sim):
        def ok():
            yield sim.timeout(5.0)

        def bad():
            yield sim.timeout(1.0)
            raise KeyError("bad")

        caught = []

        def parent():
            try:
                yield AllOf(sim, [sim.process(ok()), sim.process(bad())])
            except KeyError:
                caught.append(sim.now)

        sim.process(parent())
        sim.run()
        assert caught == [1.0]  # failure propagates before the slow child ends

    def test_immediate_exception_surfaces(self, sim):
        def body():
            raise ZeroDivisionError
            yield  # pragma: no cover

        sim.process(body())
        with pytest.raises(ZeroDivisionError):
            sim.run()
