"""Network link model."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simhw.network import GBIT, Link


def finish_time(sim, event):
    box = {}
    event.callbacks.append(lambda e: box.setdefault("t", sim.now))
    sim.run()
    return box["t"]


class TestLink:
    def test_gigabit_goodput(self, sim):
        link = Link(sim, 1.0 * GBIT)  # 125e6 B/s line, 95% goodput
        assert link.effective_rate == pytest.approx(118.75e6)

    def test_receive_time(self, sim):
        link = Link(sim, 1.0 * GBIT)
        t = finish_time(sim, link.receive(118.75e6 * 2))
        assert t == pytest.approx(2.0)

    def test_rx_flows_share_link(self, sim):
        link = Link(sim, 1.0 * GBIT, goodput=1.0)
        a = link.receive(125e6)
        link.receive(125e6)
        assert finish_time(sim, a) == pytest.approx(2.0)

    def test_tx_and_rx_independent(self, sim):
        link = Link(sim, 1.0 * GBIT, goodput=1.0)
        rx = link.receive(125e6)
        link.send(125e6)
        assert finish_time(sim, rx) == pytest.approx(1.0)  # full duplex

    def test_invalid_line_rate(self, sim):
        with pytest.raises(SimulationError):
            Link(sim, 0.0)

    def test_invalid_goodput(self, sim):
        with pytest.raises(SimulationError):
            Link(sim, GBIT, goodput=1.5)

    def test_utilization_metrics(self, sim):
        link = Link(sim, GBIT)
        link.receive(1e9)
        assert link.active_receives == 1
        assert link.rx_utilization == pytest.approx(1.0)
