"""CPU bank: context occupancy, oversubscription, accounting classes."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simhw.cpu import CpuBank, CpuClass


class TestOccupy:
    def test_single_thread_takes_its_time(self, sim):
        cpu = CpuBank(sim, 4)
        proc = sim.process(cpu.occupy(3.0))
        sim.run()
        assert proc.processed
        assert sim.now == 3.0

    def test_parallel_threads_within_capacity(self, sim):
        cpu = CpuBank(sim, 4)
        for _ in range(4):
            sim.process(cpu.occupy(2.0))
        sim.run()
        assert sim.now == 2.0  # all in parallel

    def test_oversubscription_queues(self, sim):
        cpu = CpuBank(sim, 2)
        for _ in range(4):
            sim.process(cpu.occupy(1.0))
        sim.run()
        assert sim.now == 2.0  # two waves of two

    def test_negative_time_raises(self, sim):
        cpu = CpuBank(sim, 1)
        sim.process(cpu.occupy(-1.0))
        with pytest.raises(SimulationError):
            sim.run()

    def test_zero_contexts_rejected(self, sim):
        with pytest.raises(SimulationError):
            CpuBank(sim, 0)


class TestAccounting:
    def test_busy_counts_by_class(self, sim):
        cpu = CpuBank(sim, 4)
        sim.process(cpu.occupy(2.0, CpuClass.USER))
        sim.process(cpu.occupy(2.0, CpuClass.SYS))

        def probe():
            yield sim.timeout(1.0)
            return (cpu.busy(CpuClass.USER), cpu.busy(CpuClass.SYS),
                    cpu.busy_total, cpu.idle)

        proc = sim.process(probe())
        sim.run()
        assert proc.value == (1, 1, 2, 2)

    def test_fraction(self, sim):
        cpu = CpuBank(sim, 8)
        sim.process(cpu.occupy(1.0))

        def probe():
            yield sim.timeout(0.5)
            return cpu.fraction(CpuClass.USER)

        proc = sim.process(probe())
        sim.run()
        assert proc.value == pytest.approx(1 / 8)

    def test_consumed_accumulates(self, sim):
        cpu = CpuBank(sim, 2)
        sim.process(cpu.occupy(1.5, CpuClass.USER))
        sim.process(cpu.occupy(0.5, CpuClass.SYS))
        sim.run()
        assert cpu.consumed[CpuClass.USER] == pytest.approx(1.5)
        assert cpu.consumed[CpuClass.SYS] == pytest.approx(0.5)

    def test_iowait_fraction_counts_blocked_threads(self, sim):
        cpu = CpuBank(sim, 4)
        cpu.io_blocked = 2
        assert cpu.iowait_fraction() == pytest.approx(0.5)

    def test_iowait_limited_by_idle_contexts(self, sim):
        cpu = CpuBank(sim, 2)
        cpu.io_blocked = 5
        sim.process(cpu.occupy(1.0))

        def probe():
            yield sim.timeout(0.5)
            return cpu.iowait_fraction()

        proc = sim.process(probe())
        sim.run()
        assert proc.value == pytest.approx(0.5)  # only 1 idle context


class TestContextHold:
    def test_hold_tracks_busy_and_consumed(self, sim):
        cpu = CpuBank(sim, 2)

        def body():
            hold = cpu.occupied(CpuClass.USER)
            yield from hold.acquire()
            assert cpu.busy(CpuClass.USER) == 1
            yield sim.timeout(2.0)
            hold.release()
            assert cpu.busy(CpuClass.USER) == 0

        sim.process(body())
        sim.run()
        assert cpu.consumed[CpuClass.USER] == pytest.approx(2.0)

    def test_double_acquire_raises(self, sim):
        cpu = CpuBank(sim, 2)

        def body():
            hold = cpu.occupied()
            yield from hold.acquire()
            yield from hold.acquire()

        sim.process(body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_release_without_acquire_raises(self, sim):
        cpu = CpuBank(sim, 2)
        with pytest.raises(SimulationError):
            cpu.occupied().release()
