"""Power/energy/throttle/availability accounting."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simhw.monitor import UtilizationSample
from repro.simhw.power import (
    PowerModel,
    availability_loss,
    energy_from_samples,
    throttle_exposure,
)


def mk(t, busy=0.0, disks=0):
    return UtilizationSample(t, user_pct=busy, sys_pct=0.0, iowait_pct=0.0,
                             disk_active=disks)


class TestPowerModel:
    def test_idle_floor(self):
        model = PowerModel(idle_w=100, active_w_per_ctx=5, contexts=10)
        assert model.instantaneous_w(mk(0, busy=0)) == pytest.approx(100)

    def test_full_load(self):
        model = PowerModel(idle_w=100, active_w_per_ctx=5, contexts=10)
        assert model.instantaneous_w(mk(0, busy=100)) == pytest.approx(150)

    def test_disk_term_capped_at_three_spindles(self):
        model = PowerModel(idle_w=0, active_w_per_ctx=0, disk_active_w=8)
        assert model.instantaneous_w(mk(0, disks=5)) == pytest.approx(24)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PowerModel(idle_w=-1)
        with pytest.raises(ConfigError):
            PowerModel(contexts=0)


class TestEnergyIntegration:
    def test_constant_load(self):
        model = PowerModel(idle_w=100, active_w_per_ctx=0, disk_active_w=0)
        samples = [mk(t) for t in range(11)]
        report = energy_from_samples(samples, model)
        assert report.energy_j == pytest.approx(1000.0)
        assert report.mean_power_w == pytest.approx(100.0)
        assert report.duration_s == 10.0
        assert report.energy_wh == pytest.approx(1000 / 3600)

    def test_trapezoid_on_ramp(self):
        model = PowerModel(idle_w=0, active_w_per_ctx=1, contexts=100,
                           disk_active_w=0)
        samples = [mk(0, busy=0), mk(1, busy=100)]  # 0 W -> 100 W
        report = energy_from_samples(samples, model)
        assert report.energy_j == pytest.approx(50.0)
        assert report.peak_power_w == pytest.approx(100.0)

    def test_needs_two_samples(self):
        with pytest.raises(ConfigError):
            energy_from_samples([mk(0)])

    def test_unordered_samples_rejected(self):
        with pytest.raises(ConfigError):
            energy_from_samples([mk(5), mk(1)])


class TestThrottleExposure:
    def test_sustained_episode_counted(self):
        samples = [mk(t, busy=95) for t in range(10)]
        assert throttle_exposure(samples, threshold_pct=90,
                                 min_duration_s=5) == pytest.approx(9.0)

    def test_short_spike_ignored(self):
        samples = ([mk(0, 10), mk(1, 95), mk(2, 95), mk(3, 10)]
                   + [mk(t, 10) for t in range(4, 10)])
        assert throttle_exposure(samples, min_duration_s=5.0) == 0.0

    def test_multiple_episodes_summed(self):
        samples = ([mk(t, 95) for t in range(7)]
                   + [mk(t, 10) for t in range(7, 10)]
                   + [mk(t, 95) for t in range(10, 17)])
        total = throttle_exposure(samples, min_duration_s=5.0)
        assert total == pytest.approx(12.0)

    def test_trailing_open_episode_counted(self):
        samples = [mk(t, 95) for t in range(8)]
        assert throttle_exposure(samples, min_duration_s=5.0) == pytest.approx(7.0)

    def test_empty_trace(self):
        assert throttle_exposure([]) == 0.0


class TestAvailability:
    def test_mean_busy_fraction(self):
        samples = [mk(0, 100), mk(1, 0), mk(2, 50)]
        assert availability_loss(samples) == pytest.approx(0.5)

    def test_empty(self):
        assert availability_loss([]) == 0.0
