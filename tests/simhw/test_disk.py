"""Disk and RAID-0 models."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simhw.disk import MB, Disk, Raid0
from repro.simhw.events import Simulator


def finish_time(sim, event):
    box = {}
    event.callbacks.append(lambda e: box.setdefault("t", sim.now))
    sim.run()
    return box["t"]


class TestDisk:
    def test_sequential_read_time(self, sim):
        disk = Disk(sim, read_bw=100 * MB)
        assert finish_time(sim, disk.read(200 * MB)) == pytest.approx(2.0)

    def test_write_uses_write_bandwidth(self, sim):
        disk = Disk(sim, read_bw=100 * MB, write_bw=50 * MB)
        assert finish_time(sim, disk.write(100 * MB)) == pytest.approx(2.0)

    def test_write_defaults_to_read_bw(self, sim):
        disk = Disk(sim, read_bw=100 * MB)
        assert disk.write_bw == disk.read_bw

    def test_concurrent_reads_share(self, sim):
        disk = Disk(sim, read_bw=100 * MB)
        a = disk.read(100 * MB)
        disk.read(100 * MB)
        assert finish_time(sim, a) == pytest.approx(2.0)

    def test_invalid_bandwidth(self, sim):
        with pytest.raises(SimulationError):
            Disk(sim, read_bw=0)

    def test_utilization_and_active_reads(self, sim):
        disk = Disk(sim, read_bw=100 * MB)
        disk.read(500 * MB)
        assert disk.active_reads == 1
        assert disk.read_utilization == pytest.approx(1.0)


class TestRaid0:
    def test_aggregate_bandwidth_is_sum(self, sim):
        disks = [Disk(sim, 128 * MB) for _ in range(3)]
        raid = Raid0(disks)
        assert raid.read_bw == pytest.approx(384 * MB)

    def test_single_stream_saturates_array(self, sim):
        raid = Raid0([Disk(sim, 128 * MB) for _ in range(3)])
        assert finish_time(sim, raid.read(384 * MB)) == pytest.approx(1.0)

    def test_streams_share_array(self, sim):
        raid = Raid0([Disk(sim, 100 * MB) for _ in range(2)])
        a = raid.read(100 * MB)
        raid.read(100 * MB)
        assert finish_time(sim, a) == pytest.approx(1.0)

    def test_empty_array_rejected(self, sim):
        with pytest.raises(SimulationError):
            Raid0([])

    def test_cross_simulator_disks_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            Raid0([Disk(sim, MB), Disk(other, MB)])
