"""Fluid (time-sliced) CPU bank."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simhw.cpu import CpuClass
from repro.simhw.fluidcpu import FluidCpuBank
from repro.simhw.monitor import UtilizationMonitor


class TestTimeSlicing:
    def test_single_thread_full_speed(self, sim):
        cpu = FluidCpuBank(sim, 4)
        sim.process(cpu.occupy(2.0))
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_within_capacity_no_slowdown(self, sim):
        cpu = FluidCpuBank(sim, 4)
        for _ in range(4):
            sim.process(cpu.occupy(2.0))
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_oversubscription_time_slices(self, sim):
        """8 threads on 4 contexts: everyone at half speed, not two waves.

        The FIFO CpuBank would finish in 2 waves (first at t=1); the
        fluid bank finishes everyone together at t=2.
        """
        cpu = FluidCpuBank(sim, 4)
        finishes = []

        def worker():
            yield from cpu.occupy(1.0)
            finishes.append(sim.now)

        for _ in range(8):
            sim.process(worker())
        sim.run()
        assert all(t == pytest.approx(2.0) for t in finishes)

    def test_late_arrival_slows_everyone(self, sim):
        cpu = FluidCpuBank(sim, 1)
        finishes = {}

        def first():
            yield from cpu.occupy(2.0)
            finishes["first"] = sim.now

        def second():
            yield sim.timeout(1.0)
            yield from cpu.occupy(0.5)
            finishes["second"] = sim.now

        sim.process(first())
        sim.process(second())
        sim.run()
        # first runs alone 0..1 (1s done), shares 1..2 (0.5 done while
        # second finishes its 0.5s), then runs alone again: done at 2.5.
        assert finishes["second"] == pytest.approx(2.0)
        assert finishes["first"] == pytest.approx(2.5)

    def test_negative_time_raises(self, sim):
        cpu = FluidCpuBank(sim, 1)
        sim.process(cpu.occupy(-1.0))
        with pytest.raises(SimulationError):
            sim.run()

    def test_zero_contexts_rejected(self, sim):
        with pytest.raises(SimulationError):
            FluidCpuBank(sim, 0)


class TestAccounting:
    def test_busy_fraction_mid_run(self, sim):
        cpu = FluidCpuBank(sim, 4)
        sim.process(cpu.occupy(1.0, CpuClass.USER))
        probe = {}

        def check():
            yield sim.timeout(0.5)
            probe["frac"] = cpu.fraction(CpuClass.USER)
            probe["runnable"] = cpu.runnable_threads

        sim.process(check())
        sim.run()
        assert probe["frac"] == pytest.approx(0.25)
        assert probe["runnable"] == 1

    def test_oversubscribed_busy_saturates(self, sim):
        cpu = FluidCpuBank(sim, 2)
        for _ in range(6):
            sim.process(cpu.occupy(1.0))
        probe = {}

        def check():
            yield sim.timeout(0.5)
            probe["busy"] = cpu.busy_total

        sim.process(check())
        sim.run()
        assert probe["busy"] == pytest.approx(2.0)

    def test_iowait_fraction(self, sim):
        cpu = FluidCpuBank(sim, 4)
        cpu.io_blocked = 2
        assert cpu.iowait_fraction() == pytest.approx(0.5)

    def test_monitor_compatibility(self, sim):
        cpu = FluidCpuBank(sim, 4)
        mon = UtilizationMonitor(sim, cpu, interval=0.25)
        mon.start()
        sim.process(cpu.occupy(1.0))

        def stopper():
            yield sim.timeout(1.0)
            mon.stop()

        sim.process(stopper())
        sim.run()
        mids = [s for s in mon.samples if 0 < s.time < 1.0]
        assert mids and all(s.user_pct == pytest.approx(25.0) for s in mids)

    def test_consumed_accumulates(self, sim):
        cpu = FluidCpuBank(sim, 2)
        sim.process(cpu.occupy(1.5))
        sim.run()
        assert cpu.consumed[CpuClass.USER] == pytest.approx(1.5)
