"""Fluid-flow bandwidth resource, semaphore, store, gate."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simhw.resources import BandwidthResource, Gate, Semaphore, Store


def finish_time(sim, event):
    box = {}
    event.callbacks.append(lambda e: box.setdefault("t", sim.now))
    sim.run()
    return box["t"]


class TestSingleFlow:
    def test_full_rate_for_lone_flow(self, sim):
        chan = BandwidthResource(sim, total_rate=100.0)
        assert finish_time(sim, chan.transfer(500.0)) == pytest.approx(5.0)

    def test_per_flow_cap_limits_lone_flow(self, sim):
        chan = BandwidthResource(sim, 100.0, per_flow_cap=10.0)
        assert finish_time(sim, chan.transfer(50.0)) == pytest.approx(5.0)

    def test_zero_byte_transfer_completes_instantly(self, sim):
        chan = BandwidthResource(sim, 100.0)
        ev = chan.transfer(0.0)
        assert ev.triggered

    def test_negative_transfer_raises(self, sim):
        chan = BandwidthResource(sim, 100.0)
        with pytest.raises(SimulationError):
            chan.transfer(-1.0)

    def test_delivered_accounting(self, sim):
        chan = BandwidthResource(sim, 100.0)
        chan.transfer(300.0)
        chan.transfer(200.0)
        sim.run()
        assert chan.delivered == pytest.approx(500.0)

    def test_invalid_construction(self, sim):
        with pytest.raises(SimulationError):
            BandwidthResource(sim, 0.0)
        with pytest.raises(SimulationError):
            BandwidthResource(sim, 10.0, per_flow_cap=0.0)


class TestFairSharing:
    def test_two_equal_flows_share_evenly(self, sim):
        chan = BandwidthResource(sim, 100.0)
        a = chan.transfer(100.0)
        b = chan.transfer(100.0)
        ta = finish_time(sim, a)
        # both at 50/s until both finish together at t=2
        assert ta == pytest.approx(2.0)
        assert b.processed

    def test_late_joiner_slows_first_flow(self, sim):
        chan = BandwidthResource(sim, 100.0)
        first = chan.transfer(150.0)  # alone: 1.5s

        def join_later():
            yield sim.timeout(1.0)
            # first has 50 left; now they share 50/s each
            yield chan.transfer(100.0)

        sim.process(join_later())
        t_first = finish_time(sim, first)
        assert t_first == pytest.approx(2.0)  # 1.0 + 50/50

    def test_finisher_frees_bandwidth_for_remainder(self, sim):
        chan = BandwidthResource(sim, 100.0)
        small = chan.transfer(50.0)
        big = chan.transfer(150.0)
        t_small = None

        def watch():
            nonlocal t_small
            yield small
            t_small = sim.now
            yield big
            return sim.now

        proc = sim.process(watch())
        sim.run()
        # equal shares: small done at t=1; big then has 100 left at 100/s
        assert t_small == pytest.approx(1.0)
        assert proc.value == pytest.approx(2.0)

    def test_weighted_shares(self, sim):
        chan = BandwidthResource(sim, 90.0)
        heavy = chan.transfer(120.0, weight=2.0)  # gets 60/s
        light = chan.transfer(60.0, weight=1.0)  # gets 30/s
        t_heavy = finish_time(sim, heavy)
        assert t_heavy == pytest.approx(2.0)
        assert light.processed  # both finish at 2.0

    def test_water_filling_respects_caps(self, sim):
        # Capped flow can't absorb its fair share; the rest goes to others.
        chan = BandwidthResource(sim, 100.0)
        capped = chan.transfer(20.0, cap=10.0)  # 10/s -> 2s
        free = chan.transfer(180.0)  # gets 90/s -> 2s
        t_capped = finish_time(sim, capped)
        assert t_capped == pytest.approx(2.0)
        assert free.processed

    def test_active_flows_and_utilization(self, sim):
        chan = BandwidthResource(sim, 100.0)
        chan.transfer(1000.0, cap=25.0)
        assert chan.active_flows == 1
        assert chan.utilization == pytest.approx(0.25)

    def test_many_flows_throughput_conserved(self, sim):
        chan = BandwidthResource(sim, 100.0)
        events = [chan.transfer(10.0) for _ in range(20)]
        # 200 units through a 100/s channel: exactly 2 seconds.
        t = finish_time(sim, events[-1])
        assert t == pytest.approx(2.0)
        assert all(e.processed for e in events)

    def test_zeno_regression_many_sequential_transfers(self, sim):
        # Float-residual Zeno livelock regression: long chains of unequal
        # transfers must terminate in bounded events.
        chan = BandwidthResource(sim, 383.8e6)

        def seq():
            for i in range(50):
                yield chan.transfer(1e9 / 3 + i * 0.1)

        sim.process(seq())
        sim.run(max_events=50_000)
        assert chan.active_flows == 0


class TestSemaphore:
    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            Semaphore(sim, 0)

    def test_acquire_under_capacity_is_immediate(self, sim):
        sem = Semaphore(sim, 2)
        assert sem.acquire().triggered
        assert sem.acquire().triggered
        assert sem.in_use == 2

    def test_acquire_over_capacity_waits_fifo(self, sim):
        sem = Semaphore(sim, 1)
        sem.acquire()
        order = []

        def waiter(name):
            yield sem.acquire()
            order.append(name)

        sim.process(waiter("a"))
        sim.process(waiter("b"))
        sim.run()
        assert order == []  # still held
        sem.release()
        sim.run()
        assert order == ["a"]
        sem.release()
        sim.run()
        assert order == ["a", "b"]

    def test_release_without_acquire_raises(self, sim):
        sem = Semaphore(sim, 1)
        with pytest.raises(SimulationError):
            sem.release()


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        got = store.get()
        sim.run()
        assert got.value == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        results = []

        def consumer():
            item = yield store.get()
            results.append((sim.now, item))

        def producer():
            yield sim.timeout(3.0)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert results == [(3.0, "late")]

    def test_fifo_order(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        assert len(store) == 3
        values = []

        def consumer():
            for _ in range(3):
                values.append((yield store.get()))

        sim.process(consumer())
        sim.run()
        assert values == [0, 1, 2]


class TestGate:
    def test_wait_blocks_until_open(self, sim):
        gate = Gate(sim)
        passed = []

        def waiter():
            yield gate.wait()
            passed.append(sim.now)

        sim.process(waiter())

        def opener():
            yield sim.timeout(2.0)
            gate.open()

        sim.process(opener())
        sim.run()
        assert passed == [2.0]
        assert gate.is_open

    def test_wait_on_open_gate_is_immediate(self, sim):
        gate = Gate(sim)
        gate.open()
        assert gate.wait().triggered

    def test_reset_closes_again(self, sim):
        gate = Gate(sim)
        gate.open()
        gate.reset()
        assert not gate.wait().triggered
