"""Property-based tests of the fluid-flow bandwidth model.

Invariants that must hold for any workload thrown at the channel:

* conservation — every byte submitted is eventually delivered;
* capacity — the channel never finishes earlier than perfect sharing
  allows (total bytes / total rate), nor later than fully serial;
* per-flow cap — a capped flow never finishes faster than its cap allows;
* monotonicity — adding traffic never makes the original traffic finish
  earlier.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simhw.events import Simulator
from repro.simhw.resources import BandwidthResource

amounts = st.lists(
    st.floats(min_value=1.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=12,
)


def run_transfers(rate, sizes, caps=None, stagger=None):
    """Run transfers, return (per-flow finish times, simulator)."""
    sim = Simulator()
    chan = BandwidthResource(sim, rate)
    finishes: dict[int, float] = {}

    def launch(idx, size, delay, cap):
        if delay:
            yield sim.timeout(delay)
        yield chan.transfer(size, cap=cap)
        finishes[idx] = sim.now

    for idx, size in enumerate(sizes):
        cap = caps[idx] if caps else None
        delay = stagger[idx] if stagger else 0.0
        sim.process(launch(idx, size, delay, cap))
    sim.run()
    return finishes, chan


class TestConservation:
    @given(amounts)
    @settings(max_examples=60, deadline=None)
    def test_all_bytes_delivered(self, sizes):
        finishes, chan = run_transfers(1000.0, sizes)
        assert len(finishes) == len(sizes)
        assert chan.delivered == pytest.approx(sum(sizes), rel=1e-6)
        assert chan.active_flows == 0

    @given(amounts)
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounded_by_capacity(self, sizes):
        rate = 1000.0
        finishes, _ = run_transfers(rate, sizes)
        makespan = max(finishes.values())
        lower = sum(sizes) / rate  # perfect pipelining of the channel
        assert makespan >= lower * (1 - 1e-9)
        # concurrent flows: channel is always fully utilized until the
        # last byte, so the makespan is exactly the lower bound
        assert makespan == pytest.approx(lower, rel=1e-6)

    @given(amounts, st.data())
    @settings(max_examples=40, deadline=None)
    def test_staggered_arrivals_still_conserve(self, sizes, data):
        stagger = [
            data.draw(st.floats(min_value=0.0, max_value=5.0))
            for _ in sizes
        ]
        finishes, chan = run_transfers(1000.0, sizes, stagger=stagger)
        assert chan.delivered == pytest.approx(sum(sizes), rel=1e-6)
        for idx, size in enumerate(sizes):
            # no flow finishes before its own serial time after arrival
            assert finishes[idx] >= stagger[idx] + size / 1000.0 - 1e-6


class TestCaps:
    @given(amounts, st.floats(min_value=10.0, max_value=500.0))
    @settings(max_examples=40, deadline=None)
    def test_capped_flow_respects_cap(self, sizes, cap):
        caps = [cap] * len(sizes)
        finishes, _ = run_transfers(1e9, sizes, caps=caps)
        for idx, size in enumerate(sizes):
            assert finishes[idx] >= size / cap - 1e-6

    @given(st.floats(min_value=100.0, max_value=1e5))
    @settings(max_examples=30, deadline=None)
    def test_single_flow_exact_time(self, size):
        finishes, _ = run_transfers(250.0, [size])
        assert finishes[0] == pytest.approx(size / 250.0, rel=1e-9)


class TestMonotonicity:
    @given(st.floats(min_value=100.0, max_value=1e4), amounts)
    @settings(max_examples=40, deadline=None)
    def test_background_traffic_never_speeds_up_a_flow(self, size, noise):
        alone, _ = run_transfers(1000.0, [size])
        with_noise, _ = run_transfers(1000.0, [size] + noise)
        assert with_noise[0] >= alone[0] - 1e-9
