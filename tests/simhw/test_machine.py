"""Assembled machine model and the paper testbed configuration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simhw.cpu import CpuClass
from repro.simhw.disk import MB
from repro.simhw.events import Simulator
from repro.simhw.machine import MachineSpec, ScaleUpMachine, paper_machine


class TestMachineSpec:
    def test_paper_testbed_geometry(self):
        spec = MachineSpec()
        assert spec.contexts == 32  # 2 sockets x 8 cores x 2 HT
        assert spec.raid_read_bw == pytest.approx(384 * MB)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            MachineSpec(sockets=0)
        with pytest.raises(ConfigError):
            MachineSpec(data_disks=0)
        with pytest.raises(ConfigError):
            MachineSpec(ram_bytes=0)

    def test_spec_is_frozen(self):
        spec = MachineSpec()
        with pytest.raises(AttributeError):
            spec.sockets = 4  # type: ignore[misc]


class TestScaleUpMachine:
    def test_paper_machine_assembly(self, sim):
        m = paper_machine(sim)
        assert m.cpu.contexts == 32
        assert len(m.disk.disks) == 3
        assert m.memory.capacity_bytes == pytest.approx(384 * 1024**3)

    def test_compute_occupies_context(self, sim):
        m = paper_machine(sim)
        proc = sim.process(m.compute(2.0))
        sim.run()
        assert proc.processed
        assert sim.now == pytest.approx(2.0)
        assert m.cpu.consumed[CpuClass.USER] == pytest.approx(2.0)

    def test_read_disk_counts_iowait(self, sim):
        m = paper_machine(sim)
        observed = []

        def reader():
            yield from m.read_disk(384 * MB)

        def probe():
            yield sim.timeout(0.5)
            observed.append(m.cpu.io_blocked)

        sim.process(reader())
        sim.process(probe())
        sim.run()
        assert observed == [1]
        assert m.cpu.io_blocked == 0
        assert sim.now == pytest.approx(1.0)

    def test_scan_memory_holds_context(self, sim):
        m = paper_machine(sim)
        busy = []

        def scanner():
            yield from m.scan_memory(100 * MB, per_thread_bw=100 * MB)

        def probe():
            yield sim.timeout(0.5)
            busy.append(m.cpu.busy(CpuClass.USER))

        sim.process(scanner())
        sim.process(probe())
        sim.run()
        assert busy == [1]
        assert sim.now == pytest.approx(1.0)

    def test_spawn_and_join_charge_sys(self, sim):
        m = paper_machine(sim)

        def body():
            yield from m.spawn_wave(32)
            yield from m.join_wave(32)

        sim.process(body())
        sim.run()
        expected = 32 * (m.spec.thread_costs.spawn_s + m.spec.thread_costs.join_s)
        assert m.cpu.consumed[CpuClass.SYS] == pytest.approx(expected)

    def test_read_source_uses_custom_device(self, sim):
        m = paper_machine(sim)

        class FakeSource:
            def read(self, n):
                return sim.timeout(3.0)

        def reader():
            yield from m.read_source(FakeSource(), 123)

        sim.process(reader())
        sim.run()
        assert sim.now == pytest.approx(3.0)

    def test_monitor_attached_to_machine(self, sim):
        m = paper_machine(sim, monitor_interval=0.5)
        assert m.monitor.interval == 0.5
        assert m.monitor.cpu is m.cpu
