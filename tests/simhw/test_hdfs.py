"""Simulated HDFS cluster behind one link."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simhw.disk import MB
from repro.simhw.hdfs import HdfsCluster, HdfsSpec


def finish_time(sim, event):
    box = {}
    event.callbacks.append(lambda e: box.setdefault("t", sim.now))
    sim.run()
    return box["t"]


class TestHdfsSpec:
    def test_defaults_match_case_study(self):
        spec = HdfsSpec()
        assert spec.nodes == 32
        assert spec.link_gbits == 1.0

    def test_invalid_specs(self):
        with pytest.raises(ConfigError):
            HdfsSpec(nodes=0)
        with pytest.raises(ConfigError):
            HdfsSpec(block_size=0)


class TestHdfsReader:
    def test_link_is_the_bottleneck(self, sim):
        cluster = HdfsCluster(sim, HdfsSpec(per_read_overhead_s=0.0,
                                            per_block_overhead_s=0.0))
        reader = cluster.reader()
        nbytes = 1e9
        t = finish_time(sim, reader.read(nbytes))
        expected = nbytes / cluster.link.effective_rate
        assert t == pytest.approx(expected, rel=0.05)
        # sanity: the datanodes could collectively serve much faster
        assert cluster.aggregate_disk_bw > cluster.link.effective_rate * 10

    def test_per_read_overhead_charged_once(self, sim):
        spec = HdfsSpec(per_read_overhead_s=0.5, per_block_overhead_s=0.0)
        cluster = HdfsCluster(sim, spec)
        t = finish_time(sim, cluster.reader().read(0.0))
        assert t == pytest.approx(0.5)

    def test_blocks_round_robin_across_nodes(self, sim):
        spec = HdfsSpec(nodes=4, per_read_overhead_s=0.0)
        cluster = HdfsCluster(sim, spec)
        reader = cluster.reader()
        ev = reader.read(8 * spec.block_size)
        sim.run()
        assert ev.processed
        assert cluster._rr == 8  # 8 blocks placed over 4 nodes, twice around

    def test_partial_final_block(self, sim):
        spec = HdfsSpec(per_read_overhead_s=0.0, per_block_overhead_s=0.0)
        cluster = HdfsCluster(sim, spec)
        nbytes = spec.block_size * 1.5
        t = finish_time(sim, cluster.reader().read(nbytes))
        assert t == pytest.approx(nbytes / cluster.link.effective_rate, rel=0.05)

    def test_negative_read_raises(self, sim):
        cluster = HdfsCluster(sim)
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            cluster.reader().read(-1.0)

    def test_datanode_disks_modeled(self, sim):
        spec = HdfsSpec(nodes=2, node_disk_bw=10 * MB,
                        per_read_overhead_s=0.0, per_block_overhead_s=0.0,
                        link_gbits=10.0)
        cluster = HdfsCluster(sim, spec)
        # With a fat link, the slow datanode disks govern: one block from
        # one node at 10 MB/s.
        t = finish_time(sim, cluster.reader().read(spec.block_size))
        assert t == pytest.approx(spec.block_size / (10 * MB), rel=0.01)
