"""Thread operation cost model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simhw.cpu import CpuBank, CpuClass
from repro.simhw.threadlib import ThreadCosts, charge_join, charge_spawn, charge_sync


class TestThreadCosts:
    def test_defaults_are_positive(self):
        costs = ThreadCosts()
        assert costs.spawn_s > 0 and costs.join_s > 0 and costs.sync_s > 0

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigError):
            ThreadCosts(spawn_s=-1e-6)

    def test_wave_overhead(self):
        costs = ThreadCosts(spawn_s=10e-6, join_s=5e-6)
        assert costs.wave_overhead(32) == pytest.approx(32 * 15e-6)

    def test_wave_overhead_negative_rejected(self):
        with pytest.raises(ConfigError):
            ThreadCosts().wave_overhead(-1)


class TestCharges:
    def test_spawn_charges_sys_time(self, sim):
        cpu = CpuBank(sim, 4)
        costs = ThreadCosts(spawn_s=1e-3)
        sim.process(charge_spawn(cpu, costs, 10))
        sim.run()
        assert cpu.consumed[CpuClass.SYS] == pytest.approx(10e-3)
        assert sim.now == pytest.approx(10e-3)

    def test_join_charges_sys_time(self, sim):
        cpu = CpuBank(sim, 4)
        costs = ThreadCosts(join_s=2e-3)
        sim.process(charge_join(cpu, costs, 5))
        sim.run()
        assert cpu.consumed[CpuClass.SYS] == pytest.approx(10e-3)

    def test_sync_episodes(self, sim):
        cpu = CpuBank(sim, 4)
        costs = ThreadCosts(sync_s=1e-3)
        sim.process(charge_sync(cpu, costs, episodes=3))
        sim.run()
        assert cpu.consumed[CpuClass.SYS] == pytest.approx(3e-3)
