"""Offline model-based chunk-size optimizer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simrt.costmodel import GB_SI, PAPER_SORT, PAPER_WORDCOUNT
from repro.simrt.supmr_sim import simulate_supmr_job
from repro.tuning.model import (
    closed_form_chunk_bytes,
    optimal_chunk_size,
    predict_read_map_s,
    predict_total_s,
)


class TestPrediction:
    @pytest.mark.parametrize("chunk_gb", [0.5, 1, 2, 5, 50])
    def test_prediction_matches_simulation(self, chunk_gb):
        pred = predict_read_map_s(PAPER_WORDCOUNT, 155 * GB_SI,
                                  chunk_gb * GB_SI)
        sim = simulate_supmr_job(PAPER_WORDCOUNT, 155 * GB_SI,
                                 chunk_gb * GB_SI,
                                 monitor_interval=100.0).timings.read_map_s
        assert pred == pytest.approx(sim, rel=1e-3)

    def test_prediction_matches_simulation_for_sort(self):
        pred = predict_read_map_s(PAPER_SORT, 60 * GB_SI, 1 * GB_SI)
        assert pred == pytest.approx(196.86, rel=0.01)  # Table II cell

    def test_total_prediction_close_to_simulation(self):
        pred = predict_total_s(PAPER_SORT, 60 * GB_SI, 1 * GB_SI)
        sim = simulate_supmr_job(PAPER_SORT, 60 * GB_SI, 1 * GB_SI,
                                 monitor_interval=100.0).timings.total_s
        assert pred == pytest.approx(sim, rel=0.02)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            predict_read_map_s(PAPER_WORDCOUNT, 0, 1)
        with pytest.raises(ConfigError):
            predict_read_map_s(PAPER_WORDCOUNT, 1, 0)


class TestOptimizer:
    def test_optimum_beats_paper_chunk_sizes(self):
        result = optimal_chunk_size(PAPER_WORDCOUNT, 155 * GB_SI)
        for paper_choice in (1 * GB_SI, 50 * GB_SI):
            paper_t = predict_read_map_s(PAPER_WORDCOUNT, 155 * GB_SI,
                                         paper_choice)
            assert result.predicted_read_map_s <= paper_t + 1e-6

    def test_optimum_near_closed_form(self):
        result = optimal_chunk_size(PAPER_WORDCOUNT, 155 * GB_SI)
        # same order of magnitude; the exact curve is piecewise so the
        # refined optimum can sit a small factor away
        assert 0.2 < result.chunk_bytes / result.closed_form_bytes < 5.0

    def test_speedup_reported_vs_unpipelined(self):
        result = optimal_chunk_size(PAPER_WORDCOUNT, 155 * GB_SI)
        assert result.predicted_speedup == pytest.approx(1.16, abs=0.02)

    def test_closed_form_scaling(self):
        # c* grows with sqrt(N)
        small = closed_form_chunk_bytes(PAPER_WORDCOUNT, 10 * GB_SI)
        large = closed_form_chunk_bytes(PAPER_WORDCOUNT, 160 * GB_SI)
        assert large == pytest.approx(4 * small, rel=0.01)

    def test_bounds_validation(self):
        with pytest.raises(ConfigError):
            optimal_chunk_size(PAPER_WORDCOUNT, GB_SI, lo=10.0, hi=5.0)

    def test_sort_optimum_is_larger_than_wordcount(self):
        # sort has ~19x the per-round overhead, so its optimum chunk is
        # bigger (c* ~ sqrt(o))
        wc = optimal_chunk_size(PAPER_WORDCOUNT, 60 * GB_SI)
        so = optimal_chunk_size(PAPER_SORT, 60 * GB_SI)
        assert so.chunk_bytes > 2 * wc.chunk_bytes
