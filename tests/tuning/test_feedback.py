"""Online feedback tuner and the adaptive simulated run."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simrt.costmodel import GB_SI, PAPER_WORDCOUNT
from repro.simrt.supmr_sim import simulate_supmr_job
from repro.tuning.adaptive_sim import simulate_supmr_adaptive
from repro.tuning.feedback import FeedbackTuner


def make_tuner(initial=0.25 * GB_SI, **kw):
    kw.setdefault("round_overhead_s", PAPER_WORDCOUNT.round_overhead_s)
    return FeedbackTuner(initial_chunk_bytes=initial, **kw)


class TestFeedbackTuner:
    def test_holds_initial_until_rates_observed(self):
        tuner = make_tuner()
        assert tuner.next_chunk_size(155 * GB_SI) == int(0.25 * GB_SI)

    def test_rate_estimates_from_rounds(self):
        tuner = make_tuner()
        tuner.record_round(1 * GB_SI, 2.605, map_bytes=1 * GB_SI, map_s=0.435)
        assert tuner.ingest_bw_estimate == pytest.approx(GB_SI / 2.605)
        assert tuner.map_bw_estimate == pytest.approx(GB_SI / 0.435)

    def test_converges_to_closed_form(self):
        tuner = make_tuner(max_growth=8.0)
        # steady observations at the paper's word count rates
        for _ in range(6):
            tuner.record_round(1 * GB_SI, 2.605, 1 * GB_SI, 0.435)
        size = tuner.next_chunk_size(155 * GB_SI)
        from repro.tuning.model import closed_form_chunk_bytes

        expected = closed_form_chunk_bytes(PAPER_WORDCOUNT, 155 * GB_SI)
        assert size == pytest.approx(expected, rel=0.1)

    def test_growth_bounded(self):
        tuner = make_tuner(initial=10e6, max_growth=2.0)
        tuner.record_round(1 * GB_SI, 2.605, 1 * GB_SI, 0.435)
        assert tuner.next_chunk_size(155 * GB_SI) <= 20e6 * 1.001

    def test_never_exceeds_remaining(self):
        tuner = make_tuner()
        assert tuner.next_chunk_size(5e6) == int(5e6)

    def test_min_bound_respected(self):
        tuner = make_tuner(initial=2e6, min_chunk_bytes=1e6)
        tuner.record_round(1e6, 1000.0, 1e6, 0.001)  # pathological rates
        assert tuner.next_chunk_size(100e6) >= 1e6

    def test_schedule_covers_input(self):
        tuner = make_tuner()
        tuner.record_round(1 * GB_SI, 2.605, 1 * GB_SI, 0.435)
        schedule = tuner.schedule(20 * GB_SI)
        assert sum(schedule) >= 20 * GB_SI - 1
        assert all(s >= 1e6 for s in schedule)

    def test_schedule_does_not_mutate_state(self):
        tuner = make_tuner()
        before = tuner.next_chunk_size(155 * GB_SI)
        tuner.schedule(155 * GB_SI)
        assert tuner.next_chunk_size(155 * GB_SI) == before

    def test_validation(self):
        with pytest.raises(ConfigError):
            FeedbackTuner(initial_chunk_bytes=10, min_chunk_bytes=100)
        with pytest.raises(ConfigError):
            make_tuner(alpha=0.0)
        with pytest.raises(ConfigError):
            make_tuner(max_growth=1.0)
        with pytest.raises(ConfigError):
            make_tuner().next_chunk_size(0)

    def test_zero_duration_observations_ignored(self):
        tuner = make_tuner()
        tuner.record_round(1 * GB_SI, 0.0)
        assert tuner.ingest_bw_estimate is None


class TestAdaptiveSimulation:
    def test_adaptive_beats_small_fixed_chunks(self):
        tuner = make_tuner(initial=0.25 * GB_SI)
        adaptive = simulate_supmr_adaptive(PAPER_WORDCOUNT, 155 * GB_SI,
                                           tuner, monitor_interval=50.0)
        fixed_small = simulate_supmr_job(PAPER_WORDCOUNT, 155 * GB_SI,
                                         0.25 * GB_SI, monitor_interval=50.0)
        assert adaptive.timings.total_s < fixed_small.timings.total_s

    def test_adaptive_close_to_model_optimum(self):
        from repro.tuning.model import optimal_chunk_size, predict_read_map_s

        tuner = make_tuner(initial=0.25 * GB_SI)
        adaptive = simulate_supmr_adaptive(PAPER_WORDCOUNT, 155 * GB_SI,
                                           tuner, monitor_interval=50.0)
        best = optimal_chunk_size(PAPER_WORDCOUNT, 155 * GB_SI)
        # within 1% of the offline optimum despite the cold start
        assert adaptive.timings.read_map_s <= best.predicted_read_map_s * 1.01

    def test_chunk_sizes_ramp_up(self):
        tuner = make_tuner(initial=0.25 * GB_SI, max_growth=2.0)
        adaptive = simulate_supmr_adaptive(PAPER_WORDCOUNT, 155 * GB_SI,
                                           tuner, monitor_interval=50.0)
        sizes = adaptive.extras["chunk_sizes"]
        assert sizes[0] == pytest.approx(0.25 * GB_SI, rel=0.01)
        assert max(sizes) > 4 * sizes[0]

    def test_estimates_converge_to_truth(self):
        tuner = make_tuner(initial=1 * GB_SI)
        simulate_supmr_adaptive(PAPER_WORDCOUNT, 20 * GB_SI, tuner,
                                monitor_interval=50.0)
        assert tuner.ingest_bw_estimate == pytest.approx(
            PAPER_WORDCOUNT.ingest_bw, rel=0.02
        )
        assert tuner.map_bw_estimate == pytest.approx(
            PAPER_WORDCOUNT.map_bw_per_ctx * 32, rel=0.02
        )
