"""Filesystem helpers."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.io.datafile import (
    ensure_dir,
    file_sizes,
    read_slice,
    remove_if_exists,
    total_input_bytes,
)


class TestReadSlice:
    def test_basic_slice(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"0123456789")
        assert read_slice(path, 2, 4) == b"2345"

    def test_slice_past_eof_is_short(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"abc")
        assert read_slice(path, 1, 100) == b"bc"

    def test_negative_slice_raises(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"abc")
        with pytest.raises(WorkloadError):
            read_slice(path, -1, 2)
        with pytest.raises(WorkloadError):
            read_slice(path, 0, -2)


class TestInventory:
    def test_file_sizes(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        a.write_bytes(b"xx")
        b.write_bytes(b"yyy")
        assert file_sizes([a, b]) == [(a, 2), (b, 3)]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(WorkloadError, match="missing"):
            file_sizes([tmp_path / "nope"])

    def test_total_input_bytes(self, tmp_path):
        a = tmp_path / "a"
        a.write_bytes(b"12345")
        assert total_input_bytes([a]) == 5


class TestDirHelpers:
    def test_ensure_dir_creates_parents(self, tmp_path):
        target = tmp_path / "x" / "y" / "z"
        assert ensure_dir(target).is_dir()

    def test_ensure_dir_idempotent(self, tmp_path):
        ensure_dir(tmp_path / "d")
        ensure_dir(tmp_path / "d")

    def test_remove_if_exists(self, tmp_path):
        f = tmp_path / "f"
        f.write_bytes(b"x")
        remove_if_exists(f)
        assert not f.exists()
        remove_if_exists(f)  # no error when already gone
