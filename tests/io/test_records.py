"""Record codecs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.io.records import RecordCodec, TeraRecordCodec, TextCodec, WholeLineCodec


class TestRecordCodec:
    def test_iter_records_basic(self):
        codec = RecordCodec()
        assert list(codec.iter_records(b"a\nb\nc\n")) == [b"a", b"b", b"c"]

    def test_unterminated_final_record(self):
        codec = RecordCodec()
        assert list(codec.iter_records(b"a\nb")) == [b"a", b"b"]

    def test_empty_data(self):
        assert list(RecordCodec().iter_records(b"")) == []

    def test_empty_records_preserved(self):
        assert list(RecordCodec().iter_records(b"\n\n")) == [b"", b""]

    def test_multibyte_delimiter(self):
        codec = RecordCodec(delimiter=b"\r\n")
        assert list(codec.iter_records(b"x\r\ny\r\n")) == [b"x", b"y"]

    def test_record_end_at_delimiter(self):
        codec = RecordCodec()
        data = b"abc\ndef\n"
        assert codec.record_end(data, 0) == 4
        assert codec.record_end(data, 4) == 8
        assert codec.record_end(data, 5) == 8

    def test_record_end_past_data(self):
        codec = RecordCodec()
        assert codec.record_end(b"abc", 10) == 3

    def test_record_end_no_delimiter(self):
        assert RecordCodec().record_end(b"abc", 1) == 3

    @given(st.lists(st.binary(max_size=8).filter(lambda b: b"\n" not in b),
                    max_size=20))
    def test_property_roundtrip(self, records):
        data = b"".join(r + b"\n" for r in records)
        assert list(RecordCodec().iter_records(data)) == records


class TestTeraRecordCodec:
    def test_split_record(self):
        codec = TeraRecordCodec()
        record = b"K" * 10 + b" " + b"P" * 87
        key, payload = codec.split_record(record)
        assert key == b"K" * 10
        assert payload == b"P" * 87

    def test_short_record_raises(self):
        with pytest.raises(WorkloadError):
            TeraRecordCodec().split_record(b"tiny")

    def test_iter_pairs(self):
        codec = TeraRecordCodec()
        data = (b"A" * 10 + b" pay1\r\n") + (b"B" * 10 + b" pay2\r\n")
        pairs = list(codec.iter_pairs(data))
        assert pairs == [(b"A" * 10, b"pay1"), (b"B" * 10, b"pay2")]

    def test_iter_pairs_skips_trailing_fragment(self):
        codec = TeraRecordCodec()
        data = b"A" * 10 + b" x\r\n"
        assert len(list(codec.iter_pairs(data))) == 1

    def test_crlf_delimiter(self):
        assert TeraRecordCodec().delimiter == b"\r\n"


class TestTextAndLineCodecs:
    def test_iter_words(self):
        codec = TextCodec()
        data = b"the quick  fox\njumps\n"
        assert list(codec.iter_words(data)) == [b"the", b"quick", b"fox", b"jumps"]

    def test_iter_words_handles_tabs(self):
        assert list(TextCodec().iter_words(b"a\tb\n")) == [b"a", b"b"]

    def test_whole_line_codec(self):
        codec = WholeLineCodec()
        assert list(codec.iter_lines(b"one\ntwo\n")) == [b"one", b"two"]
