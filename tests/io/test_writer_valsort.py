"""Output writers and valsort-style validation."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.io.records import TeraRecordCodec
from repro.io.writer import write_terasort_output, write_text_pairs
from repro.workloads.valsort import (
    check_sort_job,
    same_multiset,
    validate_file,
    validate_pairs,
)


def make_pairs(n=20, codec=None):
    codec = codec or TeraRecordCodec()
    return [
        (b"%010d" % i, b"p" * (codec.record_len - codec.key_len - 3))
        for i in range(n)
    ]


class TestWriters:
    def test_terasort_roundtrip(self, tmp_path):
        codec = TeraRecordCodec()
        pairs = make_pairs(25)
        path = tmp_path / "out.dat"
        written = write_terasort_output(path, pairs, codec)
        assert written == path.stat().st_size == 25 * codec.record_len
        assert list(codec.iter_pairs(path.read_bytes())) == pairs

    def test_bad_key_length_raises(self, tmp_path):
        with pytest.raises(WorkloadError):
            write_terasort_output(tmp_path / "x", [(b"short", b"p")])

    def test_text_pairs(self, tmp_path):
        path = tmp_path / "out.tsv"
        lines = write_text_pairs(path, [(b"word", 3), ("key", "val")])
        assert lines == 2
        assert path.read_text() == "word\t3\nkey\tval\n"


class TestValidatePairs:
    def test_sorted_output_valid(self):
        report = validate_pairs(make_pairs(10))
        assert report.valid
        assert report.records == 10
        assert report.duplicate_keys == 0
        assert report.first_unordered_index is None

    def test_unordered_detected(self):
        pairs = make_pairs(5)
        pairs[2], pairs[3] = pairs[3], pairs[2]
        report = validate_pairs(pairs)
        assert not report.valid
        assert report.first_unordered_index == 3

    def test_duplicates_counted(self):
        pairs = [(b"0" * 10, b"a"), (b"0" * 10, b"b"), (b"1" * 10, b"c")]
        report = validate_pairs(pairs)
        assert report.valid  # duplicates are legal, just counted
        assert report.duplicate_keys == 1

    def test_empty_output_valid(self):
        assert validate_pairs([]).valid


class TestMultisetFingerprint:
    def test_permutation_matches(self):
        pairs = make_pairs(30)
        shuffled = list(reversed(pairs))
        assert same_multiset(pairs, shuffled)

    def test_loss_detected(self):
        pairs = make_pairs(30)
        assert not same_multiset(pairs, pairs[:-1])

    def test_corruption_detected(self):
        pairs = make_pairs(30)
        corrupted = pairs[:]
        corrupted[5] = (corrupted[5][0], b"X" + corrupted[5][1][1:])
        assert not same_multiset(pairs, corrupted)

    def test_duplication_detected(self):
        pairs = make_pairs(10)
        assert not same_multiset(pairs, pairs + [pairs[0]])


class TestEndToEnd:
    def test_validate_real_sort_job(self, terasort_file):
        from repro.apps.sortapp import make_sort_job
        from repro.core.options import RuntimeOptions
        from repro.core.supmr import run_ingest_mr

        result = run_ingest_mr(
            make_sort_job([terasort_file]),
            RuntimeOptions.supmr_interfile("25KB"),
        )
        report = check_sort_job(terasort_file, result.output)
        assert report.valid
        assert report.records == 3000

    def test_tampered_output_caught(self, terasort_file):
        from repro.apps.sortapp import reference_sort

        output = reference_sort([terasort_file])
        del output[100]  # lose a record
        with pytest.raises(WorkloadError, match="permutation"):
            check_sort_job(terasort_file, output)

    def test_validate_file_roundtrip(self, tmp_path, terasort_file):
        from repro.apps.sortapp import reference_sort

        out = tmp_path / "sorted.dat"
        codec = TeraRecordCodec()
        write_terasort_output(out, reference_sort([terasort_file]), codec)
        report = validate_file(out, codec)
        assert report.valid
        assert report.records == 3000
