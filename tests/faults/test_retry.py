"""The bounded-backoff retry loop and scheduler task re-execution."""

from __future__ import annotations

import pytest

from repro.core.scheduler import TaskScheduler
from repro.errors import FaultInjected, RetryExhausted
from repro.faults.log import ACTION_EXHAUSTED, ACTION_RECOVERED, ACTION_RETRIED
from repro.faults.plan import FaultPlan
from repro.faults.policy import RecoveryPolicy


def _injector(max_retries: int):
    policy = RecoveryPolicy(max_retries=max_retries, backoff_base_s=0.0)
    return FaultPlan(seed=0).arm(policy)


class TestRetryingLoop:
    def test_recovers_after_transient_failures(self):
        injector = _injector(max_retries=3)

        def fn(attempt: int) -> str:
            if attempt < 2:
                raise FaultInjected("transient", site="t")
            return "ok"

        assert injector.retrying("t", fn) == "ok"
        assert injector.log.count(ACTION_RETRIED, site="t") == 2
        assert injector.log.count(ACTION_RECOVERED, site="t") == 1

    def test_exhaustion_raises_with_cause_chained(self):
        injector = _injector(max_retries=2)
        original = FaultInjected("always down", site="t")

        def fn(attempt: int):
            raise original

        with pytest.raises(RetryExhausted) as excinfo:
            injector.retrying("t", fn)
        exc = excinfo.value
        assert exc.site == "t"
        assert exc.attempts == 3  # initial try + 2 retries
        assert exc.__cause__ is original
        assert injector.log.count(ACTION_EXHAUSTED, site="t") == 1

    def test_zero_budget_fails_fast(self):
        injector = _injector(max_retries=0)
        calls = []

        def fn(attempt: int):
            calls.append(attempt)
            raise FaultInjected("down", site="t")

        with pytest.raises(RetryExhausted) as excinfo:
            injector.retrying("t", fn)
        assert calls == [0]
        assert excinfo.value.attempts == 1
        assert isinstance(excinfo.value.__cause__, FaultInjected)

    def test_non_retryable_propagates_immediately(self):
        injector = _injector(max_retries=5)

        def fn(attempt: int):
            raise ValueError("a genuine bug, not a fault")

        with pytest.raises(ValueError, match="genuine bug"):
            injector.retrying("t", fn)
        assert injector.log.count(ACTION_RETRIED) == 0

    def test_backoff_delays_are_bounded(self):
        policy = RecoveryPolicy(
            max_retries=8, backoff_base_s=0.01,
            backoff_factor=10.0, backoff_max_s=0.05,
        )
        delays = [policy.backoff_s(k) for k in range(8)]
        assert delays[0] == pytest.approx(0.01)
        assert all(d <= 0.05 for d in delays)


class TestSchedulerRetry:
    def test_retryable_task_reruns_and_succeeds(self):
        policy = RecoveryPolicy(max_retries=3, backoff_base_s=0.0)
        failures = {"left": 2}

        def task():
            if failures["left"] > 0:
                failures["left"] -= 1
                raise FaultInjected("flaky task", site="map.task")

        with TaskScheduler(2, retry_policy=policy) as sched:
            sched.submit(task)
            sched.drain()
            assert sched.stats.retries == 2

    def test_exhausted_task_surfaces_retry_exhausted(self):
        policy = RecoveryPolicy(max_retries=1, backoff_base_s=0.0)

        def task():
            raise FaultInjected("always flaky", site="map.task")

        with TaskScheduler(2, retry_policy=policy) as sched:
            sched.submit(task)
            with pytest.raises(RetryExhausted) as excinfo:
                sched.drain()
        assert isinstance(excinfo.value.__cause__, FaultInjected)

    def test_without_policy_failures_propagate_unwrapped(self):
        with TaskScheduler(2) as sched:
            sched.submit(lambda: (_ for _ in ()).throw(OSError("disk gone")))
            with pytest.raises(OSError, match="disk gone"):
                sched.drain()
