"""Spill corruption recovery and fault accounting in the real runtimes."""

from __future__ import annotations

import pytest

from repro.apps.wordcount import make_wordcount_job, reference_wordcount
from repro.core.options import RuntimeOptions
from repro.core.phoenix import run_baseline
from repro.core.supmr import run_ingest_mr
from repro.errors import RetryExhausted, SpillError
from repro.faults.log import ACTION_RESPILLED
from repro.faults.plan import (
    SITE_MAP_TASK,
    SITE_SPILL_CORRUPT,
    FaultPlan,
    FaultSpec,
)
from repro.faults.policy import RecoveryPolicy
from repro.spill.manager import SpillManager


def _fast_policy(**kw) -> RecoveryPolicy:
    kw.setdefault("backoff_base_s", 0.0)
    return RecoveryPolicy(**kw)


class TestSpillCorruption:
    def _spill(self, tmp_path, injector):
        mgr = SpillManager(1024, spill_dir=tmp_path, injector=injector)
        return mgr, mgr.spill_pairs(
            [(b"b", [2]), (b"a", [1]), (b"c", [3])], raw=True
        )

    def test_corrupt_run_is_verified_and_respilled(self, tmp_path):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site=SITE_SPILL_CORRUPT, once_per_scope=True),
        ))
        injector = plan.arm(_fast_policy())
        mgr, info = self._spill(tmp_path, injector)
        # the rewritten run reads back clean
        assert list(mgr.open_run(info)) == [
            (b"a", (1,)), (b"b", (2,)), (b"c", (3,)),
        ]
        assert mgr.open_run(info).verify()
        assert injector.log.count(ACTION_RESPILLED) == 1
        assert injector.log.count("retried", site=SITE_SPILL_CORRUPT) == 1

    def test_verify_off_lets_corruption_through(self, tmp_path):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site=SITE_SPILL_CORRUPT, once_per_scope=True),
        ))
        injector = plan.arm(_fast_policy(verify_spills=False))
        mgr, info = self._spill(tmp_path, injector)
        # no post-write verification: the damaged run stays on disk and
        # the streaming reader's own checksum catches it at merge time
        assert not mgr.open_run(info).verify()
        with pytest.raises(SpillError):
            list(mgr.open_run(info))

    def test_persistent_corruption_exhausts_and_chains(self, tmp_path):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site=SITE_SPILL_CORRUPT, probability=1.0),
        ))
        injector = plan.arm(_fast_policy(max_retries=2))
        with pytest.raises(RetryExhausted) as excinfo:
            self._spill(tmp_path, injector)
        assert excinfo.value.site == SITE_SPILL_CORRUPT
        assert isinstance(excinfo.value.__cause__, SpillError)

    def test_end_to_end_spill_faults_under_memory_budget(self, text_file):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site=SITE_SPILL_CORRUPT, once_per_scope=True),
        ))
        options = RuntimeOptions.supmr_interfile("32KB").with_(
            memory_budget="256KB",
            fault_plan=plan,
            recovery=_fast_policy(),
        )
        result = run_ingest_mr(make_wordcount_job([text_file]), options)
        assert result.counters["spill_runs"] > 0
        assert result.fault_log.count(ACTION_RESPILLED) > 0
        assert dict(result.output) == reference_wordcount([text_file])


class TestMapTaskFaults:
    def test_injected_map_faults_retry_without_duplicate_emits(self, text_file):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site=SITE_MAP_TASK, once_per_scope=True, max_fires=4),
        ))
        options = RuntimeOptions.supmr_interfile("32KB").with_(
            fault_plan=plan, recovery=_fast_policy(),
        )
        result = run_ingest_mr(make_wordcount_job([text_file]), options)
        assert result.fault_log.count("injected", site=SITE_MAP_TASK) == 4
        assert result.fault_log.count("recovered", site=SITE_MAP_TASK) == 4
        # retried tasks re-ran from scratch: totals are exact
        assert dict(result.output) == reference_wordcount([text_file])

    def test_baseline_runtime_reports_fault_log_too(self, text_file):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site=SITE_MAP_TASK, once_per_scope=True, max_fires=2),
        ))
        options = RuntimeOptions.baseline().with_(
            fault_plan=plan, recovery=_fast_policy(),
        )
        result = run_baseline(make_wordcount_job([text_file]), options)
        assert result.fault_log is not None
        assert result.counters["faults_injected"] == 2
        assert dict(result.output) == reference_wordcount([text_file])

    def test_clean_plan_leaves_result_clean(self, text_file):
        options = RuntimeOptions.supmr_interfile("32KB")
        result = run_ingest_mr(make_wordcount_job([text_file]), options)
        assert result.fault_log is None
        assert "faults_injected" not in result.counters
