"""Tests for the repro.faults subsystem (seeded injection + recovery)."""
