"""FaultPlan: seeded determinism, trigger disciplines, CLI parsing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faults.plan import (
    KIND_SHORT,
    SITE_INGEST_READ,
    SITE_MAP_TASK,
    SITE_RECORD_CORRUPT,
    FaultPlan,
    FaultSpec,
    parse_faults,
)


def _probabilistic_plan(seed: int, p: float = 0.3) -> FaultPlan:
    return FaultPlan(seed=seed, specs=(
        FaultSpec(site=SITE_RECORD_CORRUPT, probability=p),
    ))


def _fired_scopes(plan: FaultPlan, scopes: list[int]) -> list[int]:
    injector = plan.arm()
    return [
        s for s in scopes
        if injector.check(SITE_RECORD_CORRUPT, scope=(0, s)) is not None
    ]


class TestSeededDeterminism:
    def test_same_seed_same_fault_sequence(self, fault_seed):
        plan = _probabilistic_plan(fault_seed)
        scopes = list(range(500))
        first = _fired_scopes(plan, scopes)
        second = _fired_scopes(plan, scopes)
        assert first == second
        assert first, "p=0.3 over 500 scopes must fire at least once"

    def test_check_order_does_not_change_decisions(self, fault_seed):
        # the pipelined ingest thread races mapper threads, so the
        # decision for a scope must not depend on when it is checked
        plan = _probabilistic_plan(fault_seed)
        scopes = list(range(200))
        forward = set(_fired_scopes(plan, scopes))
        backward = set(_fired_scopes(plan, list(reversed(scopes))))
        assert forward == backward

    def test_different_seeds_differ(self):
        scopes = list(range(500))
        a = _fired_scopes(_probabilistic_plan(1), scopes)
        b = _fired_scopes(_probabilistic_plan(2), scopes)
        assert a != b

    def test_roll_is_pure_and_uniformish(self, fault_seed):
        plan = FaultPlan(seed=fault_seed)
        rolls = [plan.roll("x", (i,), 0) for i in range(2000)]
        assert all(0.0 <= r < 1.0 for r in rolls)
        assert rolls == [plan.roll("x", (i,), 0) for i in range(2000)]
        assert 0.3 < sum(rolls) / len(rolls) < 0.7

    def test_retry_attempt_rerolls(self, fault_seed):
        # probability faults re-roll per attempt, so a retried scope can
        # pass even when attempt 0 fired
        plan = _probabilistic_plan(fault_seed, p=0.5)
        differs = any(
            plan.roll(SITE_RECORD_CORRUPT, (0, i), 0)
            != plan.roll(SITE_RECORD_CORRUPT, (0, i), 1)
            for i in range(10)
        )
        assert differs


class TestTriggerDisciplines:
    def test_once_per_scope_fires_first_check_only(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site=SITE_INGEST_READ, once_per_scope=True),
        ))
        injector = plan.arm()
        assert injector.check(SITE_INGEST_READ, scope=(7,)) is not None
        # the retry of the same chunk passes
        assert injector.check(SITE_INGEST_READ, scope=(7,), attempt=1) is None
        # a different chunk fires again
        assert injector.check(SITE_INGEST_READ, scope=(8,)) is not None

    def test_max_fires_caps_total(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site=SITE_MAP_TASK, probability=1.0, max_fires=2),
        ))
        injector = plan.arm()
        fired = [
            injector.check(SITE_MAP_TASK, scope=(0, i)) is not None
            for i in range(10)
        ]
        assert sum(fired) == 2
        assert injector.fires(SITE_MAP_TASK) == 2

    def test_unarmed_site_never_fires(self):
        injector = FaultPlan(seed=0).arm()
        assert not injector.armed(SITE_MAP_TASK)
        assert injector.check(SITE_MAP_TASK, scope=(0, 0)) is None


class TestValidation:
    def test_probability_out_of_range(self):
        with pytest.raises(ConfigError, match="probability"):
            FaultSpec(site=SITE_MAP_TASK, probability=1.5)

    def test_duplicate_site_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            FaultPlan(seed=0, specs=(
                FaultSpec(site=SITE_MAP_TASK),
                FaultSpec(site=SITE_MAP_TASK),
            ))

    def test_negative_max_fires_rejected(self):
        with pytest.raises(ConfigError, match="max_fires"):
            FaultSpec(site=SITE_MAP_TASK, max_fires=-1)


class TestParseFaults:
    def test_full_syntax(self, fault_seed):
        plan = parse_faults(
            "ingest.read=once/short, record.corrupt=0.001, map.task",
            seed=fault_seed,
        )
        assert plan.seed == fault_seed
        assert plan.sites() == (
            SITE_INGEST_READ, SITE_RECORD_CORRUPT, SITE_MAP_TASK,
        )
        ingest = plan.spec_for(SITE_INGEST_READ)
        assert ingest.once_per_scope and ingest.kind == KIND_SHORT
        assert plan.spec_for(SITE_RECORD_CORRUPT).probability == 0.001
        assert plan.spec_for(SITE_MAP_TASK).probability == 1.0

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault site"):
            parse_faults("warp.core=0.5")

    def test_bad_trigger_rejected(self):
        with pytest.raises(ConfigError, match="bad fault trigger"):
            parse_faults("map.task=sometimes")

    def test_empty_rejected(self):
        with pytest.raises(ConfigError, match="no fault specs"):
            parse_faults(" , ")
