"""Bad-record quarantine: budget edges and the end-to-end contract.

The headline robustness scenario: wordcount under one transient read
error per ingest chunk plus 0.1% record corruption must complete, its
output must equal the reference wordcount minus exactly the quarantined
records, and the fault log must account for every intervention.
"""

from __future__ import annotations

import pytest

from repro.apps.wordcount import make_wordcount_job, reference_wordcount
from repro.chunking.planner import plan_chunks
from repro.core.options import RuntimeOptions
from repro.core.supmr import run_ingest_mr
from repro.errors import QuarantineOverflow, RetryExhausted
from repro.faults.plan import (
    SITE_INGEST_READ,
    SITE_RECORD_CORRUPT,
    FaultPlan,
    FaultSpec,
)
from repro.faults.policy import RecoveryPolicy


class TestSkipBudgetEdges:
    def test_zero_budget_aborts_on_first_bad_record(self):
        injector = FaultPlan(seed=0).arm(RecoveryPolicy(skip_budget=0))
        with pytest.raises(QuarantineOverflow) as excinfo:
            injector.quarantine("record.corrupt", b"junk")
        assert excinfo.value.quarantined == 1

    def test_exact_budget_is_allowed(self):
        injector = FaultPlan(seed=0).arm(RecoveryPolicy(skip_budget=3))
        for i in range(3):
            injector.quarantine("record.corrupt", b"junk %d" % i)
        assert injector.quarantined == 3
        # the budget-plus-one record overflows
        with pytest.raises(QuarantineOverflow) as excinfo:
            injector.quarantine("record.corrupt", b"one too many")
        assert excinfo.value.quarantined == 4


def _acceptance_plan(seed: int) -> FaultPlan:
    return FaultPlan(seed=seed, specs=(
        FaultSpec(site=SITE_INGEST_READ, once_per_scope=True),
        FaultSpec(site=SITE_RECORD_CORRUPT, probability=0.001),
    ))


def _dropped_records(job, options, plan):
    """The raw records the plan will corrupt (and so quarantine)."""
    chunk_plan = plan_chunks(job.inputs, job.codec, options)
    spec = plan.spec_for(SITE_RECORD_CORRUPT)
    dropped: list[bytes] = []
    for chunk in chunk_plan.chunks:
        for i, record in enumerate(job.codec.iter_records(chunk.load())):
            if plan.roll(SITE_RECORD_CORRUPT, (chunk.index, i), 0) < spec.probability:
                dropped.append(record)
    return dropped


def _surviving_reference(job, options, plan, tmp_path):
    """Reference wordcount over exactly the records the plan keeps.

    Replays the plan's pure-function rolls over the same chunk plan the
    runtime will use, drops the records that will be corrupted and
    quarantined, and counts the rest.
    """
    chunk_plan = plan_chunks(job.inputs, job.codec, options)
    spec = plan.spec_for(SITE_RECORD_CORRUPT)
    kept: list[bytes] = []
    dropped = 0
    for chunk in chunk_plan.chunks:
        data = chunk.load()
        for i, record in enumerate(job.codec.iter_records(data)):
            roll = plan.roll(SITE_RECORD_CORRUPT, (chunk.index, i), 0)
            if roll < spec.probability:
                dropped += 1
            else:
                kept.append(record)
    survivor_file = tmp_path / "survivors.txt"
    survivor_file.write_bytes(job.codec.delimiter.join(kept))
    return reference_wordcount([survivor_file]), dropped


class TestEndToEndQuarantine:
    def test_faulted_wordcount_matches_reference_minus_quarantined(
        self, text_file, tmp_path, fault_seed
    ):
        plan = _acceptance_plan(fault_seed)
        options = RuntimeOptions.supmr_interfile("32KB").with_(
            fault_plan=plan,
            recovery=RecoveryPolicy(backoff_base_s=0.0),
        )
        job = make_wordcount_job([text_file])
        expected, dropped = _surviving_reference(job, options, plan, tmp_path)

        result = run_ingest_mr(job, options)

        log = result.fault_log
        assert log is not None and len(log) > 0
        # one transient read error per chunk, every one retried+recovered
        assert log.count("injected", site=SITE_INGEST_READ) == result.n_chunks
        assert log.count("recovered", site=SITE_INGEST_READ) == result.n_chunks
        assert log.quarantined == dropped
        assert result.counters["records_quarantined"] == dropped
        assert dict(result.output) == expected
        # when records were dropped the run is lossy on purpose
        full_reference = reference_wordcount([text_file])
        assert (
            sum(full_reference.values()) - sum(expected.values())
            == sum(len(r.split()) for r in _dropped_records(job, options, plan))
        )

    def test_zero_retry_budget_raises_retry_exhausted(self, text_file, fault_seed):
        plan = _acceptance_plan(fault_seed)
        options = RuntimeOptions.supmr_interfile("32KB").with_(
            fault_plan=plan,
            recovery=RecoveryPolicy(max_retries=0, backoff_base_s=0.0),
        )
        with pytest.raises(RetryExhausted) as excinfo:
            run_ingest_mr(make_wordcount_job([text_file]), options)
        assert excinfo.value.site == SITE_INGEST_READ
        assert excinfo.value.__cause__ is not None

    def test_tight_skip_budget_aborts_corrupt_run(self, text_file, fault_seed):
        plan = FaultPlan(seed=fault_seed, specs=(
            FaultSpec(site=SITE_RECORD_CORRUPT, probability=0.05),
        ))
        options = RuntimeOptions.supmr_interfile("32KB").with_(
            fault_plan=plan,
            recovery=RecoveryPolicy(skip_budget=0, backoff_base_s=0.0),
        )
        with pytest.raises(QuarantineOverflow):
            run_ingest_mr(make_wordcount_job([text_file]), options)
