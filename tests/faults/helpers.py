"""Shared fixtures for fault-injection tests.

These started life inside ``tests/test_failure_injection.py``; they are
used both by the legacy failure tests and by the ``tests/faults``
package, so they live here once.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.containers import HashContainer, SumCombiner
from repro.core.job import JobSpec
from repro.io.records import TextCodec


def failing_map_after(n_calls: int):
    """A map_fn that succeeds ``n_calls`` times and then explodes."""
    counter = {"calls": 0}
    lock = threading.Lock()

    def map_fn(ctx):
        with lock:
            counter["calls"] += 1
            if counter["calls"] > n_calls:
                raise RuntimeError("injected map failure")
        for word in ctx.data.split():
            ctx.emit(word, 1)

    return map_fn


def failing_job(path: Path, map_fn) -> JobSpec:
    """A wordcount-shaped job over ``path`` using the given ``map_fn``."""
    return JobSpec(
        name="failing", inputs=(path,), map_fn=map_fn,
        container_factory=lambda: HashContainer(SumCombiner()),
        codec=TextCodec(),
    )


def ingest_threads() -> set[str]:
    """Names of currently-alive ingest pipeline threads."""
    return {
        t.name for t in threading.enumerate()
        if t.name.startswith("ingest-")
    }
