"""Fixtures for the fault-injection test package.

CI runs this package twice with different ``FAULT_SEED`` values (the
fault-matrix job); locally the seed defaults to 0.  Every test that
builds a :class:`~repro.faults.plan.FaultPlan` should take the
``fault_seed`` fixture so the whole package is exercised under each
seed without per-test plumbing.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def fault_seed() -> int:
    """Seed for FaultPlans, from the FAULT_SEED env var (default 0)."""
    return int(os.environ.get("FAULT_SEED", "0"))
