"""Simulated-hardware faults: degradation, rebalancing, speculation."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.faults.log import FaultLog
from repro.faults.plan import (
    SITE_SIM_DATANODE_LOSS,
    SITE_SIM_DISK_SLOW,
    SITE_SIM_NET_FLAP,
    SITE_SIM_STRAGGLER,
    FaultPlan,
    FaultSpec,
)
from repro.faults.policy import RecoveryPolicy
from repro.faults.simdriver import SimFaultDriver
from repro.simhw.events import Simulator
from repro.simhw.hdfs import HdfsCluster, HdfsSpec
from repro.simrt.costmodel import GB_SI, PAPER_WORDCOUNT
from repro.simrt.hdfs_case import simulate_hdfs_case_study
from repro.simrt.supmr_sim import simulate_supmr_job

WC = 10 * GB_SI
INTERVAL = 10.0


def _run(fault_plan=None, recovery=None, **kw):
    return simulate_supmr_job(
        PAPER_WORDCOUNT, WC, 1 * GB_SI, monitor_interval=INTERVAL,
        fault_plan=fault_plan, recovery=recovery, **kw,
    )


class TestDiskFaults:
    def test_disk_slowdown_lengthens_job_then_restores(self):
        clean = _run()
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site=SITE_SIM_DISK_SLOW, at_s=2.0,
                      duration_s=10.0, factor=0.25),
        ))
        slowed = _run(fault_plan=plan)
        log = slowed.extras["fault_log"]
        assert log.count("injected", site=SITE_SIM_DISK_SLOW) == 1
        assert log.count("recovered", site=SITE_SIM_DISK_SLOW) == 1
        assert slowed.timings.total_s > clean.timings.total_s


class TestDatanodeLoss:
    def _cluster(self, nodes=4):
        sim = Simulator()
        cluster = HdfsCluster(sim, HdfsSpec(nodes=nodes))
        return sim, cluster

    def test_loss_rebalances_reads_across_survivors(self):
        sim, cluster = self._cluster(nodes=4)
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site=SITE_SIM_DATANODE_LOSS, at_s=0.0,
                      max_fires=2, duration_s=1.0),
        ))
        log = FaultLog(clock=lambda: sim.now)
        SimFaultDriver(plan, log, cluster=cluster).arm()
        sim.run()
        assert cluster.surviving == 2
        assert log.count("injected", site=SITE_SIM_DATANODE_LOSS) == 2
        assert log.count("degraded", site=SITE_SIM_DATANODE_LOSS) == 2
        # aggregate read bandwidth shrank with the dead nodes
        assert cluster.aggregate_disk_bw == pytest.approx(
            2 * cluster.spec.node_disk_bw
        )
        # the block-placement cursor only lands on surviving nodes
        for _ in range(8):
            assert cluster._next_alive().name not in ("dn0", "dn1")

    def test_last_survivor_is_refused(self):
        sim, cluster = self._cluster(nodes=2)
        cluster.fail_datanode(0)
        with pytest.raises(SimulationError):
            cluster.fail_datanode(1)
        assert cluster.surviving == 1

    def test_driver_logs_refusal_as_degraded(self):
        sim, cluster = self._cluster(nodes=2)
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site=SITE_SIM_DATANODE_LOSS, at_s=0.0,
                      max_fires=3, duration_s=1.0),
        ))
        log = FaultLog(clock=lambda: sim.now)
        SimFaultDriver(plan, log, cluster=cluster).arm()
        sim.run()
        assert cluster.surviving == 1
        assert log.count("injected", site=SITE_SIM_DATANODE_LOSS) == 1
        refusals = [
            e for e in log.events
            if e.action == "degraded" and e.detail.startswith("refused")
        ]
        assert len(refusals) == 2

    def test_case_study_runs_degraded_end_to_end(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(site=SITE_SIM_DATANODE_LOSS, at_s=1.0,
                      max_fires=3, duration_s=2.0),
            FaultSpec(site=SITE_SIM_NET_FLAP, at_s=10.0,
                      duration_s=5.0, factor=0.1),
        ))
        result = simulate_hdfs_case_study(
            input_bytes=3e9, chunk_bytes=1e9, monitor_interval=INTERVAL,
            fault_plan=plan,
        )
        for log in (result.baseline_cluster_log, result.supmr_cluster_log):
            assert log is not None
            assert log.count("injected", site=SITE_SIM_DATANODE_LOSS) == 3
            assert log.count("injected", site=SITE_SIM_NET_FLAP) == 1
            assert log.count("recovered", site=SITE_SIM_NET_FLAP) == 1
        # both runs still complete, just slower than the fault-free pair
        clean = simulate_hdfs_case_study(
            input_bytes=3e9, chunk_bytes=1e9, monitor_interval=INTERVAL,
        )
        assert result.baseline.timings.total_s >= clean.baseline.timings.total_s
        assert result.supmr.timings.total_s >= clean.supmr.timings.total_s


class TestStragglers:
    def _plan(self):
        return FaultPlan(seed=0, specs=(
            FaultSpec(site=SITE_SIM_STRAGGLER, once_per_scope=True,
                      max_fires=1, factor=4.0),
        ))

    def test_speculation_caps_straggler_cost(self):
        # the ablation (unpipelined) rounds put map time on the critical
        # path; with overlap a straggler can hide under the next ingest
        clean = _run(pipelined=False)
        speculative = _run(
            pipelined=False,
            fault_plan=self._plan(),
            recovery=RecoveryPolicy(speculative=True, straggler_threshold=1.5),
        )
        plodding = _run(
            pipelined=False,
            fault_plan=self._plan(),
            recovery=RecoveryPolicy(speculative=False),
        )
        assert clean.timings.total_s < speculative.timings.total_s
        assert speculative.timings.total_s < plodding.timings.total_s
        log = speculative.extras["fault_log"]
        assert log.count("speculative", site=SITE_SIM_STRAGGLER) == 1
        assert plodding.extras["fault_log"].count("speculative") == 0
