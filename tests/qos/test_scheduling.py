"""Weighted-fair queueing and priority aging (``repro.qos.scheduling``)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.qos.scheduling import QueueEntry, WeightedFairQueue


def drain(queue: WeightedFairQueue) -> list[str]:
    out = []
    while True:
        entry = queue.pop()
        if entry is None:
            return out
        out.append(entry.job_id)


class TestWeightedFairness:
    def test_flooding_tenant_cannot_starve_the_other(self):
        queue = WeightedFairQueue()
        for i in range(10):
            queue.push(QueueEntry(f"heavy-{i}", tenant="heavy", seq=i))
        queue.push(QueueEntry("quick", tenant="interactive", seq=10))
        order = drain(queue)
        # interactive's single job rides within the first round of
        # dispatches, not behind the whole backlog
        assert order.index("quick") <= 1

    def test_alternates_between_equally_weighted_tenants(self):
        queue = WeightedFairQueue()
        seq = 0
        for i in range(3):
            for tenant in ("a", "b"):
                queue.push(QueueEntry(f"{tenant}-{i}", tenant=tenant, seq=seq))
                seq += 1
        order = drain(queue)
        tenants = [job_id[0] for job_id in order]
        assert tenants == ["a", "b", "a", "b", "a", "b"]

    def test_weights_skew_the_share(self):
        queue = WeightedFairQueue(weights={"gold": 3.0})
        seq = 0
        for i in range(6):
            for tenant in ("gold", "bronze"):
                queue.push(QueueEntry(f"{tenant}-{i}", tenant=tenant, seq=seq))
                seq += 1
        first_eight = drain(queue)[:8]
        gold = sum(1 for job_id in first_eight if job_id.startswith("gold"))
        assert gold == 6  # gold gets ~3x bronze's dispatches

    def test_latecomer_starts_at_the_current_virtual_clock(self):
        queue = WeightedFairQueue()
        for i in range(6):
            queue.push(QueueEntry(f"old-{i}", tenant="old", seq=i))
        for _ in range(4):
            queue.pop()
        queue.push(QueueEntry("new-0", tenant="new", seq=6))
        queue.push(QueueEntry("new-1", tenant="new", seq=7))
        # "new" owes no back-service: it interleaves, it does not binge
        order = drain(queue)
        assert order[0] == "new-0"
        assert order[1] == "old-4"

    def test_single_tenant_is_priority_then_fifo(self):
        queue = WeightedFairQueue(aging_every=0)
        queue.push(QueueEntry("low", priority=0, seq=0))
        queue.push(QueueEntry("high", priority=5, seq=1))
        queue.push(QueueEntry("mid-a", priority=2, seq=2))
        queue.push(QueueEntry("mid-b", priority=2, seq=3))
        assert drain(queue) == ["high", "mid-a", "mid-b", "low"]


class TestPriorityAging:
    def test_starvation_is_bounded(self):
        # a stream of priority-9 jobs keeps arriving; aging still gets
        # the priority-0 job dispatched within a bounded window.
        queue = WeightedFairQueue(aging_every=2)
        queue.push(QueueEntry("starved", priority=0, seq=0))
        dispatched = []
        for i in range(40):
            # fresh high-priority arrivals keep coming, one per dispatch
            queue.push(QueueEntry(f"vip-{i}", priority=9, seq=i + 1))
            entry = queue.pop()
            dispatched.append(entry.job_id)
            if entry.job_id == "starved":
                break
        # effective priority reaches 9 after 18 waited dispatches; the
        # -seq tiebreak then beats every fresher vip
        assert "starved" in dispatched
        assert len(dispatched) <= 2 * 9 + 2
        assert queue.aged >= 1

    def test_aging_disabled_starves_forever(self):
        queue = WeightedFairQueue(aging_every=0)
        queue.push(QueueEntry("starved", priority=0, seq=0))
        for i in range(20):
            queue.push(QueueEntry(f"vip-{i}", priority=9, seq=i + 1))
        order = [queue.pop().job_id for _ in range(20)]
        assert "starved" not in order
        assert queue.aged == 0

    def test_negative_aging_rejected(self):
        with pytest.raises(ConfigError):
            WeightedFairQueue(aging_every=-1)


class TestQueueSurface:
    def test_depth_tenants_and_remove(self):
        queue = WeightedFairQueue()
        queue.push(QueueEntry("a-0", tenant="a", seq=0))
        queue.push(QueueEntry("a-1", tenant="a", seq=1))
        queue.push(QueueEntry("b-0", tenant="b", seq=2))
        assert len(queue) == 3
        assert queue.depth("a") == 2
        assert queue.tenants() == {"a": 2, "b": 1}
        assert queue.remove("a-1") is True
        assert queue.remove("a-1") is False
        assert queue.depth() == 2

    def test_pop_empty_is_none(self):
        assert WeightedFairQueue().pop() is None

    def test_deterministic_replay(self):
        def build():
            q = WeightedFairQueue(aging_every=3)
            for i in range(12):
                q.push(QueueEntry(
                    f"job-{i}", tenant=("x", "y", "z")[i % 3],
                    priority=i % 4, seq=i,
                ))
            return drain(q)

        assert build() == build()


class TestEligibilityFilter:
    """``pop(eligible)``: health-gated dispatch must not disturb fairness."""

    def test_ineligible_entries_stay_queued_untouched(self):
        queue = WeightedFairQueue()
        queue.push(QueueEntry("held", tenant="a", seq=0))
        queue.push(QueueEntry("free", tenant="a", seq=1))
        entry = queue.pop(lambda e: e.job_id != "held")
        assert entry.job_id == "free"
        assert len(queue) == 1
        assert queue.pop().job_id == "held"

    def test_nothing_eligible_returns_none_without_advancing_clocks(self):
        queue = WeightedFairQueue()
        queue.push(QueueEntry("a-0", tenant="a", seq=0))
        queue.push(QueueEntry("b-0", tenant="b", seq=1))
        assert queue.pop(lambda e: False) is None
        assert len(queue) == 2
        # the held pops must not have charged any tenant's virtual
        # clock: fairness replays exactly as if the filter never ran
        order = [queue.pop().job_id for _ in range(2)]
        assert order == ["a-0", "b-0"]

    def test_filter_skips_to_the_next_tenant_with_eligible_work(self):
        queue = WeightedFairQueue()
        queue.push(QueueEntry("a-0", tenant="a", seq=0))
        queue.push(QueueEntry("b-0", tenant="b", seq=1))
        entry = queue.pop(lambda e: e.tenant == "b")
        assert entry.job_id == "b-0"
        # tenant b paid for its dispatch; tenant a did not
        assert queue.pop().job_id == "a-0"

    def test_priority_still_decides_within_the_eligible_set(self):
        queue = WeightedFairQueue(aging_every=0)
        queue.push(QueueEntry("low", priority=0, seq=0))
        queue.push(QueueEntry("held", priority=9, seq=1))
        queue.push(QueueEntry("high", priority=5, seq=2))
        entry = queue.pop(lambda e: e.job_id != "held")
        assert entry.job_id == "high"
