"""Service-side QoS: tenant budgets, WFQ dispatch, shedding, shares.

Drives :class:`JobService` in-process with a stub runner pool (no
subprocesses), mirroring ``tests/service/test_admission.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import AdmissionError
from repro.faults import parse_faults
from repro.service.jobspec import ServiceJobSpec
from repro.service.protocol import (
    ERR_BUDGET_EXCEEDED,
    ERR_OVERLOADED,
    ERR_TENANT_BUDGET,
)
from repro.service.server import JobService, ServiceConfig
from repro.service.state import STATE_DONE, read_json_crc


def make_service(tmp_path, **kw) -> JobService:
    return JobService(ServiceConfig(state_dir=str(tmp_path / "state"), **kw))


def make_spec(tmp_path, n=0, **kw) -> ServiceJobSpec:
    path = tmp_path / f"input-{n}.txt"
    if not path.exists():
        path.write_text("alpha beta gamma\n")
    return ServiceJobSpec(app="wordcount", inputs=(str(path),), **kw)


class HeldRunners:
    """Stub runner pool: jobs park in ``_running`` until released."""

    def __init__(self, service: JobService) -> None:
        self.service = service
        self.started: list[str] = []
        self.release = asyncio.Event()
        service._run_job = self._fake_run

    async def _fake_run(self, record):
        svc = self.service

        class _Held:
            pass

        held = _Held()
        held.record = record
        held.proc = None
        held.cancelling = False
        svc._running[record.job_id] = held
        self.started.append(record.job_id)
        await self.release.wait()
        svc._running.pop(record.job_id, None)
        svc.state.save_record(record.with_(state=STATE_DONE, exit_code=0))


def run(coro):
    return asyncio.run(coro)


class TestTenantBudgets:
    def test_tenant_concurrency_cap_is_typed(self, tmp_path):
        async def scenario():
            svc = make_service(
                tmp_path, max_concurrent=1, tenant_max_concurrent=2,
            )
            HeldRunners(svc)
            svc.admit(make_spec(tmp_path, 0, tenant="acme"))
            await asyncio.sleep(0)  # let the dispatch task register
            svc.admit(make_spec(tmp_path, 1, tenant="acme"))
            with pytest.raises(AdmissionError) as excinfo:
                svc.admit(make_spec(tmp_path, 2, tenant="acme"))
            assert excinfo.value.code == ERR_TENANT_BUDGET
            assert svc.counters["tenant_rejected"] == 1
            # a different tenant is unaffected
            svc.admit(make_spec(tmp_path, 3, tenant="other"))

        run(scenario())

    def test_tenant_memory_budget_is_per_tenant(self, tmp_path):
        async def scenario():
            svc = make_service(
                tmp_path, max_concurrent=1, tenant_budget="100MB",
            )
            HeldRunners(svc)
            svc.admit(make_spec(
                tmp_path, 0, tenant="acme", memory_budget="80MB"))
            await asyncio.sleep(0)
            with pytest.raises(AdmissionError) as excinfo:
                svc.admit(make_spec(
                    tmp_path, 1, tenant="acme", memory_budget="40MB"))
            assert excinfo.value.code == ERR_TENANT_BUDGET
            # the same ask lands fine under another tenant's budget
            svc.admit(make_spec(
                tmp_path, 2, tenant="other", memory_budget="40MB"))

        run(scenario())


class TestDefaultJobBudget:
    """Regression for the unbudgeted-bypass bug: jobs without a
    ``memory_budget`` used to slip past the service-wide budget sum."""

    def test_budgetless_jobs_are_charged_the_default(self, tmp_path):
        async def scenario():
            svc = make_service(
                tmp_path, max_concurrent=1,
                service_budget="100MB", default_job_budget="60MB",
            )
            HeldRunners(svc)
            svc.admit(make_spec(tmp_path, 0))  # charged 60MB, admitted
            await asyncio.sleep(0)
            with pytest.raises(AdmissionError) as excinfo:
                svc.admit(make_spec(tmp_path, 1))  # another 60MB: over
            assert excinfo.value.code == ERR_BUDGET_EXCEEDED

        run(scenario())

    def test_default_counts_against_tenant_budget_too(self, tmp_path):
        async def scenario():
            svc = make_service(
                tmp_path, max_concurrent=1,
                tenant_budget="100MB", default_job_budget="60MB",
            )
            HeldRunners(svc)
            svc.admit(make_spec(tmp_path, 0, tenant="acme"))
            await asyncio.sleep(0)
            with pytest.raises(AdmissionError) as excinfo:
                svc.admit(make_spec(tmp_path, 1, tenant="acme"))
            assert excinfo.value.code == ERR_TENANT_BUDGET

        run(scenario())

    def test_strict_mode_still_rejects_budgetless(self, tmp_path):
        async def scenario():
            svc = make_service(
                tmp_path, max_concurrent=1, service_budget="100MB",
            )
            HeldRunners(svc)
            with pytest.raises(AdmissionError) as excinfo:
                svc.admit(make_spec(tmp_path, 0))
            assert excinfo.value.code == ERR_BUDGET_EXCEEDED

        run(scenario())


class TestOverloadShedding:
    def test_aggregate_io_demand_sheds(self, tmp_path):
        async def scenario():
            svc = make_service(
                tmp_path, max_concurrent=4,
                node_bandwidth="100MB", shed_factor=1.5,
            )
            HeldRunners(svc)
            svc.admit(make_spec(tmp_path, 0, io_budget="100MB"))
            await asyncio.sleep(0)
            with pytest.raises(AdmissionError) as excinfo:
                svc.admit(make_spec(tmp_path, 1, io_budget="100MB"))
            assert excinfo.value.code == ERR_OVERLOADED
            assert svc.counters["shed"] == 1
            # jobs with no declared demand are never shed
            svc.admit(make_spec(tmp_path, 2))

        run(scenario())

    def test_injected_tenant_surge_sheds_once_per_job(self, tmp_path):
        async def scenario():
            svc = make_service(
                tmp_path, max_concurrent=1,
                fault_plan=parse_faults("qos.tenant.surge=once", seed=3),
            )
            HeldRunners(svc)
            spec = make_spec(tmp_path, 0, tenant="acme")
            with pytest.raises(AdmissionError) as excinfo:
                svc.admit(spec)
            assert excinfo.value.code == ERR_OVERLOADED
            assert svc.counters["shed"] == 1
            # the client's resubmission of the same job passes
            record, reattached = svc.admit(spec)
            assert not reattached
            assert record.job_id == spec.job_id()

        run(scenario())


class TestWeightedFairDispatch:
    def test_flooding_tenant_waits_its_turn(self, tmp_path):
        async def scenario():
            svc = make_service(tmp_path, max_concurrent=1)
            held = HeldRunners(svc)
            svc.admit(make_spec(tmp_path, 0, tenant="heavy"))  # runs
            await asyncio.sleep(0)
            for n in range(1, 5):
                svc.admit(make_spec(tmp_path, n, tenant="heavy"))
            svc.admit(make_spec(tmp_path, 5, tenant="interactive"))
            # WFQ guarantee: interactive's lone job is at most one
            # dispatch behind, not behind heavy's whole backlog
            first, second = svc._pop_next(), svc._pop_next()
            tenants = {
                svc._tenant_of(r.job_id) for r in (first, second)
            }
            assert "interactive" in tenants
            assert held.started  # the first admit actually dispatched

        run(scenario())


class TestDispatchShares:
    def test_share_written_and_drained(self, tmp_path):
        async def scenario():
            svc = make_service(
                tmp_path, max_concurrent=2, node_bandwidth=1000,
            )
            spec = make_spec(tmp_path, 0, io_budget="1KB")
            record, _ = svc.admit(spec)
            # admit() schedules the real _run_job; give it one tick to
            # write qos.json and launch (the runner itself is real but
            # tiny: a three-word wordcount)
            for _ in range(400):
                await asyncio.sleep(0.05)
                fresh = svc.state.load_record(record.job_id)
                if fresh is not None and fresh.finished:
                    break
            qos = read_json_crc(
                svc.state.job_dir(record.job_id) / "qos.json"
            )
            # solo job: its share is min(demand, node bandwidth)
            assert qos["io_budget"] == 1000
            assert qos["tenant"] == "default"
            # zero tokens leaked once the job finished
            assert svc._io_assigned == {}

        run(scenario())

    def test_contending_jobs_split_the_node(self, tmp_path):
        async def scenario():
            svc = make_service(
                tmp_path, max_concurrent=2, node_bandwidth=1000,
                shed_factor=4.0,
            )
            HeldRunners(svc)
            a, _ = svc.admit(make_spec(tmp_path, 0, io_budget="1KB"))
            await asyncio.sleep(0)
            share = svc._assign_io_share(
                svc.admit(make_spec(tmp_path, 1, io_budget="1KB"))[0].job_id
            )
            # with one identical job already running, max-min halves it
            assert share == 500

        run(scenario())


class TestQosCounterSurface:
    def test_counters_and_tenant_overview(self, tmp_path):
        async def scenario():
            svc = make_service(tmp_path, max_concurrent=1)
            HeldRunners(svc)
            svc.admit(make_spec(tmp_path, 0, tenant="acme"))
            await asyncio.sleep(0)
            svc.admit(make_spec(tmp_path, 1, tenant="acme"))
            counters = svc._qos_counters()
            assert counters["admitted"] == 2
            assert "aged" in counters
            overview = svc._tenant_overview()
            assert overview.get("acme", {}).get("queued") == 1

        run(scenario())

    def test_spec_tenant_validation(self, tmp_path):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            make_spec(tmp_path, 0, tenant="")
