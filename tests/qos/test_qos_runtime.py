"""End-to-end throttled runs: digest identity, counters, fault sites.

The load-bearing property: throttling only *delays* I/O — an
``io_budget`` of any size changes wall-clock, never bytes, so output
digests are identical to the unthrottled run's.
"""

from __future__ import annotations

import pytest

from repro.analysis.timeline import render_qos_summary
from repro.apps.wordcount import make_wordcount_job
from repro.core.options import RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.core.supmr import SupMRRuntime
from repro.errors import ConfigError
from repro.faults import parse_faults


def supmr_options(**kw) -> RuntimeOptions:
    return RuntimeOptions.supmr_interfile("64KB").with_(**kw)


class TestDigestIdentity:
    def test_supmr_digest_unchanged_by_throttle(self, text_file):
        job = make_wordcount_job([text_file])
        plain = SupMRRuntime(supmr_options()).run(job)
        # generous budget: the run pays a few waits, not minutes
        throttled = SupMRRuntime(
            supmr_options(io_budget="64MB", tenant="acme")
        ).run(job)
        assert throttled.output_digest() == plain.output_digest()
        assert throttled.output == plain.output

    def test_phoenix_digest_unchanged_by_throttle(self, text_file):
        job = make_wordcount_job([text_file])
        plain = PhoenixRuntime().run(job)
        throttled = PhoenixRuntime(
            RuntimeOptions().with_(io_budget="64MB")
        ).run(job)
        assert throttled.output_digest() == plain.output_digest()

    def test_digest_stable_across_budgets(self, text_file):
        job = make_wordcount_job([text_file])
        digests = {
            SupMRRuntime(supmr_options(io_budget=budget)).run(job)
            .output_digest()
            for budget in ("1MB", "16MB", "512MB")
        }
        assert len(digests) == 1

    def test_spill_path_digest_unchanged_by_throttle(self, text_file):
        job = make_wordcount_job([text_file])
        base = RuntimeOptions.supmr_interfile("16KB").with_(
            memory_budget="64KB"
        )
        plain = SupMRRuntime(base).run(job)
        throttled = SupMRRuntime(base.with_(io_budget="32MB")).run(job)
        assert throttled.output_digest() == plain.output_digest()
        # spill writes are metered too: more bytes than the input alone
        assert throttled.counters["throttle_bytes"] > plain.input_bytes


class TestThrottleCounters:
    def test_counters_surface_on_the_result(self, text_file):
        result = SupMRRuntime(
            supmr_options(io_budget="64MB", tenant="acme")
        ).run(make_wordcount_job([text_file]))
        assert result.counters["tenant"] == "acme"
        assert result.counters["io_budget_bps"] == 64 * 1024 * 1024
        assert result.counters["throttle_bytes"] == result.input_bytes
        assert result.counters["throttle_wait_s"] >= 0.0

    def test_unthrottled_runs_carry_no_qos_counters(self, text_file):
        result = SupMRRuntime(supmr_options()).run(
            make_wordcount_job([text_file])
        )
        assert "io_budget_bps" not in result.counters
        assert "throttle_bytes" not in result.counters

    def test_tight_budget_actually_waits(self, text_file):
        # ~200KB input against a 100KB/s budget with a tiny burst: the
        # run must spend >= 1s waiting (bytes - burst) / rate
        result = SupMRRuntime(
            supmr_options(io_budget="100KB", io_burst="32KB")
        ).run(make_wordcount_job([text_file]))
        floor = (result.input_bytes - 32 * 1024) / (100 * 1024)
        assert result.counters["throttle_wait_s"] >= floor * 0.5
        assert result.counters["throttle_waits"] >= 1

    def test_render_qos_summary_line(self, text_file):
        result = SupMRRuntime(
            supmr_options(io_budget="64MB", tenant="acme")
        ).run(make_wordcount_job([text_file]))
        line = render_qos_summary(result.counters)
        assert line.startswith("qos:")
        assert "tenant=acme" in line
        assert render_qos_summary({}) == ""


class TestThrottleFaultSite:
    def test_injected_stalls_slow_but_do_not_corrupt(self, text_file):
        job = make_wordcount_job([text_file])
        plain = SupMRRuntime(supmr_options()).run(job)
        stalled = SupMRRuntime(supmr_options(
            io_budget="64MB",
            fault_plan=parse_faults("qos.throttle.stall=0.25", seed=7),
        )).run(job)
        assert stalled.output_digest() == plain.output_digest()
        assert stalled.counters.get("throttle_stalls", 0) >= 1
        assert stalled.counters["throttle_wait_s"] > 0


class TestOptionValidation:
    def test_io_budget_parsed_and_validated(self):
        # sizes are normalised to integer bytes/second at construction
        assert (
            RuntimeOptions().with_(io_budget="4MB").io_budget == 4 * 1024 * 1024
        )
        with pytest.raises(ConfigError):
            RuntimeOptions(io_budget="0")
        with pytest.raises(ConfigError):
            RuntimeOptions(io_budget="not-a-size")

    def test_io_burst_requires_a_budget(self):
        with pytest.raises(ConfigError):
            RuntimeOptions(io_burst="1MB")
        RuntimeOptions(io_budget="1MB", io_burst="1MB")  # fine together

    def test_tenant_must_be_non_empty(self):
        with pytest.raises(ConfigError):
            RuntimeOptions(tenant="")
