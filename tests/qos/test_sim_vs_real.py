"""The QoS model vs the simulator vs real throttled runs.

Three views of the same arithmetic must agree: the closed-form fluid
model (``repro.simrt.qos_model``), the event-driven fluid simulator
(``repro.simhw.resources.BandwidthResource``, now backed by the same
allocator classes), and real token-bucket-throttled execution.
"""

from __future__ import annotations

import math
import threading
import time

import pytest

from repro.apps.wordcount import make_wordcount_job
from repro.core.options import RuntimeOptions
from repro.core.supmr import SupMRRuntime
from repro.errors import SimulationError
from repro.qos.allocator import MaxMinFairShare
from repro.qos.throttle import TenantBuckets
from repro.simhw.resources import BandwidthResource
from repro.simrt.qos_model import (
    TenantLoad,
    predict_completions,
    predict_slowdowns,
    solo_completion_s,
    throttled_floor_s,
)


class TestFluidModel:
    def test_solo_completion_is_demand_capped(self):
        load = TenantLoad("a", volume_bytes=1000.0, demand_bps=50.0)
        assert solo_completion_s(load, 100.0) == pytest.approx(20.0)
        # an unbounded demand runs at node capacity
        hungry = TenantLoad("a", volume_bytes=1000.0)
        assert solo_completion_s(hungry, 100.0) == pytest.approx(10.0)

    def test_two_equal_tenants_epoch_by_epoch(self):
        # both at 50/s; a drains at t=2, then b runs alone at 100/s
        finish = predict_completions(
            [TenantLoad("a", 100.0), TenantLoad("b", 300.0)], 100.0
        )
        assert finish["a"] == pytest.approx(2.0)
        assert finish["b"] == pytest.approx(4.0)

    def test_surplus_flows_to_survivors(self):
        # with no reallocation b would take 300/50 = 6s, not 4s
        finish = predict_completions(
            [TenantLoad("a", 100.0), TenantLoad("b", 300.0)], 100.0
        )
        assert finish["b"] < 6.0

    def test_slowdowns_are_at_least_one(self):
        loads = [
            TenantLoad("a", 100.0, weight=2.0),
            TenantLoad("b", 300.0),
            TenantLoad("c", 50.0, demand_bps=10.0),
        ]
        slowdowns = predict_slowdowns(loads, 100.0)
        assert all(s >= 1.0 - 1e-9 for s in slowdowns.values())
        # c's demand fits beside everyone: contention costs it nothing
        assert slowdowns["c"] == pytest.approx(1.0)

    def test_priority_saturation_delays_the_low_level(self):
        loads = [
            TenantLoad("vip", 1000.0, priority=1),
            TenantLoad("peasant", 10.0, priority=0),
        ]
        finish = predict_completions(loads, 100.0, policy="priority")
        # the peasant moves zero bytes until the vip drains at t=10,
        # then runs alone: 10.1s total vs 0.1s solo
        assert finish["vip"] == pytest.approx(10.0)
        assert finish["peasant"] == pytest.approx(10.1)
        slow = predict_slowdowns(loads, 100.0, policy="priority")
        assert slow["peasant"] == pytest.approx(101.0)
        # max-min over the same loads lets the peasant slip out early
        fair = predict_completions(loads, 100.0, policy="max-min")
        assert fair["peasant"] < 1.0

    def test_input_validation(self):
        with pytest.raises(SimulationError):
            TenantLoad("a", volume_bytes=0.0)
        with pytest.raises(SimulationError):
            TenantLoad("a", volume_bytes=1.0, demand_bps=0.0)
        with pytest.raises(SimulationError):
            predict_completions([TenantLoad("a", 1.0)], 0.0)
        with pytest.raises(SimulationError):
            predict_completions(
                [TenantLoad("a", 1.0), TenantLoad("a", 2.0)], 100.0
            )
        with pytest.raises(SimulationError):
            throttled_floor_s(100.0, 0.0)

    def test_throttled_floor(self):
        assert throttled_floor_s(1000.0, 100.0) == pytest.approx(10.0)
        assert throttled_floor_s(1000.0, 100.0, burst_bytes=500.0) == (
            pytest.approx(5.0)
        )
        assert throttled_floor_s(100.0, 100.0, burst_bytes=500.0) == 0.0


class TestModelVsSimulator:
    """The closed-form model and the event-driven simulator must agree
    exactly — they now share the allocator classes."""

    @pytest.mark.parametrize("policy", ["fair-share", "max-min"])
    def test_finish_times_match(self, sim, policy):
        loads = [
            TenantLoad("a", 120.0),
            TenantLoad("b", 500.0, weight=2.0),
            TenantLoad("c", 80.0, demand_bps=15.0),
        ]
        predicted = predict_completions(loads, 100.0, policy=policy)

        from repro.qos.allocator import make_allocator

        chan = BandwidthResource(
            sim, total_rate=100.0, allocator=make_allocator(policy, 100.0)
        )
        finished: dict[str, float] = {}
        for load in loads:
            cap = None if math.isinf(load.demand_bps) else load.demand_bps
            event = chan.transfer(
                load.volume_bytes, weight=load.weight, cap=cap,
                priority=load.priority, tag=load.name,
            )
            event.callbacks.append(
                lambda _e, name=load.name: finished.setdefault(name, sim.now)
            )
        sim.run()
        for name, predicted_s in predicted.items():
            assert finished[name] == pytest.approx(predicted_s), name


class TestModelVsRealRuns:
    def test_real_throttled_run_respects_the_floor(self, text_file):
        rate, burst = 100 * 1024, 32 * 1024
        options = RuntimeOptions.supmr_interfile("64KB").with_(
            io_budget=rate, io_burst=burst
        )
        start = time.monotonic()
        result = SupMRRuntime(options).run(make_wordcount_job([text_file]))
        elapsed = time.monotonic() - start
        floor = throttled_floor_s(result.input_bytes, rate, burst)
        assert floor > 0.5  # the fixture is big enough for the rate to bind
        assert elapsed >= floor * 0.9  # slack for counter granularity

    def test_tenant_buckets_match_predicted_ordering(self):
        # two tenants drain through real (wall-clock) token buckets fed
        # by the same allocator the model uses; completion order and
        # rough magnitudes must match the prediction
        capacity = 400_000.0
        volumes = {"heavy": 60_000.0, "quick": 15_000.0}
        predicted = predict_completions(
            [TenantLoad(name, vol) for name, vol in volumes.items()],
            capacity,
        )
        buckets = TenantBuckets(MaxMinFairShare(capacity), burst_s=0.01)
        for name in volumes:
            buckets.set_demand(name, capacity)

        done: dict[str, float] = {}
        start = time.monotonic()

        def drain(name: str) -> None:
            bucket = buckets.bucket(name)
            remaining = volumes[name]
            while remaining > 0:
                chunk = min(4096, remaining)
                bucket.acquire(int(chunk))
                remaining -= chunk
            done[name] = time.monotonic() - start

        threads = [
            threading.Thread(target=drain, args=(name,)) for name in volumes
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert done["quick"] < done["heavy"]
        assert predicted["quick"] < predicted["heavy"]
        # enforcement cannot beat the model's fluid lower bound by more
        # than the burst allowance
        assert done["heavy"] >= throttled_floor_s(
            volumes["heavy"], capacity / 2, burst_bytes=capacity / 2 * 0.01
        ) * 0.9
