"""Allocator invariants: conservation, demand caps, policy semantics.

The property tests sweep random demand vectors and check the invariants
every policy must hold (never allocate past capacity, never past a
flow's demand), then pin max-min against :func:`brute_force_max_min` —
a structurally different bisection reference — so a future edit to the
water-fill loop cannot silently change the arithmetic both the
simulator and the service depend on.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import ConfigError
from repro.qos.allocator import (
    EPSILON,
    FairShare,
    MaxMinFairShare,
    PriorityLevels,
    brute_force_max_min,
    make_allocator,
    POLICIES,
)

_SLOP = 1e-6


def _random_demands(rng: random.Random, n: int) -> list[float]:
    return [rng.choice([rng.uniform(0.1, 50.0), math.inf]) for _ in range(n)]


class TestInvariants:
    """Properties every policy must satisfy on arbitrary demand vectors."""

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_conservation_and_demand_caps(self, policy):
        rng = random.Random(1234)
        for trial in range(60):
            capacity = rng.uniform(1.0, 100.0)
            allocator = make_allocator(policy, capacity)
            demands = _random_demands(rng, rng.randint(1, 9))
            for i, demand in enumerate(demands):
                allocator.register(
                    f"flow-{i}", demand,
                    weight=rng.choice([0.5, 1.0, 2.0]),
                    priority=rng.randint(0, 2),
                )
            rates = allocator.allocate()
            assert sum(rates.values()) <= capacity + _SLOP
            for i, demand in enumerate(demands):
                assert rates[f"flow-{i}"] <= demand + _SLOP
                assert rates[f"flow-{i}"] >= 0.0

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_underloaded_node_satisfies_everyone(self, policy):
        allocator = make_allocator(policy, 100.0)
        allocator.register("a", 10.0)
        allocator.register("b", 20.0, priority=1)
        rates = allocator.allocate()
        assert rates["a"] == pytest.approx(10.0)
        assert rates["b"] == pytest.approx(20.0)

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_registration_order_does_not_matter(self, policy):
        demands = [(f"f{i}", d, w, p) for i, (d, w, p) in enumerate([
            (30.0, 1.0, 0), (5.0, 2.0, 1), (math.inf, 1.0, 0), (12.0, 0.5, 2),
        ])]
        forward = make_allocator(policy, 40.0)
        for flow, d, w, p in demands:
            forward.register(flow, d, weight=w, priority=p)
        backward = make_allocator(policy, 40.0)
        for flow, d, w, p in reversed(demands):
            backward.register(flow, d, weight=w, priority=p)
        fw, bw = forward.allocate(), backward.allocate()
        for flow, *_ in demands:
            assert fw[flow] == pytest.approx(bw[flow])


class TestMaxMin:
    def test_matches_brute_force_on_random_vectors(self):
        rng = random.Random(77)
        for trial in range(80):
            capacity = rng.uniform(5.0, 200.0)
            demands = _random_demands(rng, rng.randint(1, 8))
            allocator = MaxMinFairShare(capacity)
            for i, demand in enumerate(demands):
                allocator.register(i, demand)
            rates = allocator.allocate()
            reference = brute_force_max_min(demands, capacity)
            for i, want in enumerate(reference):
                assert rates[i] == pytest.approx(want, abs=1e-4), (
                    f"trial {trial}: demands={demands} capacity={capacity}"
                )

    def test_surplus_recycles_to_hungry_flows(self):
        allocator = MaxMinFairShare(90.0)
        allocator.register("tiny", 10.0)
        allocator.register("hungry", math.inf)
        rates = allocator.allocate()
        assert rates["tiny"] == pytest.approx(10.0)
        assert rates["hungry"] == pytest.approx(80.0)

    def test_weighted_split(self):
        allocator = MaxMinFairShare(90.0)
        allocator.register("heavy", math.inf, weight=2.0)
        allocator.register("light", math.inf, weight=1.0)
        rates = allocator.allocate()
        assert rates["heavy"] == pytest.approx(60.0)
        assert rates["light"] == pytest.approx(30.0)

    def test_aggregate_at_least_fair_share(self):
        # max-min recycles surplus; plain fair share leaves it stranded.
        rng = random.Random(5)
        for _ in range(40):
            capacity = rng.uniform(10.0, 100.0)
            demands = _random_demands(rng, rng.randint(2, 6))
            mm, fs = MaxMinFairShare(capacity), FairShare(capacity)
            for i, demand in enumerate(demands):
                mm.register(i, demand)
                fs.register(i, demand)
            assert sum(mm.allocate().values()) >= \
                sum(fs.allocate().values()) - _SLOP


class TestFairShare:
    def test_surplus_not_recycled(self):
        allocator = FairShare(90.0)
        allocator.register("tiny", 10.0)
        allocator.register("hungry", math.inf)
        rates = allocator.allocate()
        assert rates["tiny"] == pytest.approx(10.0)
        assert rates["hungry"] == pytest.approx(45.0)  # its half, no more


class TestPriorityLevels:
    def test_higher_level_served_first(self):
        allocator = PriorityLevels(100.0)
        allocator.register("batch", math.inf, priority=0)
        allocator.register("interactive", 30.0, priority=5)
        rates = allocator.allocate()
        assert rates["interactive"] == pytest.approx(30.0)
        assert rates["batch"] == pytest.approx(70.0)

    def test_saturated_high_level_starves_low(self):
        allocator = PriorityLevels(100.0)
        allocator.register("greedy", math.inf, priority=1)
        allocator.register("starved", 10.0, priority=0)
        rates = allocator.allocate()
        assert rates["greedy"] == pytest.approx(100.0)
        assert rates["starved"] <= EPSILON

    def test_waterfill_within_a_level(self):
        allocator = PriorityLevels(60.0)
        allocator.register("a", math.inf, priority=1)
        allocator.register("b", math.inf, priority=1)
        rates = allocator.allocate()
        assert rates["a"] == pytest.approx(30.0)
        assert rates["b"] == pytest.approx(30.0)


class TestRegistrationSurface:
    def test_duplicate_flow_rejected(self):
        allocator = MaxMinFairShare(10.0)
        allocator.register("a", 1.0)
        with pytest.raises(ConfigError):
            allocator.register("a", 2.0)

    def test_bad_parameters_rejected(self):
        allocator = MaxMinFairShare(10.0)
        with pytest.raises(ConfigError):
            allocator.register("a", -1.0)
        with pytest.raises(ConfigError):
            allocator.register("b", 1.0, weight=0.0)
        with pytest.raises(ConfigError):
            MaxMinFairShare(0.0)
        with pytest.raises(ConfigError):
            make_allocator("round-robin", 10.0)

    def test_reset_and_share_lookup(self):
        allocator = MaxMinFairShare(10.0)
        allocator.register("a", 4.0)
        allocator.allocate()
        assert allocator.share("a") == pytest.approx(4.0)
        assert allocator.share("missing") == 0.0
        assert allocator.utilization == pytest.approx(0.4)
        allocator.reset()
        assert allocator.allocate() == {}
        assert allocator.total_allocated == 0.0

    def test_set_capacity_changes_the_split(self):
        allocator = MaxMinFairShare(10.0)
        allocator.register("a", math.inf)
        allocator.register("b", math.inf)
        assert allocator.allocate()["a"] == pytest.approx(5.0)
        allocator.set_capacity(40.0)
        assert allocator.allocate()["a"] == pytest.approx(20.0)


class TestHostCapacity:
    """Per-host composition: the cluster-aware service's allocator."""

    def _make(self, capacity=100.0, **kw):
        from repro.qos.allocator import HostCapacityAllocator

        return HostCapacityAllocator(capacity, **kw)

    def test_same_host_flows_split_that_hosts_capacity(self):
        allocator = self._make(100.0)
        allocator.register("a", math.inf, host="h1")
        allocator.register("b", math.inf, host="h1")
        rates = allocator.allocate()
        assert rates["a"] == pytest.approx(50.0)
        assert rates["b"] == pytest.approx(50.0)

    def test_different_hosts_do_not_contend(self):
        # ten agents are ten disks: per-host conservation, not global
        allocator = self._make(100.0)
        allocator.register("a", math.inf, host="h1")
        allocator.register("b", math.inf, host="h2")
        rates = allocator.allocate()
        assert rates["a"] == pytest.approx(100.0)
        assert rates["b"] == pytest.approx(100.0)
        assert allocator.total_allocated == pytest.approx(200.0)

    def test_per_host_capacity_override(self):
        allocator = self._make(100.0, host_capacity={"slow": 10.0})
        allocator.register("a", math.inf, host="slow")
        allocator.register("b", math.inf, host="fast")
        rates = allocator.allocate()
        assert rates["a"] == pytest.approx(10.0)
        assert rates["b"] == pytest.approx(100.0)

    def test_default_host_is_local(self):
        allocator = self._make(60.0)
        allocator.register("a", math.inf)
        allocator.register("b", math.inf)
        assert allocator.allocate()["a"] == pytest.approx(30.0)

    def test_inner_policy_is_validated(self):
        with pytest.raises(ConfigError, match="unknown inner policy"):
            self._make(100.0, inner_policy="warp")

    def test_inner_policy_applies_within_each_host(self):
        allocator = self._make(90.0, inner_policy="max-min")
        allocator.register("tiny", 10.0, host="h1")
        allocator.register("hungry", math.inf, host="h1")
        rates = allocator.allocate()
        assert rates["tiny"] == pytest.approx(10.0)
        assert rates["hungry"] == pytest.approx(80.0)

    def test_not_in_the_policy_registry(self):
        # per-host composes *over* a policy; it is not itself one the
        # --qos-policy flag can name
        assert "per-host" not in POLICIES
        with pytest.raises(ConfigError):
            make_allocator("per-host", 10.0)

    def test_reset_clears_host_tagging(self):
        allocator = self._make(100.0)
        allocator.register("a", math.inf, host="h1")
        allocator.allocate()
        allocator.reset()
        assert allocator.allocate() == {}
        allocator.register("a", math.inf, host="h2")
        allocator.register("b", math.inf, host="h2")
        assert allocator.allocate()["a"] == pytest.approx(50.0)
