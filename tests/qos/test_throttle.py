"""Token-bucket semantics under a fake monotonic clock."""

from __future__ import annotations

import pytest

from repro.core.options import RuntimeOptions
from repro.errors import ConfigError
from repro.faults import FaultInjector, RecoveryPolicy, parse_faults
from repro.qos.allocator import MaxMinFairShare
from repro.qos.throttle import (
    DEFAULT_STALL_S,
    TenantBuckets,
    TokenBucket,
    bucket_from_options,
)


class FakeClock:
    """A controllable monotonic clock whose sleep advances it.

    ``advance_on_sleep=False`` records the sleeps without moving time,
    for tests that want to control refill elapsed time exactly.
    """

    def __init__(self, advance_on_sleep: bool = True) -> None:
        self.now = 0.0
        self.slept: list[float] = []
        self._advance = advance_on_sleep

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)
        if self._advance:
            self.now += seconds


def make_bucket(rate=100.0, burst=100.0, **kw) -> tuple[TokenBucket, FakeClock]:
    clock = FakeClock()
    bucket = TokenBucket(rate, burst, clock=clock, sleep=clock.sleep, **kw)
    return bucket, clock


class TestTokenBucket:
    def test_starts_full_so_a_burst_is_free(self):
        bucket, clock = make_bucket(rate=100.0, burst=100.0)
        assert bucket.acquire(100) == 0.0
        assert clock.slept == []

    def test_debt_model_waits_the_overdraft_out(self):
        bucket, clock = make_bucket(rate=100.0, burst=100.0)
        bucket.acquire(100)           # drains the burst
        wait = bucket.acquire(50)     # 50 bytes of debt at 100 B/s
        assert wait == pytest.approx(0.5)
        assert clock.slept == [pytest.approx(0.5)]

    def test_average_rate_converges(self):
        bucket, clock = make_bucket(rate=1000.0, burst=1000.0)
        total = 0
        for _ in range(20):
            total += 500
            bucket.acquire(500)
        # elapsed >= (bytes - one burst) / rate
        assert clock.now >= (total - 1000.0) / 1000.0 - 1e-9

    def test_refill_caps_at_burst(self):
        bucket, clock = make_bucket(rate=100.0, burst=100.0)
        clock.now += 1000.0           # a long idle period
        assert bucket.tokens == pytest.approx(100.0)

    def test_set_rate_integrates_at_the_old_rate_first(self):
        clock = FakeClock(advance_on_sleep=False)
        bucket = TokenBucket(100.0, 100.0, clock=clock, sleep=clock.sleep)
        bucket.acquire(200)           # 100 B of debt
        clock.now += 0.5              # old rate repays 50 B of it
        bucket.set_rate(1000.0)
        wait = bucket.acquire(0)
        assert wait == pytest.approx(0.05)  # remaining 50 B at 1000 B/s

    def test_zero_acquire_is_free_and_negative_rejected(self):
        bucket, _ = make_bucket()
        assert bucket.acquire(0) == 0.0
        with pytest.raises(ConfigError):
            bucket.acquire(-1)
        with pytest.raises(ConfigError):
            TokenBucket(0.0)
        with pytest.raises(ConfigError):
            bucket.set_rate(-5.0)

    def test_counters_tally_bytes_and_waits(self):
        bucket, _ = make_bucket(rate=100.0, burst=100.0)
        bucket.acquire(100)
        bucket.acquire(30)
        counters = bucket.counters()
        assert counters["throttle_bytes"] == 130
        assert counters["throttle_waits"] == 1
        assert counters["throttle_wait_s"] == pytest.approx(0.3)
        assert counters["io_budget_bps"] == 100
        assert "throttle_stalls" not in counters

    def test_injected_stall_adds_wait_and_counts(self):
        plan = parse_faults("qos.throttle.stall", seed=0)
        injector = FaultInjector(plan, RecoveryPolicy())
        clock = FakeClock()
        bucket = TokenBucket(
            1000.0, 1000.0, clock=clock, sleep=clock.sleep,
            injector=injector, scope="tenant-a",
        )
        waits = [bucket.acquire(1) for _ in range(5)]
        assert bucket.stalls == 5  # probability-1 plan stalls every acquire
        assert min(waits) >= DEFAULT_STALL_S
        assert bucket.counters()["throttle_stalls"] == 5


class TestBucketFromOptions:
    def test_none_when_unbudgeted(self):
        assert bucket_from_options(RuntimeOptions()) is None

    def test_built_from_options_fields(self):
        options = RuntimeOptions().with_(
            io_budget="1MB", io_burst="2MB", tenant="acme"
        )
        bucket = bucket_from_options(options)
        assert bucket is not None
        assert bucket.rate_bps == 1024 * 1024
        assert bucket.burst_bytes == 2 * 1024 * 1024


class TestTenantBuckets:
    def test_shares_track_contention(self):
        clock = FakeClock()
        buckets = TenantBuckets(
            MaxMinFairShare(100.0), clock=clock, sleep=clock.sleep
        )
        assert buckets.set_demand("a", 100.0) == pytest.approx(100.0)
        # a second tenant halves the first's share and re-rates its bucket
        assert buckets.set_demand("b", 100.0) == pytest.approx(50.0)
        assert buckets.bucket("a").rate_bps == pytest.approx(50.0)
        assert sorted(buckets.tenants()) == ["a", "b"]

    def test_removal_returns_the_share(self):
        clock = FakeClock()
        buckets = TenantBuckets(
            MaxMinFairShare(100.0), clock=clock, sleep=clock.sleep
        )
        buckets.set_demand("a", 100.0)
        buckets.set_demand("b", 100.0)
        buckets.remove("b")
        assert buckets.shares()["a"] == pytest.approx(100.0)
        assert buckets.bucket("a").rate_bps == pytest.approx(100.0)
        with pytest.raises(ConfigError):
            buckets.bucket("b")

    def test_enforced_rates_shape_real_waiting(self):
        clock = FakeClock()
        buckets = TenantBuckets(
            MaxMinFairShare(1000.0), burst_s=0.001,
            clock=clock, sleep=clock.sleep,
        )
        buckets.set_demand("heavy", 1000.0)
        buckets.set_demand("interactive", 1000.0)
        heavy, interactive = buckets.bucket("heavy"), buckets.bucket("interactive")
        for _ in range(10):
            heavy.acquire(100)
        quick = interactive.acquire(10)
        # heavy's traffic never drains interactive's bucket
        assert heavy.counters()["throttle_wait_s"] > 0
        assert quick <= 10 / interactive.rate_bps + 1e-9
