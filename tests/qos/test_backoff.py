"""Shared deterministic backoff (``repro.util.backoff``)."""

from __future__ import annotations

from repro.util.backoff import exponential_jitter, jitter_fraction


class TestJitterFraction:
    def test_deterministic_in_seed_and_attempt(self):
        assert jitter_fraction(7, 3) == jitter_fraction(7, 3)
        assert jitter_fraction(7, 3) != jitter_fraction(7, 4)
        assert jitter_fraction(7, 3) != jitter_fraction(8, 3)

    def test_in_unit_interval(self):
        for seed in range(5):
            for attempt in range(10):
                assert 0.0 <= jitter_fraction(seed, attempt) < 1.0


class TestExponentialJitter:
    def test_equal_jitter_bounds(self):
        # equal-jitter form: raw/2 <= delay <= raw, raw = base * f^attempt
        for attempt in range(6):
            raw = min(0.01 * 2.0 ** attempt, 1.0)
            delay = exponential_jitter(attempt, base=0.01, cap=1.0, seed=3)
            assert raw / 2 <= delay <= raw

    def test_cap_is_respected(self):
        assert exponential_jitter(50, base=0.01, cap=0.25, seed=0) <= 0.25

    def test_deterministic_under_a_seed(self):
        a = [exponential_jitter(i, base=0.01, cap=1.0, seed=9)
             for i in range(8)]
        b = [exponential_jitter(i, base=0.01, cap=1.0, seed=9)
             for i in range(8)]
        assert a == b

    def test_seeds_decorrelate(self):
        a = [exponential_jitter(i, base=0.01, cap=1.0, seed=1)
             for i in range(8)]
        b = [exponential_jitter(i, base=0.01, cap=1.0, seed=2)
             for i in range(8)]
        assert a != b

    def test_zero_base_or_cap_disables_sleeping(self):
        assert exponential_jitter(3, base=0.0, cap=1.0) == 0.0
        assert exponential_jitter(3, base=0.1, cap=0.0) == 0.0

    def test_negative_attempt_clamps_to_first_attempt_magnitude(self):
        delay = exponential_jitter(-2, base=0.01, cap=1.0, seed=4)
        assert 0.005 <= delay <= 0.01  # same bounds as attempt 0

    def test_grows_on_average(self):
        early = sum(exponential_jitter(0, base=0.01, cap=10.0, seed=s)
                    for s in range(20))
        late = sum(exponential_jitter(6, base=0.01, cap=10.0, seed=s)
                   for s in range(20))
        assert late > early
