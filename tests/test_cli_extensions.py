"""CLI tune/validate subcommands and extension experiments."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments import available_experiments, run_experiment


class TestTuneCommand:
    def test_tune_wordcount(self, capsys):
        assert main(["tune", "wordcount", "--input-size", "20GB"]) == 0
        out = capsys.readouterr().out
        assert "optimal chunk size" in out
        assert "predicted speedup" in out

    def test_tune_with_comparisons(self, capsys):
        assert main(["tune", "sort", "--input-size", "60GB",
                     "--compare", "1GB", "10GB"]) == 0
        out = capsys.readouterr().out
        assert "at      1GB" in out

    def test_tune_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["tune", "grep"])


class TestValidateCommand:
    def test_valid_file_returns_zero(self, tmp_path, terasort_file, capsys):
        from repro.apps.sortapp import reference_sort
        from repro.io.writer import write_terasort_output

        out = tmp_path / "sorted.dat"
        write_terasort_output(out, reference_sort([terasort_file]))
        assert main(["validate", str(out)]) == 0
        assert "sorted           : True" in capsys.readouterr().out

    def test_unsorted_file_returns_one(self, tmp_path, terasort_file, capsys):
        # the raw (unsorted) input fails validation
        assert main(["validate", str(terasort_file)]) == 1
        assert "sorted           : False" in capsys.readouterr().out


class TestExtensionExperiments:
    def test_registered(self):
        exps = available_experiments()
        assert {"ext-energy", "ext-scaleout", "ext-tuning",
                "ext-spectrum"} <= set(exps)

    @pytest.mark.parametrize("exp_id", ["ext-energy", "ext-scaleout",
                                        "ext-tuning", "ext-spectrum"])
    def test_runs_and_renders(self, exp_id):
        result = run_experiment(exp_id, monitor_interval=20.0)
        assert result.exp_id == exp_id
        assert result.body
        assert result.comparisons

    def test_ext_tuning_never_loses_to_hand_tuning(self):
        result = run_experiment("ext-tuning", monitor_interval=50.0)
        for comparison in result.comparisons:
            assert comparison.measured >= 0.999, comparison.render()
