"""Sample sort (ablation alternative)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sortlib.samplesort import bucket_sizes, choose_splitters, sample_sort


class TestSampleSort:
    def test_empty_and_single(self):
        assert sample_sort([], 4) == []
        assert sample_sort([3], 4) == [3]

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            sample_sort([1], 0)

    def test_sorts_correctly(self):
        rng = random.Random(1)
        data = [rng.randrange(1000) for _ in range(500)]
        assert sample_sort(data, 8) == sorted(data)

    def test_deterministic_with_seeded_rng(self):
        data = list(range(100, 0, -1))
        a = sample_sort(data, 4, rng=random.Random(7))
        b = sample_sort(data, 4, rng=random.Random(7))
        assert a == b

    @given(st.lists(st.integers()), st.integers(min_value=1, max_value=8))
    def test_property_key_order(self, data, p):
        assert sample_sort(data, p) == sorted(data)


class TestSplitters:
    def test_parallelism_one_needs_no_splitters(self):
        assert choose_splitters(list(range(10)), 1) == []

    def test_splitter_count(self):
        splitters = choose_splitters(list(range(1000)), 8)
        assert len(splitters) == 7
        assert splitters == sorted(splitters)

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            choose_splitters([1], 0)

    def test_bucket_sizes_sum_to_input(self):
        data = list(range(300))
        sizes = bucket_sizes(data, 6)
        assert sum(sizes) == 300
        assert len(sizes) == 6

    def test_buckets_roughly_balanced_on_uniform_data(self):
        rng = random.Random(5)
        data = [rng.random() for _ in range(4000)]
        sizes = bucket_sizes(data, 4, rng=random.Random(9))
        # oversampled splitters keep the skew moderate on uniform input
        assert max(sizes) < 2.5 * (len(data) / 4)
