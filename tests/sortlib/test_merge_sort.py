"""Pairwise (2-way) merge rounds: the Phoenix baseline merge."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sortlib.merge_sort import (
    merge_pair,
    merge_rounds_schedule,
    pairwise_merge_sort,
    total_items_scanned,
)


class TestMergePair:
    def test_basic_merge(self):
        assert merge_pair([1, 3, 5], [2, 4, 6]) == [1, 2, 3, 4, 5, 6]

    def test_empty_sides(self):
        assert merge_pair([], [1, 2]) == [1, 2]
        assert merge_pair([1, 2], []) == [1, 2]
        assert merge_pair([], []) == []

    def test_stability_prefers_left(self):
        left = [(1, "L")]
        right = [(1, "R")]
        merged = merge_pair(left, right, key=lambda kv: kv[0])
        assert merged == [(1, "L"), (1, "R")]

    def test_key_function(self):
        merged = merge_pair([(3, "a")], [(1, "b"), (5, "c")],
                            key=lambda kv: kv[0])
        assert [k for k, _ in merged] == [1, 3, 5]

    @given(st.lists(st.integers()), st.lists(st.integers()))
    def test_property_equals_sorted_concat(self, a, b):
        a, b = sorted(a), sorted(b)
        assert merge_pair(a, b) == sorted(a + b)


class TestPairwiseMergeSort:
    def test_no_runs(self):
        merged, rounds = pairwise_merge_sort([])
        assert merged == [] and rounds == 0

    def test_single_run_needs_no_rounds(self):
        merged, rounds = pairwise_merge_sort([[1, 2, 3]])
        assert merged == [1, 2, 3] and rounds == 0

    def test_round_count_is_log2(self):
        runs = [[i] for i in range(32)]
        _merged, rounds = pairwise_merge_sort(runs)
        assert rounds == 5  # log2(32)

    def test_odd_run_count(self):
        runs = [[3], [1], [2]]
        merged, rounds = pairwise_merge_sort(runs)
        assert merged == [1, 2, 3]
        assert rounds == 2  # 3 -> 2 -> 1

    @given(st.lists(st.lists(st.integers()), max_size=12))
    def test_property_equals_sorted_union(self, runs):
        runs = [sorted(r) for r in runs]
        merged, _rounds = pairwise_merge_sort(runs)
        assert merged == sorted(x for r in runs for x in r)

    @given(st.integers(min_value=2, max_value=64))
    def test_property_rounds_equal_ceil_log2(self, n):
        runs = [[i] for i in range(n)]
        _merged, rounds = pairwise_merge_sort(runs)
        assert rounds == math.ceil(math.log2(n))


class TestRoundsSchedule:
    def test_empty_and_single(self):
        assert merge_rounds_schedule([]) == []
        assert merge_rounds_schedule([10]) == []

    def test_balanced_32_runs(self):
        schedule = merge_rounds_schedule([100] * 32)
        assert [r.merges for r in schedule] == [16, 8, 4, 2, 1]
        # every round rescans all items
        assert all(r.items_scanned == 3200 for r in schedule)

    def test_total_scan_cost_factor(self):
        # 32 equal runs: sum over rounds = N * 5 (each round rescans all)
        assert total_items_scanned([1] * 32) == 32 * 5

    def test_odd_leftover_not_scanned(self):
        schedule = merge_rounds_schedule([10, 10, 10])
        assert schedule[0].merges == 1
        assert schedule[0].items_scanned == 20  # third run carried over

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            merge_rounds_schedule([5, -1])

    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=2, max_size=40))
    def test_property_scan_cost_bounded_by_n_log_n(self, lengths):
        total = sum(lengths)
        rounds = math.ceil(math.log2(len(lengths)))
        assert total_items_scanned(lengths) <= total * rounds
