"""Parallel multiway mergesort (__gnu_parallel::sort equivalent)."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sortlib.parallel_sort import parallel_sort, split_blocks


class TestSplitBlocks:
    def test_even_split(self):
        assert split_blocks([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_uneven_split_sizes(self):
        blocks = split_blocks(list(range(10)), 3)
        assert [len(b) for b in blocks] == [3, 3, 4]
        assert [x for b in blocks for x in b] == list(range(10))

    def test_more_parts_than_items(self):
        blocks = split_blocks([1], 4)
        assert sum(len(b) for b in blocks) == 1

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            split_blocks([1], 0)


class TestParallelSort:
    def test_empty_and_single(self):
        assert parallel_sort([], 4) == []
        assert parallel_sort([9], 4) == [9]

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            parallel_sort([1], 0)

    def test_reverse_input(self):
        data = list(range(100, 0, -1))
        assert parallel_sort(data, 8) == sorted(data)

    def test_key_function(self):
        data = [(3, "x"), (1, "y"), (2, "z")]
        assert parallel_sort(data, 2, key=lambda kv: kv[0]) == [
            (1, "y"), (2, "z"), (3, "x"),
        ]

    def test_stable_for_equal_keys(self):
        data = [(1, i) for i in range(50)]
        out = parallel_sort(data, 7, key=lambda kv: kv[0])
        assert out == data  # original order preserved

    def test_with_executor(self):
        data = list(range(200, 0, -1))
        with ThreadPoolExecutor(max_workers=4) as pool:
            assert parallel_sort(data, 4, executor=pool) == sorted(data)

    @given(st.lists(st.integers()), st.integers(min_value=1, max_value=8))
    def test_property_equals_sorted(self, data, p):
        assert parallel_sort(data, p) == sorted(data)

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                              st.integers())),
           st.integers(min_value=1, max_value=8))
    def test_property_stability(self, data, p):
        key = lambda kv: kv[0]  # noqa: E731
        assert parallel_sort(data, p, key=key) == sorted(data, key=key)
