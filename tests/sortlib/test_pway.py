"""Parallel p-way merge (the SupMR merge)."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sortlib.kway import kway_merge
from repro.sortlib.pway import pway_merge

sorted_runs = st.lists(
    st.lists(st.integers(min_value=-20, max_value=20)).map(sorted),
    max_size=8,
)


class TestPwayMerge:
    def test_empty(self):
        assert pway_merge([], 4) == []

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            pway_merge([[1]], 0)

    def test_single_worker_degenerates_to_kway(self):
        runs = [[1, 4], [2, 3]]
        assert pway_merge(runs, 1) == [1, 2, 3, 4]

    def test_parallelism_exceeding_items_is_clamped(self):
        assert pway_merge([[1], [2]], 100) == [1, 2]

    def test_tie_order_matches_kway(self):
        runs = [[(2, "a")], [(2, "b")], [(1, "c"), (2, "d")]]
        key = lambda kv: kv[0]  # noqa: E731
        assert pway_merge(runs, 3, key) == kway_merge(runs, key)

    def test_with_real_executor(self):
        runs = [sorted(range(i, 100, 7)) for i in range(7)]
        with ThreadPoolExecutor(max_workers=4) as pool:
            merged = pway_merge(runs, 4, executor=pool)
        assert merged == sorted(x for r in runs for x in r)

    @given(sorted_runs, st.integers(min_value=1, max_value=6))
    def test_property_equals_sorted_union(self, runs, p):
        assert pway_merge(runs, p) == sorted(x for r in runs for x in r)

    @given(sorted_runs, st.integers(min_value=1, max_value=6))
    def test_property_identical_to_sequential_kway(self, runs, p):
        # including tie order: tag elements to make ties observable
        tagged = [
            [(x, idx, pos) for pos, x in enumerate(run)]
            for idx, run in enumerate(runs)
        ]
        key = lambda t: t[0]  # noqa: E731
        assert pway_merge(tagged, p, key) == kway_merge(tagged, key)

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=8))
    def test_property_parallelism_never_changes_output(self, k, p):
        runs = [sorted(range(i, 40, k)) for i in range(k)]
        assert pway_merge(runs, p) == pway_merge(runs, 1)
