"""Multisequence selection invariants."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sortlib.kway import kway_merge
from repro.sortlib.multiway_partition import multiway_partition, multiway_select

sorted_runs = st.lists(
    st.lists(st.integers(min_value=-50, max_value=50)).map(sorted),
    min_size=1,
    max_size=6,
)


class TestMultiwaySelect:
    def test_rank_zero_is_all_zeros(self):
        runs = [[1, 2], [3, 4]]
        assert multiway_select(runs, 0) == [0, 0]

    def test_rank_total_is_all_lengths(self):
        runs = [[1, 2], [3, 4, 5]]
        assert multiway_select(runs, 5) == [2, 3]

    def test_out_of_range_rank_raises(self):
        with pytest.raises(ValueError):
            multiway_select([[1]], 2)
        with pytest.raises(ValueError):
            multiway_select([[1]], -1)

    def test_simple_median(self):
        runs = [[1, 3, 5], [2, 4, 6]]
        cuts = multiway_select(runs, 3)
        left = runs[0][: cuts[0]] + runs[1][: cuts[1]]
        assert sorted(left) == [1, 2, 3]

    def test_ties_go_to_lower_runs_first(self):
        runs = [[5, 5], [5, 5], [5, 5]]
        cuts = multiway_select(runs, 3)
        assert cuts == [2, 1, 0]

    def test_empty_runs_handled(self):
        runs = [[], [1, 2, 3], []]
        cuts = multiway_select(runs, 2)
        assert cuts == [0, 2, 0]

    @given(sorted_runs, st.data())
    def test_property_cut_invariants(self, runs, data):
        total = sum(len(r) for r in runs)
        rank = data.draw(st.integers(min_value=0, max_value=total))
        cuts = multiway_select(runs, rank)
        # sizes match the rank
        assert sum(cuts) == rank
        assert all(0 <= c <= len(r) for c, r in zip(cuts, runs))
        # every left element <= every right element
        left = [x for r, c in zip(runs, cuts) for x in r[:c]]
        right = [x for r, c in zip(runs, cuts) for x in r[c:]]
        if left and right:
            assert max(left) <= min(right)


class TestMultiwayPartition:
    def test_single_part_is_whole_range(self):
        runs = [[1, 2], [3]]
        bounds = multiway_partition(runs, 1)
        assert bounds == [[0, 0], [2, 1]]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            multiway_partition([[1]], 0)

    def test_parts_are_balanced(self):
        runs = [list(range(0, 100, 2)), list(range(1, 100, 2))]
        bounds = multiway_partition(runs, 4)
        sizes = [
            sum(b1 - b0 for b0, b1 in zip(bounds[t], bounds[t + 1]))
            for t in range(4)
        ]
        assert sizes == [25, 25, 25, 25]

    @given(sorted_runs, st.integers(min_value=1, max_value=8))
    def test_property_partition_reconstructs_merge(self, runs, parts):
        bounds = multiway_partition(runs, parts)
        out = []
        for t in range(parts):
            slices = [r[bounds[t][j]: bounds[t + 1][j]]
                      for j, r in enumerate(runs)]
            out.extend(kway_merge(slices))
        assert out == kway_merge(runs)

    @given(sorted_runs, st.integers(min_value=1, max_value=8))
    def test_property_boundaries_monotone(self, runs, parts):
        bounds = multiway_partition(runs, parts)
        for t in range(parts):
            assert all(a <= b for a, b in zip(bounds[t], bounds[t + 1]))

    @given(sorted_runs, st.integers(min_value=1, max_value=8))
    def test_property_part_sizes_differ_by_at_most_one(self, runs, parts):
        total = sum(len(r) for r in runs)
        bounds = multiway_partition(runs, parts)
        sizes = [
            sum(b1 - b0 for b0, b1 in zip(bounds[t], bounds[t + 1]))
            for t in range(parts)
        ]
        assert sum(sizes) == total
        if sizes:
            assert max(sizes) - min(sizes) <= 1
