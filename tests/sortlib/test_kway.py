"""Heap-based k-way merge."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.sortlib.kway import iter_kway_merge, kway_merge, merged_length


class TestKwayMerge:
    def test_empty_input(self):
        assert kway_merge([]) == []

    def test_all_empty_runs(self):
        assert kway_merge([[], [], []]) == []

    def test_single_run(self):
        assert kway_merge([[1, 2, 3]]) == [1, 2, 3]

    def test_three_runs(self):
        runs = [[1, 4, 7], [2, 5, 8], [3, 6, 9]]
        assert kway_merge(runs) == list(range(1, 10))

    def test_tie_order_prefers_lower_run_index(self):
        runs = [[(1, "run0")], [(1, "run1")], [(1, "run2")]]
        merged = kway_merge(runs, key=lambda kv: kv[0])
        assert [tag for _k, tag in merged] == ["run0", "run1", "run2"]

    def test_ties_within_run_keep_position_order(self):
        runs = [[(1, "a"), (1, "b")], [(1, "c")]]
        merged = kway_merge(runs, key=lambda kv: kv[0])
        assert [t for _k, t in merged] == ["a", "b", "c"]

    def test_key_never_compares_values(self):
        # values are uncomparable objects; only keys drive the heap
        class Opaque:
            pass

        runs = [[(1, Opaque())], [(1, Opaque())]]
        merged = kway_merge(runs, key=lambda kv: kv[0])
        assert len(merged) == 2

    def test_streaming_iterator_form(self):
        runs = [[1, 3], [2, 4]]
        it = iter_kway_merge(runs)
        assert next(it) == 1
        assert list(it) == [2, 3, 4]

    def test_accepts_lazy_generators(self):
        def gen(items):
            yield from items

        merged = iter_kway_merge([gen([1, 4]), gen([2, 3]), gen([])])
        assert list(merged) == [1, 2, 3, 4]

    def test_streams_without_materializing_sources(self):
        # Unbounded sources: only possible if the heap pulls lazily.
        import itertools

        evens = itertools.count(0, 2)
        odds = itertools.count(1, 2)
        head = list(itertools.islice(iter_kway_merge([evens, odds]), 6))
        assert head == [0, 1, 2, 3, 4, 5]

    def test_merged_length(self):
        assert merged_length([[1, 2], [3], []]) == 3

    @given(st.lists(st.lists(st.integers()), max_size=10))
    def test_property_equals_sorted_union(self, runs):
        runs = [sorted(r) for r in runs]
        assert kway_merge(runs) == sorted(x for r in runs for x in r)

    @given(st.lists(st.lists(st.integers(min_value=0, max_value=5)),
                    min_size=1, max_size=6))
    def test_property_matches_pairwise_merge(self, runs):
        # k-way and iterated stable 2-way agree item-for-item, ties included
        from repro.sortlib.merge_sort import pairwise_merge_sort

        tagged = [
            [(x, run_idx, pos) for pos, x in enumerate(sorted(r))]
            for run_idx, r in enumerate(runs)
        ]
        key = lambda t: t[0]  # noqa: E731
        assert kway_merge(tagged, key) == pairwise_merge_sort(tagged, key)[0]


class TestNoKeyFastPath:
    """key=None delegates to heapq.merge; semantics must not change."""

    def test_matches_keyed_merge(self):
        runs = [[1, 4, 7], [2, 5, 8], [3, 6, 9]]
        assert kway_merge(runs) == kway_merge(runs, key=lambda x: x)

    def test_stable_in_run_order_on_ties(self):
        # heapq.merge documents stability across its input iterables —
        # the same run-0-first tie rule the decorated path guarantees.
        # 1 == 1.0 but the types tell us which run each came from.
        merged = kway_merge([[1.0, 2.0], [1, 2]])
        assert merged == [1.0, 1, 2.0, 2]
        assert [type(x) for x in merged] == [float, int, float, int]

    def test_streams_lazily_without_key(self):
        import itertools

        evens = itertools.count(0, 2)
        odds = itertools.count(1, 2)
        head = list(itertools.islice(iter_kway_merge([evens, odds]), 6))
        assert head == [0, 1, 2, 3, 4, 5]

    @given(st.lists(st.lists(st.integers()), max_size=10))
    def test_property_no_key_equals_keyed(self, runs):
        runs = [sorted(r) for r in runs]
        assert kway_merge(runs, key=None) == kway_merge(runs, key=lambda x: x)
