"""Grep, histogram, string match, inverted index, linear regression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.grep import make_grep_job, reference_grep
from repro.apps.histogram import bucket_of, make_histogram_job, reference_histogram
from repro.apps.inverted_index import (
    make_inverted_index_job,
    reference_index,
    write_index_corpus,
)
from repro.apps.linear_regression import (
    make_linear_regression_job,
    solve_regression,
)
from repro.apps.string_match import make_string_match_job, reference_match
from repro.core.options import RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.core.supmr import run_ingest_mr
from repro.errors import ConfigError, WorkloadError


class TestGrep:
    def test_matches_reference(self, text_file):
        job = make_grep_job([text_file], rb"a.a")
        result = PhoenixRuntime().run(job)
        assert dict(result.output) == reference_grep([text_file], rb"a.a")

    def test_no_matches(self, tmp_path):
        f = tmp_path / "f.txt"
        f.write_bytes(b"nothing here\n")
        result = PhoenixRuntime().run(make_grep_job([f], rb"zzz"))
        assert result.output == []

    def test_counts_duplicate_lines(self, tmp_path):
        f = tmp_path / "f.txt"
        f.write_bytes(b"hit line\nmiss\nhit line\n")
        result = PhoenixRuntime().run(make_grep_job([f], rb"hit"))
        assert dict(result.output) == {b"hit line": 2}

    def test_supmr_equivalent(self, text_file):
        job = make_grep_job([text_file], rb"th")
        baseline = PhoenixRuntime().run(make_grep_job([text_file], rb"th"))
        chunked = run_ingest_mr(job, RuntimeOptions.supmr_interfile("32KB"))
        assert chunked.output == baseline.output


class TestHistogram:
    def test_bucket_of_uniform_bins(self):
        assert bucket_of(0.0, 0.0, 10.0, 10) == 0
        assert bucket_of(9.99, 0.0, 10.0, 10) == 9
        assert bucket_of(5.0, 0.0, 10.0, 10) == 5

    def test_bucket_clamps_out_of_range(self):
        assert bucket_of(-5.0, 0.0, 10.0, 10) == 0
        assert bucket_of(50.0, 0.0, 10.0, 10) == 9

    def test_invalid_config(self, tmp_path):
        f = tmp_path / "f"
        f.write_bytes(b"1\n")
        with pytest.raises(ConfigError):
            make_histogram_job([f], 0.0, 10.0, n_buckets=0)
        with pytest.raises(ConfigError):
            make_histogram_job([f], 5.0, 5.0)

    def test_matches_reference(self, tmp_path):
        rng = np.random.default_rng(3)
        f = tmp_path / "nums.txt"
        f.write_bytes(b"".join(b"%f\n" % x for x in rng.normal(5, 2, 500)))
        job = make_histogram_job([f], 0.0, 10.0, 8)
        result = PhoenixRuntime().run(job)
        assert dict(result.output) == reference_histogram([f], 0.0, 10.0, 8)

    def test_total_count_preserved(self, tmp_path):
        f = tmp_path / "nums.txt"
        f.write_bytes(b"1\n2\n3\n\n4\n")  # blank line ignored
        result = PhoenixRuntime().run(make_histogram_job([f], 0.0, 5.0, 5))
        assert sum(c for _b, c in result.output) == 4


class TestStringMatch:
    def test_matches_reference(self, text_file):
        needles = [b"the", b"and", b"xyzzy"]
        job = make_string_match_job([text_file], needles)
        result = PhoenixRuntime().run(job)
        assert dict(result.output) == reference_match([text_file], needles)

    def test_counts_multiple_hits_per_line(self, tmp_path):
        f = tmp_path / "f.txt"
        f.write_bytes(b"abc abc abc\n")
        result = PhoenixRuntime().run(make_string_match_job([f], [b"abc"]))
        assert dict(result.output) == {b"abc": 3}

    def test_empty_needles_rejected(self, tmp_path):
        f = tmp_path / "f"
        f.write_bytes(b"x\n")
        with pytest.raises(ConfigError):
            make_string_match_job([f], [])


class TestInvertedIndex:
    def test_matches_reference(self, tmp_path):
        docs = {
            "doc1": "alpha beta gamma",
            "doc2": "beta delta",
            "doc3": "alpha beta",
        }
        paths = write_index_corpus(tmp_path / "corpus", docs)
        result = PhoenixRuntime().run(make_inverted_index_job(paths))
        assert dict(result.output) == reference_index(paths)

    def test_posting_lists_sorted_and_deduped(self, tmp_path):
        docs = {"b-doc": "word word", "a-doc": "word"}
        paths = write_index_corpus(tmp_path / "corpus", docs)
        result = PhoenixRuntime().run(make_inverted_index_job(paths))
        assert dict(result.output)[b"word"] == (b"a-doc", b"b-doc")

    def test_malformed_line_raises(self, tmp_path):
        f = tmp_path / "bad.txt"
        f.write_bytes(b"no-tab-here words\n")
        with pytest.raises(WorkloadError):
            PhoenixRuntime().run(make_inverted_index_job([f]))

    def test_intrafile_chunking_over_corpus(self, tmp_path):
        docs = {f"d{i:02d}": f"tok{i} shared" for i in range(10)}
        paths = write_index_corpus(tmp_path / "corpus", docs)
        baseline = PhoenixRuntime().run(make_inverted_index_job(paths))
        chunked = run_ingest_mr(
            make_inverted_index_job(paths), RuntimeOptions.supmr_intrafile(3)
        )
        assert dict(chunked.output) == dict(baseline.output)


class TestLinearRegression:
    def _write(self, tmp_path, slope, intercept, n=200, noise=0.0):
        rng = np.random.default_rng(1)
        xs = rng.uniform(-10, 10, n)
        ys = slope * xs + intercept + rng.normal(0, noise, n)
        f = tmp_path / "points.txt"
        f.write_bytes(b"".join(b"%f %f\n" % (x, y) for x, y in zip(xs, ys)))
        return f

    def test_recovers_exact_line(self, tmp_path):
        f = self._write(tmp_path, 2.5, -1.0)
        result = PhoenixRuntime().run(make_linear_regression_job([f]))
        slope, intercept = solve_regression(result.output)
        assert slope == pytest.approx(2.5, abs=1e-6)
        assert intercept == pytest.approx(-1.0, abs=1e-6)

    def test_noisy_fit_close(self, tmp_path):
        f = self._write(tmp_path, 1.5, 3.0, n=2000, noise=0.5)
        result = PhoenixRuntime().run(make_linear_regression_job([f]))
        slope, intercept = solve_regression(result.output)
        assert slope == pytest.approx(1.5, abs=0.1)
        assert intercept == pytest.approx(3.0, abs=0.2)

    def test_missing_stats_raise(self):
        with pytest.raises(WorkloadError):
            solve_regression([("n", 1.0)])

    def test_degenerate_input_raises(self, tmp_path):
        f = tmp_path / "p.txt"
        f.write_bytes(b"2 1\n2 5\n")  # zero x-variance
        result = PhoenixRuntime().run(make_linear_regression_job([f]))
        with pytest.raises(WorkloadError, match="degenerate"):
            solve_regression(result.output)

    def test_malformed_line_raises(self, tmp_path):
        f = tmp_path / "p.txt"
        f.write_bytes(b"1 2 3\n")
        with pytest.raises(WorkloadError):
            PhoenixRuntime().run(make_linear_regression_job([f]))

    def test_chunked_sums_identical(self, tmp_path):
        f = self._write(tmp_path, 0.5, 0.0, n=500)
        baseline = PhoenixRuntime().run(make_linear_regression_job([f]))
        chunked = run_ingest_mr(
            make_linear_regression_job([f]),
            RuntimeOptions.supmr_interfile("4KB"),
        )
        base_fit = solve_regression(baseline.output)
        chunk_fit = solve_regression(chunked.output)
        assert base_fit == pytest.approx(chunk_fit)
