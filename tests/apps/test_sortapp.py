"""Terasort application."""

from __future__ import annotations

from repro.apps.sortapp import make_sort_job, reference_sort, sort_reduce
from repro.core.options import RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.core.supmr import run_ingest_mr
from repro.io.records import TeraRecordCodec


class TestSortApp:
    def test_reduce_is_identity(self):
        assert list(sort_reduce(b"k", [b"v1", b"v2"])) == [
            (b"k", b"v1"), (b"k", b"v2"),
        ]

    def test_sorted_output(self, terasort_file):
        result = PhoenixRuntime().run(make_sort_job([terasort_file]))
        keys = result.output_keys()
        assert keys == sorted(keys)

    def test_no_records_lost(self, terasort_file):
        result = PhoenixRuntime().run(make_sort_job([terasort_file]))
        assert result.n_output_pairs == 3000

    def test_matches_reference(self, terasort_file):
        result = PhoenixRuntime().run(make_sort_job([terasort_file]))
        assert result.output == reference_sort([terasort_file])

    def test_supmr_matches_reference(self, terasort_file):
        result = run_ingest_mr(
            make_sort_job([terasort_file]),
            RuntimeOptions.supmr_interfile("20KB"),
        )
        assert result.output == reference_sort([terasort_file])

    def test_duplicate_keys_preserved(self, tmp_path):
        codec = TeraRecordCodec()
        record = b"SAMEKEY000" + b" " + b"p" * 87 + b"\r\n"
        f = tmp_path / "dups.dat"
        f.write_bytes(record * 10)
        result = PhoenixRuntime().run(make_sort_job([f]))
        assert result.n_output_pairs == 10
        assert all(k == b"SAMEKEY000" for k, _v in result.output)

    def test_custom_codec(self, tmp_path):
        codec = TeraRecordCodec(key_len=4, record_len=12)
        f = tmp_path / "small.dat"
        f.write_bytes(b"keyB val1\r\nkeyA val2\r\n")
        result = PhoenixRuntime().run(make_sort_job([f], codec=codec))
        assert result.output_keys() == [b"keyA", b"keyB"]

    def test_array_container_no_combining(self, terasort_file):
        result = PhoenixRuntime().run(make_sort_job([terasort_file]))
        stats = result.container_stats
        assert stats.emits == stats.distinct_keys == 3000
