"""Word count application."""

from __future__ import annotations

from repro.apps.wordcount import (
    make_wordcount_job,
    reference_wordcount,
    wordcount_reduce,
)
from repro.core.options import RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.core.supmr import run_ingest_mr


class TestWordCount:
    def test_reduce_sums_partials(self):
        assert list(wordcount_reduce(b"w", [3, 4])) == [(b"w", 7)]

    def test_counts_simple_corpus(self, tmp_path):
        f = tmp_path / "c.txt"
        f.write_bytes(b"dog cat dog\ncat dog\n")
        result = PhoenixRuntime().run(make_wordcount_job([f]))
        assert dict(result.output) == {b"dog": 3, b"cat": 2}

    def test_reference_agrees_with_runtime(self, text_file):
        result = PhoenixRuntime().run(make_wordcount_job([text_file]))
        assert dict(result.output) == reference_wordcount([text_file])

    def test_multiple_input_files(self, small_files):
        result = PhoenixRuntime().run(make_wordcount_job(small_files[:5]))
        assert dict(result.output) == reference_wordcount(small_files[:5])

    def test_empty_file(self, tmp_path):
        f = tmp_path / "empty.txt"
        f.write_bytes(b"")
        result = PhoenixRuntime().run(make_wordcount_job([f]))
        assert result.output == []

    def test_whitespace_only_file(self, tmp_path):
        f = tmp_path / "ws.txt"
        f.write_bytes(b"   \n\t\n  \n")
        result = PhoenixRuntime().run(make_wordcount_job([f]))
        assert result.output == []

    def test_supmr_chunked_counts_identical(self, tmp_path):
        f = tmp_path / "c.txt"
        f.write_bytes(b"alpha beta\n" * 500)
        result = run_ingest_mr(
            make_wordcount_job([f]), RuntimeOptions.supmr_interfile("1KB")
        )
        assert dict(result.output) == {b"alpha": 500, b"beta": 500}
        assert result.n_chunks > 1

    def test_combiner_shrinks_intermediate_set(self, text_file):
        result = PhoenixRuntime().run(make_wordcount_job([text_file]))
        stats = result.container_stats
        assert stats.distinct_keys < stats.emits  # duplicates combined
