"""PCA two-pass MapReduce."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.matrix_multiply import write_matrix_rows
from repro.apps.pca import run_pca
from repro.errors import WorkloadError


@pytest.fixture
def correlated_data(tmp_path):
    rng = np.random.default_rng(23)
    # strongly correlated 2-D data with a known principal axis
    t = rng.normal(size=400)
    noise = rng.normal(scale=0.1, size=400)
    data = np.column_stack([3.0 + t, -1.0 + 2.0 * t + noise])
    path = tmp_path / "rows.txt"
    write_matrix_rows(path, data)
    return path, data


class TestRunPCA:
    def test_means_match_numpy(self, correlated_data):
        path, data = correlated_data
        result = run_pca([path])
        assert np.allclose(result.means, data.mean(axis=0))

    def test_covariance_matches_numpy(self, correlated_data):
        path, data = correlated_data
        result = run_pca([path])
        assert np.allclose(result.covariance, np.cov(data.T), rtol=1e-8)

    def test_principal_axis_recovered(self, correlated_data):
        path, _data = correlated_data
        result = run_pca([path])
        # dominant direction ~ (1, 2)/sqrt(5)
        expected = np.array([1.0, 2.0]) / np.sqrt(5.0)
        got = result.components[0]
        assert abs(abs(got @ expected) - 1.0) < 1e-3

    def test_explained_variance_ordered(self, correlated_data):
        path, _data = correlated_data
        result = run_pca([path])
        ratios = result.explained_variance_ratio
        assert ratios[0] > 0.9  # one dominant direction
        assert ratios.sum() == pytest.approx(1.0)
        assert (np.diff(result.eigenvalues) <= 1e-12).all()

    def test_empty_input_raises(self, tmp_path):
        empty = tmp_path / "empty.txt"
        empty.write_bytes(b"")
        with pytest.raises(WorkloadError):
            run_pca([empty])

    def test_single_row_raises(self, tmp_path):
        one = tmp_path / "one.txt"
        one.write_bytes(b"0 1.0 2.0\n")
        with pytest.raises(WorkloadError, match="at least two"):
            run_pca([one])

    def test_multiple_input_files(self, tmp_path):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(60, 3))
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        write_matrix_rows(a, data[:30])
        write_matrix_rows(b, data[30:])
        result = run_pca([a, b])
        assert np.allclose(result.means, data.mean(axis=0))
        assert np.allclose(result.covariance, np.cov(data.T), rtol=1e-8)
