"""Matrix multiply application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.matrix_multiply import (
    make_matmul_job,
    parse_row,
    result_matrix,
    write_matrix_rows,
)
from repro.core.options import RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.core.supmr import run_ingest_mr
from repro.errors import WorkloadError


@pytest.fixture
def matrices(tmp_path):
    rng = np.random.default_rng(17)
    a = rng.normal(size=(24, 8))
    b = rng.normal(size=(8, 6))
    path = tmp_path / "a_rows.txt"
    write_matrix_rows(path, a)
    return path, a, b


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        a = np.array([[1.5, -2.0], [0.25, 3.0]])
        path = tmp_path / "m.txt"
        write_matrix_rows(path, a)
        rows = [parse_row(line) for line in path.read_bytes().splitlines()]
        got = np.array([r for _i, r in sorted(rows)])
        assert np.allclose(got, a)

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(WorkloadError):
            write_matrix_rows(tmp_path / "m", np.zeros(3))

    def test_short_line_rejected(self):
        with pytest.raises(WorkloadError):
            parse_row(b"5")


class TestMatmulJob:
    def test_product_matches_numpy(self, matrices):
        path, a, b = matrices
        result = PhoenixRuntime().run(make_matmul_job([path], b))
        product = result_matrix(result.output)
        assert np.allclose(product, a @ b)

    def test_chunked_product_identical(self, matrices):
        path, a, b = matrices
        result = run_ingest_mr(
            make_matmul_job([path], b),
            RuntimeOptions.supmr_interfile("512"),
        )
        assert result.n_chunks > 1
        assert np.allclose(result_matrix(result.output), a @ b)

    def test_dimension_mismatch_raises(self, matrices):
        path, _a, _b = matrices
        bad_b = np.zeros((5, 3))  # a has 8 cols
        with pytest.raises(WorkloadError, match="cols"):
            PhoenixRuntime().run(make_matmul_job([path], bad_b))

    def test_missing_row_detected(self):
        with pytest.raises(WorkloadError, match="missing"):
            result_matrix([(0, (1.0,)), (2, (2.0,))])

    def test_empty_output_rejected(self):
        with pytest.raises(WorkloadError):
            result_matrix([])

    def test_output_rows_sorted(self, matrices):
        path, _a, b = matrices
        result = PhoenixRuntime().run(make_matmul_job([path], b))
        indices = [k for k, _row in result.output]
        assert indices == sorted(indices)
