"""k-means iterative MapReduce."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.kmeans import (
    make_kmeans_iteration_job,
    nearest_centroid,
    parse_point,
    run_kmeans,
)
from repro.core.phoenix import PhoenixRuntime
from repro.errors import ConfigError


def write_clusters(tmp_path, centers, per_cluster=60, spread=0.2, seed=4):
    rng = np.random.default_rng(seed)
    lines = []
    for cx, cy in centers:
        pts = rng.normal((cx, cy), spread, size=(per_cluster, 2))
        lines.extend(b"%f %f" % (x, y) for x, y in pts)
    rng.shuffle(lines)
    f = tmp_path / "points.txt"
    f.write_bytes(b"\n".join(lines) + b"\n")
    return f


class TestPrimitives:
    def test_parse_point(self):
        assert parse_point(b"1.5 -2.0") == (1.5, -2.0)

    def test_nearest_centroid(self):
        centroids = [(0.0, 0.0), (10.0, 10.0)]
        assert nearest_centroid((1.0, 1.0), centroids) == 0
        assert nearest_centroid((9.0, 9.5), centroids) == 1


class TestIterationJob:
    def test_one_iteration_moves_centroids_toward_means(self, tmp_path):
        f = write_clusters(tmp_path, [(0, 0), (8, 8)])
        job = make_kmeans_iteration_job([f], [(1.0, 1.0), (7.0, 7.0)])
        result = PhoenixRuntime().run(job)
        updated = dict(result.output)
        assert updated[0] == pytest.approx((0.0, 0.0), abs=0.2)
        assert updated[1] == pytest.approx((8.0, 8.0), abs=0.2)


class TestRunKmeans:
    def test_converges_on_separated_clusters(self, tmp_path):
        f = write_clusters(tmp_path, [(0, 0), (8, 8), (-8, 8)])
        result = run_kmeans(
            [f],
            initial_centroids=[(1, 1), (7, 7), (-7, 7)],
            max_iters=10,
            tol=1e-3,
        )
        assert result.converged
        found = sorted(result.centroids)
        expected = sorted([(0.0, 0.0), (8.0, 8.0), (-8.0, 8.0)])
        for got, want in zip(found, expected):
            assert got == pytest.approx(want, abs=0.3)

    def test_iteration_count_reported(self, tmp_path):
        f = write_clusters(tmp_path, [(0, 0), (8, 8)])
        result = run_kmeans([f], [(0.5, 0.5), (7.5, 7.5)], max_iters=5)
        assert 1 <= result.iterations <= 5

    def test_empty_cluster_keeps_old_centroid(self, tmp_path):
        f = write_clusters(tmp_path, [(0, 0)])
        result = run_kmeans([f], [(0.0, 0.0), (100.0, 100.0)], max_iters=2)
        assert result.centroids[1] == (100.0, 100.0)

    def test_invalid_args(self, tmp_path):
        f = write_clusters(tmp_path, [(0, 0)])
        with pytest.raises(ConfigError):
            run_kmeans([f], [], max_iters=1)
        with pytest.raises(ConfigError):
            run_kmeans([f], [(0, 0)], max_iters=0)
