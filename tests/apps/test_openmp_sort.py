"""OpenMP-style sort baseline."""

from __future__ import annotations

from repro.apps.sortapp import reference_sort
from repro.baselines.openmp_sort import openmp_sort


class TestOpenMPSort:
    def test_output_matches_reference(self, terasort_file):
        result = openmp_sort([terasort_file], parallelism=4)
        assert result.output == reference_sort([terasort_file])

    def test_phase_timings_populated(self, terasort_file):
        result = openmp_sort([terasort_file])
        assert result.ingest_s >= 0
        assert result.parse_s > 0
        assert result.sort_s > 0
        assert result.total_s >= result.compute_s

    def test_compute_is_the_sort_phase(self, terasort_file):
        result = openmp_sort([terasort_file])
        assert result.compute_s == result.sort_s

    def test_multiple_files(self, tmp_path):
        from repro.workloads.teragen import generate_terasort_file

        a = tmp_path / "a.dat"
        b = tmp_path / "b.dat"
        generate_terasort_file(a, 100, seed=1)
        generate_terasort_file(b, 100, seed=2)
        result = openmp_sort([a, b])
        assert len(result.output) == 200
        keys = [k for k, _v in result.output]
        assert keys == sorted(keys)
