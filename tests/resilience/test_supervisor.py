"""Supervised fork pool: leases, respawn, re-dispatch, poison quarantine."""

from __future__ import annotations

import os

import pytest

from repro.errors import ParallelError, RetryExhausted
from repro.faults import parse_faults
from repro.faults.log import (
    ACTION_QUARANTINED,
    ACTION_RESPAWNED,
    ACTION_RETRIED,
)
from repro.faults.plan import SITE_TASK_HANG, SITE_WORKER_CRASH
from repro.faults.policy import RecoveryPolicy
from repro.parallel.backends import fork_available
from repro.resilience.supervisor import (
    SupervisedForkExecutor,
    supervised_fork_map,
)

pytestmark = pytest.mark.skipif(not fork_available(), reason="needs os.fork")


def _square(x: int) -> int:
    return x * x


def _armed(spec: str, seed: int, **policy_kw):
    policy_kw.setdefault("lease_timeout_s", 2.0)
    policy = RecoveryPolicy(**policy_kw)
    injector = parse_faults(spec, seed=seed).arm(policy)
    return policy, injector


class TestHappyPath:
    def test_results_in_item_order(self):
        outcome = supervised_fork_map(_square, range(17), workers=4)
        assert outcome.results == [x * x for x in range(17)]
        assert outcome.skipped == ()
        assert outcome.respawns == 0

    def test_empty_items(self):
        assert supervised_fork_map(_square, [], workers=4).results == []

    def test_worker_exception_propagates(self):
        def boom(x: int) -> int:
            if x == 3:
                raise ValueError("item three is cursed")
            return x

        with pytest.raises(ValueError, match="cursed"):
            supervised_fork_map(boom, range(6), workers=2)

    def test_executor_facade_zips_iterables(self):
        ex = SupervisedForkExecutor(workers=2)
        assert ex.map(lambda a, b: a + b, [1, 2, 3], [10, 20, 30]) == [
            11, 22, 33,
        ]

    def test_executor_rejects_zero_workers(self):
        with pytest.raises(ParallelError):
            SupervisedForkExecutor(workers=0)


class TestInjectedCrashes:
    def test_survives_a_kill_per_task_with_correct_output(self):
        # `once` fires on the first check of every scope: with four items
        # that is four seeded worker kills — well past the >= 2 the
        # acceptance criteria ask for — each retried and respawned.
        policy, injector = _armed("worker.crash=once", seed=3)
        outcome = supervised_fork_map(
            _square, range(4), workers=2, policy=policy, injector=injector
        )
        assert outcome.results == [0, 1, 4, 9]
        assert outcome.crashes >= 2
        assert outcome.respawns >= 2
        assert injector.log.count(ACTION_RESPAWNED) >= 2
        redispatches = [
            e for e in injector.log.events
            if e.action == ACTION_RETRIED and e.site == SITE_WORKER_CRASH
        ]
        assert len(redispatches) == 4
        assert outcome.redispatches == 4

    def test_injected_hang_is_lease_killed_and_retried(self):
        policy, injector = _armed("task.hang=once", seed=5, lease_timeout_s=0.3)
        outcome = supervised_fork_map(
            _square, range(3), workers=2, policy=policy, injector=injector
        )
        assert outcome.results == [0, 1, 4]
        assert outcome.hangs >= 1
        assert any(
            e.site == SITE_TASK_HANG and e.action == ACTION_RESPAWNED
            for e in injector.log.events
        )

    def test_poison_task_quarantined_when_skips_allowed(self):
        # Probability 1.0 fires on every attempt: the task is poison.
        # Every attempt costs a worker, so the respawn budget must cover
        # (max_retries + 1) x items.
        policy, injector = _armed(
            "worker.crash=1.0", seed=1, max_retries=2,
            worker_respawn_budget=50,
        )
        outcome = supervised_fork_map(
            _square, range(3), workers=2,
            policy=policy, injector=injector, allow_skip=True,
        )
        assert outcome.skipped == (0, 1, 2)
        assert outcome.completed() == []
        assert injector.log.quarantined == 3
        assert injector.log.count(ACTION_QUARANTINED) == 3

    def test_poison_task_fails_wave_without_skip_budget(self):
        policy, injector = _armed("worker.crash=1.0", seed=1, max_retries=1)
        with pytest.raises(RetryExhausted, match=SITE_WORKER_CRASH):
            supervised_fork_map(
                _square, range(2), workers=2,
                policy=policy, injector=injector, allow_skip=False,
            )

    def test_respawn_budget_exhaustion_raises_parallel_error(self):
        policy, injector = _armed(
            "worker.crash=1.0", seed=2, max_retries=5, worker_respawn_budget=1
        )
        with pytest.raises(ParallelError, match="respawn budget"):
            supervised_fork_map(
                _square, range(2), workers=1,
                policy=policy, injector=injector, allow_skip=True,
            )


class TestOrganicCrashes:
    def test_transient_organic_death_is_redispatched(self, tmp_path):
        flag = tmp_path / "died-once"

        def die_once(x: int) -> int:
            if x == 1 and not flag.exists():
                flag.write_bytes(b"x")
                os._exit(11)
            return x * 10

        outcome = supervised_fork_map(die_once, range(3), workers=2)
        assert outcome.results == [0, 10, 20]
        assert outcome.crashes >= 1
        assert outcome.respawns >= 1

    def test_persistent_organic_killer_raises(self):
        def always_dies(x: int) -> int:
            os._exit(13)

        policy = RecoveryPolicy(max_retries=1, lease_timeout_s=5.0)
        with pytest.raises(ParallelError, match="out of retries"):
            supervised_fork_map(always_dies, [0], workers=1, policy=policy)


class TestPreRunHook:
    def test_pre_run_called_once_per_task_before_dispatch(self):
        calls: list[int] = []
        policy, injector = _armed("worker.crash=once", seed=3)
        supervised_fork_map(
            _square, range(4), workers=2,
            policy=policy, injector=injector, pre_run=calls.append,
        )
        # Re-dispatches after crashes must not re-run the hook.
        assert sorted(calls) == [0, 1, 2, 3]

    def test_pre_run_failure_fails_the_wave(self):
        def hook(index: int) -> None:
            raise RetryExhausted("map.task gate gave up", site="map.task")

        with pytest.raises(RetryExhausted, match="gave up"):
            supervised_fork_map(_square, range(2), workers=2, pre_run=hook)
