"""Crash-safe checkpoint/resume: killed jobs finish with identical output."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.core.supmr as supmr_mod
from repro.apps.wordcount import make_wordcount_job
from repro.core.options import RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.core.supmr import SupMRRuntime
from repro.errors import CheckpointError

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _opts(ckpt: Path, resume: bool = False, **extra) -> RuntimeOptions:
    return RuntimeOptions.supmr_interfile("32KB", 2, 2).with_(
        checkpoint_dir=str(ckpt), resume=resume, **extra
    )


class TestResumeAfterInProcessFailure:
    """Crash the job at controlled points and resume from the journal."""

    def test_resume_skips_journaled_rounds(self, tmp_path, text_file, monkeypatch):
        job = make_wordcount_job([text_file])
        reference = SupMRRuntime(_opts(tmp_path / "ref")).run(job)

        def exploding_reducers(*args, **kwargs):
            raise RuntimeError("simulated crash before the reduce phase")

        monkeypatch.setattr(supmr_mod, "run_reducers", exploding_reducers)
        with pytest.raises(RuntimeError, match="simulated crash"):
            SupMRRuntime(_opts(tmp_path / "ckpt")).run(job)
        monkeypatch.undo()

        state = json.loads(
            (tmp_path / "ckpt" / "journal.json").read_text()
        )["payload"]
        assert state["stage"] == "mapping"
        assert state["completed_rounds"], "no rounds were journaled"

        resumed = SupMRRuntime(_opts(tmp_path / "ckpt", resume=True)).run(job)
        assert resumed.counters["resumed"] is True
        assert resumed.counters["resumed_rounds"] == len(
            state["completed_rounds"]
        )
        assert resumed.output == reference.output
        assert resumed.output_digest() == reference.output_digest()

    def test_resume_at_reduced_stage_goes_straight_to_merge(
        self, tmp_path, text_file, monkeypatch
    ):
        job = make_wordcount_job([text_file])
        reference = SupMRRuntime(_opts(tmp_path / "ref")).run(job)

        def exploding_merge(*args, **kwargs):
            raise RuntimeError("simulated crash during the merge phase")

        monkeypatch.setattr(supmr_mod, "merge_outputs", exploding_merge)
        with pytest.raises(RuntimeError, match="simulated crash"):
            SupMRRuntime(_opts(tmp_path / "ckpt")).run(job)
        monkeypatch.undo()

        state = json.loads(
            (tmp_path / "ckpt" / "journal.json").read_text()
        )["payload"]
        assert state["stage"] == "reduced"

        resumed = SupMRRuntime(_opts(tmp_path / "ckpt", resume=True)).run(job)
        assert resumed.counters["resumed"] is True
        assert resumed.output == reference.output

    def test_spill_runs_survive_the_crash_and_are_adopted(
        self, tmp_path, text_file, monkeypatch
    ):
        job = make_wordcount_job([text_file])

        def opts(ckpt, resume=False):
            # The budget must exceed one ingest chunk but stay small
            # enough that the job's cumulative intermediate set spills.
            return RuntimeOptions.supmr_interfile("16KB", 2, 2).with_(
                checkpoint_dir=str(ckpt), resume=resume,
                memory_budget="24KB",
            )

        reference = SupMRRuntime(opts(tmp_path / "ref")).run(job)
        assert reference.spill_stats.runs > 0, "budget never spilled; vacuous"

        def exploding_reducers(*args, **kwargs):
            raise RuntimeError("simulated crash")

        monkeypatch.setattr(supmr_mod, "run_reducers", exploding_reducers)
        with pytest.raises(RuntimeError):
            SupMRRuntime(opts(tmp_path / "ckpt")).run(job)
        monkeypatch.undo()

        surviving = list((tmp_path / "ckpt" / "spill").glob("run-*.spl"))
        assert surviving, "spill runs were cleaned up despite the journal"

        resumed = SupMRRuntime(opts(tmp_path / "ckpt", resume=True)).run(job)
        assert resumed.output == reference.output
        assert resumed.spill_stats.runs >= len(surviving)

    def test_resume_with_changed_options_is_refused(
        self, tmp_path, text_file, monkeypatch
    ):
        job = make_wordcount_job([text_file])

        def exploding_reducers(*args, **kwargs):
            raise RuntimeError("simulated crash")

        monkeypatch.setattr(supmr_mod, "run_reducers", exploding_reducers)
        with pytest.raises(RuntimeError):
            SupMRRuntime(_opts(tmp_path / "ckpt")).run(job)
        monkeypatch.undo()

        other = RuntimeOptions.supmr_interfile("64KB", 2, 2).with_(
            checkpoint_dir=str(tmp_path / "ckpt"), resume=True
        )
        with pytest.raises(CheckpointError, match="fingerprint"):
            SupMRRuntime(other).run(job)

    def test_completed_checkpoint_reruns_fresh(self, tmp_path, text_file):
        job = make_wordcount_job([text_file])
        first = SupMRRuntime(_opts(tmp_path / "ckpt")).run(job)
        again = SupMRRuntime(_opts(tmp_path / "ckpt", resume=True)).run(job)
        assert "resumed" not in again.counters
        assert again.output == first.output

    def test_phoenix_resumes_at_reduced_stage(
        self, tmp_path, text_file, monkeypatch
    ):
        import repro.core.phoenix as phoenix_mod

        job = make_wordcount_job([text_file])
        base = RuntimeOptions.baseline(2, 2)
        reference = PhoenixRuntime(base).run(job)

        opts = base.with_(checkpoint_dir=str(tmp_path / "ckpt"))

        def exploding_merge(*args, **kwargs):
            raise RuntimeError("simulated crash")

        monkeypatch.setattr(phoenix_mod, "merge_outputs", exploding_merge)
        with pytest.raises(RuntimeError):
            PhoenixRuntime(opts).run(job)
        monkeypatch.undo()

        resumed = PhoenixRuntime(opts.with_(resume=True)).run(job)
        assert resumed.counters["resumed"] is True
        assert resumed.output == reference.output


_KILL_RUNNER = """
import sys
sys.path.insert(0, {src!r})
from repro.apps.wordcount import make_wordcount_job
from repro.core.options import RuntimeOptions
from repro.core.supmr import SupMRRuntime

opts = RuntimeOptions.supmr_interfile("16KB", 2, 2).with_(
    checkpoint_dir=sys.argv[2], resume=(sys.argv[3] == "resume"))
result = SupMRRuntime(opts).run(make_wordcount_job([sys.argv[1]]))
print("DIGEST", result.output_digest())
"""


class TestResumeAfterSigkill:
    """The acceptance-criteria round trip: kill -9 mid-job, resume, diff."""

    def test_sigkill_mid_job_resumes_byte_identical(self, tmp_path, text_file):
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        runner = _KILL_RUNNER.format(src=REPO_SRC)
        ckpt = tmp_path / "ckpt"

        reference = subprocess.run(
            [sys.executable, "-c", runner,
             str(text_file), str(tmp_path / "ref"), "fresh"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert reference.returncode == 0, reference.stderr
        ref_digest = reference.stdout.split()[1]

        proc = subprocess.Popen(
            [sys.executable, "-c", runner,
             str(text_file), str(ckpt), "fresh"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        journal = ckpt / "journal.json"
        deadline = time.monotonic() + 60
        killed = False
        while time.monotonic() < deadline and proc.poll() is None:
            if journal.exists():
                try:
                    state = json.loads(journal.read_text())["payload"]
                except (ValueError, KeyError):
                    time.sleep(0.002)
                    continue
                if state["completed_rounds"] and state["stage"] == "mapping":
                    proc.send_signal(signal.SIGKILL)
                    killed = True
                    break
            time.sleep(0.002)
        proc.wait(timeout=60)
        if not killed:
            pytest.skip(
                "job finished before a round could be journaled and killed"
            )

        resumed = subprocess.run(
            [sys.executable, "-c", runner,
             str(text_file), str(ckpt), "resume"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout.split()[1] == ref_digest
