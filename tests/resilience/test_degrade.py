"""Degradation ladder and whole-job deadline."""

from __future__ import annotations

import time

import pytest

from repro.apps.wordcount import make_wordcount_job
from repro.core.options import RuntimeOptions
from repro.core.supmr import SupMRRuntime
from repro.errors import DeadlineExceeded, ParallelError
from repro.faults import parse_faults
from repro.faults.policy import RecoveryPolicy
from repro.parallel.backends import ExecutorBackend, fork_available
from repro.resilience.degrade import (
    SITE_POOL,
    Deadline,
    next_backend,
    next_rung,
    run_with_degradation,
)

needs_fork = pytest.mark.skipif(not fork_available(), reason="needs os.fork")


class TestDeadline:
    def test_unset_deadline_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        deadline.check("anything")  # must not raise

    def test_expired_deadline_raises_with_context(self):
        deadline = Deadline(1e-9)
        time.sleep(0.01)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded, match="round 3"):
            deadline.check("round 3")


class TestLadder:
    def test_next_backend_steps_down_to_none(self):
        assert next_backend(ExecutorBackend.PROCESS) is ExecutorBackend.THREAD
        assert next_backend(ExecutorBackend.THREAD) is ExecutorBackend.SERIAL
        assert next_backend(ExecutorBackend.SERIAL) is None

    def test_next_rung_halves_process_pool_before_thread(self):
        options = RuntimeOptions.supmr_interfile("32KB", 8, 2).with_(
            executor_backend=ExecutorBackend.PROCESS
        )
        rung = next_rung(options)
        assert rung.executor_backend is ExecutorBackend.PROCESS
        assert rung.num_mappers == 4
        floor = options.with_(num_mappers=1)
        assert next_rung(floor).executor_backend is ExecutorBackend.THREAD

    def test_next_rung_never_halves_thread_pool(self):
        options = RuntimeOptions.supmr_interfile("32KB", 8, 2).with_(
            executor_backend=ExecutorBackend.THREAD
        )
        rung = next_rung(options)
        assert rung.executor_backend is ExecutorBackend.SERIAL
        assert rung.num_mappers == 8
        assert next_rung(rung.with_(executor_backend=ExecutorBackend.SERIAL)) is None

    def test_step_down_marks_result_degraded(self, text_file):
        job = make_wordcount_job([text_file])
        options = RuntimeOptions.supmr_interfile("32KB", 2, 2).with_(
            executor_backend=ExecutorBackend.PROCESS
        )
        seen: list[tuple[str, int]] = []

        def run_once(j, opts):
            seen.append((opts.executor_backend.value, opts.num_mappers))
            if opts.executor_backend is ExecutorBackend.PROCESS:
                raise ParallelError("pool blew up")
            return SupMRRuntime(opts)._run_once(j, opts)

        result = run_with_degradation(run_once, job, options)
        assert seen == [("process", 2), ("process", 1), ("thread", 1)]
        assert result.counters["degraded"] is True
        assert result.counters["degraded_backend"] == "thread"
        assert result.counters["degraded_workers"] == 1
        assert result.counters["pool_failures"] == 2
        pool_events = [
            e for e in result.fault_log.events if e.site == SITE_POOL
        ]
        assert len(pool_events) == 2
        assert "halved" in pool_events[0].detail
        assert "stepped down" in pool_events[1].detail

    def test_retry_resumes_from_the_journal(self, tmp_path, text_file):
        job = make_wordcount_job([text_file])
        options = RuntimeOptions.supmr_interfile("32KB", 2, 2).with_(
            executor_backend=ExecutorBackend.PROCESS,
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        resume_flags: list[bool] = []

        def run_once(j, opts):
            resume_flags.append(opts.resume)
            if opts.executor_backend is ExecutorBackend.PROCESS:
                raise ParallelError("pool blew up")
            return SupMRRuntime(opts)._run_once(j, opts)

        run_with_degradation(run_once, job, options)
        assert resume_flags == [False, True, True]

    def test_bottom_of_the_ladder_reraises(self, text_file):
        job = make_wordcount_job([text_file])
        options = RuntimeOptions.supmr_interfile("32KB", 2, 2).with_(
            executor_backend=ExecutorBackend.SERIAL
        )

        def run_once(j, opts):
            raise ParallelError("even serial failed")

        with pytest.raises(ParallelError, match="even serial"):
            run_with_degradation(run_once, job, options)

    def test_opt_out_disables_the_ladder(self, text_file):
        job = make_wordcount_job([text_file])
        options = RuntimeOptions.supmr_interfile("32KB", 2, 2).with_(
            executor_backend=ExecutorBackend.PROCESS,
            degrade_on_pool_failure=False,
        )

        def run_once(j, opts):
            raise ParallelError("pool blew up")

        with pytest.raises(ParallelError):
            run_with_degradation(run_once, job, options)


@needs_fork
class TestEndToEnd:
    def test_respawn_budget_zero_degrades_but_finishes_correctly(
        self, text_file
    ):
        job = make_wordcount_job([text_file])
        reference = SupMRRuntime(
            RuntimeOptions.supmr_interfile("32KB", 2, 2)
        ).run(job)
        opts = RuntimeOptions.supmr_interfile("32KB", 2, 2).with_(
            executor_backend=ExecutorBackend.PROCESS,
            fault_plan=parse_faults("worker.crash=once", seed=5),
            recovery=RecoveryPolicy(
                lease_timeout_s=2.0, worker_respawn_budget=0
            ),
        )
        result = SupMRRuntime(opts).run(job)
        assert result.counters["degraded"] is True
        assert result.counters["degraded_backend"] == "thread"
        assert result.output == reference.output

    def test_job_deadline_returns_partial_marked_degraded(self, text_file):
        job = make_wordcount_job([text_file])
        opts = RuntimeOptions.supmr_interfile("16KB", 2, 2).with_(
            job_deadline_s=1e-9
        )
        result = SupMRRuntime(opts).run(job)
        assert result.counters["degraded"] is True
        assert result.counters["deadline_expired"] is True
        assert result.n_output_pairs == 0
