"""Journal garbage collection: purge, stage peeking, and ``repro gc``."""

from __future__ import annotations

from repro.cli import main
from repro.resilience.journal import (
    STAGE_COMPLETE,
    STAGE_MAPPING,
    JobJournal,
)


def _fresh_journal(directory) -> JobJournal:
    return JobJournal(directory, fingerprint="fp-test", resume=False)


class TestPurge:
    def test_purge_removes_the_directory(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        journal = _fresh_journal(ckpt)
        assert ckpt.exists()
        journal.purge()
        assert not ckpt.exists()

    def test_peek_stage(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        journal = _fresh_journal(ckpt)
        assert JobJournal.peek_stage(ckpt) == STAGE_MAPPING
        journal.finalize()
        assert JobJournal.peek_stage(ckpt) == STAGE_COMPLETE

    def test_peek_stage_without_a_journal(self, tmp_path):
        assert JobJournal.peek_stage(tmp_path / "nope") is None
        (tmp_path / "empty").mkdir()
        assert JobJournal.peek_stage(tmp_path / "empty") is None

    def test_peek_stage_on_a_corrupt_journal(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        _fresh_journal(ckpt)
        (ckpt / JobJournal.JOURNAL_NAME).write_text("{} trailing garbage")
        assert JobJournal.peek_stage(ckpt) is None

    def test_purge_dir_spares_resumable_state(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        _fresh_journal(ckpt)  # stage: mapping — an interrupted job
        assert JobJournal.purge_dir(ckpt, require_complete=True) is False
        assert ckpt.exists()
        assert JobJournal.purge_dir(ckpt) is True
        assert not ckpt.exists()

    def test_purge_dir_collects_complete_journals(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        _fresh_journal(ckpt).finalize()
        assert JobJournal.purge_dir(ckpt, require_complete=True) is True
        assert not ckpt.exists()

    def test_purge_dir_on_a_missing_directory(self, tmp_path):
        assert JobJournal.purge_dir(tmp_path / "nope") is False


class TestGcCommand:
    def test_gc_collects_completed_checkpoints(self, text_file, tmp_path,
                                               capsys):
        ckpt = tmp_path / "ckpt"
        assert main(["wordcount", str(text_file), "--chunk-size", "64KB",
                     "--checkpoint-dir", str(ckpt)]) == 0
        capsys.readouterr()
        assert main(["gc", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        assert not ckpt.exists()

    def test_gc_keeps_interrupted_checkpoints_without_force(self, tmp_path,
                                                            capsys):
        ckpt = tmp_path / "ckpt"
        _fresh_journal(ckpt)
        assert main(["gc", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "kept" in out
        assert ckpt.exists()

        assert main(["gc", str(ckpt), "--force"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        assert not ckpt.exists()

    def test_gc_mixed_batch(self, tmp_path, capsys):
        done = tmp_path / "done"
        live = tmp_path / "live"
        _fresh_journal(done).finalize()
        _fresh_journal(live)
        assert main(["gc", str(done), str(live),
                     str(tmp_path / "missing")]) == 0
        out = capsys.readouterr().out
        assert "gc: 1 removed, 1 kept" in out
        assert not done.exists()
        assert live.exists()
