"""Job journal: fingerprints, atomic persistence, restore, corruption."""

from __future__ import annotations

import json

import pytest

from repro.apps.wordcount import make_wordcount_job
from repro.containers.combiners import CountCombiner
from repro.containers.hash_container import HashContainer
from repro.core.options import RuntimeOptions
from repro.errors import CheckpointError
from repro.resilience.journal import (
    STAGE_COMPLETE,
    STAGE_MAPPING,
    STAGE_REDUCED,
    JobJournal,
    job_fingerprint,
)


def _filled_container(pairs) -> HashContainer:
    container = HashContainer(CountCombiner())
    container.begin_round()
    emitter = container.emitter(0)
    for key, value in pairs:
        emitter.emit(key, value)
    return container


class TestFingerprint:
    def test_stable_for_identical_setup(self, text_file):
        job = make_wordcount_job([text_file])
        opts = RuntimeOptions.supmr_interfile("16KB", 2, 2)
        assert job_fingerprint(job, opts) == job_fingerprint(job, opts)

    def test_changes_with_chunking(self, text_file):
        job = make_wordcount_job([text_file])
        a = job_fingerprint(job, RuntimeOptions.supmr_interfile("16KB", 2, 2))
        b = job_fingerprint(job, RuntimeOptions.supmr_interfile("32KB", 2, 2))
        assert a != b

    def test_ignores_wall_clock_knobs(self, text_file):
        job = make_wordcount_job([text_file])
        opts = RuntimeOptions.supmr_interfile("16KB", 2, 2)
        longer = opts.with_(job_deadline_s=120.0)
        assert job_fingerprint(job, opts) == job_fingerprint(job, longer)


class TestRoundTrip:
    def test_record_and_restore_container_state(self, tmp_path):
        journal = JobJournal(tmp_path / "ckpt", "fp")
        container = _filled_container([(b"a", 1), (b"a", 1), (b"b", 1)])
        journal.record_round(0, container, map_tasks=2)
        assert journal.completed_rounds == frozenset({0})
        assert journal.map_tasks == 2
        assert journal.stage == STAGE_MAPPING

        resumed = JobJournal(tmp_path / "ckpt", "fp", resume=True)
        assert resumed.resumed
        restored = HashContainer(CountCombiner())
        assert resumed.restore(restored)
        restored.seal()
        container.seal()
        assert restored.partitions(1) == container.partitions(1)

    def test_successive_rounds_replace_the_snapshot(self, tmp_path):
        journal = JobJournal(tmp_path / "ckpt", "fp")
        container = _filled_container([(b"a", 1)])
        journal.record_round(0, container, map_tasks=1)
        journal.record_round(1, container, map_tasks=2)
        snapshots = list((tmp_path / "ckpt").glob("snapshot-*.bin"))
        assert [p.name for p in snapshots] == ["snapshot-00001.bin"]
        assert journal.completed_rounds == frozenset({0, 1})

    def test_reduced_stage_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path / "ckpt", "fp")
        runs = [[(b"a", 2)], [(b"b", 1)]]
        journal.record_reduced(runs)
        assert journal.stage == STAGE_REDUCED
        resumed = JobJournal(tmp_path / "ckpt", "fp", resume=True)
        assert resumed.resumed
        assert resumed.load_reduced() == runs

    def test_finalize_marks_complete_and_drops_blobs(self, tmp_path):
        journal = JobJournal(tmp_path / "ckpt", "fp")
        journal.record_round(0, _filled_container([(b"a", 1)]), map_tasks=1)
        journal.record_reduced([[(b"a", 1)]])
        journal.finalize()
        assert journal.stage == STAGE_COMPLETE
        assert not list((tmp_path / "ckpt").glob("*.bin"))
        # A completed journal resumes as a fresh start.
        fresh = JobJournal(tmp_path / "ckpt", "fp", resume=True)
        assert not fresh.resumed

    def test_fresh_start_wipes_previous_state(self, tmp_path):
        JobJournal(tmp_path / "ckpt", "fp").record_round(
            0, _filled_container([(b"a", 1)]), map_tasks=1
        )
        fresh = JobJournal(tmp_path / "ckpt", "fp", resume=False)
        assert not fresh.resumed
        assert fresh.completed_rounds == frozenset()
        assert not list((tmp_path / "ckpt").glob("snapshot-*.bin"))

    def test_restore_without_progress_returns_false(self, tmp_path):
        journal = JobJournal(tmp_path / "ckpt", "fp")
        assert not journal.restore(HashContainer(CountCombiner()))


class TestValidation:
    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        JobJournal(tmp_path / "ckpt", "fp-a").record_round(
            0, _filled_container([(b"a", 1)]), map_tasks=1
        )
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            JobJournal(tmp_path / "ckpt", "fp-b", resume=True)

    def test_torn_journal_fails_crc(self, tmp_path):
        journal = JobJournal(tmp_path / "ckpt", "fp")
        journal.record_round(0, _filled_container([(b"a", 1)]), map_tasks=1)
        path = journal.journal_path
        envelope = json.loads(path.read_text())
        envelope["payload"]["map_tasks"] = 999  # tamper without re-CRC
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="CRC"):
            JobJournal(tmp_path / "ckpt", "fp", resume=True)

    def test_corrupt_snapshot_blob_is_rejected(self, tmp_path):
        journal = JobJournal(tmp_path / "ckpt", "fp")
        journal.record_round(0, _filled_container([(b"a", 1)]), map_tasks=1)
        blob = tmp_path / "ckpt" / "snapshot-00000.bin"
        raw = bytearray(blob.read_bytes())
        raw[-1] ^= 0xFF
        blob.write_bytes(bytes(raw))
        resumed = JobJournal(tmp_path / "ckpt", "fp", resume=True)
        with pytest.raises(CheckpointError, match="CRC"):
            resumed.restore(HashContainer(CountCombiner()))

    def test_truncated_blob_is_rejected(self, tmp_path):
        journal = JobJournal(tmp_path / "ckpt", "fp")
        journal.record_reduced([[(b"a", 1)]])
        blob = tmp_path / "ckpt" / "reduced.bin"
        blob.write_bytes(blob.read_bytes()[:4])
        resumed = JobJournal(tmp_path / "ckpt", "fp", resume=True)
        with pytest.raises(CheckpointError, match="truncated"):
            resumed.load_reduced()
