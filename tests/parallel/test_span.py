"""ByteSpan: the zero-copy window every ingest path speaks."""

from __future__ import annotations

import pytest

from repro.io.records import RecordCodec, TeraRecordCodec
from repro.io.span import ByteSpan, as_span, materialize


class TestConstruction:
    def test_whole_buffer_by_default(self):
        span = ByteSpan(b"hello")
        assert len(span) == 5
        assert bytes(span) == b"hello"

    def test_window(self):
        span = ByteSpan(b"hello world", 6, 11)
        assert bytes(span) == b"world"

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            ByteSpan(b"abc", 0, 4)
        with pytest.raises(ValueError):
            ByteSpan(b"abc", -1, 2)
        with pytest.raises(ValueError):
            ByteSpan(b"abc", 2, 1)

    def test_empty_span_is_falsy(self):
        assert not ByteSpan(b"abc", 1, 1)
        assert ByteSpan(b"abc", 1, 2)


class TestSearch:
    def test_find_is_relative_to_window(self):
        span = ByteSpan(b"xx\nyy\nzz", 3)  # window: "yy\nzz"
        assert span.find(b"\n") == 2
        assert span.find(b"zz") == 3
        assert span.find(b"xx") == -1

    def test_find_with_bounds(self):
        span = ByteSpan(b"a.b.c")
        assert span.find(b".", 2) == 3
        assert span.find(b".", 2, 3) == -1

    def test_find_never_sees_outside_the_window(self):
        span = ByteSpan(b"abcabc", 1, 4)  # "bca"
        assert span.find(b"abc") == -1

    def test_endswith_startswith(self):
        span = ByteSpan(b"..record\n..", 2, 9)
        assert span.endswith(b"\n")
        assert span.startswith(b"rec")
        assert not span.endswith(b"record")
        assert not ByteSpan(b"ab").endswith(b"abc")


class TestMaterialize:
    def test_slice_returns_bytes(self):
        span = ByteSpan(b"0123456789", 2, 8)  # "234567"
        assert span[1:3] == b"34"
        assert span[:] == b"234567"
        assert span[4:] == b"67"

    def test_index_returns_int(self):
        span = ByteSpan(b"abc", 1)
        assert span[0] == ord("b")
        assert span[-1] == ord("c")
        with pytest.raises(IndexError):
            span[2]

    def test_strided_slice_rejected(self):
        with pytest.raises(ValueError):
            ByteSpan(b"abcdef")[::2]

    def test_split(self):
        assert ByteSpan(b" a b  c ").split() == [b"a", b"b", b"c"]

    def test_equality_and_hash(self):
        assert ByteSpan(b"xabcx", 1, 4) == b"abc"
        assert ByteSpan(b"xabcx", 1, 4) == ByteSpan(b"abc")
        assert hash(ByteSpan(b"xabcx", 1, 4)) == hash(b"abc")

    def test_helpers(self):
        span = as_span(b"data")
        assert as_span(span) is span
        assert materialize(span) == b"data"
        assert materialize(b"data") == b"data"
        assert materialize(bytearray(b"data")) == b"data"


class TestNarrowing:
    def test_span_offsets_are_relative(self):
        outer = ByteSpan(b"0123456789", 2, 9)  # "2345678"
        inner = outer.span(1, 4)
        assert bytes(inner) == b"345"
        assert inner.base is outer.base

    def test_bad_subspan_raises(self):
        with pytest.raises(ValueError):
            ByteSpan(b"abcd").span(1, 9)


class TestCodecCompatibility:
    """The full codec surface works identically on spans and bytes."""

    def test_iter_records_matches_bytes(self):
        data = b"one\ntwo\nthree\nfour"
        span = ByteSpan(b"??" + data + b"??", 2, 2 + len(data))
        codec = RecordCodec()
        assert list(codec.iter_records(span)) == list(codec.iter_records(data))

    def test_record_end_matches_bytes(self):
        data = b"aa\nbb\ncc"
        span = ByteSpan(data)
        codec = RecordCodec()
        for pos in range(len(data) + 1):
            assert codec.record_end(span, pos) == codec.record_end(data, pos)

    def test_tera_pairs_match_bytes(self):
        codec = TeraRecordCodec(key_len=4)
        data = b"kkkk payload\r\nqqqq payztwo\r\n"
        assert list(codec.iter_pairs(ByteSpan(data))) == list(
            codec.iter_pairs(data)
        )
