"""Backend equivalence: serial, thread, and process runs are byte-identical.

The whole contract of ``executor_backend`` is that it changes *speed*,
never *answers*.  This matrix runs real jobs (wordcount, terasort,
histogram) through the SupMR runtime under every backend — plain, under
a memory budget (spill paths), and with an armed fault plan (recovery
paths) — and asserts the final ``JobResult.output`` is identical to the
serial reference, pair for pair.  With faults armed, the injected-fault
counters must match too: the fault schedule is part of the determinism
contract.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.apps.histogram import make_histogram_job
from repro.apps.sortapp import make_sort_job
from repro.apps.wordcount import make_wordcount_job
from repro.core.options import RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.core.supmr import SupMRRuntime
from repro.faults import parse_faults
from repro.faults.policy import RecoveryPolicy
from repro.parallel.backends import fork_available

BACKENDS = ["serial", "thread", "process"]

needs_fork = pytest.mark.skipif(not fork_available(), reason="needs os.fork")


@pytest.fixture(scope="module")
def numbers_file(tmp_path_factory: pytest.TempPathFactory) -> Path:
    import random

    rng = random.Random(44)
    path = tmp_path_factory.mktemp("data") / "numbers.txt"
    path.write_bytes(
        b"\n".join(str(rng.randrange(0, 64)).encode() for _ in range(5000))
        + b"\n"
    )
    return path


def _options(backend: str, *, budget: bool = False, faults: bool = False):
    opts = RuntimeOptions.supmr_interfile(
        "16KB", num_mappers=4, num_reducers=3
    ).with_(executor_backend=backend)
    if budget:
        opts = opts.with_(memory_budget="96KB")
    if faults:
        opts = opts.with_(
            fault_plan=parse_faults(
                "ingest.read=once,map.task=once,record.corrupt=0.005", seed=9
            )
        )
    return opts


def _job(name: str, text_file, terasort_file, numbers_file):
    if name == "wordcount":
        return make_wordcount_job([text_file])
    if name == "sort":
        return make_sort_job([terasort_file])
    if name == "histogram":
        return make_histogram_job([numbers_file], lo=0, hi=64, n_buckets=64)
    if name == "histogram-fixed":
        return make_histogram_job(
            [numbers_file], lo=0, hi=64, n_buckets=64, container="fixed"
        )
    raise AssertionError(name)


_FAULT_COUNTERS = ("faults_injected", "fault_retries", "records_quarantined")


@needs_fork
@pytest.mark.parametrize("budget", [False, True], ids=["no-budget", "budget"])
@pytest.mark.parametrize(
    "job_name", ["wordcount", "sort", "histogram", "histogram-fixed"]
)
class TestSupMRBackendEquivalence:
    def test_outputs_byte_identical(
        self, job_name, budget, text_file, terasort_file, numbers_file
    ):
        results = {
            backend: SupMRRuntime(_options(backend, budget=budget)).run(
                _job(job_name, text_file, terasort_file, numbers_file)
            )
            for backend in BACKENDS
        }
        reference = results["serial"]
        assert reference.output, "reference run produced no output"
        for backend in ("thread", "process"):
            assert results[backend].output == reference.output, (
                f"{job_name}: {backend} output diverged from serial"
            )


@needs_fork
@pytest.mark.parametrize("job_name", ["wordcount", "sort"])
class TestFaultedBackendEquivalence:
    def test_outputs_and_fault_schedule_identical(
        self, job_name, text_file, terasort_file, numbers_file
    ):
        results = {
            backend: SupMRRuntime(_options(backend, faults=True)).run(
                _job(job_name, text_file, terasort_file, numbers_file)
            )
            for backend in BACKENDS
        }
        reference = results["serial"]
        assert reference.counters["faults_injected"] > 0, (
            "fault plan never fired; the test is vacuous"
        )
        for backend in ("thread", "process"):
            assert results[backend].output == reference.output
            for counter in _FAULT_COUNTERS:
                assert (
                    results[backend].counters[counter]
                    == reference.counters[counter]
                ), f"{job_name}: {backend} {counter} diverged"


@needs_fork
@pytest.mark.parametrize("job_name", ["wordcount", "sort"])
class TestWorkerFaultBackendEquivalence:
    """Seeded worker kills and hangs leave outputs AND counters identical.

    In the process backend the ``worker.crash`` / ``task.hang`` sites
    genuinely kill and wedge forked workers (supervisor recovers them);
    serial and thread backends resolve the same sites through the
    pre-task gate.  Both the outputs and the three fault counters must
    agree — the supervisor's log protocol mirrors the serial gate's.
    """

    def test_outputs_and_fault_schedule_identical(
        self, job_name, text_file, terasort_file, numbers_file
    ):
        results = {}
        for backend in BACKENDS:
            opts = RuntimeOptions.supmr_interfile(
                "16KB", num_mappers=4, num_reducers=3
            ).with_(
                executor_backend=backend,
                fault_plan=parse_faults(
                    "worker.crash=once,task.hang=once", seed=7
                ),
                recovery=RecoveryPolicy(lease_timeout_s=2.0),
            )
            results[backend] = SupMRRuntime(opts).run(
                _job(job_name, text_file, terasort_file, numbers_file)
            )
        reference = results["serial"]
        assert reference.counters["faults_injected"] > 0, (
            "worker fault plan never fired; the test is vacuous"
        )
        for backend in ("thread", "process"):
            assert results[backend].output == reference.output, (
                f"{job_name}: {backend} output diverged from serial"
            )
            for counter in _FAULT_COUNTERS:
                assert (
                    results[backend].counters[counter]
                    == reference.counters[counter]
                ), f"{job_name}: {backend} {counter} diverged"


#: (transport, persistent_pool) corners of the process-backend matrix.
_XFER_AXIS = [
    ("pipe", False),
    ("pipe", True),
    ("shm", False),
    ("shm", True),
]


@needs_fork
@pytest.mark.parametrize("job_name", ["wordcount", "sort"])
class TestTransportEquivalence:
    """Transport and pool mode change speed, never answers.

    Every corner of the (pipe|shm) × (fork-per-wave|persistent-pool)
    matrix must reproduce the serial reference byte for byte — plain and
    with seeded worker kills/hangs, where the fault *event sequence*
    (site, action, scope order) must match too: the supervisor's
    deterministic fault decisions are part of the contract, whatever
    carries the results back.
    """

    def test_outputs_byte_identical(
        self, job_name, text_file, terasort_file, numbers_file
    ):
        job_args = (text_file, terasort_file, numbers_file)
        reference = SupMRRuntime(_options("serial")).run(
            _job(job_name, *job_args)
        )
        assert reference.output
        for transport, persistent in _XFER_AXIS:
            opts = _options("process").with_(
                transport=transport, persistent_pool=persistent
            )
            result = SupMRRuntime(opts).run(_job(job_name, *job_args))
            assert result.output == reference.output, (
                f"{job_name}: transport={transport} "
                f"persistent_pool={persistent} diverged from serial"
            )
            assert result.counters["transport"] == transport
            assert result.counters["persistent_pool"] is (
                persistent and opts.supervised_pool
            )

    def test_fault_sequences_identical_across_transports(
        self, job_name, text_file, terasort_file, numbers_file
    ):
        job_args = (text_file, terasort_file, numbers_file)

        def run(transport, persistent):
            opts = RuntimeOptions.supmr_interfile(
                "16KB", num_mappers=4, num_reducers=3
            ).with_(
                executor_backend="process",
                transport=transport,
                persistent_pool=persistent,
                fault_plan=parse_faults(
                    "worker.crash=once,task.hang=once", seed=7
                ),
                recovery=RecoveryPolicy(lease_timeout_s=2.0),
            )
            return SupMRRuntime(opts).run(_job(job_name, *job_args))

        reference = run("pipe", False)  # PR-3-shaped baseline
        assert reference.counters["faults_injected"] > 0, (
            "worker fault plan never fired; the test is vacuous"
        )
        ref_events = [
            (e.site, e.action, e.scope) for e in reference.fault_log.events
        ]
        for transport, persistent in _XFER_AXIS[1:]:
            result = run(transport, persistent)
            assert result.output == reference.output, (
                f"{job_name}: faulted transport={transport} "
                f"persistent_pool={persistent} output diverged"
            )
            events = [
                (e.site, e.action, e.scope) for e in result.fault_log.events
            ]
            assert events == ref_events, (
                f"{job_name}: transport={transport} "
                f"persistent_pool={persistent} fault sequence diverged"
            )


@needs_fork
class TestPrefetchIngestEquivalence:
    """Multi-reader ingest keeps output and QoS accounting identical."""

    def test_outputs_identical_with_prefetch_readers(self, text_file):
        reference = SupMRRuntime(_options("serial")).run(
            make_wordcount_job([text_file])
        )
        opts = _options("process").with_(ingest_readers=3)
        result = SupMRRuntime(opts).run(make_wordcount_job([text_file]))
        assert result.output == reference.output
        assert result.counters["ingest_readers"] == 3

    def test_prefetch_charges_qos_bucket_exactly_once(self, text_file):
        # The multi-queue ingest must not double-charge the token bucket:
        # throttled bytes == input bytes, once, same as the single-reader
        # pipeline.
        def run(readers):
            opts = _options("process").with_(
                ingest_readers=readers, io_budget="64MB", tenant="t-xfer"
            )
            return SupMRRuntime(opts).run(make_wordcount_job([text_file]))

        single, multi = run(1), run(3)
        assert multi.output == single.output
        assert (
            multi.counters["throttle_bytes"]
            == single.counters["throttle_bytes"]
        )


@needs_fork
class TestPhoenixBackendEquivalence:
    def test_wordcount_matches_across_backends(self, text_file):
        outputs = {}
        for backend in BACKENDS:
            opts = RuntimeOptions.baseline(4, 3).with_(executor_backend=backend)
            outputs[backend] = (
                PhoenixRuntime(opts).run(make_wordcount_job([text_file])).output
            )
        assert outputs["thread"] == outputs["serial"]
        assert outputs["process"] == outputs["serial"]

    def test_backend_reported_in_counters(self, text_file):
        opts = RuntimeOptions.baseline(2, 2).with_(executor_backend="process")
        result = PhoenixRuntime(opts).run(make_wordcount_job([text_file]))
        assert result.counters["executor_backend"] == "process"
