"""SplitRef planning: descriptor boundaries match the in-memory splitter."""

from __future__ import annotations

from repro.chunking.chunk import Chunk, ChunkSource
from repro.chunking.planner import plan_chunks
from repro.core.execution import split_for_mappers
from repro.core.options import RuntimeOptions
from repro.io.records import RecordCodec
from repro.parallel.splits import ChunkHandle, SplitRef, split_refs_for_chunk


def _write(tmp_path, name, data):
    path = tmp_path / name
    path.write_bytes(data)
    return path


class TestSplitRefsForChunk:
    def test_boundaries_match_in_memory_splitter(self, tmp_path):
        data = b"".join(b"record-%04d\n" % i for i in range(200))
        path = _write(tmp_path, "in.txt", data)
        chunk = Chunk(0, (ChunkSource(path, 0, len(data)),))
        refs = split_refs_for_chunk(chunk, 4, b"\n")
        spans = split_for_mappers(data, 4, b"\n")
        assert refs is not None and len(refs) == len(spans)
        for ref, span in zip(refs, spans):
            assert (ref.offset, ref.length) == (span.start, len(span))
            assert bytes(ref.resolve()) == bytes(span)

    def test_offsets_are_absolute_file_positions(self, tmp_path):
        data = b"aaaa\nbbbb\ncccc\ndddd\n"
        path = _write(tmp_path, "in.txt", data)
        # A chunk covering the file's second half only.
        chunk = Chunk(1, (ChunkSource(path, 10, 10),))
        refs = split_refs_for_chunk(chunk, 2, b"\n")
        assert refs is not None
        assert refs[0].offset == 10
        assert b"".join(bytes(r.resolve()) for r in refs) == data[10:]

    def test_multi_source_chunk_declines(self, tmp_path):
        a = _write(tmp_path, "a.txt", b"one\n")
        b = _write(tmp_path, "b.txt", b"two\n")
        chunk = Chunk(0, (ChunkSource(a, 0, 4), ChunkSource(b, 0, 4)))
        assert split_refs_for_chunk(chunk, 2, b"\n") is None

    def test_vanished_file_declines(self, tmp_path):
        chunk = Chunk(0, (ChunkSource(tmp_path / "gone.txt", 0, 8),))
        assert split_refs_for_chunk(chunk, 2, b"\n") is None

    def test_range_past_eof_is_clamped(self, tmp_path):
        path = _write(tmp_path, "in.txt", b"ab\ncd\n")
        chunk = Chunk(0, (ChunkSource(path, 0, 1000),))
        refs = split_refs_for_chunk(chunk, 2, b"\n")
        assert refs is not None
        assert b"".join(bytes(r.resolve()) for r in refs) == b"ab\ncd\n"

    def test_empty_range_gives_no_refs(self, tmp_path):
        path = _write(tmp_path, "in.txt", b"data\n")
        chunk = Chunk(0, (ChunkSource(path, 5, 0),))
        assert split_refs_for_chunk(chunk, 2, b"\n") == []

    def test_planned_interfile_chunks_resolve_to_their_bytes(self, tmp_path):
        data = b"".join(b"%05d-payload\n" % i for i in range(300))
        path = _write(tmp_path, "big.txt", data)
        options = RuntimeOptions.supmr_interfile("1KB")
        plan = plan_chunks((path,), RecordCodec(), options)
        rebuilt = b""
        for chunk in plan.chunks:
            refs = split_refs_for_chunk(chunk, 3, b"\n")
            assert refs is not None
            rebuilt += b"".join(bytes(r.resolve()) for r in refs)
        assert rebuilt == data


class TestSplitRefResolve:
    def test_zero_length_ref(self, tmp_path):
        path = _write(tmp_path, "in.txt", b"abc")
        assert bytes(SplitRef(str(path), 0, 0).resolve()) == b""

    def test_resolve_window(self, tmp_path):
        path = _write(tmp_path, "in.txt", b"0123456789")
        span = SplitRef(str(path), 3, 4).resolve()
        assert bytes(span) == b"3456"
        assert span.find(b"5") == 2  # relative to the window


class TestChunkHandle:
    def test_len_and_load(self, tmp_path):
        path = _write(tmp_path, "in.txt", b"hello\nworld\n")
        chunk = Chunk(0, (ChunkSource(path, 0, 12),))
        handle = ChunkHandle(chunk)
        assert len(handle) == 12
        assert handle.load() == b"hello\nworld\n"
        assert "ChunkHandle" in repr(handle)
