"""fork_map / ForkExecutor: forked fan-out with COW inheritance."""

from __future__ import annotations

import os

import pytest

from repro.errors import ParallelError
from repro.parallel.backends import fork_available
from repro.parallel.fork_pool import ForkExecutor, fork_map

pytestmark = pytest.mark.skipif(not fork_available(), reason="needs os.fork")


class TestForkMap:
    def test_results_in_item_order(self):
        assert fork_map(lambda x: x * x, range(17), 4) == [
            i * i for i in range(17)
        ]

    def test_empty_items(self):
        assert fork_map(lambda x: x, [], 4) == []

    def test_closure_state_is_inherited(self):
        # The whole point of fork-at-call-time: closures (and whatever
        # they capture) need not be picklable.
        captured = {"base": 100, "fn": lambda v: v + 1}  # lambda: unpicklable

        def task(x):
            return captured["fn"](captured["base"] + x)

        assert fork_map(task, [1, 2], 2) == [102, 103]

    def test_worker_mutations_stay_in_worker(self):
        state = []

        def task(x):
            state.append(x)
            return len(state)

        assert fork_map(task, [1, 2, 3], 3) == [1, 1, 1]
        assert state == []  # parent copy untouched

    def test_exception_propagates(self):
        def task(x):
            if x == 2:
                raise ValueError("boom on 2")
            return x

        with pytest.raises(ValueError, match="boom on 2"):
            fork_map(task, range(5), 2)

    def test_lowest_index_failure_wins(self):
        # Matches the thread path's first-future-wins semantics.
        def task(x):
            if x in (1, 3):
                raise ValueError(f"boom on {x}")
            return x

        with pytest.raises(ValueError, match="boom on 1"):
            fork_map(task, range(5), 4)

    def test_unpicklable_result_becomes_parallel_error(self):
        with pytest.raises(ParallelError, match="could not be pickled"):
            fork_map(lambda x: (lambda: x), [0], 1)

    def test_dead_worker_detected(self):
        def task(x):
            if x == 1:
                os._exit(13)
            return x

        with pytest.raises(ParallelError, match="worker process died"):
            fork_map(task, range(3), 2)

    def test_dead_worker_error_names_the_worker_and_exit_code(self):
        def task(x):
            if x == 1:
                os._exit(13)
            return x

        with pytest.raises(ParallelError, match=r"repro-fork-\d+=13"):
            fork_map(task, range(3), 2)


class TestForkExecutor:
    def test_map_single_iterable(self):
        assert ForkExecutor(2).map(lambda x: -x, [1, 2, 3]) == [-1, -2, -3]

    def test_map_zips_multiple_iterables(self):
        assert ForkExecutor(2).map(lambda a, b: a * b, [2, 3], [5, 7]) == [10, 21]

    def test_submit(self):
        future = ForkExecutor(1).submit(lambda a, b=0: a + b, 4, b=3)
        assert future.result() == 7

    def test_rejects_zero_workers(self):
        with pytest.raises(ParallelError):
            ForkExecutor(0)
