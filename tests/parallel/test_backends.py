"""Backend vocabulary, pool factory, and the inline serial executor."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.options import RuntimeOptions
from repro.errors import ConfigError
from repro.parallel.backends import (
    ExecutorBackend,
    SerialExecutor,
    fork_available,
    make_pool,
    resolve_backend,
)


class TestResolve:
    def test_strings_resolve(self):
        assert resolve_backend("serial") is ExecutorBackend.SERIAL
        assert resolve_backend("THREAD") is ExecutorBackend.THREAD
        assert resolve_backend("process") is ExecutorBackend.PROCESS

    def test_enum_passes_through(self):
        assert resolve_backend(ExecutorBackend.THREAD) is ExecutorBackend.THREAD

    def test_unknown_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown executor backend"):
            resolve_backend("gpu")


class TestOptionsIntegration:
    def test_default_is_thread(self):
        assert RuntimeOptions().executor_backend is ExecutorBackend.THREAD

    def test_string_normalized_at_construction(self):
        opts = RuntimeOptions(executor_backend="process")
        assert opts.executor_backend is ExecutorBackend.PROCESS

    def test_bad_backend_rejected_eagerly(self):
        with pytest.raises(ConfigError):
            RuntimeOptions(executor_backend="warp-drive")

    def test_with_preserves_backend(self):
        opts = RuntimeOptions(executor_backend="serial").with_(num_mappers=2)
        assert opts.executor_backend is ExecutorBackend.SERIAL


class TestMakePool:
    def test_thread_backend_gets_thread_pool(self):
        with make_pool("thread", 2) as pool:
            assert isinstance(pool, ThreadPoolExecutor)

    def test_serial_backend_gets_serial_executor(self):
        with make_pool("serial", 4) as pool:
            assert isinstance(pool, SerialExecutor)

    @pytest.mark.skipif(not fork_available(), reason="needs os.fork")
    def test_process_backend_parent_pool_is_inert(self):
        # Process phases fork per wave; the parent-side pool must not
        # multiply threads underneath them.
        with make_pool("process", 4) as pool:
            assert isinstance(pool, SerialExecutor)


class TestSerialExecutor:
    def test_submit_runs_inline_and_resolves(self):
        with SerialExecutor() as pool:
            future = pool.submit(lambda a, b: a + b, 2, 3)
            assert future.done()
            assert future.result() == 5

    def test_submit_parks_exceptions(self):
        with SerialExecutor() as pool:
            future = pool.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                future.result()

    def test_map_protocol(self):
        with SerialExecutor() as pool:
            assert list(pool.map(lambda x: x * 2, [1, 2, 3])) == [2, 4, 6]
