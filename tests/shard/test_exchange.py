"""Integrity-verified run exchange: bucketing, CRC refetch, merging."""

from __future__ import annotations

import pytest

from repro.apps.wordcount import make_wordcount_job
from repro.containers.hash_container import HashContainer
from repro.containers.combiners import SumCombiner
from repro.errors import RetryExhausted
from repro.faults.log import ACTION_REFETCHED
from repro.shard.exchange import (
    fetch_run,
    merged_partition_groups,
    reduce_partition,
    run_name,
    write_partition_runs,
)
from repro.spill.manager import _flip_byte
from repro.spill.runfile import HEADER_BYTES
from repro.util.hashing import stable_hash


def _container(pairs):
    container = HashContainer(combiner=SumCombiner())
    container.begin_round()
    emitter = container.emitter(0)
    for key, value in pairs:
        emitter.emit(key, value)
    return container


class TestWritePartitionRuns:
    def test_buckets_by_stable_hash(self, tmp_path):
        keys = [f"k{i}".encode() for i in range(40)]
        manifest = write_partition_runs(
            _container((k, 1) for k in keys), 4, tmp_path
        )
        assert [run.partition for run in manifest] == [0, 1, 2, 3]
        for run in manifest:
            reader, _ = fetch_run(
                tmp_path / run.name, tmp_path / f"copy-{run.name}"
            )
            for key, _values in reader:
                assert stable_hash(key) % 4 == run.partition

    def test_empty_partitions_still_get_runs(self, tmp_path):
        manifest = write_partition_runs(_container([(b"solo", 1)]), 8, tmp_path)
        assert len(manifest) == 8
        assert sum(run.records for run in manifest) == 1
        for run in manifest:
            assert (tmp_path / run.name).exists()

    def test_run_names_are_canonical(self, tmp_path):
        manifest = write_partition_runs(_container([(b"a", 1)]), 2, tmp_path)
        assert [run.name for run in manifest] == [run_name(0), run_name(1)]


class TestFetchRun:
    def _one_run(self, tmp_path):
        manifest = write_partition_runs(
            _container((f"w{i}".encode(), 1) for i in range(50)),
            1, tmp_path / "outbox",
        )
        return tmp_path / "outbox" / manifest[0].name

    def test_clean_fetch_verifies_first_try(self, tmp_path):
        src = self._one_run(tmp_path)
        reader, attempt = fetch_run(src, tmp_path / "copy.spl")
        assert attempt == 0
        assert sum(1 for _ in reader) == 50

    def test_corrupt_copy_detected_and_refetched(self, tmp_path):
        src = self._one_run(tmp_path)
        events = []
        reader, attempt = fetch_run(
            src, tmp_path / "copy.spl",
            corrupt_attempts=[0, 1], events=events, scope="(0, 0)",
        )
        # Two damaged copies rejected, third adopted; the original run
        # was never merged in its corrupted form.
        assert attempt == 2
        assert sum(1 for _ in reader) == 50
        assert [e[1] for e in events] == [ACTION_REFETCHED] * 2

    def test_corrupted_source_never_silently_merged(self, tmp_path):
        src = self._one_run(tmp_path)
        _flip_byte(src, HEADER_BYTES + 4)
        with pytest.raises(RetryExhausted, match="exchange_corrupt"):
            fetch_run(src, tmp_path / "copy.spl", max_retries=2)
        assert not (tmp_path / "copy.spl").exists()

    def test_retry_budget_exhaustion_raises(self, tmp_path):
        src = self._one_run(tmp_path)
        with pytest.raises(RetryExhausted):
            fetch_run(
                src, tmp_path / "copy.spl",
                corrupt_attempts=[0, 1, 2], max_retries=2,
            )


class TestMergeAndReduce:
    def test_equal_keys_fold_in_reader_order(self, tmp_path):
        a = write_partition_runs(
            _container([(b"x", 1), (b"y", 2)]), 1, tmp_path / "a"
        )
        b = write_partition_runs(
            _container([(b"x", 10), (b"z", 3)]), 1, tmp_path / "b"
        )
        readers = [
            fetch_run(tmp_path / "a" / a[0].name, tmp_path / "ca.spl")[0],
            fetch_run(tmp_path / "b" / b[0].name, tmp_path / "cb.spl")[0],
        ]
        groups = dict(merged_partition_groups(readers))
        assert groups[b"x"] == (1, 10)
        assert groups[b"y"] == (2,)
        assert groups[b"z"] == (3,)

    def test_reduce_partition_runs_the_jobs_reducer(self, tmp_path, text_file):
        job = make_wordcount_job([text_file])
        manifest = write_partition_runs(
            _container([(b"b", 2), (b"a", 1), (b"a", 4)]), 1, tmp_path
        )
        reader, _ = fetch_run(
            tmp_path / manifest[0].name, tmp_path / "copy.spl"
        )
        out = reduce_partition(job, merged_partition_groups([reader]))
        assert dict(out) == {b"a": 5, b"b": 2}
