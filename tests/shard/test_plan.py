"""Shard planning: contiguous chunk blocks and partition ownership."""

from __future__ import annotations

import pytest

from repro.apps.wordcount import make_wordcount_job
from repro.chunking.planner import plan_chunks
from repro.core.options import RuntimeOptions
from repro.errors import ConfigError
from repro.shard.plan import ShardPlan, chunk_blocks


class TestChunkBlocks:
    def test_blocks_are_contiguous_and_cover_all_chunks(self):
        blocks = chunk_blocks(10, 3)
        assert blocks[0][0] == 0
        assert blocks[-1][1] == 10
        for (_, end), (start, _) in zip(blocks, blocks[1:]):
            assert end == start

    def test_block_sizes_differ_by_at_most_one(self):
        sizes = [e - s for s, e in chunk_blocks(11, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_chunks_leaves_empty_blocks(self):
        blocks = chunk_blocks(2, 5)
        assert sum(e - s for s, e in blocks) == 2
        assert any(e == s for s, e in blocks)

    def test_validation(self):
        with pytest.raises(ConfigError):
            chunk_blocks(4, 0)
        with pytest.raises(ConfigError):
            chunk_blocks(-1, 2)


class TestShardPlan:
    @pytest.fixture
    def chunk_plan(self, text_file):
        job = make_wordcount_job([text_file])
        options = RuntimeOptions.supmr_interfile("32KB", 2, 4)
        return plan_chunks(job.inputs, job.codec, options)

    def test_every_chunk_assigned_once_in_order(self, chunk_plan):
        plan = ShardPlan(chunk_plan, num_shards=3, num_partitions=4)
        seen = [
            c.index for sid in range(3) for c in plan.chunks_for(sid)
        ]
        assert seen == list(range(chunk_plan.n_chunks))

    def test_every_partition_owned_once(self, chunk_plan):
        plan = ShardPlan(chunk_plan, num_shards=3, num_partitions=8)
        owned = sorted(
            p for spec in plan.shards for p in spec.partitions
        )
        assert owned == list(range(8))

    def test_reassign_preserves_survivor_ownership(self, chunk_plan):
        plan = ShardPlan(chunk_plan, num_shards=4, num_partitions=32)
        before = {
            spec.shard_id: set(spec.partitions) for spec in plan.shards
        }
        after = plan.reassign({1})
        assert 1 not in after
        for sid, ps in after.items():
            assert before[sid] <= set(ps)
        assert sorted(p for ps in after.values() for p in ps) == list(range(32))

    def test_validation(self, chunk_plan):
        with pytest.raises(ConfigError):
            ShardPlan(chunk_plan, num_shards=0, num_partitions=4)
        with pytest.raises(ConfigError):
            ShardPlan(chunk_plan, num_shards=2, num_partitions=0)
