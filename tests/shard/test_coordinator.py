"""End-to-end sharded runs: determinism and the recovery protocol.

Every test compares digests against an unfaulted single-shard run of
the same job — the ISSUE's acceptance bar: shard count, injected shard
loss, exchange corruption, and speculation must never change a byte of
output.
"""

from __future__ import annotations

import pytest

from repro.apps.sortapp import make_sort_job
from repro.apps.wordcount import make_wordcount_job
from repro.core.options import RuntimeOptions
from repro.errors import ConfigError
from repro.faults import parse_faults
from repro.faults.log import (
    ACTION_REASSIGNED,
    ACTION_REFETCHED,
    ACTION_RESPAWNED,
    ACTION_SPECULATIVE,
)
from repro.faults.plan import SITE_SHARD_STRAGGLER, FaultPlan, FaultSpec
from repro.faults.policy import RecoveryPolicy
from repro.parallel.backends import fork_available
from repro.shard import ShardedRuntime, run_sharded

needs_fork = pytest.mark.skipif(not fork_available(), reason="needs os.fork")


def _options(shards: int, **overrides) -> RuntimeOptions:
    return RuntimeOptions.supmr_interfile("32KB", 2, 4).with_(
        num_shards=shards, **overrides
    )


def _wordcount(text_file):
    return make_wordcount_job([text_file])


class TestConfig:
    def test_requires_num_shards(self):
        with pytest.raises(ConfigError, match="num_shards"):
            ShardedRuntime(RuntimeOptions.supmr_interfile("32KB", 2, 4))


@needs_fork
class TestDeterminism:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_wordcount_digest_invariant_in_shard_count(
        self, text_file, shards
    ):
        job = _wordcount(text_file)
        reference = run_sharded(job, _options(1))
        result = run_sharded(job, _options(shards))
        assert result.output_digest() == reference.output_digest()
        assert result.counters["shards"] == shards

    def test_sort_digest_invariant_in_shard_count(self, terasort_file):
        job = make_sort_job([terasort_file])
        digests = {
            run_sharded(job, _options(shards)).output_digest()
            for shards in (1, 2, 4)
        }
        assert len(digests) == 1


@needs_fork
class TestRecovery:
    def test_worker_loss_respawns_and_reassigns_without_digest_drift(
        self, text_file
    ):
        job = _wordcount(text_file)
        reference = run_sharded(job, _options(1))
        result = run_sharded(job, _options(
            3, fault_plan=parse_faults("shard.worker_loss=once", seed=9)
        ))
        assert result.output_digest() == reference.output_digest()
        # Map phase: every shard killed once, respawned fresh.
        assert result.counters["shard_respawns"] == 3
        # Reduce phase: all but the last survivor lost, partitions moved.
        assert result.counters["shards_lost"] == 2
        assert result.counters["partitions_reassigned"] > 0
        actions = {e.action for e in result.fault_log.events}
        assert ACTION_RESPAWNED in actions
        assert ACTION_REASSIGNED in actions

    def test_journaled_shard_resumes_after_loss(self, text_file, tmp_path):
        job = _wordcount(text_file)
        reference = run_sharded(job, _options(1))
        result = run_sharded(job, _options(
            2,
            fault_plan=parse_faults("shard.worker_loss=once", seed=9),
            checkpoint_dir=str(tmp_path / "ckpt"),
        ))
        assert result.output_digest() == reference.output_digest()
        assert result.counters["resumed"] is True
        assert result.counters["resumed_rounds"] > 0

    def test_corrupted_exchange_run_refetched_never_merged(self, text_file):
        job = _wordcount(text_file)
        reference = run_sharded(job, _options(1))
        result = run_sharded(job, _options(
            2, fault_plan=parse_faults("shard.exchange_corrupt=once", seed=4)
        ))
        assert result.output_digest() == reference.output_digest()
        # One corruption per (partition, source): 4 partitions x 2 shards.
        assert result.counters["exchange_refetches"] == 8
        assert result.counters["faults_injected"] == 8
        refetched = [
            e for e in result.fault_log.events
            if e.action == ACTION_REFETCHED
        ]
        assert len(refetched) == 8

    def test_straggler_gets_a_speculative_twin(self, text_file):
        job = _wordcount(text_file)
        reference = run_sharded(job, _options(1))
        plan = FaultPlan(seed=2, specs=(
            FaultSpec(
                site=SITE_SHARD_STRAGGLER, once_per_scope=True,
                max_fires=1, duration_s=1.2,
            ),
        ))
        result = run_sharded(job, _options(
            3, fault_plan=plan,
            recovery=RecoveryPolicy(straggler_threshold=1.0),
        ))
        assert result.output_digest() == reference.output_digest()
        assert result.counters["speculative_shards"] >= 1
        assert any(
            e.action == ACTION_SPECULATIVE for e in result.fault_log.events
        )
