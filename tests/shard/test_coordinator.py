"""End-to-end sharded runs: determinism and the recovery protocol.

Every test compares digests against an unfaulted single-shard run of
the same job — the ISSUE's acceptance bar: shard count, injected shard
loss, exchange corruption, and speculation must never change a byte of
output.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_mod
from types import SimpleNamespace

import pytest

from repro.apps.sortapp import make_sort_job
from repro.apps.wordcount import make_wordcount_job
from repro.chunking.planner import plan_whole_input
from repro.core.options import RuntimeOptions
from repro.errors import ConfigError
from repro.faults import parse_faults
from repro.faults.log import (
    ACTION_REASSIGNED,
    ACTION_REFETCHED,
    ACTION_RESPAWNED,
    ACTION_SPECULATIVE,
)
from repro.faults.plan import SITE_SHARD_STRAGGLER, FaultPlan, FaultSpec
from repro.faults.policy import RecoveryPolicy
from repro.parallel.backends import fork_available
from repro.parallel.shard_worker import (
    MODE_LOSS,
    MODE_RUN,
    MSG_MAP,
    SHARD_CRASH_EXIT,
    shard_worker_main,
)
from repro.shard import ShardedRuntime, run_sharded
from repro.shard.coordinator import _Coordinator, _ShardWorker, _Tally
from repro.shard.hashring import ShardMap

needs_fork = pytest.mark.skipif(not fork_available(), reason="needs os.fork")


def _options(shards: int, **overrides) -> RuntimeOptions:
    return RuntimeOptions.supmr_interfile("32KB", 2, 4).with_(
        num_shards=shards, **overrides
    )


def _wordcount(text_file):
    return make_wordcount_job([text_file])


class TestConfig:
    def test_requires_num_shards(self):
        with pytest.raises(ConfigError, match="num_shards"):
            ShardedRuntime(RuntimeOptions.supmr_interfile("32KB", 2, 4))


@needs_fork
class TestDeterminism:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_wordcount_digest_invariant_in_shard_count(
        self, text_file, shards
    ):
        job = _wordcount(text_file)
        reference = run_sharded(job, _options(1))
        result = run_sharded(job, _options(shards))
        assert result.output_digest() == reference.output_digest()
        assert result.counters["shards"] == shards

    def test_sort_digest_invariant_in_shard_count(self, terasort_file):
        job = make_sort_job([terasort_file])
        digests = {
            run_sharded(job, _options(shards)).output_digest()
            for shards in (1, 2, 4)
        }
        assert len(digests) == 1


@needs_fork
class TestRecovery:
    def test_worker_loss_respawns_and_reassigns_without_digest_drift(
        self, text_file
    ):
        job = _wordcount(text_file)
        reference = run_sharded(job, _options(1))
        result = run_sharded(job, _options(
            3, fault_plan=parse_faults("shard.worker_loss=once", seed=9)
        ))
        assert result.output_digest() == reference.output_digest()
        # Map phase: every shard killed once, respawned fresh.
        assert result.counters["shard_respawns"] == 3
        # Reduce phase: all but the last survivor lost, partitions moved.
        assert result.counters["shards_lost"] == 2
        assert result.counters["partitions_reassigned"] > 0
        actions = {e.action for e in result.fault_log.events}
        assert ACTION_RESPAWNED in actions
        assert ACTION_REASSIGNED in actions

    def test_journaled_shard_resumes_after_loss(self, text_file, tmp_path):
        job = _wordcount(text_file)
        reference = run_sharded(job, _options(1))
        result = run_sharded(job, _options(
            2,
            fault_plan=parse_faults("shard.worker_loss=once", seed=9),
            checkpoint_dir=str(tmp_path / "ckpt"),
        ))
        assert result.output_digest() == reference.output_digest()
        assert result.counters["resumed"] is True
        assert result.counters["resumed_rounds"] > 0

    def test_corrupted_exchange_run_refetched_never_merged(self, text_file):
        job = _wordcount(text_file)
        reference = run_sharded(job, _options(1))
        result = run_sharded(job, _options(
            2, fault_plan=parse_faults("shard.exchange_corrupt=once", seed=4)
        ))
        assert result.output_digest() == reference.output_digest()
        # One corruption per (partition, source): 4 partitions x 2 shards.
        assert result.counters["exchange_refetches"] == 8
        assert result.counters["faults_injected"] == 8
        refetched = [
            e for e in result.fault_log.events
            if e.action == ACTION_REFETCHED
        ]
        assert len(refetched) == 8

    def test_straggler_gets_a_speculative_twin(self, text_file):
        job = _wordcount(text_file)
        reference = run_sharded(job, _options(1))
        plan = FaultPlan(seed=2, specs=(
            FaultSpec(
                site=SITE_SHARD_STRAGGLER, once_per_scope=True,
                max_fires=1, duration_s=1.2,
            ),
        ))
        result = run_sharded(job, _options(
            3, fault_plan=plan,
            recovery=RecoveryPolicy(straggler_threshold=1.0),
        ))
        assert result.output_digest() == reference.output_digest()
        assert result.counters["speculative_shards"] >= 1
        assert any(
            e.action == ACTION_SPECULATIVE for e in result.fault_log.events
        )


class _FakeHandle:
    """List-backed handle so `_dispatch_reduce` works without a process."""

    is_remote = False
    fetch_addr = ""

    def __init__(self) -> None:
        self.msgs: list = []
        self.name = "fake"

    def send(self, msg) -> None:
        self.msgs.append(msg)

    def discard(self) -> None:
        pass


def _bare_coordinator(num_shards: int, tmp_path) -> _Coordinator:
    """A `_Coordinator` with fake in-memory workers, no processes."""
    coord = object.__new__(_Coordinator)
    coord.injector = None
    coord.policy = RecoveryPolicy()
    coord.tally = _Tally()
    coord.outboxes = {}
    coord.links = []
    coord.via = {}
    coord.workdir = tmp_path
    coord.plan = SimpleNamespace(ring=ShardMap(range(num_shards)))
    coord.workers = {
        sid: _ShardWorker(sid=sid, wid=sid, handle=_FakeHandle())
        for sid in range(num_shards)
    }
    return coord


class TestReassignDrainsPending:
    """Regression: a dead reducer's *queued* partitions must be
    re-routed too, or `run_reduce_phase` waits on them forever."""

    def test_second_death_rescues_partitions_queued_behind_it(
        self, tmp_path
    ):
        coord = _bare_coordinator(3, tmp_path)
        for worker in coord.workers.values():
            worker.busy = True
        # Find a survivor ("mid") that shard 0's death routes work to;
        # the ring can skew a small partition set entirely one way.
        ring1 = ShardMap(range(3)).without([0])
        routed: dict[int, list[int]] = {}
        for p in range(64):
            routed.setdefault(ring1.owner(p), []).append(p)
        mid = 1 if routed.get(1) else 2
        last = 2 if mid == 1 else 1
        to_mid = routed[mid][:4]
        outstanding = {0: list(to_mid), mid: [100], last: [200]}
        pending: dict[int, list[int]] = {}
        coord._reassign(coord.workers[0], outstanding, pending, "test kill")
        # `mid` was busy, so shard 0's orphans are queued behind it.
        assert sorted(pending.get(mid, [])) == sorted(to_mid)
        coord._reassign(
            coord.workers[mid], outstanding, pending, "test kill"
        )
        # Both `mid`'s in-flight partition and the queue behind it must
        # land with the survivor — nothing may be dropped.
        survivor_work = (
            outstanding.get(last, []) + pending.get(last, [])
            + [
                p
                for msg in coord.workers[last].handle.msgs
                for p in msg["partitions"]
            ]
        )
        assert sorted(survivor_work) == sorted(to_mid + [100, 200])
        assert 0 not in pending and mid not in pending
        assert 0 not in outstanding and mid not in outstanding


@needs_fork
class TestCommandedLossAlwaysFires:
    """Regression: a MODE_LOSS map command must still kill the worker
    when its journal restore covers every chunk — otherwise the seeded
    schedule under-fires and the fault log drifts from the plan."""

    def _run_worker(self, job, options, chunks, msg):
        ctx = multiprocessing.get_context("fork")
        inbox, results = ctx.Queue(), ctx.Queue()
        inbox.put(msg)
        inbox.put(None)  # sentinel, for the surviving MODE_RUN case
        proc = ctx.Process(
            target=shard_worker_main,
            args=(0, job, options, chunks, 4, inbox, results),
        )
        proc.start()
        proc.join(timeout=60)
        assert proc.exitcode is not None, "shard worker hung"
        rows = []
        while True:
            try:
                rows.append(pickle.loads(results.get(timeout=0.2)))
            except queue_mod.Empty:
                break
        return proc.exitcode, rows

    def test_loss_fires_even_when_journal_covers_all_rounds(
        self, text_file, tmp_path
    ):
        job = make_wordcount_job([text_file])
        options = _options(1)
        chunks = list(plan_whole_input(job.inputs).chunks)
        assert len(chunks) == 1  # restore of round 0 covers everything

        def msg(mode, resume):
            return {
                "kind": MSG_MAP,
                "attempt": 0,
                "mode": mode,
                "outbox": str(tmp_path / "outbox"),
                "ckpt": str(tmp_path / "ckpt"),
                "resume": resume,
            }

        # Attempt 0: maps the only chunk, journals it, then dies.
        code, _ = self._run_worker(job, options, chunks, msg(MODE_LOSS, False))
        assert code == SHARD_CRASH_EXIT
        # Attempt 1: the journal restores the whole block, so the
        # per-chunk death window never opens — the commanded loss must
        # fire anyway.
        code, _ = self._run_worker(job, options, chunks, msg(MODE_LOSS, True))
        assert code == SHARD_CRASH_EXIT
        # Attempt 2: a clean run still resumes from the same journal.
        code, rows = self._run_worker(
            job, options, chunks, msg(MODE_RUN, True)
        )
        assert code == 0
        done = [r for r in rows if r[0] == "map_done"]
        assert len(done) == 1
        assert done[0][3]["restored_rounds"] == 1
