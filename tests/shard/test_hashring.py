"""Consistent-hash shard map: determinism, balance, minimal disturbance."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.shard.hashring import DEFAULT_REPLICAS, ShardMap


class TestConstruction:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ConfigError):
            ShardMap([])

    def test_needs_positive_replicas(self):
        with pytest.raises(ConfigError):
            ShardMap([0, 1], replicas=0)

    def test_duplicate_and_unordered_ids_normalize(self):
        ring = ShardMap([2, 0, 1, 2, 0])
        assert ring.shard_ids == (0, 1, 2)
        assert len(ring) == 3


class TestOwnership:
    def test_owner_deterministic_across_instances(self):
        a = ShardMap(range(4))
        b = ShardMap([3, 2, 1, 0])
        assert [a.owner(p) for p in range(64)] == [
            b.owner(p) for p in range(64)
        ]

    def test_assign_covers_every_partition_exactly_once(self):
        table = ShardMap(range(3)).assign(32)
        flat = sorted(p for ps in table.values() for p in ps)
        assert flat == list(range(32))
        assert set(table) == {0, 1, 2}

    def test_assign_roughly_balanced(self):
        table = ShardMap(range(4), replicas=DEFAULT_REPLICAS).assign(256)
        sizes = sorted(len(ps) for ps in table.values())
        # Consistent hashing is only statistically balanced; with 64
        # virtual nodes per shard no shard should starve or hog.
        assert sizes[0] >= 16
        assert sizes[-1] <= 160


class TestFailover:
    def test_without_moves_only_the_dead_shards_partitions(self):
        ring = ShardMap(range(4))
        before = {p: ring.owner(p) for p in range(128)}
        after = ring.without(2)
        for p, owner in before.items():
            if owner != 2:
                assert after.owner(p) == owner
            else:
                assert after.owner(p) != 2

    def test_without_accepts_a_sequence(self):
        ring = ShardMap(range(4)).without([1, 3])
        assert ring.shard_ids == (0, 2)

    def test_cannot_remove_the_last_shard(self):
        with pytest.raises(ConfigError):
            ShardMap([0]).without(0)
