"""Utility helpers: stable hashing and unit formatting."""

from __future__ import annotations

import subprocess
import sys

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.util.hashing import stable_hash
from repro.util.units import GB, KB, MB, fmt_bytes, fmt_seconds, parse_size


class TestStableHash:
    def test_distinct_types_do_not_collide_trivially(self):
        assert stable_hash(b"1") != stable_hash("1") != stable_hash(1)

    def test_bool_is_not_int(self):
        assert stable_hash(True) != stable_hash(1)

    def test_none_supported(self):
        assert isinstance(stable_hash(None), int)

    def test_tuples_supported(self):
        assert stable_hash((1, "a")) == stable_hash((1, "a"))

    def test_cross_process_stability(self):
        # The whole point: identical across interpreter runs despite
        # PYTHONHASHSEED randomization.
        code = ("from repro.util.hashing import stable_hash;"
                "print(stable_hash('partition-key'))")
        outs = {
            subprocess.run(
                [sys.executable, "-c", code], capture_output=True, text=True,
                env={"PYTHONHASHSEED": str(seed), "PATH": "/usr/bin:/bin"},
                cwd="/root/repo/src", check=True,
            ).stdout.strip()
            for seed in (1, 2)
        }
        assert len(outs) == 1

    @given(st.one_of(st.binary(), st.text(), st.integers(), st.floats(
        allow_nan=False), st.booleans(), st.none()))
    def test_property_deterministic_and_64bit(self, key):
        h = stable_hash(key)
        assert h == stable_hash(key)
        assert 0 <= h < 2**64


class TestParseSize:
    def test_plain_numbers(self):
        assert parse_size("1024") == 1024
        assert parse_size(2048) == 2048

    def test_suffixes(self):
        assert parse_size("1KB") == KB
        assert parse_size("2mb") == 2 * MB
        assert parse_size("1.5GB") == int(1.5 * GB)
        assert parse_size("3 MiB") == 3 * MB

    def test_bad_inputs(self):
        for bad in ("", "abc", "1XB", "-5MB", -1):
            with pytest.raises(ConfigError):
                parse_size(bad)


class TestFormatting:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512B"
        assert fmt_bytes(1536) == "1.50KB"
        assert fmt_bytes(3 * GB) == "3.00GB"

    def test_fmt_seconds_paper_style(self):
        assert fmt_seconds(471.751) == "471.75s"
