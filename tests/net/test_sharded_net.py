"""Multi-host sharded runs, in process: digests never depend on the wire.

Two real agents on localhost host the shard workers; the coordinator
talks to them over the framed TCP transport.  The acceptance bar is the
ISSUE's: byte-identical output digests across local, multi-host, and
every injected ``net.*`` fault run — including the ones that kill or
partition every peer mid-job.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.apps.wordcount import make_wordcount_job
from repro.core.options import RuntimeOptions
from repro.faults.plan import (
    SITE_NET_CONN_DROP,
    SITE_NET_FRAME_CORRUPT,
    SITE_NET_HOST_LOSS,
    SITE_NET_PARTIAL_WRITE,
    SITE_NET_PARTITION,
    FaultPlan,
    FaultSpec,
)
from repro.faults.policy import RecoveryPolicy
from repro.parallel.backends import fork_available
from repro.shard import run_sharded

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def _options(**overrides) -> RuntimeOptions:
    return RuntimeOptions.supmr_interfile("32KB", 2, 4).with_(
        num_shards=2, **overrides
    )


class _AgentProc:
    """One real ``supmr agent`` subprocess (it may be told to *die*)."""

    def __init__(self, tmp_path, name: str) -> None:
        addr_file = tmp_path / f"{name}.addr"
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "agent",
                "--listen", "127.0.0.1:0",
                "--workdir", str(tmp_path / name),
                "--addr-file", str(addr_file),
                "--grace", "2.0",
            ],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd="/root/repo",
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 10.0
        while not addr_file.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        self.addr = addr_file.read_text().strip()

    def close(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=5.0)


@pytest.fixture
def agents(tmp_path):
    pair = (_AgentProc(tmp_path, "agent-a"), _AgentProc(tmp_path, "agent-b"))
    yield pair
    for srv in pair:
        srv.close()


@pytest.fixture(scope="module")
def local_digest(text_file) -> str:
    """The ground truth every networked run must reproduce exactly."""
    result = run_sharded(make_wordcount_job([text_file]), _options())
    return result.output_digest()


def _run_remote(text_file, agents, **overrides):
    options = _options(
        peers=",".join(srv.addr for srv in agents),
        net_timeout_s=1.0,
        **overrides,
    )
    return run_sharded(make_wordcount_job([text_file]), options)


class TestRemoteParity:
    def test_digest_matches_local(self, text_file, agents, local_digest):
        result = _run_remote(text_file, agents)
        assert result.output_digest() == local_digest
        assert result.counters["transport"] == "exchange-tcp"
        assert result.counters["net_peers"] == 2
        assert result.counters["net_host_losses"] == 0
        assert "net_fallback" not in result.counters

    @pytest.mark.parametrize("site", [
        SITE_NET_CONN_DROP,
        SITE_NET_FRAME_CORRUPT,
        SITE_NET_PARTIAL_WRITE,
        SITE_NET_HOST_LOSS,
        SITE_NET_PARTITION,
    ])
    def test_injected_fault_preserves_digest(
        self, text_file, agents, local_digest, site
    ):
        plan = FaultPlan(seed=7, specs=(
            FaultSpec(
                site=site, once_per_scope=True, max_fires=2,
                duration_s=5.0 if site == SITE_NET_PARTITION else None,
            ),
        ))
        result = _run_remote(text_file, agents, fault_plan=plan)
        assert result.output_digest() == local_digest
        # In-run recovery absorbed the fault: no local re-run happened.
        assert "net_fallback" not in result.counters

    def test_host_loss_is_counted_and_recovered_in_run(
        self, text_file, agents, local_digest
    ):
        plan = FaultPlan(seed=11, specs=(
            FaultSpec(site=SITE_NET_HOST_LOSS, once_per_scope=True),
        ))
        result = _run_remote(text_file, agents, fault_plan=plan)
        assert result.output_digest() == local_digest
        # once_per_scope rolls per link: every peer died mid-map, and
        # the ladder moved their shards home without a full re-run.
        assert result.counters["net_host_losses"] >= 1
        assert result.counters["net_hosts_lost"]
        assert "net_fallback" not in result.counters


class TestLocalFallback:
    def test_unabsorbable_failure_reruns_locally(
        self, text_file, agents, local_digest
    ):
        # With a zero retry budget the injected transfer corruption
        # exhausts immediately: the in-run ladder cannot absorb it, so
        # the whole job must fall back to a clean local re-run — where
        # the net.* site has no remote fetch to fire on.
        plan = FaultPlan(seed=3, specs=(
            FaultSpec(site=SITE_NET_FRAME_CORRUPT, once_per_scope=True),
        ))
        result = _run_remote(
            text_file, agents,
            fault_plan=plan, recovery=RecoveryPolicy(max_retries=0),
        )
        assert result.output_digest() == local_digest
        assert result.counters["net_fallback"] == "local"
        assert "net.frame.corrupt" in result.counters["net_fallback_reason"]
        assert result.counters["transport"] == "exchange-file"
