"""Wire forms for remote spawn: jobs, options, chunks must round-trip."""

from __future__ import annotations

import json

import pytest

from repro.apps.wordcount import make_wordcount_job
from repro.chunking.chunk import Chunk, ChunkSource
from repro.core.options import MergeAlgorithm, RuntimeOptions
from repro.errors import ConfigError
from repro.faults import parse_faults
from repro.faults.policy import RecoveryPolicy
from repro.net.jobs import (
    chunks_from_wire,
    chunks_to_wire,
    job_from_wire,
    job_to_wire,
    options_from_wire,
    options_to_wire,
)


class TestJobWire:
    def test_wordcount_round_trip(self, text_file):
        job = make_wordcount_job([text_file])
        rebuilt = job_from_wire(job_to_wire(job))
        assert rebuilt.name == job.name
        assert [str(p) for p in rebuilt.inputs] == [str(text_file)]

    def test_unknown_app_refused_at_decode(self, text_file):
        bad = dict(job_to_wire(make_wordcount_job([text_file])))
        bad["app"] = "mystery"
        with pytest.raises(ConfigError, match="unknown remote app"):
            job_from_wire(bad)

    def test_wire_form_is_json_safe(self, text_file):
        wire = job_to_wire(make_wordcount_job([text_file]))
        assert json.loads(json.dumps(wire)) == wire


class TestOptionsWire:
    def test_fault_plan_and_recovery_round_trip(self):
        plan = parse_faults(
            "net.frame.corrupt=once,record.corrupt=0.001", seed=42
        )
        options = RuntimeOptions.supmr_interfile("32KB", 3, 5).with_(
            fault_plan=plan,
            recovery=RecoveryPolicy(max_retries=2, skip_budget=7),
            memory_budget="8MB",
            merge_algorithm=MergeAlgorithm.PAIRWISE,
            tenant="acme",
            io_priority=2,
        )
        rebuilt = options_from_wire(options_to_wire(options))
        assert rebuilt.num_mappers == 3
        assert rebuilt.num_reducers == 5
        assert rebuilt.merge_algorithm is MergeAlgorithm.PAIRWISE
        assert rebuilt.tenant == "acme"
        assert rebuilt.io_priority == 2
        assert rebuilt.recovery.max_retries == 2
        assert rebuilt.recovery.skip_budget == 7
        # The fault plan must be bit-identical: remote workers roll the
        # same seeded sites with the same scopes as local ones.
        assert rebuilt.fault_plan.seed == 42
        assert rebuilt.fault_plan.specs == plan.specs

    def test_wire_form_is_json_safe(self):
        options = RuntimeOptions.supmr_interfile("32KB", 2, 4).with_(
            fault_plan=parse_faults("map.task=0.5", seed=9),
        )
        wire = options_to_wire(options)
        assert json.loads(json.dumps(wire)) == wire

    def test_placement_knobs_do_not_travel(self):
        options = RuntimeOptions.supmr_interfile("32KB", 2, 4).with_(
            num_shards=3, peers="h:1", shard_dir="/tmp/x",
        )
        wire = options_to_wire(options)
        assert "peers" not in wire
        assert "shard_dir" not in wire
        assert "num_shards" not in wire


class TestChunksWire:
    def test_round_trip_preserves_sources(self, tmp_path):
        chunks = [
            Chunk(index=4, sources=(
                ChunkSource(path=tmp_path / "a.txt", offset=0, length=100),
                ChunkSource(path=tmp_path / "b.txt", offset=64, length=36),
            )),
            Chunk(index=5, sources=(
                ChunkSource(path=tmp_path / "c.txt", offset=10, length=1),
            )),
        ]
        rebuilt = chunks_from_wire(chunks_to_wire(chunks))
        assert [c.index for c in rebuilt] == [4, 5]
        assert rebuilt[0].sources[1].offset == 64
        assert rebuilt[0].sources[1].length == 36
        assert str(rebuilt[1].sources[0].path) == str(tmp_path / "c.txt")

    def test_wire_form_is_json_safe(self, tmp_path):
        chunks = [Chunk(index=0, sources=(
            ChunkSource(path=tmp_path / "a", offset=0, length=5),
        ))]
        wire = chunks_to_wire(chunks)
        assert json.loads(json.dumps(wire)) == wire
