"""One damage matrix, every decode surface.

The same catalogue of damaged byte streams — truncations at every
structural boundary, single-bit flips at every offset, oversize claims,
interleaved garbage — is replayed against each way frames enter the
system: pure ``decode_frame``, the blocking socket reader the net
transport uses, the asyncio reader the service daemon uses, and a live
agent session.  A surface that hangs, crashes, or silently accepts a
damaged frame fails; the only acceptable outcomes are a typed
:class:`ProtocolError` (or clean EOF) and, for the agent, staying up.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import pytest

from repro.errors import ProtocolError
from repro.service.protocol import (
    decode_frame,
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
)

_HEADER_SIZE = 14
_FRAME = encode_frame({"type": "hello", "pad": "x" * 64})


def _truncations() -> list[tuple[str, bytes]]:
    cuts = [0, 1, _HEADER_SIZE - 1, _HEADER_SIZE, _HEADER_SIZE + 1,
            len(_FRAME) // 2, len(_FRAME) - 1]
    return [(f"cut@{n}", _FRAME[:n]) for n in cuts if n < len(_FRAME)]


def _bit_flips() -> list[tuple[str, bytes]]:
    # One flip in every structural region: magic, version, kind, crc,
    # length, and a spread of payload offsets.
    offsets = [0, 3, 4, 5, 6, 10, _HEADER_SIZE,
               _HEADER_SIZE + 7, len(_FRAME) - 1]
    cases = []
    for off in offsets:
        damaged = bytearray(_FRAME)
        damaged[off] ^= 0x40
        cases.append((f"flip@{off}", bytes(damaged)))
    return cases


def _oversize() -> list[tuple[str, bytes]]:
    header = struct.Struct(">4sBBII").pack(
        b"RSVC", 1, 0, 0, 2**31
    )
    return [("oversize-claim", header + b"{}")]


def _garbage() -> list[tuple[str, bytes]]:
    return [
        ("pure-noise", b"\x00" * 64),
        ("http-request", b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"),
        ("frame-then-noise", _FRAME + b"\xde\xad\xbe\xef" * 8),
        ("noise-then-frame", b"junkjunkjunk" + _FRAME),
    ]


DAMAGE = _truncations() + _bit_flips() + _oversize() + _garbage()
_IDS = [name for name, _ in DAMAGE]


def _is_clean(name: str, data: bytes) -> bool:
    """Damage that still yields one intact leading frame."""
    return name == "frame-then-noise"


@pytest.mark.parametrize("name,data", DAMAGE, ids=_IDS)
class TestDecodeFrame:
    def test_never_accepts_damage(self, name, data):
        if _is_clean(name, data):
            pytest.skip("leading frame is intact by construction")
        with pytest.raises(ProtocolError):
            decode_frame(data)


@pytest.mark.parametrize("name,data", DAMAGE, ids=_IDS)
class TestBlockingReader:
    def test_typed_error_or_clean_frame_never_a_hang(self, name, data):
        a, b = socket.socketpair()
        try:
            a.sendall(data)
            a.close()
            if _is_clean(name, data):
                assert recv_frame(b, timeout_s=2.0) == decode_frame(_FRAME)
            else:
                with pytest.raises((ProtocolError, EOFError)):
                    recv_frame(b, timeout_s=2.0)
        finally:
            b.close()


@pytest.mark.parametrize("name,data", DAMAGE, ids=_IDS)
class TestAsyncReader:
    def test_typed_error_or_clean_frame_never_a_hang(self, name, data):
        async def scenario():
            server_got = asyncio.Queue()

            async def on_conn(reader, writer):
                try:
                    frame = await read_frame(reader, stall_timeout_s=2.0)
                    await server_got.put(("ok", frame))
                except (ProtocolError, EOFError) as exc:
                    await server_got.put(("err", exc))
                finally:
                    writer.close()

            server = await asyncio.start_server(on_conn, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(data)
            await writer.drain()
            writer.close()
            outcome = await asyncio.wait_for(server_got.get(), timeout=5.0)
            server.close()
            await server.wait_closed()
            return outcome

        kind, value = asyncio.run(scenario())
        if _is_clean(name, data):
            assert kind == "ok" and value == decode_frame(_FRAME)
        else:
            assert kind == "err"


class TestAgentSessionSurvivesDamage:
    """A damaged session never takes the agent down or wedges it."""

    @pytest.fixture
    def agent(self, tmp_path):
        from repro.net.agent import AgentServer

        srv = AgentServer(workdir=tmp_path / "agent").start()
        yield srv
        srv.close()

    @pytest.mark.parametrize("name,data", DAMAGE, ids=_IDS)
    def test_damage_then_a_fresh_session_still_works(
        self, agent, name, data
    ):
        import pickle

        from repro.net import wire

        hostile = wire.connect(agent.addr, timeout_s=2.0)
        try:
            hostile.sendall(data)
        finally:
            hostile.close()
        # Whatever the damage did to that session, the agent must
        # still accept and serve a brand-new control session.
        ctl = wire.connect(agent.addr, timeout_s=2.0)
        try:
            send_frame(ctl, {"type": "hello"})
            send_frame(ctl, pickle.dumps({"cmd": "ping", "seq": 0}))
            frame = recv_frame(ctl, timeout_s=5.0)
            tag, rseq, payload = pickle.loads(frame)
            assert tag == "res"
            assert payload["type"] == "pong"
        finally:
            ctl.close()
