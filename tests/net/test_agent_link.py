"""Agent control sessions: liveness, dedup in both directions, grace."""

from __future__ import annotations

import pickle
import socket
import time

import pytest

from repro.apps.wordcount import make_wordcount_job
from repro.chunking.planner import plan_whole_input
from repro.core.options import RuntimeOptions
from repro.net import wire
from repro.net.agent import AgentServer
from repro.net.jobs import chunks_to_wire, job_to_wire, options_to_wire
from repro.net.remote import AgentLink, RemoteHandle
from repro.parallel.backends import fork_available
from repro.service.protocol import recv_frame, send_frame

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


@pytest.fixture
def agent(tmp_path):
    srv = AgentServer(workdir=tmp_path / "agent", grace_s=0.3).start()
    yield srv
    srv.close()


def _wait_until(predicate, timeout_s: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class _RawControl:
    """A hand-rolled coordinator side, for protocol-level assertions."""

    def __init__(self, addr: str) -> None:
        self.sock = wire.connect(addr, timeout_s=5.0)
        send_frame(self.sock, {"type": "hello"})

    def command(self, **cmd) -> None:
        send_frame(self.sock, pickle.dumps(cmd))

    def recv_res(self, timeout_s: float = 2.0):
        """Next ``("res", rseq, payload)`` frame, or None on silence."""
        try:
            frame = recv_frame(self.sock, timeout_s=timeout_s, idle_ok=False)
        except Exception:  # noqa: BLE001 - silence/teardown are expected
            return None
        tag, rseq, payload = pickle.loads(frame)
        assert tag == "res"
        return rseq, payload

    def close(self) -> None:
        self.sock.close()


class TestControlProtocol:
    def test_ping_answers_pong_with_rseq(self, agent):
        ctl = _RawControl(agent.addr)
        try:
            ctl.command(cmd="ping", seq=0)
            rseq, payload = ctl.recv_res()
            assert rseq == 0
            assert payload == {"type": "pong", "seq": 0}
        finally:
            ctl.close()

    def test_duplicate_seq_is_ignored(self, agent):
        ctl = _RawControl(agent.addr)
        try:
            ctl.command(cmd="ping", seq=5)
            assert ctl.recv_res()[1]["seq"] == 5
            # A resend of an already-processed command must be a no-op.
            ctl.command(cmd="ping", seq=5)
            assert ctl.recv_res(timeout_s=0.5) is None
            ctl.command(cmd="ping", seq=6)
            assert ctl.recv_res()[1]["seq"] == 6
        finally:
            ctl.close()

    def test_unacked_tail_is_resent_on_reconnect(self, agent):
        ctl = _RawControl(agent.addr)
        ctl.command(cmd="ping", seq=0)
        first = ctl.recv_res()
        assert first == (0, {"type": "pong", "seq": 0})
        # Drop the connection without ever acking rseq 0.  The pong the
        # kernel already accepted is gone; the agent must not care.
        ctl.close()
        ctl2 = _RawControl(agent.addr)
        try:
            assert ctl2.recv_res() == first  # the unacked tail, again
        finally:
            ctl2.close()

    def test_acked_frames_are_not_resent(self, agent):
        ctl = _RawControl(agent.addr)
        ctl.command(cmd="ping", seq=0)
        assert ctl.recv_res()[0] == 0
        ctl.command(cmd="ping", seq=1, ack=0)  # trims rseq 0
        assert ctl.recv_res()[0] == 1
        ctl.close()
        ctl2 = _RawControl(agent.addr)
        try:
            rseq, payload = ctl2.recv_res()
            assert rseq == 1  # rseq 0 was acked; only 1 comes back
            assert payload["seq"] == 1
        finally:
            ctl2.close()


class TestAgentLink:
    def test_pings_keep_the_link_usable(self, agent):
        link = AgentLink(agent.addr, net_timeout_s=0.8)
        try:
            link.attach(lambda blob: None)
            time.sleep(1.6)  # two timeout windows of pure idle
            assert link.usable
        finally:
            link.close()

    def test_dead_agent_marks_the_link_unusable(self, agent):
        link = AgentLink(agent.addr, net_timeout_s=0.5, retries=1)
        link.attach(lambda blob: None)
        agent.close()
        assert _wait_until(lambda: not link.usable)
        link.close()

    def test_injected_partition_is_indistinguishable_from_death(self, agent):
        link = AgentLink(agent.addr, net_timeout_s=0.5, retries=1)
        link.attach(lambda blob: None)
        try:
            assert link.inject_partition(duration_s=30.0)
            # The agent is alive but silent: past net_timeout_s that is
            # a partition, and a partitioned peer is written off.
            assert _wait_until(lambda: not link.usable, timeout_s=5.0)
        finally:
            link.close()

    def test_unreachable_peer_raises_at_construction(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        listener.close()
        from repro.errors import PeerUnreachable

        with pytest.raises(PeerUnreachable):
            AgentLink(f"127.0.0.1:{port}", net_timeout_s=0.5, retries=1)

    def test_send_after_death_returns_false(self, agent):
        link = AgentLink(agent.addr, net_timeout_s=0.5, retries=0)
        link.attach(lambda blob: None)
        agent.close()
        assert _wait_until(lambda: not link.usable)
        assert link.send({"cmd": "ping"}) is False
        link.close()


@needs_fork
class TestHostedWorkers:
    def _spawn_args(self, text_file):
        job = make_wordcount_job([text_file])
        options = RuntimeOptions.supmr_interfile("64KB", 2, 2)
        chunks = plan_whole_input(job.inputs)
        return (
            job_to_wire(job), options_to_wire(options),
            chunks_to_wire(chunks), 2,
        )

    def test_worker_exit_is_reported_over_the_link(self, agent, text_file):
        job_w, opt_w, chunks_w, parts = self._spawn_args(text_file)
        link = AgentLink(agent.addr, net_timeout_s=5.0)
        link.attach(lambda blob: None)
        try:
            assert link.spawn(0, 0, job_w, opt_w, chunks_w, parts)
            handle = RemoteHandle(link, sid=0, wid=0)
            assert _wait_until(lambda: (0, 0) in agent.workers)
            assert handle.alive()
            handle.stop()  # graceful sentinel: worker exits cleanly
            assert _wait_until(lambda: (0, 0) in link.exited)
            assert link.exited[(0, 0)] == 0
            assert not handle.alive()
            assert "exited with code 0" in handle.describe_exit()
        finally:
            link.close()

    def test_grace_reaper_kills_orphaned_workers(self, agent, text_file):
        job_w, opt_w, chunks_w, parts = self._spawn_args(text_file)
        link = AgentLink(agent.addr, net_timeout_s=5.0)
        link.attach(lambda blob: None)
        assert link.spawn(0, 0, job_w, opt_w, chunks_w, parts)
        assert _wait_until(lambda: (0, 0) in agent.workers)
        proc = agent.workers[(0, 0)].proc
        # Sever the control connection and never come back: after
        # grace_s the agent must reap the worker — no orphans.  (The
        # in-process fork holds dup fds of this test's sockets, so the
        # agent would never see our FIN; detach the session by hand and
        # run the reaper exactly as a real disconnect does.)
        link._closing = True  # silence the pinger *before* severing
        link._drop_socket()
        with agent._send_lock:
            agent._ctl = None
        agent._grace_reaper()
        assert _wait_until(lambda: not proc.is_alive(), timeout_s=5.0)
        assert _wait_until(lambda: (0, 0) not in agent.workers)
        # A reap is an *event*, not an order: it must be observable —
        # counted apart from commanded kills and logged as a fault row.
        from repro.faults.log import ACTION_REAPED
        from repro.faults.plan import SITE_NET_AGENT_REAP

        assert agent.counters["agent_reaped"] == 1
        assert agent.counters["agent_killed"] == 0
        rows = [r for r in agent.fault_log.events
                if r.site == SITE_NET_AGENT_REAP]
        assert len(rows) == 1
        assert rows[0].action == ACTION_REAPED
        assert "grace" in rows[0].detail
        assert rows[0].scope == "0.0"
