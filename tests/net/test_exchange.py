"""Remote run fetch: resume, verify-then-refetch, deadlines, escapes."""

from __future__ import annotations

import socket
import threading
from pathlib import Path

import pytest

from repro.errors import NetError, PeerUnreachable, RetryExhausted
from repro.net.exchange import (
    CHUNK_BYTES,
    _FetchConn,
    fetch_run_remote,
    serve_fetch_session,
)
from repro.spill.runfile import RunReader, RunWriter


class _FetchServer:
    """A tiny threaded fetch exporter over one base directory."""

    def __init__(self, base_dir: Path) -> None:
        self.base_dir = base_dir
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.addr = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self._threads: list[threading.Thread] = []
        self._accepting = True
        self._acceptor = threading.Thread(target=self._accept, daemon=True)
        self._acceptor.start()

    def _accept(self) -> None:
        while self._accepting:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            sock.settimeout(10.0)
            # Swallow the session-type hello the client leads with.
            t = threading.Thread(
                target=self._serve, args=(sock,), daemon=True
            )
            t.start()
            self._threads.append(t)

    def _serve(self, sock: socket.socket) -> None:
        from repro.service.protocol import recv_frame

        try:
            recv_frame(sock, timeout_s=10.0)  # {"type": "fetch"} hello
            serve_fetch_session(sock, self.base_dir, stall_timeout_s=10.0)
        except Exception:
            pass
        finally:
            sock.close()

    def close(self) -> None:
        self._accepting = False
        self._listener.close()
        for t in self._threads:
            t.join(timeout=2.0)


@pytest.fixture
def run_file(tmp_path) -> Path:
    """A real (CRC-verifiable) exchange run of a few hundred records."""
    path = tmp_path / "outbox" / "part-0003.run"
    path.parent.mkdir()
    with RunWriter(path) as w:
        for i in range(400):
            w.write_group(f"key-{i:05d}", (f"value-{i}",))
    return path


@pytest.fixture
def server(run_file):
    srv = _FetchServer(run_file.parent)
    yield srv
    srv.close()


def _assert_intact(reader: RunReader, src: Path) -> None:
    assert reader.verify()
    assert [k for k, _ in reader] == [k for k, _ in RunReader(src)]


class TestFetchRunRemote:
    def test_plain_fetch_verifies_and_matches(self, server, run_file, tmp_path):
        dst = tmp_path / "fetched.run"
        reader, attempt = fetch_run_remote(server.addr, run_file, dst)
        assert attempt == 0
        _assert_intact(reader, run_file)

    def test_injected_drop_resumes_and_still_verifies(
        self, server, run_file, tmp_path
    ):
        dst = tmp_path / "fetched.run"
        events = []
        reader, attempt = fetch_run_remote(
            server.addr, run_file, dst,
            drop_attempts=(0,), events=events, scope="(0, 1)",
        )
        assert attempt == 0  # resume repairs in-place, no refetch needed
        _assert_intact(reader, run_file)
        assert any("resuming from the received offset" in e[2] for e in events)

    def test_injected_corruption_is_caught_and_refetched(
        self, server, run_file, tmp_path
    ):
        dst = tmp_path / "fetched.run"
        events = []
        reader, attempt = fetch_run_remote(
            server.addr, run_file, dst,
            corrupt_attempts=(0,), events=events, scope="(0, 1)",
        )
        assert attempt == 1  # first copy rejected by its checksum
        _assert_intact(reader, run_file)
        assert any("rejected" in e[2] for e in events)

    def test_persistent_corruption_exhausts_the_budget(
        self, server, run_file, tmp_path
    ):
        with pytest.raises(RetryExhausted) as exc:
            fetch_run_remote(
                server.addr, run_file, tmp_path / "fetched.run",
                corrupt_attempts=(0, 1, 2), max_retries=2,
            )
        assert exc.value.site == "net.frame.corrupt"
        assert exc.value.attempts == 3
        assert not (tmp_path / "fetched.run").exists()

    def test_deadline_surfaces_as_peer_unreachable(
        self, server, run_file, tmp_path
    ):
        with pytest.raises(PeerUnreachable) as exc:
            fetch_run_remote(
                server.addr, run_file, tmp_path / "fetched.run",
                deadline_s=-1.0,
            )
        assert exc.value.peer == server.addr

    def test_missing_run_is_refused(self, server, run_file, tmp_path):
        with pytest.raises(RetryExhausted, match="failed"):
            fetch_run_remote(
                server.addr, run_file.parent / "part-9999.run",
                tmp_path / "fetched.run", max_retries=0, deadline_s=5.0,
            )


class TestServeFetchSession:
    def test_path_escape_is_refused(self, server, run_file, tmp_path):
        outside = tmp_path / "secret.txt"
        outside.write_text("not exported")
        conn = _FetchConn(server.addr, timeout_s=5.0)
        try:
            with pytest.raises(NetError, match="refused"):
                conn.stat(str(outside))
        finally:
            conn.close()

    def test_read_is_clamped_to_chunk_bytes(self, server, run_file):
        conn = _FetchConn(server.addr, timeout_s=5.0)
        try:
            data = conn.read_range(str(run_file), 0, CHUNK_BYTES * 64)
            assert len(data) <= CHUNK_BYTES
        finally:
            conn.close()

    def test_unknown_op_is_an_error_not_a_hang(self, server, run_file):
        from repro.service.protocol import recv_frame, send_frame

        conn = _FetchConn(server.addr, timeout_s=5.0)
        try:
            send_frame(conn.sock, {"op": "delete", "path": str(run_file)})
            reply = recv_frame(conn.sock, timeout_s=5.0)
            assert reply["ok"] is False
            assert "unknown op" in reply["error"]
        finally:
            conn.close()
