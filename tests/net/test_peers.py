"""Peer address parsing: the `--peers` validation surface."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.net.peers import format_addr, parse_peers, split_addr


class TestSplitAddr:
    def test_round_trip(self):
        assert split_addr("example.com:8431") == ("example.com", 8431)
        assert format_addr("example.com", 8431) == "example.com:8431"

    def test_missing_port(self):
        with pytest.raises(ConfigError, match="host:port"):
            split_addr("justahost")

    def test_missing_host(self):
        with pytest.raises(ConfigError, match="host:port"):
            split_addr(":8431")

    def test_non_integer_port(self):
        with pytest.raises(ConfigError, match="not an integer"):
            split_addr("h:eighty")

    def test_port_zero_rejected_for_peers(self):
        with pytest.raises(ConfigError, match="1..65535"):
            split_addr("h:0")

    def test_port_zero_allowed_for_listen(self):
        # The agent's --listen uses 0 as "pick an ephemeral port".
        assert split_addr("h:0", listen=True) == ("h", 0)

    def test_port_out_of_range(self):
        with pytest.raises(ConfigError, match="1..65535"):
            split_addr("h:65536")


class TestParsePeers:
    def test_comma_separated_string(self):
        assert parse_peers("a:1, b:2 ,c:3") == ("a:1", "b:2", "c:3")

    def test_sequence_input(self):
        assert parse_peers(["a:1", "b:2"]) == ("a:1", "b:2")

    def test_empty_is_an_error(self):
        with pytest.raises(ConfigError, match="at least one"):
            parse_peers(" , ,")

    def test_duplicates_are_an_error(self):
        with pytest.raises(ConfigError, match="duplicate"):
            parse_peers("a:1,a:1")

    def test_duplicates_collide_on_canonical_form(self):
        # a:01 and a:1 are the same agent instance, spelled differently
        with pytest.raises(ConfigError, match="duplicate"):
            parse_peers("a:01,a:1")

    def test_empty_segment_is_an_error(self):
        with pytest.raises(ConfigError, match="empty segment"):
            parse_peers("a:1,,b:2")

    def test_trailing_comma_is_an_error(self):
        with pytest.raises(ConfigError, match="empty segment"):
            parse_peers("a:1,b:2,")

    def test_surrounding_whitespace_is_stripped(self):
        assert parse_peers("  a:1 ,\tb:2  ") == ("a:1", "b:2")

    def test_bad_entry_is_an_error(self):
        with pytest.raises(ConfigError, match="host:port"):
            parse_peers("a:1,nonsense")


class TestOptionsIntegration:
    def test_peers_require_num_shards(self):
        from repro.core.options import RuntimeOptions

        with pytest.raises(ConfigError, match="requires num_shards"):
            RuntimeOptions.supmr_interfile("32KB", 2, 4).with_(
                peers="127.0.0.1:9000"
            )

    def test_peers_normalized_to_tuple(self):
        from repro.core.options import RuntimeOptions

        options = RuntimeOptions.supmr_interfile("32KB", 2, 4).with_(
            num_shards=2, peers="a:1,b:2"
        )
        assert options.peers == ("a:1", "b:2")

    def test_net_timeout_must_be_positive(self):
        from repro.core.options import RuntimeOptions

        with pytest.raises(ConfigError, match="net_timeout_s"):
            RuntimeOptions.supmr_interfile("32KB", 2, 4).with_(
                net_timeout_s=0.0
            )
