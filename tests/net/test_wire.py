"""Wire-level primitives: bounded retries and seeded send faults."""

from __future__ import annotations

import socket

import pytest

from repro.errors import PeerUnreachable, ProtocolError
from repro.faults.plan import (
    SITE_NET_CONN_DROP,
    SITE_NET_PARTIAL_WRITE,
    FaultPlan,
    FaultSpec,
)
from repro.faults.policy import RecoveryPolicy
from repro.net import wire
from repro.service.protocol import recv_frame, send_frame


def _armed(site: str):
    plan = FaultPlan(seed=1, specs=(
        FaultSpec(site=site, once_per_scope=True),
    ))
    return plan.arm(RecoveryPolicy())


class TestWithRetries:
    def _no_sleep(self, _s: float) -> None:
        pass

    def test_succeeds_after_transient_failures(self):
        calls = []

        def fn(attempt: int) -> str:
            calls.append(attempt)
            if attempt < 2:
                raise ConnectionResetError("flap")
            return "ok"

        assert wire.with_retries(fn, retries=3, sleep=self._no_sleep) == "ok"
        assert calls == [0, 1, 2]

    def test_eof_and_transient_protocol_damage_retry(self):
        errors = [
            EOFError("closed"),
            ProtocolError("torn", reason="truncated"),
            ProtocolError("stalled", reason="stalled"),
            ProtocolError("crc", reason="bad-crc"),
        ]

        def fn(attempt: int) -> int:
            if attempt < len(errors):
                raise errors[attempt]
            return attempt

        assert wire.with_retries(fn, retries=4, sleep=self._no_sleep) == 4

    def test_structural_damage_is_not_retried(self):
        calls = []

        def fn(attempt: int) -> None:
            calls.append(attempt)
            raise ProtocolError("garbage", reason="bad-magic")

        with pytest.raises(ProtocolError):
            wire.with_retries(fn, retries=3, sleep=self._no_sleep)
        assert calls == [0]

    def test_exhaustion_raises_peer_unreachable_with_peer(self):
        def fn(attempt: int) -> None:
            raise ConnectionRefusedError("nope")

        with pytest.raises(PeerUnreachable) as exc:
            wire.with_retries(
                fn, retries=2, label="connect to agent h:1",
                peer="h:1", sleep=self._no_sleep,
            )
        assert exc.value.peer == "h:1"
        assert "3 attempt(s)" in str(exc.value)

    def test_backoff_delays_are_seeded_and_bounded(self):
        delays: list[float] = []

        def fn(attempt: int) -> None:
            raise OSError("down")

        with pytest.raises(PeerUnreachable):
            wire.with_retries(
                fn, retries=3, seed=7, base_s=0.05, sleep=delays.append
            )
        assert len(delays) == 3
        assert all(0 <= d <= 0.05 * 8 for d in delays)
        # Same seed, same schedule: determinism is the whole point.
        replay: list[float] = []
        with pytest.raises(PeerUnreachable):
            wire.with_retries(
                fn, retries=3, seed=7, base_s=0.05, sleep=replay.append
            )
        assert replay == delays


class TestSendFrameFaulted:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        return a, b

    def test_unfaulted_send_is_a_plain_frame(self):
        a, b = self._pair()
        try:
            wire.send_frame_faulted(a, {"x": 1})
            assert recv_frame(b) == {"x": 1}
        finally:
            a.close()
            b.close()

    def test_injected_drop_severs_before_any_byte(self):
        a, b = self._pair()
        try:
            with pytest.raises(ConnectionResetError, match="net.conn.drop"):
                wire.send_frame_faulted(
                    a, {"x": 1}, _armed(SITE_NET_CONN_DROP), scope=("s", 0)
                )
            # Peer sees a close with no payload bytes at all.
            with pytest.raises((EOFError, OSError, ProtocolError)):
                recv_frame(b, timeout_s=2.0)
        finally:
            b.close()

    def test_injected_partial_write_tears_the_frame(self):
        a, b = self._pair()
        try:
            with pytest.raises(
                ConnectionResetError, match="net.partial.write"
            ):
                wire.send_frame_faulted(
                    a, {"big": "y" * 500},
                    _armed(SITE_NET_PARTIAL_WRITE), scope=("s", 0),
                )
            # Peer got half a frame: torn, never silently decoded.
            with pytest.raises((ProtocolError, OSError)):
                recv_frame(b, timeout_s=2.0)
        finally:
            b.close()

    def test_fault_fires_once_per_scope(self):
        injector = _armed(SITE_NET_CONN_DROP)
        a, b = self._pair()
        a.close()  # first send severed it
        with pytest.raises(ConnectionResetError):
            wire.send_frame_faulted(a, {"x": 1}, injector, scope=("s", 0))
        c, d = self._pair()
        try:
            # Same scope again: the once-per-scope site stays quiet.
            wire.send_frame_faulted(c, {"x": 2}, injector, scope=("s", 0))
            assert recv_frame(d) == {"x": 2}
        finally:
            c.close()
            d.close()
            b.close()


class TestConnect:
    def test_refused_raises_oserror(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        listener.close()
        with pytest.raises(OSError):
            wire.connect(f"127.0.0.1:{port}", timeout_s=2.0)

    def test_connect_round_trip(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        try:
            sock = wire.connect(f"127.0.0.1:{port}", timeout_s=2.0)
            server_side, _ = listener.accept()
            try:
                send_frame(sock, {"hi": True})
                assert recv_frame(server_side, timeout_s=2.0) == {"hi": True}
            finally:
                sock.close()
                server_side.close()
        finally:
            listener.close()
