"""Library logging conventions."""

from __future__ import annotations

import logging

from repro.apps.wordcount import make_wordcount_job
from repro.core.options import RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.core.supmr import run_ingest_mr
from repro.util.logging import enable_console_logging, get_logger


class TestLoggerHierarchy:
    def test_get_logger_prefixes(self):
        assert get_logger("core.supmr").name == "repro.core.supmr"
        assert get_logger("repro.core").name == "repro.core"

    def test_null_handler_installed(self):
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_enable_console_returns_removable_handler(self):
        handler = enable_console_logging(logging.DEBUG)
        try:
            assert handler in logging.getLogger("repro").handlers
        finally:
            logging.getLogger("repro").removeHandler(handler)


class TestRuntimeLogging:
    def test_phoenix_logs_job_summary(self, text_file, caplog):
        with caplog.at_level(logging.INFO, logger="repro"):
            PhoenixRuntime().run(make_wordcount_job([text_file]))
        messages = [r.message for r in caplog.records]
        assert any("finished on phoenix" in m for m in messages)

    def test_supmr_logs_rounds_at_debug(self, text_file, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro"):
            run_ingest_mr(make_wordcount_job([text_file]),
                          RuntimeOptions.supmr_interfile("32KB"))
        messages = [r.message for r in caplog.records]
        assert any("finished on supmr" in m for m in messages)
        assert any(m.startswith("round ") for m in messages)

    def test_silent_by_default(self, text_file, capsys):
        PhoenixRuntime().run(make_wordcount_job([text_file]))
        captured = capsys.readouterr()
        assert "finished on phoenix" not in captured.err
        assert "finished on phoenix" not in captured.out
