"""Reproducibility guarantees: identical runs, identical results.

The simulator's deterministic tie-breaking and the seeded generators
mean every artifact in EXPERIMENTS.md is exactly reproducible; these
tests pin that (and keep the full Table II simulation fast enough to
rerun habitually).
"""

from __future__ import annotations

import time

from repro.apps.wordcount import make_wordcount_job
from repro.core.options import RuntimeOptions
from repro.core.supmr import run_ingest_mr
from repro.simrt.costmodel import GB_SI, PAPER_SORT, PAPER_WORDCOUNT
from repro.simrt.phoenix_sim import simulate_phoenix_job
from repro.simrt.supmr_sim import simulate_supmr_job


class TestSimulationDeterminism:
    def test_identical_traces_across_runs(self):
        a = simulate_phoenix_job(PAPER_SORT, 60 * GB_SI, monitor_interval=2.0)
        b = simulate_phoenix_job(PAPER_SORT, 60 * GB_SI, monitor_interval=2.0)
        assert a.timings == b.timings
        assert a.samples == b.samples
        assert [(s.name, s.start, s.end) for s in a.spans] == [
            (s.name, s.start, s.end) for s in b.spans
        ]

    def test_supmr_rounds_identical_across_runs(self):
        a = simulate_supmr_job(PAPER_WORDCOUNT, 20 * GB_SI, 1 * GB_SI,
                               monitor_interval=5.0)
        b = simulate_supmr_job(PAPER_WORDCOUNT, 20 * GB_SI, 1 * GB_SI,
                               monitor_interval=5.0)
        assert a.timings.rounds == b.timings.rounds

    def test_real_runtime_output_deterministic(self, text_file):
        results = [
            run_ingest_mr(make_wordcount_job([text_file]),
                          RuntimeOptions.supmr_interfile("32KB")).output
            for _ in range(2)
        ]
        assert results[0] == results[1]


class TestPerformanceGuards:
    def test_full_table2_simulates_in_seconds(self):
        """The paper-scale matrix must stay cheap enough to rerun in CI."""
        t0 = time.perf_counter()
        simulate_phoenix_job(PAPER_WORDCOUNT, 155 * GB_SI,
                             monitor_interval=10.0)
        simulate_supmr_job(PAPER_WORDCOUNT, 155 * GB_SI, 1 * GB_SI,
                           monitor_interval=10.0)
        simulate_phoenix_job(PAPER_SORT, 60 * GB_SI, monitor_interval=10.0)
        simulate_supmr_job(PAPER_SORT, 60 * GB_SI, 1 * GB_SI,
                           monitor_interval=10.0)
        assert time.perf_counter() - t0 < 10.0

    def test_event_counts_bounded(self):
        """~155 pipeline rounds must not explode into millions of events."""
        from repro.simhw.events import Simulator
        from repro.simhw.machine import paper_machine
        from repro.simrt.supmr_sim import simulate_supmr_job as sim_job

        result = sim_job(PAPER_WORDCOUNT, 155 * GB_SI, 1 * GB_SI,
                         monitor_interval=50.0)
        # (simulator not exposed on the result; re-run with a local one)
        sim = Simulator()
        machine = paper_machine(sim, monitor_interval=50.0)
        sim_job(PAPER_WORDCOUNT, 155 * GB_SI, 1 * GB_SI, machine=machine)
        assert sim.events_processed < 200_000
        assert result.extras["n_chunks"] == 155
