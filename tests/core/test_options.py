"""Runtime options validation and constructors."""

from __future__ import annotations

import pytest

from repro.core.options import ChunkStrategy, MergeAlgorithm, RuntimeOptions
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_are_baseline(self):
        opts = RuntimeOptions()
        assert opts.chunk_strategy is ChunkStrategy.NONE
        assert opts.merge_algorithm is MergeAlgorithm.PAIRWISE

    def test_thread_counts_validated(self):
        with pytest.raises(ConfigError):
            RuntimeOptions(num_mappers=0)
        with pytest.raises(ConfigError):
            RuntimeOptions(num_reducers=0)

    def test_interfile_requires_chunk_bytes(self):
        with pytest.raises(ConfigError):
            RuntimeOptions(chunk_strategy=ChunkStrategy.INTER_FILE)

    def test_intrafile_requires_files_per_chunk(self):
        with pytest.raises(ConfigError):
            RuntimeOptions(chunk_strategy=ChunkStrategy.INTRA_FILE)

    def test_merge_parallelism_validated(self):
        with pytest.raises(ConfigError):
            RuntimeOptions(merge_parallelism=0)

    def test_effective_merge_parallelism_defaults_to_reducers(self):
        opts = RuntimeOptions(num_reducers=6)
        assert opts.effective_merge_parallelism == 6
        assert opts.with_(merge_parallelism=3).effective_merge_parallelism == 3


class TestConstructors:
    def test_baseline(self):
        opts = RuntimeOptions.baseline(8, 2)
        assert opts.num_mappers == 8
        assert opts.num_reducers == 2
        assert opts.chunk_strategy is ChunkStrategy.NONE

    def test_supmr_interfile_parses_sizes(self):
        opts = RuntimeOptions.supmr_interfile("1MB")
        assert opts.chunk_bytes == 1024 * 1024
        assert opts.chunk_strategy is ChunkStrategy.INTER_FILE
        assert opts.merge_algorithm is MergeAlgorithm.PWAY

    def test_supmr_intrafile(self):
        opts = RuntimeOptions.supmr_intrafile(4)
        assert opts.files_per_chunk == 4
        assert opts.chunk_strategy is ChunkStrategy.INTRA_FILE

    def test_with_copies(self):
        opts = RuntimeOptions.baseline()
        changed = opts.with_(num_mappers=16)
        assert changed.num_mappers == 16
        assert opts.num_mappers == 4  # original untouched

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RuntimeOptions().num_mappers = 7  # type: ignore[misc]

    def test_pipelined_flag_passthrough(self):
        opts = RuntimeOptions.supmr_interfile("1MB", pipelined_ingest=False)
        assert opts.pipelined_ingest is False


class TestMemoryBudget:
    def test_default_is_unbudgeted(self):
        assert RuntimeOptions().memory_budget is None

    def test_size_strings_parse(self):
        opts = RuntimeOptions(memory_budget="64KB")
        assert opts.memory_budget == 64 * 1024

    def test_int_budget_passthrough(self):
        assert RuntimeOptions(memory_budget=4096).memory_budget == 4096

    def test_budget_must_be_positive(self):
        with pytest.raises(ConfigError):
            RuntimeOptions(memory_budget=0)

    def test_budget_must_exceed_one_chunk(self):
        with pytest.raises(ConfigError, match="ingest chunk"):
            RuntimeOptions.supmr_interfile("1MB").with_(memory_budget="64KB")

    def test_budget_above_chunk_accepted(self):
        opts = RuntimeOptions.supmr_interfile("16KB").with_(
            memory_budget="64KB"
        )
        assert opts.memory_budget == 64 * 1024

    def test_fan_in_validated(self):
        with pytest.raises(ConfigError):
            RuntimeOptions(spill_merge_fan_in=1)

    def test_fan_in_default(self):
        assert RuntimeOptions().spill_merge_fan_in == 8
