"""Dynamic task scheduler (work-queue discipline)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.scheduler import TaskScheduler
from repro.errors import ConfigError, RuntimeStateError


class TestBasics:
    def test_runs_all_tasks(self):
        done = []
        with TaskScheduler(workers=3) as sched:
            for i in range(20):
                sched.submit(done.append, i)
            sched.drain()
        assert sorted(done) == list(range(20))

    def test_map_wave_helper(self):
        out = []
        lock = threading.Lock()

        def work(i):
            with lock:
                out.append(i * 2)

        with TaskScheduler(workers=2) as sched:
            sched.map_wave(work, list(range(10)))
        assert sorted(out) == [i * 2 for i in range(10)]

    def test_reusable_across_waves(self):
        counter = []
        with TaskScheduler(workers=2) as sched:
            sched.map_wave(counter.append, [1, 2, 3])
            sched.map_wave(counter.append, [4, 5])
        assert len(counter) == 5

    def test_invalid_workers(self):
        with pytest.raises(ConfigError):
            TaskScheduler(workers=0)

    def test_submit_after_shutdown_raises(self):
        sched = TaskScheduler(workers=1)
        sched.shutdown()
        with pytest.raises(RuntimeStateError):
            sched.submit(lambda: None)

    def test_shutdown_idempotent(self):
        sched = TaskScheduler(workers=1)
        sched.shutdown()
        sched.shutdown()


class TestLoadBalancing:
    def test_slow_task_does_not_idle_other_workers(self):
        """Dynamic assignment: many short tasks flow around one long one."""
        order = []
        lock = threading.Lock()

        def slow():
            time.sleep(0.15)
            with lock:
                order.append("slow")

        def fast(i):
            with lock:
                order.append(i)

        with TaskScheduler(workers=2) as sched:
            sched.submit(slow)
            for i in range(8):
                sched.submit(fast, i)
            sched.drain()
        # the fast tasks all finished before the slow one
        assert order[-1] == "slow"

    def test_work_spreads_across_workers(self):
        with TaskScheduler(workers=4) as sched:
            sched.map_wave(lambda i: time.sleep(0.002), list(range(40)))
            counts = sched.stats.per_worker_counts()
        assert len(counts) >= 2  # more than one worker participated
        assert sum(counts.values()) == 40


class TestErrorsAndStats:
    def test_error_reraised_on_drain(self):
        def bad():
            raise ValueError("task exploded")

        with TaskScheduler(workers=2) as sched:
            sched.submit(bad)
            with pytest.raises(ValueError, match="exploded"):
                sched.drain()

    def test_error_does_not_kill_workers(self):
        results = []
        with TaskScheduler(workers=2) as sched:
            sched.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                sched.drain()
            sched.map_wave(results.append, [1, 2, 3])  # pool still alive
        assert sorted(results) == [1, 2, 3]

    def test_stats_recorded(self):
        with TaskScheduler(workers=2) as sched:
            sched.map_wave(lambda i: time.sleep(0.001), list(range(6)))
            stats = sched.stats
        assert stats.tasks == 6
        assert stats.total_run_s > 0
        assert stats.mean_queue_wait_s >= 0
        assert all(r.error is None for r in stats.records)

    def test_drain_timeout(self):
        sched = TaskScheduler(workers=1)
        try:
            sched.submit(time.sleep, 1.0)
            with pytest.raises(RuntimeStateError, match="timed out"):
                sched.drain(timeout=0.05)
        finally:
            sched.shutdown()

    def test_drain_timeout_is_dedicated_error_with_pending_count(self):
        from repro.errors import DrainTimeout

        sched = TaskScheduler(workers=1)
        try:
            sched.submit(time.sleep, 1.0)
            sched.submit(lambda: None)
            with pytest.raises(DrainTimeout) as excinfo:
                sched.drain(timeout=0.05)
            assert excinfo.value.pending == 2
        finally:
            sched.shutdown()

    def test_stats_report_pending_count(self):
        sched = TaskScheduler(workers=1)
        try:
            sched.submit(time.sleep, 0.5)
            sched.submit(lambda: None)
            assert sched.stats.pending >= 1
            sched.drain()
            assert sched.stats.pending == 0
        finally:
            sched.shutdown()
