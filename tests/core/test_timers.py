"""Phase timer."""

from __future__ import annotations

import pytest

from repro.core.timers import PhaseTimer
from repro.errors import RuntimeStateError


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestPhaseTimer:
    def test_basic_timing(self):
        clock = FakeClock()
        timer = PhaseTimer(clock)
        timer.start("read")
        clock.advance(2.5)
        assert timer.stop("read") == pytest.approx(2.5)
        assert timer.elapsed("read") == pytest.approx(2.5)

    def test_accumulates_across_slices(self):
        clock = FakeClock()
        timer = PhaseTimer(clock)
        for _ in range(3):
            timer.start("map")
            clock.advance(1.0)
            timer.stop("map")
        assert timer.elapsed("map") == pytest.approx(3.0)

    def test_nesting_total_around_phases(self):
        clock = FakeClock()
        timer = PhaseTimer(clock)
        timer.start("total")
        timer.start("read")
        clock.advance(1.0)
        timer.stop("read")
        timer.start("map")
        clock.advance(2.0)
        timer.stop("map")
        timer.stop("total")
        assert timer.elapsed("total") == pytest.approx(3.0)
        assert timer.elapsed("read") == pytest.approx(1.0)

    def test_context_manager(self):
        clock = FakeClock()
        timer = PhaseTimer(clock)
        with timer.phase("merge"):
            clock.advance(4.0)
        assert timer.elapsed("merge") == pytest.approx(4.0)

    def test_context_manager_stops_on_exception(self):
        clock = FakeClock()
        timer = PhaseTimer(clock)
        with pytest.raises(ValueError):
            with timer.phase("x"):
                clock.advance(1.0)
                raise ValueError
        assert timer.elapsed("x") == pytest.approx(1.0)

    def test_stop_wrong_phase_raises(self):
        timer = PhaseTimer()
        timer.start("a")
        with pytest.raises(RuntimeStateError):
            timer.stop("b")

    def test_stop_must_be_innermost(self):
        timer = PhaseTimer()
        timer.start("outer")
        timer.start("inner")
        with pytest.raises(RuntimeStateError):
            timer.stop("outer")

    def test_same_phase_twice_concurrently_raises(self):
        timer = PhaseTimer()
        timer.start("a")
        with pytest.raises(RuntimeStateError):
            timer.start("a")

    def test_elapsed_unknown_phase_is_zero(self):
        assert PhaseTimer().elapsed("nope") == 0.0

    def test_add_external_slice(self):
        timer = PhaseTimer()
        timer.add("ingest", 1.5)
        timer.add("ingest", 0.5)
        assert timer.elapsed("ingest") == pytest.approx(2.0)

    def test_add_negative_raises(self):
        with pytest.raises(RuntimeStateError):
            PhaseTimer().add("x", -1.0)

    def test_snapshot(self):
        clock = FakeClock()
        timer = PhaseTimer(clock)
        with timer.phase("p"):
            clock.advance(1.0)
        assert timer.snapshot() == {"p": pytest.approx(1.0)}

    def test_snapshot_while_running_raises(self):
        timer = PhaseTimer()
        timer.start("p")
        with pytest.raises(RuntimeStateError):
            timer.snapshot()
