"""End-to-end runtime tests: Phoenix baseline vs SupMR equivalence.

The central correctness property of the reproduction: for any job, the
SupMR runtime (any chunking strategy, any chunk size, pipelined or not,
either merge algorithm) produces byte-identical output to the baseline.
"""

from __future__ import annotations

import pytest

from repro.apps.sortapp import make_sort_job, reference_sort
from repro.apps.wordcount import make_wordcount_job, reference_wordcount
from repro.core.options import ChunkStrategy, MergeAlgorithm, RuntimeOptions
from repro.core.phoenix import PhoenixRuntime, run_baseline
from repro.core.supmr import SupMRRuntime, run_ingest_mr
from repro.errors import ConfigError


class TestPhoenixRuntime:
    def test_wordcount_matches_reference(self, text_file):
        result = PhoenixRuntime().run(make_wordcount_job([text_file]))
        assert dict(result.output) == reference_wordcount([text_file])

    def test_output_sorted_by_key(self, text_file):
        result = PhoenixRuntime().run(make_wordcount_job([text_file]))
        keys = result.output_keys()
        assert keys == sorted(keys)

    def test_sort_matches_reference(self, terasort_file):
        result = PhoenixRuntime().run(make_sort_job([terasort_file]))
        assert result.output == reference_sort([terasort_file])

    def test_timings_populated(self, text_file):
        result = PhoenixRuntime().run(make_wordcount_job([text_file]))
        t = result.timings
        assert t.total_s > 0
        assert t.total_s >= t.read_s
        assert not t.read_map_combined

    def test_rejects_chunked_options(self):
        with pytest.raises(ConfigError):
            PhoenixRuntime(RuntimeOptions.supmr_interfile("1MB"))

    def test_counters_report_merge_rounds(self, text_file):
        options = RuntimeOptions.baseline(num_reducers=8)
        result = PhoenixRuntime(options).run(make_wordcount_job([text_file]))
        assert result.counters["merge_rounds"] == 3  # log2(8)
        assert result.counters["merge_algorithm"] == "pairwise"

    def test_run_baseline_helper_forces_pairwise(self, text_file):
        result = run_baseline(
            make_wordcount_job([text_file]),
            RuntimeOptions(merge_algorithm=MergeAlgorithm.PWAY),
        )
        assert result.counters["merge_algorithm"] == "pairwise"


class TestSupMRRuntime:
    def test_rejects_unchunked_options(self):
        with pytest.raises(ConfigError):
            SupMRRuntime(RuntimeOptions.baseline())

    @pytest.mark.parametrize("chunk_size", ["7KB", "32KB", "1MB"])
    def test_wordcount_equals_baseline_across_chunk_sizes(
        self, text_file, chunk_size
    ):
        baseline = PhoenixRuntime().run(make_wordcount_job([text_file]))
        supmr = run_ingest_mr(
            make_wordcount_job([text_file]),
            RuntimeOptions.supmr_interfile(chunk_size),
        )
        assert supmr.output == baseline.output

    def test_sort_equals_baseline(self, terasort_file):
        baseline = PhoenixRuntime().run(make_sort_job([terasort_file]))
        supmr = run_ingest_mr(
            make_sort_job([terasort_file]),
            RuntimeOptions.supmr_interfile("25KB"),
        )
        assert supmr.output == baseline.output

    def test_intrafile_equals_baseline(self, small_files):
        baseline = PhoenixRuntime().run(make_wordcount_job(small_files))
        supmr = run_ingest_mr(
            make_wordcount_job(small_files),
            RuntimeOptions.supmr_intrafile(4),
        )
        assert supmr.output == baseline.output
        # paper example: 30 files / 4 per chunk = 8 chunks
        assert supmr.n_chunks == 8

    def test_unpipelined_identical_to_pipelined(self, text_file):
        piped = run_ingest_mr(
            make_wordcount_job([text_file]),
            RuntimeOptions.supmr_interfile("16KB"),
        )
        serial = run_ingest_mr(
            make_wordcount_job([text_file]),
            RuntimeOptions.supmr_interfile("16KB", pipelined_ingest=False),
        )
        assert piped.output == serial.output

    def test_pairwise_merge_option_identical_output(self, terasort_file):
        pway = run_ingest_mr(
            make_sort_job([terasort_file]),
            RuntimeOptions.supmr_interfile("30KB"),
        )
        pairwise = run_ingest_mr(
            make_sort_job([terasort_file]),
            RuntimeOptions.supmr_interfile(
                "30KB", merge_algorithm=MergeAlgorithm.PAIRWISE
            ),
        )
        assert pway.output == pairwise.output
        assert pway.counters["merge_rounds"] <= 1
        assert pairwise.counters["merge_rounds"] >= 1

    def test_round_timings_structure(self, text_file):
        result = run_ingest_mr(
            make_wordcount_job([text_file]),
            RuntimeOptions.supmr_interfile("32KB"),
        )
        rounds = result.timings.rounds
        assert len(rounds) == result.n_chunks + 1
        assert rounds[0].map_s == 0.0  # serial first ingest
        assert rounds[-1].ingest_s == 0.0  # final map-only round

    def test_read_map_reported_combined(self, text_file):
        result = run_ingest_mr(
            make_wordcount_job([text_file]),
            RuntimeOptions.supmr_interfile("32KB"),
        )
        assert result.timings.read_map_combined
        assert result.timings.map_s == 0.0

    def test_container_persists_across_rounds(self, text_file):
        result = run_ingest_mr(
            make_wordcount_job([text_file]),
            RuntimeOptions.supmr_interfile("16KB"),
        )
        assert result.container_stats.rounds == result.n_chunks

    def test_set_data_callback_sees_every_chunk(self, text_file):
        seen: list[tuple[int, int]] = []
        job = make_wordcount_job([text_file])
        job.set_data = lambda chunk, length: seen.append((chunk.index, length))
        result = run_ingest_mr(job, RuntimeOptions.supmr_interfile("32KB"))
        assert [idx for idx, _len in seen] == list(range(result.n_chunks))
        assert all(length > 0 for _idx, length in seen)
