"""Job specification."""

from __future__ import annotations

import pytest

from repro.containers.array_container import ArrayContainer
from repro.core.job import JobSpec, MapContext, identity_reduce
from repro.errors import ConfigError


def noop_map(ctx: MapContext) -> None:
    pass


class TestJobSpec:
    def test_requires_name(self, tmp_path):
        f = tmp_path / "f"
        f.write_bytes(b"x")
        with pytest.raises(ConfigError):
            JobSpec(name="", inputs=(f,), map_fn=noop_map,
                    container_factory=ArrayContainer)

    def test_requires_inputs(self):
        with pytest.raises(ConfigError):
            JobSpec(name="j", inputs=(), map_fn=noop_map,
                    container_factory=ArrayContainer)

    def test_inputs_coerced_to_paths(self, tmp_path):
        f = tmp_path / "f"
        f.write_bytes(b"x")
        job = JobSpec(name="j", inputs=(str(f),), map_fn=noop_map,
                      container_factory=ArrayContainer)
        assert job.inputs[0] == f

    def test_total_input_bytes(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_bytes(b"123")
        b.write_bytes(b"4567")
        job = JobSpec(name="j", inputs=(a, b), map_fn=noop_map,
                      container_factory=ArrayContainer)
        assert job.total_input_bytes == 7

    def test_identity_reduce(self):
        assert list(identity_reduce("k", [1, 2])) == [("k", 1), ("k", 2)]

    def test_default_output_key_is_pair_key(self, tmp_path):
        f = tmp_path / "f"
        f.write_bytes(b"x")
        job = JobSpec(name="j", inputs=(f,), map_fn=noop_map,
                      container_factory=ArrayContainer)
        assert job.output_key((b"key", b"value")) == b"key"


class TestMapContext:
    def test_emit_routes_to_emitter(self):
        collected = []

        class FakeEmitter:
            def emit(self, k, v):
                collected.append((k, v))

        ctx = MapContext(data=b"", emitter=FakeEmitter(), task_id=0)
        ctx.emit(b"k", 1)
        assert collected == [(b"k", 1)]
