"""Result structures and speedup arithmetic."""

from __future__ import annotations

import pytest

from repro.containers.base import ContainerStats
from repro.core.result import JobResult, PhaseTimings, RoundTiming


def timings(read=10.0, mp=5.0, red=1.0, mer=4.0, combined=False):
    return PhaseTimings(
        read_s=read, map_s=mp, reduce_s=red, merge_s=mer,
        total_s=read + mp + red + mer, read_map_combined=combined,
    )


class TestPhaseTimings:
    def test_read_map_combined_cell(self):
        t = timings()
        assert t.read_map_s == pytest.approx(15.0)

    def test_compute_s(self):
        assert timings().compute_s == pytest.approx(10.0)

    def test_speedup_vs(self):
        base = timings(read=20.0, mp=10.0, red=2.0, mer=8.0)
        opt = timings(read=10.0, mp=5.0, red=1.0, mer=4.0)
        s = opt.speedup_vs(base)
        assert s["total"] == pytest.approx(2.0)
        assert s["merge"] == pytest.approx(2.0)

    def test_speedup_vs_zero_phase_is_inf(self):
        base = timings(mer=8.0)
        opt = PhaseTimings(read_s=1, map_s=1, reduce_s=1, merge_s=0.0,
                           total_s=3)
        assert opt.speedup_vs(base)["merge"] == float("inf")


class TestRoundTiming:
    def test_span_is_max_of_legs(self):
        r = RoundTiming(index=1, ingest_s=3.0, map_s=1.0, chunk_bytes=100)
        assert r.span_s == 3.0


class TestJobResult:
    def test_accessors(self):
        result = JobResult(
            job_name="j", runtime="phoenix",
            output=[(b"a", 1), (b"b", 2)],
            timings=timings(),
            container_stats=ContainerStats(emits=2, distinct_keys=2, rounds=1),
            input_bytes=100,
        )
        assert result.n_output_pairs == 2
        assert result.output_keys() == [b"a", b"b"]
