"""Iterative session: ingest once, compute many times."""

from __future__ import annotations

import pytest

from repro.apps.kmeans import run_kmeans
from repro.apps.wordcount import make_wordcount_job, reference_wordcount
from repro.core.iterative import IterativeSession
from repro.core.options import RuntimeOptions
from repro.errors import ConfigError, RuntimeStateError
from repro.io.records import TextCodec


class TestIterativeSession:
    def _session(self, text_file, **kw):
        return IterativeSession(
            [text_file], TextCodec(),
            RuntimeOptions.supmr_interfile("32KB", **kw),
        )

    def test_first_run_fills_cache(self, text_file):
        with self._session(text_file) as session:
            assert not session.cached
            result = session.run(make_wordcount_job([text_file]))
            assert session.cached
            assert not result.counters["from_cache"]
            assert session.cached_bytes == text_file.stat().st_size

    def test_second_run_uses_cache_same_output(self, text_file):
        with self._session(text_file) as session:
            first = session.run(make_wordcount_job([text_file]))
            second = session.run(make_wordcount_job([text_file]))
        assert second.counters["from_cache"]
        assert second.output == first.output
        assert dict(second.output) == reference_wordcount([text_file])

    def test_iteration_counter(self, text_file):
        with self._session(text_file) as session:
            for i in range(1, 4):
                result = session.run(make_wordcount_job([text_file]))
                assert result.counters["iteration"] == i

    def test_rejects_unchunked_options(self, text_file):
        with pytest.raises(ConfigError):
            IterativeSession([text_file], TextCodec(),
                             RuntimeOptions.baseline())

    def test_rejects_mismatched_inputs(self, text_file, terasort_file):
        with self._session(text_file) as session:
            with pytest.raises(RuntimeStateError, match="inputs differ"):
                session.run(make_wordcount_job([terasort_file]))

    def test_close_drops_cache(self, text_file):
        session = self._session(text_file)
        session.run(make_wordcount_job([text_file]))
        session.close()
        assert not session.cached

    def test_runtime_label(self, text_file):
        with self._session(text_file) as session:
            result = session.run(make_wordcount_job([text_file]))
        assert result.runtime == "supmr-iterative"


class TestKMeansWithSession:
    def test_session_kmeans_matches_plain(self, tmp_path):
        import numpy as np

        rng = np.random.default_rng(5)
        lines = [b"%f %f" % (x, y)
                 for x, y in rng.normal((0, 0), 0.5, size=(100, 2))]
        lines += [b"%f %f" % (x, y)
                  for x, y in rng.normal((6, 6), 0.5, size=(100, 2))]
        f = tmp_path / "pts.txt"
        f.write_bytes(b"\n".join(lines) + b"\n")
        init = [(1.0, 1.0), (5.0, 5.0)]

        plain = run_kmeans([f], init, max_iters=6, tol=1e-6)
        cached = run_kmeans(
            [f], init, max_iters=6, tol=1e-6,
            options=RuntimeOptions.supmr_interfile("2KB"),
            use_session=True,
        )
        for a, b in zip(sorted(plain.centroids), sorted(cached.centroids)):
            assert a == pytest.approx(b, abs=1e-9)

    def test_session_requires_options(self, tmp_path):
        f = tmp_path / "pts.txt"
        f.write_bytes(b"0 0\n1 1\n")
        with pytest.raises(ConfigError):
            run_kmeans([f], [(0.0, 0.0)], use_session=True)
