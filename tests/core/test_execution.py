"""Execution machinery: splits, waves, reducers, merge."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.containers.array_container import ArrayContainer
from repro.containers.combiners import SumCombiner
from repro.containers.hash_container import HashContainer
from repro.core.execution import (
    accumulate_wave_stats,
    merge_outputs,
    run_mapper_wave,
    run_reducers,
    split_for_mappers,
)
from repro.core.job import JobSpec
from repro.core.options import MergeAlgorithm, RuntimeOptions
from repro.errors import RuntimeStateError
from repro.io.span import ByteSpan


class TestSplitForMappers:
    def test_covers_all_data(self):
        data = b"aa\nbb\ncc\ndd\n"
        splits = split_for_mappers(data, 3, b"\n")
        assert b"".join(bytes(s) for s in splits) == data

    def test_splits_are_zero_copy_spans(self):
        data = b"aa\nbb\ncc\ndd\n"
        splits = split_for_mappers(data, 3, b"\n")
        assert all(isinstance(s, ByteSpan) for s in splits)
        # Every span windows the original buffer, not a copy of it.
        assert all(s.base is data for s in splits)

    def test_splits_are_record_aligned(self):
        data = b"one\ntwo\nthree\nfour\n"
        for split in split_for_mappers(data, 4, b"\n")[:-1]:
            assert split.endswith(b"\n")

    def test_at_most_n_splits(self):
        data = b"x\n" * 100
        assert len(split_for_mappers(data, 5, b"\n")) <= 5

    def test_no_empty_splits(self):
        data = b"a\n"
        splits = split_for_mappers(data, 8, b"\n")
        assert all(splits)

    def test_empty_data_gives_no_splits(self):
        assert split_for_mappers(b"", 4, b"\n") == []

    def test_invalid_n_raises(self):
        with pytest.raises(RuntimeStateError):
            split_for_mappers(b"x", 0, b"\n")

    @given(st.lists(st.binary(min_size=1, max_size=5).filter(
        lambda b: b"\n" not in b), max_size=30),
        st.integers(min_value=1, max_value=8))
    def test_property_reassembles_and_aligns(self, records, n):
        data = b"".join(r + b"\n" for r in records)
        splits = split_for_mappers(data, n, b"\n")
        assert b"".join(bytes(s) for s in splits) == data
        for split in splits[:-1]:
            assert split.endswith(b"\n")


def _wc_job(tmp_path):
    f = tmp_path / "in.txt"
    f.write_bytes(b"a b a\nc a b\n")

    def map_fn(ctx):
        for word in ctx.data.split():
            ctx.emit(word, 1)

    def reduce_fn(key, values):
        yield (key, sum(values))

    return JobSpec(
        name="wc", inputs=(f,), map_fn=map_fn, reduce_fn=reduce_fn,
        container_factory=lambda: HashContainer(SumCombiner()),
    )


class TestWaveAndReducers:
    def test_wave_emits_into_container(self, tmp_path):
        job = _wc_job(tmp_path)
        container = job.container_factory()
        options = RuntimeOptions(num_mappers=2, num_reducers=2)
        with ThreadPoolExecutor(max_workers=2) as pool:
            launched = run_mapper_wave(
                job, container, job.inputs[0].read_bytes(), options, pool
            )
        assert 1 <= launched <= 2
        assert container.stats().emits == 6

    def test_reducers_return_sorted_runs(self, tmp_path):
        job = _wc_job(tmp_path)
        container = job.container_factory()
        options = RuntimeOptions(num_mappers=2, num_reducers=3)
        with ThreadPoolExecutor(max_workers=2) as pool:
            run_mapper_wave(job, container, job.inputs[0].read_bytes(),
                            options, pool)
            runs = run_reducers(job, container, options, pool)
        assert len(runs) == 3
        for run in runs:
            keys = [k for k, _v in run]
            assert keys == sorted(keys)
        merged = dict(p for run in runs for p in run)
        assert merged == {b"a": 3, b"b": 2, b"c": 1}

    def test_map_failure_propagates(self, tmp_path):
        f = tmp_path / "in.txt"
        f.write_bytes(b"data\n")

        def bad_map(ctx):
            raise RuntimeError("mapper crashed")

        job = JobSpec(name="bad", inputs=(f,), map_fn=bad_map,
                      container_factory=ArrayContainer)
        options = RuntimeOptions(num_mappers=2, num_reducers=1)
        with ThreadPoolExecutor(max_workers=2) as pool:
            with pytest.raises(RuntimeError, match="mapper crashed"):
                run_mapper_wave(job, job.container_factory(), b"data\n",
                                options, pool)


class TestAccumulateWaveStats:
    def test_folds_supervision_outcome_into_named_counters(self):
        from repro.resilience.supervisor import SupervisionResult

        stats: dict[str, int] = {}
        accumulate_wave_stats(stats, SupervisionResult(
            results=[1, None], skipped=(1,),
            respawns=2, crashes=3, hangs=1, redispatches=4,
        ))
        assert stats == {
            "worker_respawns": 2,
            "worker_crashes": 3,
            "lease_expiries": 1,
            "task_redispatches": 4,
            "tasks_skipped": 1,
        }

    def test_accumulates_across_waves(self):
        from repro.resilience.supervisor import SupervisionResult

        stats: dict[str, int] = {}
        wave = SupervisionResult(results=[1], respawns=1, crashes=1)
        accumulate_wave_stats(stats, wave)
        accumulate_wave_stats(stats, wave)
        assert stats["worker_respawns"] == 2
        assert stats["worker_crashes"] == 2

    def test_none_stats_dict_is_a_no_op(self):
        from repro.resilience.supervisor import SupervisionResult

        accumulate_wave_stats(None, SupervisionResult(results=[], respawns=5))


class TestMergeOutputs:
    def _job(self, tmp_path, sorted_output=True):
        f = tmp_path / "f"
        f.write_bytes(b"x")
        return JobSpec(name="j", inputs=(f,), map_fn=lambda ctx: None,
                       container_factory=ArrayContainer,
                       sorted_output=sorted_output)

    def test_pairwise_counts_rounds(self, tmp_path):
        job = self._job(tmp_path)
        runs = [[(i, None)] for i in range(8)]
        options = RuntimeOptions(merge_algorithm=MergeAlgorithm.PAIRWISE)
        merged, rounds = merge_outputs(runs, job, options)
        assert [k for k, _ in merged] == list(range(8))
        assert rounds == 3

    def test_pway_is_single_round(self, tmp_path):
        job = self._job(tmp_path)
        runs = [[(i, None)] for i in range(8)]
        options = RuntimeOptions(merge_algorithm=MergeAlgorithm.PWAY,
                                 num_reducers=4)
        merged, rounds = merge_outputs(runs, job, options)
        assert [k for k, _ in merged] == list(range(8))
        assert rounds == 1

    def test_algorithms_agree(self, tmp_path):
        job = self._job(tmp_path)
        runs = [sorted((i * 7 + j, j) for j in range(5)) for i in range(4)]
        pairwise, _ = merge_outputs(
            runs, job, RuntimeOptions(merge_algorithm=MergeAlgorithm.PAIRWISE)
        )
        pway, _ = merge_outputs(
            runs, job, RuntimeOptions(merge_algorithm=MergeAlgorithm.PWAY)
        )
        assert pairwise == pway

    def test_unsorted_output_skips_merge(self, tmp_path):
        job = self._job(tmp_path, sorted_output=False)
        runs = [[(3, None)], [(1, None)]]
        merged, rounds = merge_outputs(runs, job, RuntimeOptions())
        assert merged == [(3, None), (1, None)]  # concatenation, no sort
        assert rounds == 0
