"""Documentation quality gates.

Every public module, class and function in ``repro`` must carry a
docstring (the README promises "doc comments on every public item"),
and the repo-level documents must exist and reference each other.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

REPO = Path(repro.__file__).resolve().parents[2]


def iter_public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")[1:]):
            continue
        yield importlib.import_module(info.name)


ALL_MODULES = list(iter_public_modules())


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=[m.__name__ for m in ALL_MODULES])
def test_module_docstrings(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} lacks a module docstring"
    )


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=[m.__name__ for m in ALL_MODULES])
def test_public_callables_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not inspect.isfunction(meth):
                    continue
                if meth.__name__ != meth_name:
                    continue  # dataclass field default, not a method
                if not (meth.__doc__ and meth.__doc__.strip()):
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, (
        f"{module.__name__}: undocumented public items: {undocumented}"
    )


class TestRepoDocuments:
    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md",
                                     "EXPERIMENTS.md",
                                     "docs/architecture.md",
                                     "docs/calibration.md",
                                     "docs/extensions.md"])
    def test_exists_and_nonempty(self, doc):
        path = REPO / doc
        assert path.is_file() and path.stat().st_size > 500, doc

    def test_design_covers_every_paper_artifact(self):
        design = (REPO / "DESIGN.md").read_text()
        for artifact in ("Table II", "Fig 1", "Fig 3", "Fig 5", "Fig 6",
                         "Fig 7"):
            assert artifact in design, f"DESIGN.md missing {artifact}"

    def test_experiments_records_all_artifacts(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in ("Table II", "Fig. 1", "Fig. 3", "Fig. 5", "Fig. 6",
                         "Fig. 7"):
            assert artifact in experiments

    def test_generated_api_reference_in_sync(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "gen_api_docs", REPO / "tools" / "gen_api_docs.py"
        )
        gen = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(gen)
        current = (REPO / "docs" / "api.md").read_text()
        assert current == gen.render(), (
            "docs/api.md is stale; run python tools/gen_api_docs.py"
        )
