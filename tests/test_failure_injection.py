"""Failure injection across the runtime stack.

The pipeline crosses threads (ingest thread, mapper pool), so failures
must propagate to the caller without deadlocks, leaked state, or
half-written results — these tests inject faults at every stage.
"""

from __future__ import annotations

import threading

import pytest

from repro.apps.wordcount import make_wordcount_job
from repro.containers import HashContainer, SumCombiner
from repro.core.job import JobSpec
from repro.core.options import RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.core.supmr import SupMRRuntime, run_ingest_mr
from repro.errors import ChunkingError, WorkloadError
from repro.io.records import TextCodec
from tests.faults.helpers import failing_job as _job
from tests.faults.helpers import failing_map_after, ingest_threads


class TestMapFailures:
    def test_immediate_map_failure_baseline(self, text_file):
        job = _job(text_file, failing_map_after(0))
        with pytest.raises(RuntimeError, match="injected"):
            PhoenixRuntime().run(job)

    def test_immediate_map_failure_supmr(self, text_file):
        job = _job(text_file, failing_map_after(0))
        with pytest.raises(RuntimeError, match="injected"):
            run_ingest_mr(job, RuntimeOptions.supmr_interfile("32KB"))

    def test_mid_pipeline_map_failure_supmr(self, text_file):
        # fail during a later round, while an ingest thread is in flight
        job = _job(text_file, failing_map_after(3))
        with pytest.raises(RuntimeError, match="injected"):
            run_ingest_mr(job, RuntimeOptions.supmr_interfile("16KB"))

    def test_failure_leaves_no_stuck_threads(self, text_file):
        # the pipeline joins its in-flight ingest thread before
        # re-raising, so a failed run must leave no ingest-* thread
        # behind and no monotonic growth in total thread count
        assert ingest_threads() == set()
        before = {t.ident for t in threading.enumerate()}
        for _ in range(4):
            with pytest.raises(RuntimeError):
                run_ingest_mr(_job(text_file, failing_map_after(2)),
                              RuntimeOptions.supmr_interfile("16KB"))
            assert ingest_threads() == set()
        leaked = [
            t for t in threading.enumerate()
            if t.ident not in before and t.is_alive()
        ]
        assert leaked == [], f"threads leaked across failed runs: {leaked}"


class TestInputFailures:
    def test_missing_input_file(self, tmp_path):
        job = make_wordcount_job([tmp_path / "ghost.txt"])
        with pytest.raises((WorkloadError, ChunkingError)):
            run_ingest_mr(job, RuntimeOptions.supmr_interfile("16KB"))

    def test_input_deleted_between_plan_and_load(self, tmp_path):
        # the ingest thread hits the missing file; error must surface
        victim = tmp_path / "vanishing.txt"
        victim.write_bytes(b"some words on a line\n" * 3_000)
        job = make_wordcount_job([victim])
        runtime = SupMRRuntime(RuntimeOptions.supmr_interfile("8KB"))

        original_load = type(job).__name__  # noqa: F841 - doc only
        from repro.chunking.chunk import Chunk

        load_count = {"n": 0}
        real_load = Chunk.load

        def flaky_load(self):
            load_count["n"] += 1
            if load_count["n"] == 3:
                raise OSError("device disappeared")
            return real_load(self)

        Chunk.load = flaky_load
        try:
            with pytest.raises(OSError, match="disappeared"):
                runtime.run(job)
        finally:
            Chunk.load = real_load

    def test_reduce_failure_propagates(self, text_file):
        def bad_reduce(key, values):
            raise ValueError("reduce exploded")
            yield  # pragma: no cover

        job = JobSpec(
            name="bad-reduce", inputs=(text_file,),
            map_fn=lambda ctx: ctx.emit(b"k", 1),
            reduce_fn=bad_reduce,
            container_factory=lambda: HashContainer(SumCombiner()),
            codec=TextCodec(),
        )
        with pytest.raises(ValueError, match="reduce exploded"):
            PhoenixRuntime().run(job)


class TestStateAfterFailure:
    def test_runtime_object_reusable_after_failure(self, text_file):
        options = RuntimeOptions.supmr_interfile("32KB")
        runtime = SupMRRuntime(options)
        with pytest.raises(RuntimeError):
            runtime.run(_job(text_file, failing_map_after(0)))
        # a fresh job on the same runtime object succeeds
        result = runtime.run(make_wordcount_job([text_file]))
        assert result.n_output_pairs > 0

    def test_failed_job_container_not_shared(self, text_file):
        # each run constructs a fresh container; a failure cannot leak
        # partial counts into the next run
        options = RuntimeOptions.supmr_interfile("32KB")
        with pytest.raises(RuntimeError):
            run_ingest_mr(_job(text_file, failing_map_after(5)), options)
        clean = run_ingest_mr(make_wordcount_job([text_file]), options)
        from repro.apps.wordcount import reference_wordcount

        assert dict(clean.output) == reference_wordcount([text_file])
