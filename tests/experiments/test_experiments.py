"""Experiment harness: every paper table/figure regenerates and matches.

``monitor_interval`` is coarsened so each experiment simulates in well
under a second; tolerances follow EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    available_experiments,
    get_experiment,
    run_experiment,
)
from repro.experiments.base import Comparison


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        exps = available_experiments()
        assert {"table2", "fig1", "fig3", "fig5", "fig6", "fig7",
                "claims"} <= set(exps)

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_experiment("fig99")


class TestComparison:
    def test_relative_error(self):
        assert Comparison("m", 100.0, 103.0).relative_error == pytest.approx(0.03)

    def test_zero_paper_value(self):
        assert Comparison("m", 0.0, 0.0).relative_error == 0.0
        assert Comparison("m", 0.0, 1.0).relative_error == float("inf")

    def test_render_contains_fields(self):
        line = Comparison("metric-name", 1.0, 2.0, unit="x").render()
        assert "metric-name" in line and "paper=" in line


@pytest.mark.parametrize("exp_id", ["table2", "fig1", "fig3", "fig5",
                                    "fig6", "fig7", "claims"])
class TestEveryExperimentRuns:
    def test_runs_and_renders(self, exp_id):
        result = run_experiment(exp_id, monitor_interval=10.0)
        assert result.exp_id == exp_id
        rendered = result.render()
        assert exp_id in rendered
        assert result.comparisons  # every experiment compares to the paper


class TestKeyTolerances:
    def test_table2_all_large_cells_within_5pct(self):
        result = run_experiment("table2", monitor_interval=10.0)
        for comparison in result.comparisons:
            if comparison.paper >= 1.0:  # sub-second cells are noise-level
                assert comparison.relative_error < 0.05, comparison.render()

    def test_fig6_merge_speedup_tight(self):
        result = run_experiment("fig6", monitor_interval=10.0)
        (speedup,) = [c for c in result.comparisons
                      if "merge" in c.metric]
        assert speedup.relative_error < 0.02

    def test_fig7_speedup_close(self):
        result = run_experiment("fig7", monitor_interval=5.0)
        (speedup,) = result.comparisons
        assert abs(speedup.measured - 7.0) < 1.5

    def test_claims_speedup_ranges(self):
        result = run_experiment("claims", monitor_interval=10.0)
        by_metric = {c.metric: c for c in result.comparisons}
        assert by_metric["max phase speedup"].relative_error < 0.02
        assert by_metric["max time-to-result speedup"].relative_error < 0.02
        assert by_metric["min phase speedup"].relative_error < 0.05

    def test_fig5_speedups(self):
        result = run_experiment("fig5", monitor_interval=10.0)
        for comparison in result.comparisons:
            assert comparison.relative_error < 0.05, comparison.render()

    def test_artifacts_are_csv(self):
        result = run_experiment("fig1", monitor_interval=10.0)
        assert any(name.endswith(".csv") for name in result.artifacts)
        for content in result.artifacts.values():
            assert content.startswith("time_s,")
