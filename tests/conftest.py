"""Shared fixtures: small real workloads and simulator scaffolding."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.simhw.events import Simulator
from repro.workloads import (
    generate_small_files,
    generate_terasort_file,
    generate_text_file,
)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture(scope="session")
def text_file(tmp_path_factory: pytest.TempPathFactory) -> Path:
    """~200 KB Zipf text file (session-scoped: generation is the slow part)."""
    path = tmp_path_factory.mktemp("data") / "corpus.txt"
    generate_text_file(path, 200_000, vocab_size=500, seed=11)
    return path


@pytest.fixture(scope="session")
def terasort_file(tmp_path_factory: pytest.TempPathFactory) -> Path:
    """3000 terasort records (~300 KB)."""
    path = tmp_path_factory.mktemp("data") / "records.dat"
    generate_terasort_file(path, 3000, seed=22)
    return path


@pytest.fixture(scope="session")
def small_files(tmp_path_factory: pytest.TempPathFactory) -> list[Path]:
    """30 small text files (the paper's intra-file chunking example size)."""
    directory = tmp_path_factory.mktemp("data") / "many"
    return generate_small_files(directory, 30, 4_000, vocab_size=300, seed=33)
