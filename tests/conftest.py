"""Shared fixtures: small real workloads and simulator scaffolding."""

from __future__ import annotations

import multiprocessing
import time
from pathlib import Path

import pytest

from repro.simhw.events import Simulator
from repro.workloads import (
    generate_small_files,
    generate_terasort_file,
    generate_text_file,
)


_WORKER_PREFIXES = (
    "repro-fork-", "repro-sup-", "repro-shard-", "repro-agent-shard-"
)


@pytest.fixture(autouse=True)
def no_leaked_worker_processes():
    """Fail any test that leaves fork-pool workers behind.

    Covers both the plain fork pool (``repro-fork-*``) and supervised
    workers — including ones the supervisor *respawned* after a crash
    or lease kill (``repro-sup-*``).  A short grace loop absorbs the
    instant between a pool returning and its children being reaped.
    """
    yield
    deadline = time.monotonic() + 5.0
    leaked = [
        p for p in multiprocessing.active_children()
        if p.name.startswith(_WORKER_PREFIXES)
    ]
    while leaked and time.monotonic() < deadline:
        time.sleep(0.05)
        leaked = [
            p for p in multiprocessing.active_children()
            if p.name.startswith(_WORKER_PREFIXES)
        ]
    assert not leaked, (
        f"leaked worker processes: {[p.name for p in leaked]}"
    )


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture(scope="session")
def text_file(tmp_path_factory: pytest.TempPathFactory) -> Path:
    """~200 KB Zipf text file (session-scoped: generation is the slow part)."""
    path = tmp_path_factory.mktemp("data") / "corpus.txt"
    generate_text_file(path, 200_000, vocab_size=500, seed=11)
    return path


@pytest.fixture(scope="session")
def terasort_file(tmp_path_factory: pytest.TempPathFactory) -> Path:
    """3000 terasort records (~300 KB)."""
    path = tmp_path_factory.mktemp("data") / "records.dat"
    generate_terasort_file(path, 3000, seed=22)
    return path


@pytest.fixture(scope="session")
def small_files(tmp_path_factory: pytest.TempPathFactory) -> list[Path]:
    """30 small text files (the paper's intra-file chunking example size)."""
    directory = tmp_path_factory.mktemp("data") / "many"
    return generate_small_files(directory, 30, 4_000, vocab_size=300, seed=33)
