"""Multi-reader prefetch pipeline: same answers, bounded lookahead."""

from __future__ import annotations

import threading
import time

import pytest

from repro.chunking.chunk import Chunk, ChunkSource
from repro.errors import DeadlineExceeded, RuntimeStateError
from repro.pipeline.prefetch import PrefetchPipeline


def make_chunks(tmp_path, contents):
    chunks = []
    for i, blob in enumerate(contents):
        path = tmp_path / f"c{i}"
        path.write_bytes(blob)
        chunks.append(Chunk(i, (ChunkSource(path, 0, len(blob)),)))
    return chunks


def no_prefetch_threads():
    return not [
        t for t in threading.enumerate() if t.name.startswith("prefetch-")
    ]


class TestSchedule:
    def test_rounds_are_n_plus_one(self, tmp_path):
        chunks = make_chunks(tmp_path, [b"a", b"b", b"c"])
        pipeline = PrefetchPipeline(
            load=lambda c: c.load(), work=lambda c, d: None, readers=2
        )
        records = pipeline.run(chunks)
        assert len(records) == 4  # n + 1 for n = 3

    def test_round_structure_matches_double_buffer(self, tmp_path):
        chunks = make_chunks(tmp_path, [b"a", b"b"])
        pipeline = PrefetchPipeline(lambda c: c.load(), lambda c, d: None,
                                    readers=2)
        r0, r1, r2 = pipeline.run(chunks)
        assert (r0.index, r0.ingest_index, r0.map_s) == (0, 0, 0.0)
        assert (r1.index, r1.ingest_index) == (1, 1)
        assert r2.ingest_index is None and r2.ingest_s == 0.0
        assert r2.chunk_bytes == 0

    def test_work_sees_chunks_in_order_with_right_data(self, tmp_path):
        chunks = make_chunks(tmp_path, [b"aaa", b"bb", b"c", b"dd", b"eee"])
        seen = []
        PrefetchPipeline(
            lambda c: c.load(), lambda c, d: seen.append((c.index, bytes(d))),
            readers=4,
        ).run(chunks)
        assert seen == [
            (0, b"aaa"), (1, b"bb"), (2, b"c"), (3, b"dd"), (4, b"eee")
        ]

    def test_order_survives_adversarial_load_latencies(self, tmp_path):
        # Early chunks load slowest: completion order inverts index order,
        # but consumption order must not.
        chunks = make_chunks(tmp_path, [b"a", b"b", b"c", b"d"])
        delays = {0: 0.08, 1: 0.04, 2: 0.02, 3: 0.0}
        seen = []

        def load(chunk):
            time.sleep(delays[chunk.index])
            return chunk.load()

        PrefetchPipeline(
            load, lambda c, d: seen.append(c.index), readers=4
        ).run(chunks)
        assert seen == [0, 1, 2, 3]

    def test_single_chunk_degenerates(self, tmp_path):
        chunks = make_chunks(tmp_path, [b"only"])
        seen = []
        records = PrefetchPipeline(
            lambda c: c.load(), lambda c, d: seen.append(bytes(d)), readers=3
        ).run(chunks)
        assert seen == [b"only"]
        assert len(records) == 2

    def test_empty_chunk_list_raises(self):
        pipeline = PrefetchPipeline(lambda c: b"", lambda c, d: None)
        with pytest.raises(RuntimeStateError):
            pipeline.run([])

    def test_zero_readers_rejected(self):
        with pytest.raises(RuntimeStateError):
            PrefetchPipeline(lambda c: b"", lambda c, d: None, readers=0)


class TestWindow:
    def test_lookahead_bounded_by_depth(self, tmp_path):
        # With work blocked, readers may hold at most `depth` chunks
        # (loaded or loading) — the memory cap of the prefetch window.
        chunks = make_chunks(tmp_path, [b"x"] * 8)
        depth = 2
        started = []
        lock = threading.Lock()
        release = threading.Event()

        def load(chunk):
            with lock:
                started.append(chunk.index)
            return chunk.load()

        def work(chunk, data):
            if chunk.index == 0:
                release.wait(5.0)

        done = []

        def run():
            PrefetchPipeline(load, work, readers=4, depth=depth).run(chunks)
            done.append(True)

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.3)  # readers race ahead as far as the window allows
        with lock:
            ahead = len(started)
        release.set()
        thread.join(10.0)
        assert done, "pipeline did not finish"
        # Chunk 0 was consumed (its permit returned) before work blocked,
        # so the readers can hold depth + 1 claims at that instant.
        assert ahead <= depth + 1, (
            f"readers loaded {ahead} chunks ahead with depth={depth}"
        )

    def test_no_threads_leak_after_success(self, tmp_path):
        chunks = make_chunks(tmp_path, [b"a", b"b", b"c"])
        PrefetchPipeline(lambda c: c.load(), lambda c, d: None,
                         readers=3).run(chunks)
        assert no_prefetch_threads()


class TestErrors:
    def test_load_error_surfaces_at_owning_round(self, tmp_path):
        chunks = make_chunks(tmp_path, [b"a", b"b", b"c", b"d"])
        consumed = []

        def load(chunk):
            if chunk.index == 2:
                raise OSError("disk on fire")
            return chunk.load()

        pipeline = PrefetchPipeline(
            load, lambda c, d: consumed.append(c.index), readers=4
        )
        with pytest.raises(OSError, match="disk on fire"):
            pipeline.run(chunks)
        # Chunks before the failed one were still mapped, later ones not.
        assert consumed == [0, 1]
        assert no_prefetch_threads()

    def test_work_error_stops_and_joins_readers(self, tmp_path):
        chunks = make_chunks(tmp_path, [b"a"] * 6)

        def work(chunk, data):
            if chunk.index == 1:
                raise DeadlineExceeded("budget spent")

        pipeline = PrefetchPipeline(lambda c: c.load(), work, readers=3)
        with pytest.raises(DeadlineExceeded):
            pipeline.run(chunks)
        assert no_prefetch_threads()
