"""Double-buffered ingest pipeline (the paper's pseudo-code schedule)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.chunking.chunk import Chunk, ChunkSource
from repro.errors import RuntimeStateError
from repro.pipeline.double_buffer import DoubleBufferedPipeline


def make_chunks(tmp_path, contents):
    chunks = []
    for i, blob in enumerate(contents):
        path = tmp_path / f"c{i}"
        path.write_bytes(blob)
        chunks.append(Chunk(i, (ChunkSource(path, 0, len(blob)),)))
    return chunks


class TestSchedule:
    def test_rounds_are_n_plus_one(self, tmp_path):
        chunks = make_chunks(tmp_path, [b"a", b"b", b"c"])
        pipeline = DoubleBufferedPipeline(
            load=lambda c: c.load(), work=lambda c, d: None
        )
        records = pipeline.run(chunks)
        assert len(records) == 4  # n + 1 for n = 3

    def test_round_structure(self, tmp_path):
        chunks = make_chunks(tmp_path, [b"a", b"b"])
        pipeline = DoubleBufferedPipeline(lambda c: c.load(), lambda c, d: None)
        r0, r1, r2 = pipeline.run(chunks)
        assert (r0.ingest_index, r0.map_s) == (0, 0.0)  # serial first ingest
        assert r1.ingest_index == 1  # overlap round
        assert r2.ingest_index is None and r2.ingest_s == 0.0  # final map

    def test_work_sees_chunks_in_order_with_right_data(self, tmp_path):
        chunks = make_chunks(tmp_path, [b"aaa", b"bb", b"c"])
        seen = []
        pipeline = DoubleBufferedPipeline(
            lambda c: c.load(), lambda c, d: seen.append((c.index, d))
        )
        pipeline.run(chunks)
        assert seen == [(0, b"aaa"), (1, b"bb"), (2, b"c")]

    def test_single_chunk_degenerates(self, tmp_path):
        chunks = make_chunks(tmp_path, [b"only"])
        seen = []
        pipeline = DoubleBufferedPipeline(
            lambda c: c.load(), lambda c, d: seen.append(d)
        )
        records = pipeline.run(chunks)
        assert seen == [b"only"]
        assert len(records) == 2

    def test_empty_chunk_list_raises(self):
        pipeline = DoubleBufferedPipeline(lambda c: b"", lambda c, d: None)
        with pytest.raises(RuntimeStateError):
            pipeline.run([])

    def test_synchronous_mode_identical_results(self, tmp_path):
        chunks = make_chunks(tmp_path, [b"x", b"y", b"z"])
        for pipelined in (True, False):
            seen = []
            DoubleBufferedPipeline(
                lambda c: c.load(), lambda c, d: seen.append((c.index, d)),
                pipelined=pipelined,
            ).run(chunks)
            assert seen == [(0, b"x"), (1, b"y"), (2, b"z")]


class TestOverlap:
    def test_ingest_runs_on_background_thread(self, tmp_path):
        chunks = make_chunks(tmp_path, [b"a", b"b"])
        loader_threads = []

        def load(chunk):
            loader_threads.append(threading.current_thread().name)
            return chunk.load()

        DoubleBufferedPipeline(load, lambda c, d: None).run(chunks)
        # first load on the caller thread, second on an ingest thread
        assert loader_threads[1].startswith("ingest-")

    def test_overlap_saves_wall_clock(self, tmp_path):
        # load and work each sleep; pipelined total must be well under
        # the serial sum (this is Fig. 4 in miniature)
        chunks = make_chunks(tmp_path, [b"1"] * 5)
        delay = 0.02

        def slow_load(chunk):
            time.sleep(delay)
            return b""

        def slow_work(chunk, data):
            time.sleep(delay)

        t0 = time.perf_counter()
        DoubleBufferedPipeline(slow_load, slow_work, pipelined=True).run(chunks)
        piped = time.perf_counter() - t0

        t0 = time.perf_counter()
        DoubleBufferedPipeline(slow_load, slow_work, pipelined=False).run(chunks)
        serial = time.perf_counter() - t0

        assert piped < serial * 0.8


class TestFailureHandling:
    def test_ingest_thread_error_propagates(self, tmp_path):
        chunks = make_chunks(tmp_path, [b"a", b"b"])

        def load(chunk):
            if chunk.index == 1:
                raise IOError("disk gone")
            return chunk.load()

        pipeline = DoubleBufferedPipeline(load, lambda c, d: None)
        with pytest.raises(IOError, match="disk gone"):
            pipeline.run(chunks)

    def test_worker_error_propagates(self, tmp_path):
        chunks = make_chunks(tmp_path, [b"a", b"b"])

        def work(chunk, data):
            raise ValueError("map failed")

        pipeline = DoubleBufferedPipeline(lambda c: c.load(), work)
        with pytest.raises(ValueError, match="map failed"):
            pipeline.run(chunks)
