"""Calibrated cost model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simrt.costmodel import (
    GB_SI,
    MB_SI,
    PAPER_SORT,
    PAPER_WORDCOUNT,
    AppCostProfile,
    chunk_sizes,
)


class TestCalibration:
    """The constants must re-derive Table II's arithmetic."""

    def test_wordcount_ingest_rate(self):
        # 155 GB at the effective rate == the 403.90 s read cell
        assert 155 * GB_SI / PAPER_WORDCOUNT.ingest_bw == pytest.approx(
            403.90, rel=0.01
        )

    def test_wordcount_map_wall(self):
        assert PAPER_WORDCOUNT.map_wall_s(155 * GB_SI, 32) == pytest.approx(
            67.41, rel=0.01
        )

    def test_sort_ingest_rate(self):
        assert 60 * GB_SI / PAPER_SORT.ingest_bw == pytest.approx(182.78, rel=0.01)

    def test_sort_map_wall(self):
        assert PAPER_SORT.map_wall_s(60 * GB_SI, 32) == pytest.approx(6.33, rel=0.01)

    def test_sort_merge_decomposition(self):
        # block sorts + pairwise rounds = 191.23; + one p-way pass = 61.14
        inter = PAPER_SORT.intermediate_bytes(60 * GB_SI)
        block_sorts = inter / 32 / PAPER_SORT.sort_block_bw
        pairwise_rounds = inter * 1.9375 / PAPER_SORT.merge_scan_bw
        pway_pass = inter / (32 * PAPER_SORT.pway_scan_bw(32))
        assert block_sorts + pairwise_rounds == pytest.approx(191.23, rel=0.01)
        assert block_sorts + pway_pass == pytest.approx(61.14, rel=0.01)

    def test_reduce_round_penalty(self):
        base = PAPER_WORDCOUNT.reduce_wall_s(155 * GB_SI, 1)
        chunked = PAPER_WORDCOUNT.reduce_wall_s(155 * GB_SI, 155, 1 * GB_SI)
        assert base == pytest.approx(0.03, rel=0.05)
        assert chunked == pytest.approx(1.08, rel=0.05)

    def test_pway_scan_bw_log_penalty(self):
        assert PAPER_SORT.pway_scan_bw(32) == pytest.approx(
            PAPER_SORT.merge_scan_bw / 5.0
        )
        # merging <=2 runs pays no heap penalty
        assert PAPER_SORT.pway_scan_bw(1) == PAPER_SORT.merge_scan_bw


class TestValidation:
    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ConfigError):
            AppCostProfile(
                name="bad", ingest_bw=0, map_bw_per_ctx=1, parse_bw_single=1,
                reduce_s_per_gb=0, container_round_penalty_s=0,
                intermediate_ratio=0, sort_block_bw=1, merge_scan_bw=1,
            )

    def test_rejects_negative_ratios(self):
        with pytest.raises(ConfigError):
            AppCostProfile(
                name="bad", ingest_bw=1, map_bw_per_ctx=1, parse_bw_single=1,
                reduce_s_per_gb=-1, container_round_penalty_s=0,
                intermediate_ratio=0, sort_block_bw=1, merge_scan_bw=1,
            )


class TestChunkSizes:
    def test_none_means_single_chunk(self):
        assert chunk_sizes(10 * GB_SI, None) == [10 * GB_SI]

    def test_even_division(self):
        sizes = chunk_sizes(4 * GB_SI, 1 * GB_SI)
        assert len(sizes) == 4
        assert all(s == pytest.approx(GB_SI) for s in sizes)

    def test_remainder_chunk(self):
        sizes = chunk_sizes(155 * GB_SI, 50 * GB_SI)
        assert len(sizes) == 4
        assert sizes[-1] == pytest.approx(5 * GB_SI)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            chunk_sizes(0, 1)
        with pytest.raises(ConfigError):
            chunk_sizes(10, 0)

    def test_si_constants(self):
        assert GB_SI == 1e9 and MB_SI == 1e6
