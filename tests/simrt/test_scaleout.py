"""Analytic scale-out comparator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simrt.costmodel import GB_SI, PAPER_SORT, PAPER_WORDCOUNT
from repro.simrt.scaleout_sim import (
    ScaleOutSpec,
    ShardedSpec,
    crossover_nodes,
    estimate_scaleout_job,
    estimate_sharded_job,
)


class TestScaleOutSpec:
    def test_defaults_reasonable(self):
        spec = ScaleOutSpec()
        assert spec.nodes == 16
        assert spec.node_nic_bw < spec.node_disk_bw * 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            ScaleOutSpec(nodes=0)
        with pytest.raises(ConfigError):
            ScaleOutSpec(node_disk_bw=0)


class TestEstimate:
    def test_map_phase_disk_bound_for_wordcount(self):
        est = estimate_scaleout_job(PAPER_WORDCOUNT, 155 * GB_SI,
                                    ScaleOutSpec(nodes=16))
        share = 155 * GB_SI / 16
        assert est.map_s == pytest.approx(share / (100e6), rel=0.01)

    def test_more_nodes_faster_map(self):
        small = estimate_scaleout_job(PAPER_WORDCOUNT, 155 * GB_SI,
                                      ScaleOutSpec(nodes=8))
        big = estimate_scaleout_job(PAPER_WORDCOUNT, 155 * GB_SI,
                                    ScaleOutSpec(nodes=32))
        assert big.map_s < small.map_s
        assert big.total_s < small.total_s

    def test_coordination_floor_prevents_perfect_scaling(self):
        huge = estimate_scaleout_job(PAPER_WORDCOUNT, 155 * GB_SI,
                                     ScaleOutSpec(nodes=512))
        assert huge.total_s > huge.coordination_s

    def test_sort_shuffle_visible(self):
        # sort's intermediate set equals the input: a real shuffle
        est = estimate_scaleout_job(PAPER_SORT, 60 * GB_SI,
                                    ScaleOutSpec(nodes=16))
        assert est.shuffle_s > 10.0

    def test_wordcount_shuffle_negligible(self):
        est = estimate_scaleout_job(PAPER_WORDCOUNT, 155 * GB_SI,
                                    ScaleOutSpec(nodes=16))
        assert est.shuffle_s < 0.1

    def test_energy_grows_with_cluster_size(self):
        e8 = estimate_scaleout_job(PAPER_SORT, 60 * GB_SI,
                                   ScaleOutSpec(nodes=8)).energy_j
        e64 = estimate_scaleout_job(PAPER_SORT, 60 * GB_SI,
                                    ScaleOutSpec(nodes=64)).energy_j
        assert e64 > e8

    def test_invalid_input_bytes(self):
        with pytest.raises(ConfigError):
            estimate_scaleout_job(PAPER_SORT, 0)


class TestShardedSpec:
    def test_contexts_split_across_shards(self):
        assert ShardedSpec(shards=4, contexts=32).contexts_per_shard == 8
        assert ShardedSpec(shards=64, contexts=32).contexts_per_shard == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            ShardedSpec(shards=0)
        with pytest.raises(ConfigError):
            ShardedSpec(shard_loss_prob=1.5)
        with pytest.raises(ConfigError):
            ShardedSpec(straggler_slowdown=0.5)
        with pytest.raises(ConfigError):
            ShardedSpec(exchange_bw=0)


class TestShardedEstimate:
    def test_map_phase_ingest_bound_regardless_of_shards(self):
        # One machine, one ingest device: sharding must not speed the scan.
        one = estimate_sharded_job(PAPER_WORDCOUNT, 155 * GB_SI,
                                   ShardedSpec(shards=1))
        many = estimate_sharded_job(PAPER_WORDCOUNT, 155 * GB_SI,
                                    ShardedSpec(shards=8))
        assert many.map_s >= one.map_s * 0.99

    def test_exchange_charges_two_passes(self):
        spec = ShardedSpec(shards=4)
        est = estimate_sharded_job(PAPER_SORT, 60 * GB_SI, spec)
        inter = PAPER_SORT.intermediate_bytes(60 * GB_SI)
        assert est.exchange_s == pytest.approx(
            2 * inter / spec.exchange_bw, rel=1e-9
        )

    def test_fault_free_run_has_no_recovery_cost(self):
        est = estimate_sharded_job(PAPER_WORDCOUNT, 155 * GB_SI,
                                   ShardedSpec(shards=4))
        assert est.recovery_s == 0.0

    def test_losses_cost_more_without_a_journal(self):
        lossy = ShardedSpec(shards=4, shard_loss_prob=0.2)
        journaled = estimate_sharded_job(PAPER_SORT, 60 * GB_SI, lossy)
        bare = estimate_sharded_job(
            PAPER_SORT, 60 * GB_SI,
            ShardedSpec(shards=4, shard_loss_prob=0.2, journaled=False),
        )
        assert journaled.recovery_s > 0.0
        assert bare.recovery_s > journaled.recovery_s

    def test_speculation_caps_the_straggler_tail(self):
        slow = dict(shards=4, straggler_prob=0.3, straggler_slowdown=4.0)
        raced = estimate_sharded_job(PAPER_SORT, 60 * GB_SI,
                                     ShardedSpec(**slow, speculative=True))
        unraced = estimate_sharded_job(PAPER_SORT, 60 * GB_SI,
                                       ShardedSpec(**slow, speculative=False))
        assert raced.recovery_s < unraced.recovery_s

    def test_invalid_input_bytes(self):
        with pytest.raises(ConfigError):
            estimate_sharded_job(PAPER_SORT, 0, ShardedSpec())


class TestCrossover:
    def test_crossover_found_for_typical_totals(self):
        n = crossover_nodes(PAPER_WORDCOUNT, 155 * GB_SI,
                            scaleup_total_s=407.0)
        assert n is not None
        assert 2 <= n <= 16

    def test_unbeatable_target_returns_none(self):
        n = crossover_nodes(PAPER_WORDCOUNT, 155 * GB_SI,
                            scaleup_total_s=10.0, max_nodes=64)
        assert n is None

    def test_crossover_monotone_in_target(self):
        fast = crossover_nodes(PAPER_SORT, 60 * GB_SI, scaleup_total_s=100.0)
        slow = crossover_nodes(PAPER_SORT, 60 * GB_SI, scaleup_total_s=400.0)
        assert fast is None or slow is None or slow <= fast
