"""Simulated runtimes reproduce Table II and the figure mechanics.

These are the quantitative acceptance tests of the reproduction: every
Table II cell within tolerance, plus the structural properties the
figures communicate (step-down merge, dense/sparse spikes, overlap).
"""

from __future__ import annotations

import pytest

from repro.simrt.costmodel import GB_SI, PAPER_SORT, PAPER_WORDCOUNT
from repro.simrt.hdfs_case import simulate_hdfs_case_study
from repro.simrt.openmp_sim import simulate_openmp_sort
from repro.simrt.phoenix_sim import simulate_phoenix_job
from repro.simrt.supmr_sim import simulate_supmr_job

WC = 155 * GB_SI
SORT = 60 * GB_SI
#: coarse sampling keeps these sims < 1 s each
INTERVAL = 10.0


@pytest.fixture(scope="module")
def wc_none():
    return simulate_phoenix_job(PAPER_WORDCOUNT, WC, monitor_interval=INTERVAL)


@pytest.fixture(scope="module")
def wc_1gb():
    return simulate_supmr_job(PAPER_WORDCOUNT, WC, 1 * GB_SI,
                              monitor_interval=INTERVAL)


@pytest.fixture(scope="module")
def sort_none():
    return simulate_phoenix_job(PAPER_SORT, SORT, monitor_interval=INTERVAL)


@pytest.fixture(scope="module")
def sort_1gb():
    return simulate_supmr_job(PAPER_SORT, SORT, 1 * GB_SI,
                              monitor_interval=INTERVAL)


class TestTable2WordCount:
    def test_baseline_row(self, wc_none):
        t = wc_none.timings
        assert t.total_s == pytest.approx(471.75, rel=0.01)
        assert t.read_s == pytest.approx(403.90, rel=0.01)
        assert t.map_s == pytest.approx(67.41, rel=0.01)
        assert t.reduce_s == pytest.approx(0.03, abs=0.02)
        assert t.merge_s == pytest.approx(0.01, abs=0.02)

    def test_1gb_row(self, wc_1gb):
        t = wc_1gb.timings
        assert t.total_s == pytest.approx(407.58, rel=0.01)
        assert t.read_map_s == pytest.approx(406.14, rel=0.01)
        assert t.reduce_s == pytest.approx(1.08, rel=0.05)

    def test_50gb_row_shape(self):
        r = simulate_supmr_job(PAPER_WORDCOUNT, WC, 50 * GB_SI,
                               monitor_interval=INTERVAL)
        # within 5% of 429.76 and ordered between the 1 GB and none rows
        assert r.timings.total_s == pytest.approx(429.76, rel=0.05)
        assert 407.58 < r.timings.total_s < 471.75

    def test_n_chunks(self, wc_1gb):
        assert wc_1gb.extras["n_chunks"] == 155


class TestTable2Sort:
    def test_baseline_row(self, sort_none):
        t = sort_none.timings
        assert t.total_s == pytest.approx(397.31, rel=0.01)
        assert t.read_s == pytest.approx(182.78, rel=0.01)
        assert t.map_s == pytest.approx(6.33, rel=0.02)
        assert t.reduce_s == pytest.approx(7.72, rel=0.02)
        assert t.merge_s == pytest.approx(191.23, rel=0.01)

    def test_1gb_row(self, sort_1gb):
        t = sort_1gb.timings
        assert t.total_s == pytest.approx(272.58, rel=0.01)
        assert t.read_map_s == pytest.approx(196.86, rel=0.01)
        assert t.reduce_s == pytest.approx(9.04, rel=0.05)
        assert t.merge_s == pytest.approx(61.14, rel=0.01)

    def test_merge_speedup_matches_paper(self, sort_none, sort_1gb):
        speedup = sort_none.timings.merge_s / sort_1gb.timings.merge_s
        assert speedup == pytest.approx(3.13, rel=0.02)

    def test_total_speedup_matches_paper(self, sort_none, sort_1gb):
        speedup = sort_none.timings.total_s / sort_1gb.timings.total_s
        assert speedup == pytest.approx(1.46, rel=0.02)


class TestFigureMechanics:
    def test_fig1_step_down_merge(self, sort_none):
        merge_span = [s for s in sort_none.spans if s.name == "merge"][0]
        window = [s for s in sort_none.samples
                  if merge_span.start <= s.time <= merge_span.end]
        busy = [s.busy_pct for s in window]
        # high at the start (block sorts), low at the end (1 thread)
        assert busy[0] > 90
        assert busy[-1] < 10
        # monotone non-increasing plateaus (allow sampling jitter)
        assert all(a >= b - 1.0 for a, b in zip(busy, busy[1:]))

    def test_fig6_supmr_merge_single_high_round(self, sort_1gb):
        merge_span = [s for s in sort_1gb.spans if s.name == "merge"][0]
        window = [s for s in sort_1gb.samples
                  if merge_span.start <= s.time <= merge_span.end]
        busy = [s.busy_pct for s in window]
        assert min(busy) > 90  # no step-down: all contexts busy throughout

    def test_fig5_overlap_raises_utilization(self, wc_none, wc_1gb):
        base_busy = [s.busy_pct for s in wc_none.samples
                     if s.time <= wc_none.timings.read_s]
        supmr_busy = [s.busy_pct for s in wc_1gb.samples
                      if s.time <= wc_1gb.timings.read_map_s]
        base_mean = sum(base_busy) / len(base_busy)
        supmr_mean = sum(supmr_busy) / len(supmr_busy)
        assert base_mean < 1.0  # pure iowait during baseline ingest
        assert supmr_mean > 10.0  # dense map spikes during SupMR ingest

    def test_pipelining_ablation_overlap_saves_time(self):
        piped = simulate_supmr_job(PAPER_WORDCOUNT, 10 * GB_SI, 1 * GB_SI,
                                   monitor_interval=INTERVAL)
        serial = simulate_supmr_job(PAPER_WORDCOUNT, 10 * GB_SI, 1 * GB_SI,
                                    monitor_interval=INTERVAL, pipelined=False)
        assert piped.timings.total_s < serial.timings.total_s
        # the saving is roughly the overlapped map time
        saved = serial.timings.total_s - piped.timings.total_s
        map_time = PAPER_WORDCOUNT.map_wall_s(9 * GB_SI, 32)
        assert saved == pytest.approx(map_time, rel=0.15)


class TestOpenMPSim:
    def test_fig3_totals(self):
        openmp = simulate_openmp_sort(PAPER_SORT, SORT, monitor_interval=INTERVAL)
        mr = simulate_phoenix_job(PAPER_SORT, SORT, monitor_interval=INTERVAL)
        delta = openmp.timings.total_s - mr.timings.total_s
        assert delta == pytest.approx(192.0, abs=5.0)

    def test_parse_is_single_threaded(self):
        openmp = simulate_openmp_sort(PAPER_SORT, SORT, monitor_interval=INTERVAL)
        parse_span = [s for s in openmp.spans if s.name == "parse"][0]
        window = [s for s in openmp.samples
                  if parse_span.start < s.time < parse_span.end]
        assert all(s.busy_pct <= 100 / 32 + 0.5 for s in window)


class TestHdfsCase:
    def test_fig7_speedup_near_seven_seconds(self):
        case = simulate_hdfs_case_study(monitor_interval=INTERVAL)
        assert case.speedup_seconds == pytest.approx(7.0, abs=1.5)

    def test_fig7_utilization_rises_but_speedup_small(self):
        case = simulate_hdfs_case_study(monitor_interval=INTERVAL)
        # relative total speedup is tiny (Conclusion 4)
        assert case.speedup_factor < 1.05
