"""Analytic network-exchange model: monotonicity and crossover pins."""

from __future__ import annotations

import math

import pytest

from repro.errors import SimulationError
from repro.simrt.netmodel import (
    LAN_1G,
    LAN_10G,
    NetProfile,
    crossover_hosts,
    exchange_s,
    multi_host_runtime_s,
    remote_fetch_s,
    speedup,
)

GB = 1e9


class TestNetProfile:
    def test_validation(self):
        with pytest.raises(SimulationError):
            NetProfile(bandwidth_bps=0, rtt_s=1e-4)
        with pytest.raises(SimulationError):
            NetProfile(bandwidth_bps=1e9, rtt_s=-1.0)
        with pytest.raises(SimulationError):
            NetProfile(bandwidth_bps=1e9, rtt_s=1e-4, frame_bytes=0)


class TestRemoteFetch:
    def test_zero_bytes_still_costs_a_round_trip(self):
        assert remote_fetch_s(LAN_10G, 0) == LAN_10G.rtt_s

    def test_monotone_in_volume(self):
        times = [remote_fetch_s(LAN_10G, v) for v in
                 (1e6, 1e7, 1e8, 1e9)]
        assert times == sorted(times)
        assert times[0] < times[-1]

    def test_faster_link_is_faster(self):
        assert remote_fetch_s(LAN_10G, GB) < remote_fetch_s(LAN_1G, GB)

    def test_smaller_frames_pay_more_round_trips(self):
        fat = NetProfile(bandwidth_bps=1.25e9, rtt_s=1e-3,
                         frame_bytes=1 << 20)
        thin = NetProfile(bandwidth_bps=1.25e9, rtt_s=1e-3,
                          frame_bytes=1 << 14)
        assert remote_fetch_s(thin, GB) > remote_fetch_s(fat, GB)


class TestExchange:
    def test_one_host_exchanges_nothing(self):
        assert exchange_s(LAN_10G, 10 * GB, 1) == 0.0

    def test_more_streams_never_slower(self):
        one = exchange_s(LAN_10G, 10 * GB, 4, streams_per_host=1)
        four = exchange_s(LAN_10G, 10 * GB, 4, streams_per_host=4)
        assert four <= one

    def test_monotone_in_shuffle_volume(self):
        times = [exchange_s(LAN_10G, v, 4) for v in
                 (GB, 4 * GB, 16 * GB)]
        assert times == sorted(times)
        assert times[0] < times[-1]


class TestSpeedupAndCrossover:
    def test_compute_bound_jobs_want_hosts(self):
        # Hours of compute, a trickle of shuffle: near-ideal scaling.
        s = speedup(LAN_10G, compute_s=3600.0, shuffle_bytes=GB,
                    num_hosts=8)
        assert 6.0 < s <= 8.0
        assert crossover_hosts(LAN_10G, 3600.0, GB) == 2

    def test_shuffle_bound_jobs_stay_on_one_fat_node(self):
        # The paper's regime: seconds of compute, a huge exchange over
        # a slow fabric — no host count wins.
        assert crossover_hosts(LAN_1G, 10.0, 150 * GB) is None
        assert speedup(LAN_1G, 10.0, 150 * GB, num_hosts=8) < 1.0

    def test_speedup_monotone_in_network_quality(self):
        slow = speedup(LAN_1G, 600.0, 50 * GB, num_hosts=4)
        fast = speedup(LAN_10G, 600.0, 50 * GB, num_hosts=4)
        assert fast > slow

    def test_multi_host_runtime_has_both_terms(self):
        runtime = multi_host_runtime_s(LAN_10G, 100.0, 10 * GB, 4)
        assert runtime > 100.0 / 4  # compute split plus a nonzero tax
        assert math.isfinite(runtime)

    def test_crossover_validation(self):
        with pytest.raises(SimulationError):
            crossover_hosts(LAN_10G, 10.0, GB, max_hosts=1)
