"""Unit tests of the simulated phase primitives against hand arithmetic."""

from __future__ import annotations

import pytest

from repro.simhw.cpu import CpuClass
from repro.simhw.events import Simulator
from repro.simhw.machine import paper_machine
from repro.simrt.costmodel import GB_SI, MB_SI, PAPER_SORT, PAPER_WORDCOUNT
from repro.simrt.phases import (
    PhaseLog,
    ingest,
    map_wave,
    merge_pairwise,
    merge_pway,
    reduce_phase,
)


def run_phase(phase_gen):
    sim = Simulator()
    machine = paper_machine(sim, monitor_interval=1000.0)
    log = PhaseLog(machine)

    def body():
        t0 = sim.now
        yield from phase_gen(machine)
        log.record("phase", t0)

    sim.process(body())
    sim.run()
    return machine, log.duration("phase")


class TestIngest:
    def test_rate_capped_at_profile_bw(self):
        nbytes = 10 * GB_SI
        _m, dur = run_phase(lambda m: ingest(m, nbytes, PAPER_SORT))
        assert dur == pytest.approx(nbytes / PAPER_SORT.ingest_bw, rel=1e-6)

    def test_wordcount_uses_full_raid(self):
        nbytes = 10 * GB_SI
        _m, dur = run_phase(lambda m: ingest(m, nbytes, PAPER_WORDCOUNT))
        assert dur == pytest.approx(nbytes / PAPER_WORDCOUNT.ingest_bw,
                                    rel=1e-6)

    def test_iowait_flag_cleared_after(self):
        machine, _ = run_phase(lambda m: ingest(m, 1 * MB_SI, PAPER_SORT))
        assert machine.cpu.io_blocked == 0


class TestMapWave:
    def test_wall_time_matches_profile(self):
        nbytes = 4 * GB_SI
        _m, dur = run_phase(lambda m: map_wave(m, nbytes, PAPER_WORDCOUNT))
        expected = PAPER_WORDCOUNT.map_wall_s(nbytes, 32)
        # plus thread wave overheads (sys), which are microseconds
        assert dur == pytest.approx(expected, rel=0.01)

    def test_wave_consumes_sys_time_for_threads(self):
        machine, _ = run_phase(lambda m: map_wave(m, 1 * GB_SI,
                                                  PAPER_WORDCOUNT))
        assert machine.cpu.consumed[CpuClass.SYS] > 0

    def test_all_contexts_engaged(self):
        machine, dur = run_phase(lambda m: map_wave(m, 32 * GB_SI,
                                                    PAPER_SORT))
        # 32 threads of equal work: user consumption = 32 x wall(map part)
        map_part = PAPER_SORT.map_wall_s(32 * GB_SI, 32)
        assert machine.cpu.consumed[CpuClass.USER] == pytest.approx(
            32 * map_part, rel=0.01
        )


class TestReducePhase:
    def test_baseline_duration(self):
        _m, dur = run_phase(
            lambda m: reduce_phase(m, 60 * GB_SI, PAPER_SORT, map_rounds=1)
        )
        assert dur == pytest.approx(7.72, rel=0.01)

    def test_round_penalty_applied(self):
        _m, dur = run_phase(
            lambda m: reduce_phase(m, 60 * GB_SI, PAPER_SORT, map_rounds=60,
                                   chunk_bytes=1 * GB_SI)
        )
        assert dur == pytest.approx(9.02, rel=0.01)

    def test_zero_work_is_instant(self):
        _m, dur = run_phase(
            lambda m: reduce_phase(m, 1.0, PAPER_WORDCOUNT, map_rounds=1)
        )
        assert dur < 1e-6


class TestMergePhases:
    def test_pairwise_matches_table2(self):
        inter = PAPER_SORT.intermediate_bytes(60 * GB_SI)
        _m, dur = run_phase(lambda m: merge_pairwise(m, inter, PAPER_SORT))
        assert dur == pytest.approx(191.23, rel=0.01)

    def test_pway_matches_table2(self):
        inter = PAPER_SORT.intermediate_bytes(60 * GB_SI)
        _m, dur = run_phase(lambda m: merge_pway(m, inter, PAPER_SORT))
        assert dur == pytest.approx(61.14, rel=0.01)

    def test_empty_intermediate_is_free(self):
        _m, dur = run_phase(lambda m: merge_pairwise(m, 0.0, PAPER_SORT))
        assert dur == 0.0

    def test_pway_beats_pairwise_for_any_size(self):
        for gb in (1, 10, 60):
            inter = gb * GB_SI
            _m, pair = run_phase(
                lambda m, i=inter: merge_pairwise(m, i, PAPER_SORT))
            _m, pway = run_phase(
                lambda m, i=inter: merge_pway(m, i, PAPER_SORT))
            assert pway < pair
