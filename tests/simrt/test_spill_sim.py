"""Simulated spill traffic: disk writes, phase spans, cost-model plans."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.simrt.costmodel import (
    GB_SI,
    PAPER_SORT,
    PAPER_WORDCOUNT,
    merge_passes,
    plan_spills,
)
from repro.simrt.phoenix_sim import simulate_phoenix_job
from repro.simrt.supmr_sim import simulate_supmr_job

INPUT = 60 * GB_SI
BUDGET = 4 * GB_SI


class TestPlanSpills:
    def test_no_budget_stays_resident(self):
        plan = plan_spills(INPUT, None)
        assert plan.n_runs == 0
        assert plan.resident_bytes == INPUT

    def test_budget_fragments_into_runs(self):
        plan = plan_spills(INPUT, BUDGET)
        assert plan.n_runs == 15
        assert plan.spilled_bytes == pytest.approx(INPUT)
        assert plan.resident_bytes == pytest.approx(0.0)

    def test_combine_ratio_shrinks_runs(self):
        plan = plan_spills(INPUT, BUDGET, combine_ratio=0.5)
        assert plan.run_bytes == pytest.approx(BUDGET / 2)
        assert plan.spilled_bytes == pytest.approx(INPUT / 2)

    def test_budget_larger_than_intermediate(self):
        plan = plan_spills(1 * GB_SI, BUDGET)
        assert plan.n_runs == 0

    def test_invalid_budget(self):
        with pytest.raises(ConfigError):
            plan_spills(INPUT, 0)


class TestMergePasses:
    def test_under_fan_in_needs_no_consolidation(self):
        assert merge_passes(5, 8) == 0
        assert merge_passes(8, 8) == 0

    def test_each_pass_retires_fan_in_minus_one(self):
        assert merge_passes(9, 8) == 1
        assert merge_passes(16, 8) == 2
        assert merge_passes(100, 2) == 98

    def test_invalid_fan_in(self):
        with pytest.raises(ConfigError):
            merge_passes(5, 1)


class TestSpillCombineRatioField:
    def test_defaults_to_one(self):
        assert PAPER_SORT.spill_combine_ratio == 1.0

    def test_validated(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(PAPER_WORDCOUNT, spill_combine_ratio=0.0)
        with pytest.raises(ConfigError):
            dataclasses.replace(PAPER_WORDCOUNT, spill_combine_ratio=1.5)


class TestSimulatedPhoenixSpill:
    def test_spill_spans_and_disk_writes_appear(self):
        result = simulate_phoenix_job(PAPER_SORT, INPUT, memory_budget=BUDGET)
        assert result.timings.spill_s > 0
        assert any(s.name == "spill" for s in result.spans)
        assert any(s.disk_write_active > 0 for s in result.samples)
        assert result.extras["n_spill_runs"] == 15
        assert result.extras["spilled_bytes"] == pytest.approx(INPUT)
        assert result.extras["spill_merge_passes"] == merge_passes(16, 8)

    def test_spilling_costs_wall_clock(self):
        in_memory = simulate_phoenix_job(PAPER_SORT, INPUT)
        spilled = simulate_phoenix_job(PAPER_SORT, INPUT, memory_budget=BUDGET)
        assert spilled.timings.total_s > in_memory.timings.total_s

    def test_no_budget_is_unchanged(self):
        result = simulate_phoenix_job(PAPER_SORT, INPUT)
        assert result.timings.spill_s == 0.0
        assert "n_spill_runs" not in result.extras
        assert not any(s.name == "spill" for s in result.spans)

    def test_wordcount_tiny_intermediate_never_spills(self):
        # Word count's intermediate set is a few MB; a GB budget holds it.
        result = simulate_phoenix_job(
            PAPER_WORDCOUNT, 155 * GB_SI, memory_budget=1 * GB_SI
        )
        assert result.extras["n_spill_runs"] == 0
        assert result.timings.spill_s == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            simulate_phoenix_job(PAPER_SORT, INPUT, memory_budget=-1)
        with pytest.raises(ConfigError):
            simulate_phoenix_job(
                PAPER_SORT, INPUT, memory_budget=BUDGET, spill_fan_in=1
            )


class TestSimulatedSupMRSpill:
    def test_spills_interleave_with_rounds(self):
        result = simulate_supmr_job(
            PAPER_SORT, INPUT, 1 * GB_SI, memory_budget=BUDGET
        )
        assert result.extras["n_spill_runs"] == 15
        assert result.timings.spill_s > 0
        assert any(s.disk_write_active > 0 for s in result.samples)
        # Spill writes happen during the rounds, not only at the end.
        read_map_end = result.timings.read_s
        spill_spans = [s for s in result.spans if s.name == "spill"]
        assert any(s.end <= read_map_end for s in spill_spans)

    def test_run_count_matches_static_plan(self):
        result = simulate_supmr_job(
            PAPER_SORT, INPUT, 1 * GB_SI, memory_budget=BUDGET
        )
        plan = plan_spills(
            PAPER_SORT.intermediate_bytes(INPUT), BUDGET
        )
        assert result.extras["n_spill_runs"] == plan.n_runs
        assert result.extras["spilled_bytes"] == pytest.approx(
            plan.spilled_bytes
        )

    def test_no_budget_is_unchanged(self):
        result = simulate_supmr_job(PAPER_SORT, INPUT, 1 * GB_SI)
        assert result.timings.spill_s == 0.0
        assert "n_spill_runs" not in result.extras

    def test_validation(self):
        with pytest.raises(ConfigError):
            simulate_supmr_job(PAPER_SORT, INPUT, 1 * GB_SI, memory_budget=0)
