"""Split-point adjustment (never cut a record)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chunking.boundary import adjust_split_point, find_record_end_in_file
from repro.errors import ChunkingError


class TestAdjustSplitPoint:
    DATA = b"aaa\nbbb\nccc\n"

    def test_zero_and_end_are_aligned(self):
        assert adjust_split_point(self.DATA, 0, b"\n") == 0
        assert adjust_split_point(self.DATA, len(self.DATA), b"\n") == len(self.DATA)

    def test_mid_record_moves_to_record_end(self):
        # position 1 is inside "aaa" -> move past "aaa\n"
        assert adjust_split_point(self.DATA, 1, b"\n") == 4

    def test_at_record_boundary_stays(self):
        assert adjust_split_point(self.DATA, 4, b"\n") == 4

    def test_position_just_after_delimiter(self):
        assert adjust_split_point(self.DATA, 5, b"\n") == 8

    def test_no_following_delimiter_goes_to_end(self):
        data = b"aaa\nbbbb"
        assert adjust_split_point(data, 6, b"\n") == len(data)

    def test_split_inside_multibyte_delimiter(self):
        # paper's terasort case: \r\n; landing between \r and \n must not
        # strand the \n with the next chunk
        data = b"rec1\r\nrec2\r\n"
        pos_inside = data.find(b"\r\n") + 1  # between \r and \n
        assert adjust_split_point(data, pos_inside, b"\r\n") == 6

    def test_out_of_range_raises(self):
        with pytest.raises(ChunkingError):
            adjust_split_point(b"abc", 5, b"\n")
        with pytest.raises(ChunkingError):
            adjust_split_point(b"abc", -1, b"\n")

    def test_empty_delimiter_raises(self):
        with pytest.raises(ChunkingError):
            adjust_split_point(b"abc", 1, b"")

    @given(
        st.lists(st.binary(min_size=0, max_size=6).filter(
            lambda b: b"\n" not in b), min_size=1, max_size=10),
        st.data(),
    )
    def test_property_result_is_record_aligned(self, records, data):
        blob = b"".join(r + b"\n" for r in records)
        pos = data.draw(st.integers(min_value=0, max_value=len(blob)))
        end = adjust_split_point(blob, pos, b"\n")
        assert end >= pos
        # aligned: the prefix ends with the delimiter (or is empty/whole)
        assert end in (0, len(blob)) or blob[:end].endswith(b"\n")


class TestFindRecordEndInFile:
    def test_matches_in_memory_version(self, tmp_path):
        data = b"alpha\nbeta\ngamma\ndelta\n"
        path = tmp_path / "f"
        path.write_bytes(data)
        for pos in range(len(data) + 1):
            assert (
                find_record_end_in_file(path, pos, b"\n")
                == adjust_split_point(data, pos, b"\n")
            )

    def test_crlf_delimiter_straddling_probe(self, tmp_path):
        data = b"x" * 10 + b"\r\n" + b"y" * 5 + b"\r\n"
        path = tmp_path / "f"
        path.write_bytes(data)
        assert find_record_end_in_file(path, 11, b"\r\n") == 12

    def test_out_of_range_raises(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"ab")
        with pytest.raises(ChunkingError):
            find_record_end_in_file(path, 5, b"\n")

    def test_empty_delimiter_raises(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"ab")
        with pytest.raises(ChunkingError):
            find_record_end_in_file(path, 1, b"")

    def test_large_record_spanning_probe_windows(self, tmp_path):
        # record longer than the 64 KB probe window
        data = b"z" * 200_000 + b"\n" + b"tail\n"
        path = tmp_path / "f"
        path.write_bytes(data)
        assert find_record_end_in_file(path, 100, b"\n") == 200_001
