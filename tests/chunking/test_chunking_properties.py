"""Property-based tests across all chunk planners.

For arbitrary record streams and chunk parameters, every planner must
produce plans that (a) tile the input exactly, (b) cut only at record
boundaries, and (c) parse to the identical record sequence chunked or
whole.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chunking.hybrid import plan_hybrid_chunks
from repro.chunking.interfile import plan_interfile_chunks
from repro.chunking.intrafile import plan_intrafile_chunks
from repro.chunking.variable import plan_variable_chunks
from repro.io.records import RecordCodec

records_strategy = st.lists(
    st.binary(min_size=0, max_size=12).filter(lambda b: b"\n" not in b),
    min_size=1, max_size=40,
)

suppress = [HealthCheck.function_scoped_fixture]


def write_corpus(tmp_path, records, name="corpus"):
    path = tmp_path / name
    path.write_bytes(b"".join(r + b"\n" for r in records))
    return path


class TestInterfileProperties:
    @given(records_strategy, st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None, suppress_health_check=suppress)
    def test_tiles_and_parses_identically(self, tmp_path, records, chunk):
        path = write_corpus(tmp_path, records)
        plan = plan_interfile_chunks(path, chunk, b"\n")
        plan.validate_contiguous()
        codec = RecordCodec()
        chunked = [
            r for c in plan.chunks for r in codec.iter_records(c.load())
        ]
        assert chunked == records

    @given(records_strategy, st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None, suppress_health_check=suppress)
    def test_every_chunk_ends_on_boundary(self, tmp_path, records, chunk):
        path = write_corpus(tmp_path, records)
        plan = plan_interfile_chunks(path, chunk, b"\n")
        for c in plan.chunks:
            assert c.load().endswith(b"\n")


class TestVariableProperties:
    @given(records_strategy,
           st.lists(st.integers(min_value=1, max_value=50), min_size=1,
                    max_size=5))
    @settings(max_examples=40, deadline=None, suppress_health_check=suppress)
    def test_schedule_tiles_input(self, tmp_path, records, schedule):
        path = write_corpus(tmp_path, records)
        plan = plan_variable_chunks(path, schedule, b"\n")
        plan.validate_contiguous()
        assert b"".join(c.load() for c in plan.chunks) == path.read_bytes()


class TestIntrafileProperties:
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=30, deadline=None, suppress_health_check=suppress)
    def test_chunk_count_formula(self, tmp_path, n_files, per_chunk):
        paths = []
        for i in range(n_files):
            p = tmp_path / f"f{i}"
            p.write_bytes(b"x\n")
            paths.append(p)
        plan = plan_intrafile_chunks(paths, per_chunk)
        expected = -(-n_files // per_chunk)  # ceil division
        assert plan.n_chunks == expected
        assert sum(len(c.sources) for c in plan.chunks) == n_files


class TestHybridProperties:
    @given(st.lists(st.integers(min_value=1, max_value=40), min_size=1,
                    max_size=10),
           st.integers(min_value=4, max_value=60))
    @settings(max_examples=30, deadline=None, suppress_health_check=suppress)
    def test_covers_all_bytes_in_order(self, tmp_path, line_counts, budget):
        paths = []
        for i, n in enumerate(line_counts):
            p = tmp_path / f"f{i}"
            p.write_bytes(b"ab\n" * n)
            paths.append(p)
        plan = plan_hybrid_chunks(paths, budget, b"\n")
        plan.validate_contiguous()
        whole = b"".join(p.read_bytes() for p in paths)
        assert b"".join(c.load() for c in plan.chunks) == whole
