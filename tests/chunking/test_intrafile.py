"""Intra-file chunking (many small files)."""

from __future__ import annotations

import pytest

from repro.chunking.intrafile import plan_intrafile_chunks
from repro.errors import ChunkingError


def make_files(tmp_path, n, size=100):
    paths = []
    for i in range(n):
        p = tmp_path / f"f{i:03d}.txt"
        p.write_bytes(bytes([65 + i % 26]) * size)
        paths.append(p)
    return paths


class TestPlanIntrafile:
    def test_paper_example_30_files_by_4(self, tmp_path):
        # section III.A.1: 30 files, chunk size 4 => 8 chunks (7x4 + 1x2)
        paths = make_files(tmp_path, 30)
        plan = plan_intrafile_chunks(paths, 4)
        assert plan.n_chunks == 8
        assert [len(c.sources) for c in plan.chunks] == [4] * 7 + [2]
        assert any("2 file(s)" in note for note in plan.notes)

    def test_exact_multiple_has_no_note(self, tmp_path):
        paths = make_files(tmp_path, 8)
        plan = plan_intrafile_chunks(paths, 4)
        assert plan.n_chunks == 2
        assert plan.notes == ()

    def test_one_file_per_chunk(self, tmp_path):
        paths = make_files(tmp_path, 5)
        plan = plan_intrafile_chunks(paths, 1)
        assert plan.n_chunks == 5

    def test_chunk_larger_than_input(self, tmp_path):
        paths = make_files(tmp_path, 3)
        plan = plan_intrafile_chunks(paths, 10)
        assert plan.n_chunks == 1
        assert len(plan.chunks[0].sources) == 3

    def test_loading_concatenates_in_order(self, tmp_path):
        paths = make_files(tmp_path, 4, size=3)
        plan = plan_intrafile_chunks(paths, 2)
        assert plan.chunks[0].load() == b"AAABBB"
        assert plan.chunks[1].load() == b"CCCDDD"

    def test_total_bytes(self, tmp_path):
        paths = make_files(tmp_path, 6, size=50)
        plan = plan_intrafile_chunks(paths, 4)
        assert plan.total_bytes == 300

    def test_empty_input_raises(self):
        with pytest.raises(ChunkingError):
            plan_intrafile_chunks([], 4)

    def test_invalid_files_per_chunk(self, tmp_path):
        paths = make_files(tmp_path, 2)
        with pytest.raises(ChunkingError):
            plan_intrafile_chunks(paths, 0)

    def test_strategy_metadata(self, tmp_path):
        paths = make_files(tmp_path, 2)
        plan = plan_intrafile_chunks(paths, 2)
        assert plan.strategy == "intra-file"
        assert plan.requested_size == 2
