"""Variable-size and hybrid chunking (the paper's future-work modes)."""

from __future__ import annotations

import pytest

from repro.chunking.hybrid import plan_hybrid_chunks
from repro.chunking.variable import plan_variable_chunks
from repro.errors import ChunkingError


class TestVariableChunks:
    def _file(self, tmp_path, n=100, record=b"0123456789 payload\r\n"):
        path = tmp_path / "big"
        path.write_bytes(record * n)
        return path, len(record) * n

    def test_schedule_followed_in_order(self, tmp_path):
        path, _total = self._file(tmp_path)
        plan = plan_variable_chunks(path, [100, 200, 400], b"\r\n")
        lengths = [c.length for c in plan.chunks]
        # each cut lands at the next record end past the scheduled size
        assert 100 <= lengths[0] < 120
        assert 200 <= lengths[1] < 220
        assert all(400 <= n < 420 for n in lengths[2:-1])

    def test_last_size_repeats(self, tmp_path):
        path, total = self._file(tmp_path)
        plan = plan_variable_chunks(path, [500], b"\r\n")
        assert plan.total_bytes == total
        assert plan.strategy == "variable"

    def test_chunks_tile_and_align(self, tmp_path):
        path, total = self._file(tmp_path)
        plan = plan_variable_chunks(path, [64, 128], b"\r\n")
        plan.validate_contiguous()
        assert b"".join(c.load() for c in plan.chunks) == path.read_bytes()

    def test_empty_schedule_raises(self, tmp_path):
        path, _ = self._file(tmp_path)
        with pytest.raises(ChunkingError):
            plan_variable_chunks(path, [], b"\r\n")

    def test_invalid_size_raises(self, tmp_path):
        path, _ = self._file(tmp_path)
        with pytest.raises(ChunkingError):
            plan_variable_chunks(path, [100, 0], b"\r\n")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ChunkingError):
            plan_variable_chunks(tmp_path / "nope", [100], b"\n")


class TestHybridChunks:
    def _files(self, tmp_path, sizes, record=b"x" * 9 + b"\n"):
        paths = []
        for i, size in enumerate(sizes):
            p = tmp_path / f"f{i:02d}"
            p.write_bytes(record * (size // len(record)))
            paths.append(p)
        return paths

    def test_small_files_packed_to_budget(self, tmp_path):
        paths = self._files(tmp_path, [100, 100, 100, 100])
        plan = plan_hybrid_chunks(paths, 250, b"\n")
        assert plan.n_chunks == 2
        assert [len(c.sources) for c in plan.chunks] == [2, 2]

    def test_oversized_file_split_interfile(self, tmp_path):
        paths = self._files(tmp_path, [100, 1000, 100])
        plan = plan_hybrid_chunks(paths, 300, b"\n")
        plan.validate_contiguous()
        # middle file split into ~4 inter-file chunks
        split_chunks = [c for c in plan.chunks
                        if c.sources[0].path == paths[1]]
        assert len(split_chunks) >= 3
        assert any("split inter-file" in note for note in plan.notes)

    def test_mixed_corpus_covers_all_bytes(self, tmp_path):
        paths = self._files(tmp_path, [50, 700, 120, 120, 900, 40])
        total = sum(p.stat().st_size for p in paths)
        plan = plan_hybrid_chunks(paths, 250, b"\n")
        assert plan.total_bytes == total
        data = b"".join(c.load() for c in plan.chunks)
        assert data == b"".join(p.read_bytes() for p in paths)

    def test_file_order_preserved(self, tmp_path):
        paths = self._files(tmp_path, [100] * 6)
        plan = plan_hybrid_chunks(paths, 1000, b"\n")
        seen = [src.path for chunk in plan.chunks for src in chunk.sources]
        assert seen == paths

    def test_invalid_budget(self, tmp_path):
        paths = self._files(tmp_path, [100])
        with pytest.raises(ChunkingError):
            plan_hybrid_chunks(paths, 0, b"\n")

    def test_empty_inputs(self):
        with pytest.raises(ChunkingError):
            plan_hybrid_chunks([], 100, b"\n")


class TestRuntimeIntegration:
    def test_variable_strategy_end_to_end(self, text_file):
        from repro.apps.wordcount import make_wordcount_job, reference_wordcount
        from repro.core.options import RuntimeOptions
        from repro.core.supmr import run_ingest_mr

        result = run_ingest_mr(
            make_wordcount_job([text_file]),
            RuntimeOptions.supmr_variable(["8KB", "16KB", "64KB"]),
        )
        assert dict(result.output) == reference_wordcount([text_file])
        assert result.counters["chunk_strategy"] == "variable"

    def test_hybrid_strategy_end_to_end(self, small_files, text_file):
        from repro.apps.wordcount import make_wordcount_job, reference_wordcount
        from repro.core.options import RuntimeOptions
        from repro.core.supmr import run_ingest_mr

        inputs = list(small_files[:6]) + [text_file]  # mixed sizes
        result = run_ingest_mr(
            make_wordcount_job(inputs),
            RuntimeOptions.supmr_hybrid("24KB"),
        )
        assert dict(result.output) == reference_wordcount(inputs)
        assert result.counters["chunk_strategy"] == "hybrid"

    def test_options_validation(self):
        from repro.core.options import ChunkStrategy, RuntimeOptions
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            RuntimeOptions(chunk_strategy=ChunkStrategy.VARIABLE)
        with pytest.raises(ConfigError):
            RuntimeOptions(chunk_strategy=ChunkStrategy.VARIABLE,
                           chunk_schedule=(0,))
        with pytest.raises(ConfigError):
            RuntimeOptions(chunk_strategy=ChunkStrategy.HYBRID)
