"""Strategy-dispatching planner and Chunk/ChunkPlan structures."""

from __future__ import annotations

import pytest

from repro.chunking.chunk import Chunk, ChunkPlan, ChunkSource
from repro.chunking.planner import plan_chunks, plan_whole_input
from repro.core.options import RuntimeOptions
from repro.errors import ChunkingError
from repro.io.records import RecordCodec


@pytest.fixture
def two_files(tmp_path):
    a = tmp_path / "a.txt"
    b = tmp_path / "b.txt"
    a.write_bytes(b"line1\nline2\n")
    b.write_bytes(b"line3\n")
    return [a, b]


class TestPlanWholeInput:
    def test_single_chunk_covers_everything(self, two_files):
        plan = plan_whole_input(two_files)
        assert plan.n_chunks == 1
        assert plan.total_bytes == 18
        assert plan.strategy == "whole-input"

    def test_no_inputs_raises(self):
        with pytest.raises(ChunkingError):
            plan_whole_input([])


class TestPlanChunksDispatch:
    def test_none_strategy(self, two_files):
        plan = plan_chunks(two_files, RecordCodec(), RuntimeOptions.baseline())
        assert plan.strategy == "whole-input"

    def test_interfile_strategy(self, two_files):
        options = RuntimeOptions.supmr_interfile("6")
        plan = plan_chunks(two_files[:1], RecordCodec(), options)
        assert plan.strategy == "inter-file"
        assert plan.n_chunks == 2

    def test_interfile_rejects_multiple_files(self, two_files):
        options = RuntimeOptions.supmr_interfile("6")
        with pytest.raises(ChunkingError, match="exactly one"):
            plan_chunks(two_files, RecordCodec(), options)

    def test_intrafile_strategy(self, two_files):
        options = RuntimeOptions.supmr_intrafile(1)
        plan = plan_chunks(two_files, RecordCodec(), options)
        assert plan.strategy == "intra-file"
        assert plan.n_chunks == 2


class TestChunkStructures:
    def test_source_validation(self, tmp_path):
        with pytest.raises(ChunkingError):
            ChunkSource(tmp_path / "x", -1, 10)

    def test_chunk_length_sums_sources(self, two_files):
        chunk = Chunk(0, (ChunkSource(two_files[0], 0, 12),
                          ChunkSource(two_files[1], 0, 6)))
        assert chunk.length == 18
        assert chunk.paths == (two_files[0], two_files[1])

    def test_validate_contiguous_detects_gap(self, two_files):
        plan = ChunkPlan(
            chunks=(
                Chunk(0, (ChunkSource(two_files[0], 0, 4),)),
                Chunk(1, (ChunkSource(two_files[0], 6, 6),)),  # gap at 4..6
            ),
            strategy="inter-file",
        )
        with pytest.raises(ChunkingError, match="resumes"):
            plan.validate_contiguous()

    def test_plan_iterates_chunks(self, two_files):
        plan = plan_whole_input(two_files)
        assert [c.index for c in plan] == [0]
