"""Chunk.load fast paths (mmap / readinto) and Chunk.warm."""

from __future__ import annotations

from repro.chunking.chunk import Chunk, ChunkSource


def _write(tmp_path, name, data):
    path = tmp_path / name
    path.write_bytes(data)
    return path


class TestSingleSourceMmapLoad:
    def test_full_file(self, tmp_path):
        data = b"hello\nworld\n"
        path = _write(tmp_path, "in.txt", data)
        chunk = Chunk(0, (ChunkSource(path, 0, len(data)),))
        assert chunk.load() == data

    def test_interior_window(self, tmp_path):
        path = _write(tmp_path, "in.txt", b"0123456789")
        chunk = Chunk(0, (ChunkSource(path, 3, 4),))
        assert chunk.load() == b"3456"

    def test_range_past_eof_is_clamped(self, tmp_path):
        path = _write(tmp_path, "in.txt", b"abc")
        chunk = Chunk(0, (ChunkSource(path, 1, 100),))
        assert chunk.load() == b"bc"

    def test_zero_length_source(self, tmp_path):
        path = _write(tmp_path, "in.txt", b"abc")
        chunk = Chunk(0, (ChunkSource(path, 3, 0),))
        assert chunk.load() == b""

    def test_empty_file(self, tmp_path):
        path = _write(tmp_path, "empty.txt", b"")
        chunk = Chunk(0, (ChunkSource(path, 0, 0),))
        assert chunk.load() == b""


class TestMultiSourceReadintoLoad:
    def test_parts_land_in_order(self, tmp_path):
        a = _write(tmp_path, "a.txt", b"first-")
        b = _write(tmp_path, "b.txt", b"second-")
        c = _write(tmp_path, "c.txt", b"third")
        chunk = Chunk(
            0,
            (
                ChunkSource(a, 0, 6),
                ChunkSource(b, 0, 7),
                ChunkSource(c, 0, 5),
            ),
        )
        assert bytes(chunk.load()) == b"first-second-third"

    def test_short_file_shrinks_buffer(self, tmp_path):
        a = _write(tmp_path, "a.txt", b"ab")
        b = _write(tmp_path, "b.txt", b"cd")
        # Source a claims 10 bytes but the file only has 2.
        chunk = Chunk(0, (ChunkSource(a, 0, 10), ChunkSource(b, 0, 2)))
        loaded = bytes(chunk.load())
        assert loaded.startswith(b"ab")
        assert len(loaded) < 12

    def test_missing_file_is_skipped(self, tmp_path):
        a = _write(tmp_path, "a.txt", b"data")
        gone = tmp_path / "gone.txt"
        chunk = Chunk(0, (ChunkSource(gone, 0, 4), ChunkSource(a, 0, 4)))
        assert len(bytes(chunk.load())) <= 8  # no crash, partial fill

    def test_matches_legacy_concat_semantics(self, tmp_path):
        files = [
            _write(tmp_path, f"f{i}.txt", bytes([65 + i]) * (10 + i))
            for i in range(4)
        ]
        sources = tuple(ChunkSource(p, 2, 5) for p in files)
        chunk = Chunk(0, sources)
        expected = b"".join(p.read_bytes()[2:7] for p in files)
        assert bytes(chunk.load()) == expected


class TestWarm:
    def test_counts_all_source_bytes(self, tmp_path):
        a = _write(tmp_path, "a.txt", b"x" * 5000)
        b = _write(tmp_path, "b.txt", b"y" * 300)
        chunk = Chunk(0, (ChunkSource(a, 0, 5000), ChunkSource(b, 0, 300)))
        assert chunk.warm(buffer_size=1024) == 5300

    def test_short_file_touches_what_exists(self, tmp_path):
        a = _write(tmp_path, "a.txt", b"x" * 10)
        chunk = Chunk(0, (ChunkSource(a, 0, 100),))
        assert chunk.warm() == 10

    def test_missing_file_touches_nothing(self, tmp_path):
        chunk = Chunk(0, (ChunkSource(tmp_path / "gone.txt", 0, 100),))
        assert chunk.warm() == 0

    def test_does_not_change_load_result(self, tmp_path):
        data = b"payload " * 100
        path = _write(tmp_path, "in.txt", data)
        chunk = Chunk(0, (ChunkSource(path, 0, len(data)),))
        chunk.warm()
        assert chunk.load() == data
