"""Inter-file chunking (one big file, byte-size chunks)."""

from __future__ import annotations

import pytest

from repro.chunking.interfile import plan_interfile_chunks
from repro.errors import ChunkingError
from repro.io.records import TeraRecordCodec


def write_records(path, n, record=b"0123456789 payload\r\n"):
    path.write_bytes(record * n)
    return len(record) * n


class TestPlanInterfile:
    def test_chunks_tile_the_file(self, tmp_path):
        path = tmp_path / "big"
        total = write_records(path, 100)
        plan = plan_interfile_chunks(path, 256, b"\r\n")
        assert plan.total_bytes == total
        plan.validate_contiguous()

    def test_chunks_are_record_aligned(self, tmp_path):
        path = tmp_path / "big"
        record = b"0123456789 payload\r\n"
        write_records(path, 50, record)
        plan = plan_interfile_chunks(path, 64, b"\r\n")
        data = path.read_bytes()
        offset = 0
        for chunk in plan.chunks:
            offset += chunk.length
            if offset < len(data):
                assert data[:offset].endswith(b"\r\n")

    def test_chunk_sizes_near_request(self, tmp_path):
        path = tmp_path / "big"
        record = b"x" * 18 + b"\r\n"
        write_records(path, 100, record)
        plan = plan_interfile_chunks(path, 100, b"\r\n")
        for chunk in plan.chunks[:-1]:
            assert 100 <= chunk.length <= 100 + len(record)

    def test_single_chunk_when_request_exceeds_file(self, tmp_path):
        path = tmp_path / "big"
        total = write_records(path, 3)
        plan = plan_interfile_chunks(path, total * 10, b"\r\n")
        assert plan.n_chunks == 1

    def test_oversized_record_noted(self, tmp_path):
        path = tmp_path / "big"
        path.write_bytes(b"A" * 1000 + b"\r\n" + b"B" * 10 + b"\r\n")
        plan = plan_interfile_chunks(path, 100, b"\r\n")
        assert any("oversized" in note for note in plan.notes)
        assert plan.chunks[0].length >= 1000

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ChunkingError, match="missing"):
            plan_interfile_chunks(tmp_path / "nope", 100, b"\n")

    def test_invalid_chunk_size(self, tmp_path):
        path = tmp_path / "big"
        write_records(path, 2)
        with pytest.raises(ChunkingError):
            plan_interfile_chunks(path, 0, b"\n")

    def test_loaded_chunks_reassemble_file(self, tmp_path):
        path = tmp_path / "big"
        write_records(path, 40)
        plan = plan_interfile_chunks(path, 128, b"\r\n")
        assert b"".join(c.load() for c in plan.chunks) == path.read_bytes()

    def test_records_parse_identically_per_chunk(self, tmp_path):
        codec = TeraRecordCodec()
        path = tmp_path / "big"
        from repro.workloads.teragen import generate_terasort_file

        generate_terasort_file(path, 200, seed=1)
        plan = plan_interfile_chunks(path, 1500, codec.delimiter)
        chunked_pairs = [
            pair for chunk in plan.chunks for pair in codec.iter_pairs(chunk.load())
        ]
        whole_pairs = list(codec.iter_pairs(path.read_bytes()))
        assert chunked_pairs == whole_pairs

    def test_plan_metadata(self, tmp_path):
        path = tmp_path / "big"
        write_records(path, 10)
        plan = plan_interfile_chunks(path, 64, b"\r\n")
        assert plan.strategy == "inter-file"
        assert plan.requested_size == 64
