"""Run-file format: round-trip, truncation and corruption rejection."""

from __future__ import annotations

import pytest

from repro.errors import SpillError
from repro.spill.runfile import HEADER_BYTES, RunReader, RunWriter

GROUPS = [
    (b"apple", (3,)),
    (b"banana", (1, 1)),
    (b"cherry", (7,)),
]


def write_run(path, groups=GROUPS):
    with RunWriter(path) as writer:
        for key, values in groups:
            writer.write_group(key, values)
    return path


class TestRoundTrip:
    def test_groups_survive(self, tmp_path):
        path = write_run(tmp_path / "run.spl")
        reader = RunReader(path)
        assert list(reader) == GROUPS

    def test_header_counts(self, tmp_path):
        path = write_run(tmp_path / "run.spl")
        reader = RunReader(path)
        assert reader.records == len(GROUPS)
        assert len(reader) == len(GROUPS)
        assert reader.payload_bytes == path.stat().st_size - HEADER_BYTES

    def test_empty_run(self, tmp_path):
        path = write_run(tmp_path / "empty.spl", groups=[])
        assert list(RunReader(path)) == []

    def test_rereadable(self, tmp_path):
        path = write_run(tmp_path / "run.spl")
        reader = RunReader(path)
        assert list(reader) == list(reader)  # streaming, not one-shot

    def test_arbitrary_picklable_keys(self, tmp_path):
        groups = [((1, "a"), (None,)), ((2, "b"), ({"x": 1},))]
        path = write_run(tmp_path / "odd.spl", groups=groups)
        assert list(RunReader(path)) == groups


class TestValidation:
    def test_truncated_payload_rejected_on_open(self, tmp_path):
        path = write_run(tmp_path / "run.spl")
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(SpillError, match="truncated"):
            RunReader(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "short.spl"
        path.write_bytes(b"\0" * (HEADER_BYTES - 1))
        with pytest.raises(SpillError, match="too short"):
            RunReader(path)

    def test_crash_mid_spill_leaves_invalid_file(self, tmp_path):
        # An unclosed writer never finalizes the header: the placeholder
        # zeros fail the magic check, exactly the crash-recovery story.
        path = tmp_path / "crashed.spl"
        writer = RunWriter(path)
        writer.write_group(b"k", (1,))
        writer._framer.flush()
        writer._fh.close()  # simulate dying before close()
        writer._fh = None
        with pytest.raises(SpillError, match="not a spill run file"):
            RunReader(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = write_run(tmp_path / "run.spl")
        data = bytearray(path.read_bytes())
        data[:4] = b"JUNK"
        path.write_bytes(bytes(data))
        with pytest.raises(SpillError, match="not a spill run file"):
            RunReader(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = write_run(tmp_path / "run.spl")
        data = bytearray(path.read_bytes())
        data[4:6] = (99).to_bytes(2, "big")
        path.write_bytes(bytes(data))
        with pytest.raises(SpillError, match="version"):
            RunReader(path)

    def test_corrupted_payload_fails_checksum(self, tmp_path):
        path = write_run(tmp_path / "run.spl")
        data = bytearray(path.read_bytes())
        # Flip a bit deep in the payload without changing the length.
        data[-3] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SpillError):
            list(RunReader(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpillError, match="cannot open"):
            RunReader(tmp_path / "nope.spl")

    def test_write_after_close_rejected(self, tmp_path):
        writer = RunWriter(tmp_path / "run.spl")
        writer.close()
        with pytest.raises(SpillError, match="closed"):
            writer.write_group(b"k", (1,))
