"""Spill manager: run inventory, combine-on-spill, stats, cleanup."""

from __future__ import annotations

import pytest

from repro.containers.combiners import SumCombiner
from repro.errors import SpillError
from repro.spill.manager import SpillManager, group_sorted_pairs


class TestGroupSortedPairs:
    def test_adjacent_keys_collapse(self):
        pairs = [(b"a", [1]), (b"a", [2, 3]), (b"b", [4])]
        assert list(group_sorted_pairs(pairs)) == [
            (b"a", (1, 2, 3)), (b"b", (4,)),
        ]

    def test_empty(self):
        assert list(group_sorted_pairs([])) == []

    def test_value_order_preserved(self):
        pairs = [(b"k", [3]), (b"k", [1]), (b"k", [2])]
        assert list(group_sorted_pairs(pairs)) == [(b"k", (3, 1, 2))]


class TestSpillPairs:
    def test_run_is_key_sorted(self, tmp_path):
        mgr = SpillManager(1024, spill_dir=tmp_path)
        info = mgr.spill_pairs([(b"c", [1]), (b"a", [1]), (b"b", [1])], raw=True)
        keys = [k for k, _v in mgr.open_run(info)]
        assert keys == [b"a", b"b", b"c"]

    def test_combine_on_spill_folds_raw_drains(self, tmp_path):
        mgr = SpillManager(1024, spill_dir=tmp_path, combiner=SumCombiner())
        info = mgr.spill_pairs(
            [(b"a", [1]), (b"b", [1]), (b"a", [1]), (b"a", [1])], raw=True
        )
        assert list(mgr.open_run(info)) == [(b"a", (3,)), (b"b", (1,))]
        stats = mgr.stats()
        assert stats.combine_pairs_in == 4
        assert stats.combine_pairs_out == 2
        assert stats.combine_reduction == pytest.approx(2.0)

    def test_aggregate_drains_are_not_refolded(self, tmp_path):
        # Pairs drained from a combining container are per-key aggregates;
        # folding them again through SumCombiner would be fine for sums
        # but wrong in general, so non-raw drains pass through grouped.
        mgr = SpillManager(1024, spill_dir=tmp_path, combiner=SumCombiner())
        info = mgr.spill_pairs([(b"a", [5]), (b"b", [2])], raw=False)
        assert list(mgr.open_run(info)) == [(b"a", (5,)), (b"b", (2,))]

    def test_no_combiner_groups_only(self, tmp_path):
        mgr = SpillManager(1024, spill_dir=tmp_path)
        info = mgr.spill_pairs([(b"a", [1]), (b"a", [2])], raw=True)
        assert list(mgr.open_run(info)) == [(b"a", (1, 2))]

    def test_empty_spill_rejected(self, tmp_path):
        mgr = SpillManager(1024, spill_dir=tmp_path)
        with pytest.raises(SpillError, match="empty"):
            mgr.spill_pairs([], raw=True)

    def test_stats_accumulate_across_runs(self, tmp_path):
        mgr = SpillManager(1024, spill_dir=tmp_path)
        mgr.spill_pairs([(b"a", [1])], raw=True)
        mgr.spill_pairs([(b"b", [1]), (b"c", [1])], raw=True)
        stats = mgr.stats()
        assert stats.runs == 2
        assert stats.spilled_records == 3
        assert stats.spilled_bytes > 0
        assert stats.spill_write_s >= 0


class TestLifecycle:
    def test_fan_in_validated(self, tmp_path):
        with pytest.raises(SpillError):
            SpillManager(1024, spill_dir=tmp_path, merge_fan_in=1)

    def test_cleanup_removes_run_files(self, tmp_path):
        mgr = SpillManager(1024, spill_dir=tmp_path)
        info = mgr.spill_pairs([(b"a", [1])], raw=True)
        assert info.path.exists()
        mgr.cleanup()
        assert not info.path.exists()
        assert not mgr.runs

    def test_cleanup_removes_owned_tempdir(self):
        mgr = SpillManager(1024)
        mgr.spill_pairs([(b"a", [1])], raw=True)
        spill_dir = mgr.spill_dir
        assert spill_dir.exists()
        mgr.cleanup()
        assert not spill_dir.exists()
