"""Memory accountant: charging, releasing, peak tracking."""

from __future__ import annotations

import pytest

from repro.errors import SpillError
from repro.spill.accountant import (
    MemoryAccountant,
    estimate_pair_bytes,
    estimate_value_bytes,
)


class TestEstimates:
    def test_pair_estimate_includes_overhead(self):
        cost = estimate_pair_bytes(b"word", 1)
        assert cost > len(b"word")

    def test_bigger_values_cost_more(self):
        small = estimate_value_bytes(b"x")
        big = estimate_value_bytes(b"x" * 1000)
        assert big > small

    def test_containers_recurse(self):
        flat = estimate_value_bytes([1])
        nested = estimate_value_bytes([1, [2, 3, 4], (5, 6)])
        assert nested > flat


class TestMemoryAccountant:
    def test_charge_and_release(self):
        acct = MemoryAccountant(1000)
        acct.charge(400)
        acct.charge(300)
        assert acct.current == 700
        acct.release(300)
        assert acct.current == 400
        assert acct.peak == 700

    def test_would_exceed(self):
        acct = MemoryAccountant(1000)
        acct.charge(900)
        assert acct.would_exceed(200)
        assert not acct.would_exceed(100)

    def test_charge_past_budget_raises(self):
        acct = MemoryAccountant(100)
        acct.charge(80)
        with pytest.raises(SpillError):
            acct.charge(50)
        # the failed charge must not corrupt the ledger
        assert acct.current == 80

    def test_release_all(self):
        acct = MemoryAccountant(1000)
        acct.charge(600)
        acct.release_all()
        assert acct.current == 0
        assert acct.peak == 600

    def test_invalid_budget(self):
        with pytest.raises(SpillError):
            MemoryAccountant(0)

    def test_peak_never_exceeds_budget(self):
        acct = MemoryAccountant(256)
        for _ in range(100):
            if acct.would_exceed(60):
                acct.release_all()
            acct.charge(60)
        assert acct.peak <= 256
