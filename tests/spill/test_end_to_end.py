"""Out-of-core runs through both real runtimes: byte-identical output.

The subsystem's acceptance bar: with a budget small enough to force
several spill runs, word count and terasort must produce output
byte-identical to the unbudgeted in-memory run, the accounted peak must
stay under the budget, and the spill counters must surface in the
result and the JSON report.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import job_result_dict
from repro.apps.sortapp import make_sort_job
from repro.apps.wordcount import make_wordcount_job
from repro.core.options import RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.core.supmr import SupMRRuntime


def check_spilled(result, baseline, min_runs=3):
    assert result.output == baseline.output  # byte-identical
    stats = result.spill_stats
    assert stats is not None
    assert stats.runs >= min_runs
    assert stats.spilled_bytes > 0
    assert stats.peak_accounted_bytes <= stats.budget_bytes
    assert stats.within_budget
    assert result.counters["spill_runs"] == stats.runs
    assert result.counters["spilled_bytes"] == stats.spilled_bytes
    return stats


class TestPhoenixSpill:
    def test_wordcount_byte_identical(self, text_file):
        baseline = PhoenixRuntime().run(make_wordcount_job([text_file]))
        budgeted = PhoenixRuntime(
            RuntimeOptions.baseline().with_(memory_budget="64KB")
        ).run(make_wordcount_job([text_file]))
        check_spilled(budgeted, baseline)

    def test_sort_byte_identical(self, terasort_file):
        baseline = PhoenixRuntime().run(make_sort_job([terasort_file]))
        budgeted = PhoenixRuntime(
            RuntimeOptions.baseline().with_(memory_budget="96KB")
        ).run(make_sort_job([terasort_file]))
        check_spilled(budgeted, baseline)

    def test_no_budget_reports_no_spill(self, text_file):
        result = PhoenixRuntime().run(make_wordcount_job([text_file]))
        assert result.spill_stats is None
        assert "spill_runs" not in result.counters
        assert "spill" not in job_result_dict(result)


class TestSupMRSpill:
    def test_wordcount_byte_identical(self, text_file):
        options = RuntimeOptions.supmr_interfile("16KB")
        baseline = SupMRRuntime(options).run(make_wordcount_job([text_file]))
        budgeted = SupMRRuntime(
            options.with_(memory_budget="64KB")
        ).run(make_wordcount_job([text_file]))
        check_spilled(budgeted, baseline)

    def test_sort_byte_identical(self, terasort_file):
        options = RuntimeOptions.supmr_interfile("25KB")
        baseline = SupMRRuntime(options).run(make_sort_job([terasort_file]))
        budgeted = SupMRRuntime(
            options.with_(memory_budget="96KB")
        ).run(make_sort_job([terasort_file]))
        check_spilled(budgeted, baseline)

    def test_large_budget_never_spills(self, text_file):
        options = RuntimeOptions.supmr_interfile("16KB",).with_(
            memory_budget="256MB"
        )
        baseline = SupMRRuntime(
            RuntimeOptions.supmr_interfile("16KB")
        ).run(make_wordcount_job([text_file]))
        budgeted = SupMRRuntime(options).run(make_wordcount_job([text_file]))
        assert budgeted.output == baseline.output
        assert budgeted.spill_stats.runs == 0
        assert budgeted.spill_stats.peak_accounted_bytes > 0


class TestReporting:
    def test_json_report_carries_spill_section(self, text_file):
        result = PhoenixRuntime(
            RuntimeOptions.baseline().with_(memory_budget="64KB")
        ).run(make_wordcount_job([text_file]))
        data = job_result_dict(result)
        spill = data["spill"]
        assert spill["runs"] == result.spill_stats.runs
        assert spill["within_budget"] is True
        assert spill["budget_bytes"] == 64 * 1024
        assert data["timings"]["spill_s"] >= 0
        assert data["timings"]["spill_s"] == pytest.approx(
            result.timings.spill_s
        )

    def test_external_merge_bounded_fan_in(self, text_file):
        result = PhoenixRuntime(
            RuntimeOptions.baseline().with_(
                memory_budget="64KB", spill_merge_fan_in=4
            )
        ).run(make_wordcount_job([text_file]))
        stats = result.spill_stats
        assert stats.merge_fan_in == 4
        assert stats.runs > 4
        assert stats.merge_passes > 1
        assert stats.merge_rewritten_bytes > 0
