"""Spillable container: budget enforcement, equivalence, transparency."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.containers.array_container import ArrayContainer
from repro.containers.combiners import SumCombiner
from repro.containers.hash_container import HashContainer
from repro.errors import SpillError
from repro.spill.container import SpillableContainer
from repro.spill.manager import SpillManager

WORDS = [f"word{i:03d}".encode() for i in range(40)]


def fill(container, words, task_id=0):
    container.begin_round()
    emitter = container.emitter(task_id)
    for word in words:
        emitter.emit(word, 1)
    container.seal()


def totals(container, n_parts=4):
    out: dict[bytes, int] = {}
    for part in container.partitions(n_parts):
        for key, values in part:
            out[key] = out.get(key, 0) + sum(values)
    return out


class TestZeroSpillTransparency:
    def test_partitions_bit_identical_under_large_budget(self):
        mgr = SpillManager(64 * 1024 * 1024)
        try:
            spillable = SpillableContainer(
                lambda: HashContainer(SumCombiner()), mgr
            )
            plain = HashContainer(SumCombiner())
            fill(spillable, WORDS * 5)
            fill(plain, WORDS * 5)
            assert spillable.partitions(4) == plain.partitions(4)
            assert mgr.stats().runs == 0
        finally:
            mgr.cleanup()

    def test_adopts_inner_combiner(self):
        mgr = SpillManager(1 << 20)
        try:
            SpillableContainer(lambda: HashContainer(SumCombiner()), mgr)
            assert isinstance(mgr.combiner, SumCombiner)
        finally:
            mgr.cleanup()


class TestSpilledEquivalence:
    def test_tiny_budget_forces_runs_and_preserves_totals(self):
        words = [WORDS[i % len(WORDS)] for i in range(600)]
        budget = 2048
        mgr = SpillManager(budget)
        try:
            spillable = SpillableContainer(
                lambda: HashContainer(SumCombiner()), mgr
            )
            plain = HashContainer(SumCombiner())
            fill(spillable, words)
            fill(plain, words)
            assert totals(spillable) == totals(plain)
            stats = mgr.stats()
            assert stats.runs >= 3
            assert stats.peak_accounted_bytes <= budget
            assert stats.within_budget
        finally:
            mgr.cleanup()

    def test_array_container_combines_on_spill(self):
        words = [WORDS[i % 4] for i in range(400)]  # heavy duplication
        mgr = SpillManager(2048, combiner=SumCombiner())
        try:
            spillable = SpillableContainer(ArrayContainer, mgr)
            plain = ArrayContainer()
            fill(spillable, words)
            fill(plain, words)
            assert totals(spillable) == totals(plain)
            stats = mgr.stats()
            assert stats.runs >= 3
            # 4 distinct keys: the combiner must shrink every run to at
            # most one record per key.
            assert stats.combine_pairs_out < stats.combine_pairs_in
            assert stats.combine_pairs_out <= stats.runs * 4
            assert stats.combine_reduction > 2
        finally:
            mgr.cleanup()

    def test_stats_count_every_emit(self):
        mgr = SpillManager(2048)
        try:
            spillable = SpillableContainer(
                lambda: HashContainer(SumCombiner()), mgr
            )
            fill(spillable, WORDS * 20)
            spillable.partitions(2)  # distinct keys are exact post-merge
            stats = spillable.stats()
            assert stats.emits == len(WORDS) * 20
            assert stats.distinct_keys == len(WORDS)
        finally:
            mgr.cleanup()

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from(WORDS), max_size=300))
    def test_property_totals_match_in_memory(self, words):
        budget = 2048
        mgr = SpillManager(budget)
        try:
            spillable = SpillableContainer(
                lambda: HashContainer(SumCombiner()), mgr
            )
            plain = HashContainer(SumCombiner())
            fill(spillable, words)
            fill(plain, words)
            assert totals(spillable) == totals(plain)
            assert mgr.stats().peak_accounted_bytes <= budget
        finally:
            mgr.cleanup()


class TestBudgetEnforcement:
    def test_pair_larger_than_budget_is_a_config_error(self):
        mgr = SpillManager(16)
        try:
            spillable = SpillableContainer(
                lambda: HashContainer(SumCombiner()), mgr
            )
            spillable.begin_round()
            with pytest.raises(SpillError, match="budget too small"):
                spillable.emitter(0).emit(b"some-word", 1)
        finally:
            mgr.cleanup()

    def test_accounted_memory_released_after_partitions(self):
        mgr = SpillManager(2048)
        try:
            spillable = SpillableContainer(
                lambda: HashContainer(SumCombiner()), mgr
            )
            fill(spillable, WORDS * 10)
            spillable.partitions(2)
            assert mgr.accountant.current == 0
        finally:
            mgr.cleanup()
