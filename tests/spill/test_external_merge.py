"""External p-way merge: bounded fan-in, multi-pass consolidation."""

from __future__ import annotations

from repro.spill.external_merge import ExternalPwayMerge, merge_spilled
from repro.spill.manager import SpillManager


def spill_many(mgr: SpillManager, n_runs: int, keys_per_run: int = 4):
    for r in range(n_runs):
        pairs = [
            (f"k{r:02d}-{i:02d}".encode(), [r * 100 + i])
            for i in range(keys_per_run)
        ]
        mgr.spill_pairs(pairs, raw=True)


class TestExternalPwayMerge:
    def test_single_pass_when_under_fan_in(self, tmp_path):
        mgr = SpillManager(1024, spill_dir=tmp_path, merge_fan_in=8)
        spill_many(mgr, 3)
        merger = ExternalPwayMerge(mgr)
        groups = list(merger.merge([mgr.open_run(i) for i in mgr.runs]))
        assert merger.passes == 1
        assert [k for k, _ in groups] == sorted(k for k, _ in groups)
        assert len(groups) == 12

    def test_consolidation_passes_when_over_fan_in(self, tmp_path):
        mgr = SpillManager(1024, spill_dir=tmp_path, merge_fan_in=2)
        spill_many(mgr, 5)
        sources = [mgr.open_run(i) for i in mgr.runs]
        merger = ExternalPwayMerge(mgr)
        groups = list(merger.merge(sources))
        assert merger.passes > 1
        assert len(groups) == 20
        assert [k for k, _ in groups] == sorted(k for k, _ in groups)
        stats = mgr.stats()
        assert stats.merge_rewritten_bytes > 0
        assert stats.merge_passes == merger.passes

    def test_duplicate_keys_concatenate_oldest_first(self, tmp_path):
        mgr = SpillManager(1024, spill_dir=tmp_path, merge_fan_in=2)
        mgr.spill_pairs([(b"k", [1])], raw=True)
        mgr.spill_pairs([(b"k", [2])], raw=True)
        mgr.spill_pairs([(b"k", [3])], raw=True)
        merged = list(merge_spilled(mgr, iter([(b"k", (4,))])))
        assert merged == [(b"k", (1, 2, 3, 4))]

    def test_empty_sources(self, tmp_path):
        mgr = SpillManager(1024, spill_dir=tmp_path)
        merger = ExternalPwayMerge(mgr)
        assert list(merger.merge([])) == []
        assert merger.passes == 0

    def test_merge_is_lazy(self, tmp_path):
        mgr = SpillManager(1024, spill_dir=tmp_path, merge_fan_in=8)
        spill_many(mgr, 2)
        stream = merge_spilled(mgr, iter(()))
        first = next(stream)
        assert first[0] == b"k00-00"
