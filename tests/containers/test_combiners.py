"""Combiner strategies."""

from __future__ import annotations

from repro.containers.combiners import (
    CountCombiner,
    FirstCombiner,
    ListCombiner,
    MaxCombiner,
    MinCombiner,
    SumCombiner,
)


def fold(combiner, values):
    state = combiner.initial(values[0])
    for v in values[1:]:
        state = combiner.update(state, v)
    return list(combiner.finish(state))


class TestCombiners:
    def test_sum(self):
        assert fold(SumCombiner(), [1, 2, 3]) == [6]

    def test_sum_works_on_floats(self):
        assert fold(SumCombiner(), [0.5, 0.25]) == [0.75]

    def test_count_ignores_values(self):
        assert fold(CountCombiner(), ["a", "b", "c"]) == [3]

    def test_min(self):
        assert fold(MinCombiner(), [5, 2, 9]) == [2]

    def test_max(self):
        assert fold(MaxCombiner(), [5, 2, 9]) == [9]

    def test_first(self):
        assert fold(FirstCombiner(), ["x", "y", "z"]) == ["x"]

    def test_list_keeps_everything_in_order(self):
        assert fold(ListCombiner(), [3, 1, 2]) == [3, 1, 2]

    def test_single_value_paths(self):
        assert fold(SumCombiner(), [7]) == [7]
        assert fold(ListCombiner(), [7]) == [7]
        assert fold(CountCombiner(), [7]) == [1]
