"""Fixed-width array container (Phoenix++'s third container family)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.containers.fixed_array import FixedArrayContainer
from repro.errors import ContainerError


class TestFixedArrayContainer:
    def test_sums_per_key(self):
        c = FixedArrayContainer(8)
        c.begin_round()
        e = c.emitter(0)
        e.emit(3, 2)
        e.emit(3, 5)
        e.emit(0, 1)
        c.seal()
        merged = dict((k, v[0]) for part in c.partitions(2) for k, v in part)
        assert merged == {0: 1, 3: 7}

    def test_per_task_cells_combined(self):
        c = FixedArrayContainer(4)
        c.begin_round()
        c.emitter(0).emit(1, 10)
        c.emitter(1).emit(1, 5)
        c.seal()
        assert c.combined()[1] == 15

    def test_key_out_of_range_raises(self):
        c = FixedArrayContainer(4)
        c.begin_round()
        e = c.emitter(0)
        with pytest.raises(ContainerError, match="outside"):
            e.emit(4, 1)
        with pytest.raises(ContainerError, match="outside"):
            e.emit(-1, 1)

    def test_partitions_are_contiguous_key_ranges(self):
        c = FixedArrayContainer(8)
        c.begin_round()
        e = c.emitter(0)
        for k in range(8):
            e.emit(k, 1)
        c.seal()
        parts = c.partitions(2)
        assert [k for k, _v in parts[0]] == [0, 1, 2, 3]
        assert [k for k, _v in parts[1]] == [4, 5, 6, 7]

    def test_zero_cells_skipped(self):
        c = FixedArrayContainer(10)
        c.begin_round()
        c.emitter(0).emit(5, 1)
        c.seal()
        parts = c.partitions(1)
        assert parts == [[(5, [1])]]

    def test_persistence_across_rounds(self):
        c = FixedArrayContainer(4)
        c.begin_round()
        c.emitter(0).emit(2, 1)
        c.begin_round()
        c.emitter(1).emit(2, 1)
        c.seal()
        assert c.combined()[2] == 2
        assert c.rounds == 2

    def test_combined_before_seal_raises(self):
        c = FixedArrayContainer(4)
        c.begin_round()
        with pytest.raises(ContainerError):
            c.combined()

    def test_float_dtype(self):
        c = FixedArrayContainer(4, dtype="float64")
        c.begin_round()
        c.emitter(0).emit(0, 0.5)
        c.emitter(0).emit(0, 0.25)
        c.seal()
        assert c.combined()[0] == pytest.approx(0.75)

    def test_invalid_construction(self):
        with pytest.raises(ContainerError):
            FixedArrayContainer(0)
        with pytest.raises(ContainerError):
            FixedArrayContainer(4, dtype="U8")

    def test_stats(self):
        c = FixedArrayContainer(8)
        c.begin_round()
        e = c.emitter(0)
        e.emit(1, 1)
        e.emit(1, 1)
        e.emit(2, 1)
        stats = c.stats()
        assert stats.emits == 3
        assert stats.distinct_keys == 2
        assert len(c) == 2

    def test_empty_container_partitions(self):
        c = FixedArrayContainer(4)
        c.begin_round()
        c.seal()
        assert c.partitions(2) == [[], []]
        assert (c.combined() == np.zeros(4)).all()

    def test_histogram_job_integration(self, tmp_path):
        from repro.apps.histogram import make_histogram_job, reference_histogram
        from repro.core.phoenix import PhoenixRuntime

        f = tmp_path / "nums.txt"
        f.write_bytes(b"".join(b"%d\n" % (i % 10) for i in range(200)))
        fixed = PhoenixRuntime().run(
            make_histogram_job([f], 0.0, 10.0, 10, container="fixed")
        )
        assert dict(fixed.output) == reference_histogram([f], 0.0, 10.0, 10)
