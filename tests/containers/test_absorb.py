"""drain()/absorb(): the container transport protocol the process backend uses.

Core invariant: for any sequence of emits split across worker-local
containers, ``drain`` in the workers + ``absorb`` in task order in the
parent must leave the parent container indistinguishable (partitions and
stats) from having run every emit directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.containers.array_container import ArrayContainer
from repro.containers.base import Container, ContainerDelta, ContainerStats
from repro.containers.combiners import (
    Combiner,
    CountCombiner,
    FirstCombiner,
    ListCombiner,
    MaxCombiner,
    MinCombiner,
    SumCombiner,
)
from repro.containers.fixed_array import FixedArrayContainer
from repro.containers.hash_container import HashContainer
from repro.errors import ContainerError
from repro.spill.container import SpillableContainer
from repro.spill.manager import SpillManager


def _direct(factory, emits):
    container = factory()
    container.begin_round()
    for task_id, key, value in emits:
        container.emitter(task_id).emit(key, value)
    container.seal()
    return container


def _via_transport(factory, emits, tasks):
    """Emit through per-task worker containers, then drain+absorb."""
    parent = factory()
    parent.begin_round()
    for task_id in tasks:
        worker = factory()
        worker.begin_round()
        for tid, key, value in emits:
            if tid == task_id:
                worker.emitter(tid).emit(key, value)
        worker.seal()
        parent.absorb(worker.drain())
    parent.seal()
    return parent


_EMITS = [
    (0, b"a", 1), (0, b"b", 2), (1, b"a", 3), (1, b"c", 4), (2, b"b", 5),
]


class TestCombinerMerge:
    def test_merges_match_folds(self):
        cases = [
            (SumCombiner(), [3, 1, 4, 1, 5]),
            (CountCombiner(), [7, 7, 7]),
            (MinCombiner(), [4, 2, 9]),
            (MaxCombiner(), [4, 2, 9]),
            (FirstCombiner(), [5, 6, 7]),
            (ListCombiner(), [1, 2, 3, 4]),
        ]
        for combiner, values in cases:
            whole = combiner.initial(values[0])
            for v in values[1:]:
                whole = combiner.update(whole, v)
            left = combiner.initial(values[0])
            for v in values[1:2]:
                left = combiner.update(left, v)
            right = combiner.initial(values[2])
            for v in values[3:]:
                right = combiner.update(right, v)
            assert combiner.merge(left, right) == whole, type(combiner).__name__

    def test_default_merge_refuses(self):
        class Opaque(Combiner):
            def initial(self, value):
                """First value."""
                return value

            def update(self, state, value):
                """Keep state."""
                return state

        with pytest.raises(NotImplementedError, match="cannot merge"):
            Opaque().merge(1, 2)


class TestHashTransport:
    def test_round_trip_matches_direct(self):
        factory = lambda: HashContainer(SumCombiner(), shards=4)  # noqa: E731
        direct = _direct(factory, _EMITS)
        via = _via_transport(factory, _EMITS, tasks=[0, 1, 2])
        assert sorted(via.partitions(3), key=str) == sorted(
            direct.partitions(3), key=str
        )
        assert via.stats() == direct.stats()

    def test_emits_counter_preserves_precombine_count(self):
        factory = lambda: HashContainer(SumCombiner())  # noqa: E731
        via = _via_transport(factory, _EMITS, tasks=[0, 1, 2])
        assert via.stats().emits == len(_EMITS)

    def test_first_combiner_respects_task_order(self):
        factory = lambda: HashContainer(FirstCombiner())  # noqa: E731
        emits = [(0, b"k", "task0"), (1, b"k", "task1")]
        via = _via_transport(factory, emits, tasks=[0, 1])
        [[(_, values)]] = [p for p in via.partitions(1) if p]
        assert values == ["task0"]

    def test_kind_mismatch_raises(self):
        container = HashContainer(SumCombiner())
        container.begin_round()
        with pytest.raises(ContainerError, match="absorb"):
            container.absorb(ContainerDelta(kind="array", emits=0, items=[]))


class TestArrayTransport:
    def test_segment_structure_matches_direct(self):
        direct = _direct(ArrayContainer, _EMITS)
        via = _via_transport(ArrayContainer, _EMITS, tasks=[0, 1, 2])
        assert via.partitions(3) == direct.partitions(3)
        assert via.stats() == direct.stats()

    def test_empty_worker_segments_are_dropped(self):
        worker = ArrayContainer()
        worker.begin_round()
        worker.emitter(0)  # registered but never emits
        worker.emitter(1).emit(b"k", 1)
        worker.seal()
        delta = worker.drain()
        assert delta.items == [[(b"k", 1)]]


class TestFixedTransport:
    def test_round_trip_matches_direct(self):
        factory = lambda: FixedArrayContainer(8)  # noqa: E731
        emits = [(0, 1, 2), (0, 3, 1), (1, 1, 1), (1, 7, 4)]
        direct = _direct(factory, emits)
        via = _via_transport(factory, emits, tasks=[0, 1])
        assert via.partitions(2) == direct.partitions(2)
        assert np.array_equal(via.combined(), direct.combined())
        assert via.stats() == direct.stats()

    def test_cell_count_mismatch_raises(self):
        container = FixedArrayContainer(4)
        container.begin_round()
        bad = ContainerDelta(kind="fixed", emits=1, items=np.zeros(9))
        with pytest.raises(ContainerError, match="cells"):
            container.absorb(bad)


class TestSpillableAbsorb:
    def _spillable(self, inner_factory, budget):
        manager = SpillManager(budget_bytes=budget)
        return SpillableContainer(inner_factory, manager), manager

    def test_absorb_without_spill_matches_direct(self):
        factory = lambda: HashContainer(SumCombiner())  # noqa: E731
        container, manager = self._spillable(factory, budget=1 << 20)
        container.begin_round()
        worker = factory()
        worker.begin_round()
        for _tid, key, value in _EMITS:
            worker.emitter(0).emit(key, value)
        worker.seal()
        container.absorb(worker.drain())
        container.seal()
        parts = container.partitions(1)
        flat = sorted(kv for part in parts for kv in part)
        assert flat == [(b"a", [4]), (b"b", [7]), (b"c", [4])]
        assert manager.stats().runs == 0
        manager.cleanup()

    def test_absorb_past_budget_spills(self):
        factory = lambda: HashContainer(SumCombiner())  # noqa: E731
        container, manager = self._spillable(factory, budget=600)
        container.begin_round()
        worker = factory()
        worker.begin_round()
        for i in range(100):
            worker.emitter(0).emit(b"key-%03d" % i, i)
        worker.seal()
        container.absorb(worker.drain())
        container.seal()
        assert manager.stats().runs > 0
        parts = container.partitions(2)
        merged = dict(kv for part in parts for kv in part)
        assert len(merged) == 100
        assert merged[b"key-042"] == [42]
        manager.cleanup()

    def test_absorb_array_delta_recreates_segments(self):
        container, manager = self._spillable(ArrayContainer, budget=1 << 20)
        container.begin_round()
        worker = ArrayContainer()
        worker.begin_round()
        worker.emitter(0).emit(b"x", 1)
        worker.emitter(1).emit(b"y", 2)
        worker.seal()
        container.absorb(worker.drain())
        container.seal()
        # Two worker segments -> two inner segments -> round-robin parts.
        assert container.partitions(2) == [[(b"x", [1])], [(b"y", [2])]]
        manager.cleanup()

    def test_unknown_kind_raises(self):
        container, manager = self._spillable(ArrayContainer, budget=1 << 20)
        container.begin_round()
        with pytest.raises(ContainerError, match="cannot absorb"):
            container.absorb(ContainerDelta(kind="mystery", emits=0, items=()))
        manager.cleanup()


class TestBaseDefaults:
    def test_unported_container_refuses_transport(self):
        class Plain(Container):
            def emitter(self, task_id):
                """Unused."""
                raise NotImplementedError

            def partitions(self, n):
                """Unused."""
                return []

            def stats(self):
                """Unused."""
                return ContainerStats()

        plain = Plain()
        with pytest.raises(NotImplementedError, match="drain"):
            plain.drain()
        with pytest.raises(NotImplementedError, match="absorb"):
            plain.absorb(ContainerDelta(kind="hash", emits=0, items=[]))
