"""Unlocked array container."""

from __future__ import annotations

import pytest

from repro.containers.array_container import ArrayContainer
from repro.errors import ContainerError


class TestArrayContainer:
    def test_emits_preserved_per_segment(self):
        c = ArrayContainer()
        c.begin_round()
        e0 = c.emitter(0)
        e1 = c.emitter(1)
        e0.emit(b"k1", b"v1")
        e1.emit(b"k2", b"v2")
        e0.emit(b"k3", b"v3")
        c.seal()
        pairs = [p for part in c.partitions(1) for p in part]
        assert (b"k1", [b"v1"]) in pairs
        assert len(pairs) == 3

    def test_no_combining_ever(self):
        c = ArrayContainer()
        c.begin_round()
        e = c.emitter(0)
        e.emit(b"dup", 1)
        e.emit(b"dup", 2)
        c.seal()
        pairs = [p for part in c.partitions(1) for p in part]
        assert sorted(v[0] for _k, v in pairs) == [1, 2]

    def test_partitions_group_segments(self):
        c = ArrayContainer()
        c.begin_round()
        for task in range(4):
            c.emitter(task).emit(task, task)
        c.seal()
        parts = c.partitions(2)
        assert len(parts) == 2
        assert sum(len(p) for p in parts) == 4

    def test_persistence_across_rounds(self):
        c = ArrayContainer()
        c.begin_round()
        c.emitter(0).emit(b"r1", 1)
        c.begin_round()
        c.emitter(1).emit(b"r2", 2)
        c.seal()
        assert len(c) == 2
        assert c.rounds == 2

    def test_emit_after_seal_raises(self):
        c = ArrayContainer()
        c.begin_round()
        e = c.emitter(0)
        c.seal()
        with pytest.raises(ContainerError):
            e.emit(b"x", 1)

    def test_partitions_before_seal_raises(self):
        c = ArrayContainer()
        c.begin_round()
        with pytest.raises(ContainerError):
            c.partitions(1)

    def test_zero_partitions_raises(self):
        c = ArrayContainer()
        c.begin_round()
        c.seal()
        with pytest.raises(ContainerError):
            c.partitions(0)

    def test_stats_count_emits_as_distinct(self):
        c = ArrayContainer()
        c.begin_round()
        e = c.emitter(0)
        for i in range(5):
            e.emit(i, i)
        stats = c.stats()
        assert stats.emits == 5
        assert stats.distinct_keys == 5
