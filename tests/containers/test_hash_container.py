"""Hash container with on-insert combining."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.containers.combiners import ListCombiner, SumCombiner
from repro.containers.hash_container import HashContainer
from repro.errors import ContainerError


def fill(container, pairs, task_id=0):
    emitter = container.emitter(task_id)
    for k, v in pairs:
        emitter.emit(k, v)


class TestLifecycle:
    def test_emit_before_round_raises(self):
        c = HashContainer(SumCombiner())
        with pytest.raises(ContainerError):
            c.emitter(0).emit(b"k", 1)

    def test_emit_after_seal_raises(self):
        c = HashContainer(SumCombiner())
        c.begin_round()
        c.seal()
        with pytest.raises(ContainerError):
            c.emitter(0).emit(b"k", 1)

    def test_begin_round_after_seal_raises(self):
        c = HashContainer(SumCombiner())
        c.begin_round()
        c.seal()
        with pytest.raises(ContainerError):
            c.begin_round()

    def test_partitions_before_seal_raises(self):
        c = HashContainer(SumCombiner())
        c.begin_round()
        with pytest.raises(ContainerError):
            c.partitions(2)

    def test_persistence_across_rounds(self):
        # SupMR's core container requirement (section III.C)
        c = HashContainer(SumCombiner())
        c.begin_round()
        fill(c, [(b"w", 1)])
        c.begin_round()
        fill(c, [(b"w", 2)])
        c.seal()
        all_pairs = [p for part in c.partitions(1) for p in part]
        assert all_pairs == [(b"w", [3])]
        assert c.rounds == 2

    def test_invalid_shards(self):
        with pytest.raises(ContainerError):
            HashContainer(shards=0)


class TestCombiningAndPartitions:
    def test_combines_on_insert(self):
        c = HashContainer(SumCombiner())
        c.begin_round()
        fill(c, [(b"a", 1), (b"a", 2), (b"b", 5)])
        c.seal()
        merged = dict(
            (k, v) for part in c.partitions(4) for k, v in part
        )
        assert merged == {b"a": [3], b"b": [5]}

    def test_list_combiner_keeps_all_values(self):
        c = HashContainer(ListCombiner())
        c.begin_round()
        fill(c, [(b"k", 1), (b"k", 2)])
        c.seal()
        (part,) = [p for p in c.partitions(1) if p]
        assert part == [(b"k", [1, 2])]

    def test_partition_count(self):
        c = HashContainer(SumCombiner())
        c.begin_round()
        fill(c, [(bytes([i]), 1) for i in range(50)])
        c.seal()
        parts = c.partitions(4)
        assert len(parts) == 4
        assert sum(len(p) for p in parts) == 50

    def test_partitioning_is_stable_across_instances(self):
        # stable_hash: the same keys land in the same partitions every time
        def build():
            c = HashContainer(SumCombiner())
            c.begin_round()
            fill(c, [(f"key{i}".encode(), 1) for i in range(30)])
            c.seal()
            return [sorted(k for k, _v in p) for p in c.partitions(3)]

        assert build() == build()

    def test_zero_partitions_raises(self):
        c = HashContainer(SumCombiner())
        c.begin_round()
        c.seal()
        with pytest.raises(ContainerError):
            c.partitions(0)

    def test_stats(self):
        c = HashContainer(SumCombiner())
        c.begin_round()
        fill(c, [(b"a", 1), (b"a", 1), (b"b", 1)])
        stats = c.stats()
        assert stats.emits == 3
        assert stats.distinct_keys == 2
        assert stats.rounds == 1
        assert len(c) == 2

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=20),
                              st.integers(min_value=-5, max_value=5))))
    def test_property_sums_match_naive(self, pairs):
        c = HashContainer(SumCombiner(), shards=4)
        c.begin_round()
        fill(c, pairs)
        c.seal()
        got = {k: v[0] for part in c.partitions(3) for k, v in part}
        expected: dict[int, int] = {}
        for k, v in pairs:
            expected[k] = expected.get(k, 0) + v
        assert got == expected
