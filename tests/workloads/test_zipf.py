"""Zipf sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.zipf import ZipfSampler


class TestZipfSampler:
    def test_samples_in_range(self):
        sampler = ZipfSampler(100, seed=1)
        ranks = sampler.sample(1000)
        assert ranks.min() >= 0
        assert ranks.max() < 100

    def test_rank_zero_most_frequent(self):
        sampler = ZipfSampler(50, exponent=1.2, seed=2)
        ranks = sampler.sample(20_000)
        counts = np.bincount(ranks, minlength=50)
        assert counts[0] == counts.max()

    def test_deterministic_for_seed(self):
        a = ZipfSampler(20, seed=3).sample(100)
        b = ZipfSampler(20, seed=3).sample(100)
        assert (a == b).all()

    def test_expected_top_fraction_monotone(self):
        sampler = ZipfSampler(100)
        fracs = [sampler.expected_top_fraction(k) for k in (1, 10, 100)]
        assert fracs == sorted(fracs)
        assert fracs[-1] == pytest.approx(1.0)

    def test_invalid_args(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0)
        with pytest.raises(WorkloadError):
            ZipfSampler(10, exponent=0)
        with pytest.raises(WorkloadError):
            ZipfSampler(10).sample(-1)
        with pytest.raises(WorkloadError):
            ZipfSampler(10).expected_top_fraction(0)

    def test_zero_samples(self):
        assert len(ZipfSampler(10).sample(0)) == 0
