"""Text corpus generation."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workloads.textgen import (
    generate_small_files,
    generate_text_file,
    make_vocabulary,
)


class TestVocabulary:
    def test_size_and_uniqueness(self):
        vocab = make_vocabulary(200)
        assert len(vocab) == 200
        assert len(set(vocab)) == 200

    def test_deterministic(self):
        assert make_vocabulary(50, seed=1) == make_vocabulary(50, seed=1)

    def test_invalid_size(self):
        with pytest.raises(WorkloadError):
            make_vocabulary(0)

    def test_words_are_lowercase_ascii(self):
        for word in make_vocabulary(50):
            assert word.isalpha() and word.islower()


class TestBigFile:
    def test_size_approximate_and_newline_terminated(self, tmp_path):
        path = tmp_path / "c.txt"
        written = generate_text_file(path, 10_000, vocab_size=100)
        assert written == 10_000
        data = path.read_bytes()
        assert data.endswith(b"\n")

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        generate_text_file(a, 5_000, seed=5)
        generate_text_file(b, 5_000, seed=5)
        assert a.read_bytes() == b.read_bytes()

    def test_words_from_vocab(self, tmp_path):
        path = tmp_path / "c.txt"
        generate_text_file(path, 2_000, vocab_size=50, seed=6)
        vocab = set(make_vocabulary(50, seed=7))  # seed+1 inside generator
        # drop the final line: size truncation may cut its last word short
        lines = path.read_bytes().splitlines()[:-1]
        words = set(b" ".join(lines).split())
        assert words and words <= vocab


class TestSmallFiles:
    def test_count_and_order(self, tmp_path):
        paths = generate_small_files(tmp_path / "many", 7, 1_000)
        assert len(paths) == 7
        assert paths == sorted(paths)

    def test_each_file_ends_with_newline(self, tmp_path):
        for path in generate_small_files(tmp_path / "many", 3, 500):
            assert path.read_bytes().endswith(b"\n")

    def test_invalid_count(self, tmp_path):
        with pytest.raises(WorkloadError):
            generate_small_files(tmp_path, 0, 100)

    def test_files_differ(self, tmp_path):
        paths = generate_small_files(tmp_path / "many", 2, 500)
        assert paths[0].read_bytes() != paths[1].read_bytes()
