"""Terasort data generation."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.io.records import TeraRecordCodec
from repro.workloads.teragen import generate_terasort_file, teragen_records


class TestTeragenRecords:
    def test_record_count(self):
        assert len(list(teragen_records(100))) == 100

    def test_record_length_is_exact(self):
        codec = TeraRecordCodec()
        for record in teragen_records(20):
            assert len(record) == codec.record_len

    def test_records_terminate_with_crlf(self):
        for record in teragen_records(5):
            assert record.endswith(b"\r\n")

    def test_deterministic_for_seed(self):
        a = list(teragen_records(50, seed=9))
        b = list(teragen_records(50, seed=9))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(teragen_records(50, seed=1))
        b = list(teragen_records(50, seed=2))
        assert a != b

    def test_negative_count_raises(self):
        with pytest.raises(WorkloadError):
            list(teragen_records(-1))

    def test_zero_records(self):
        assert list(teragen_records(0)) == []

    def test_keys_parse_back(self):
        codec = TeraRecordCodec()
        for record in teragen_records(10):
            key, payload = codec.split_record(record[:-2])
            assert len(key) == codec.key_len
            assert payload


class TestGenerateFile:
    def test_file_size_matches(self, tmp_path):
        path = tmp_path / "t.dat"
        written = generate_terasort_file(path, 500, seed=3)
        assert path.stat().st_size == written == 500 * 100

    def test_file_parses_fully(self, tmp_path):
        path = tmp_path / "t.dat"
        generate_terasort_file(path, 123, seed=4)
        codec = TeraRecordCodec()
        pairs = list(codec.iter_pairs(path.read_bytes()))
        assert len(pairs) == 123
