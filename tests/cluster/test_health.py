"""The per-agent health state machine, driven by a fake clock."""

from __future__ import annotations

import pytest

from repro.cluster.health import (
    STATE_HEALTHY,
    STATE_QUARANTINED,
    STATE_SUSPECT,
    AgentHealth,
    HealthPolicy,
)
from repro.errors import ConfigError

POLICY = HealthPolicy(
    probe_interval_s=1.0, suspect_retry_s=0.25,
    quarantine_after=3, recover_after=2, flap_quarantine=3,
    backoff_base_s=0.5, backoff_cap_s=15.0,
)


def fresh(addr: str = "a:1") -> AgentHealth:
    return AgentHealth(addr=addr, policy=POLICY)


class TestPolicyValidation:
    @pytest.mark.parametrize("kw", [
        {"probe_interval_s": 0.0},
        {"suspect_retry_s": -1.0},
        {"quarantine_after": 0},
        {"recover_after": 0},
        {"flap_quarantine": 0},
        {"backoff_base_s": 0.0},
        {"backoff_base_s": 20.0, "backoff_cap_s": 15.0},
    ])
    def test_bad_knobs_are_typed_errors(self, kw):
        with pytest.raises(ConfigError):
            HealthPolicy(**kw)


class TestStateMachine:
    def test_new_agents_start_suspect_and_unplaceable(self):
        h = fresh()
        assert h.state == STATE_SUSPECT
        assert not h.placeable
        assert h.due(0.0)

    def test_one_success_proves_a_suspect(self):
        h = fresh()
        assert h.record_success(0.0, 0.001) == STATE_HEALTHY
        assert h.placeable
        # and the next probe moves to the healthy cadence
        assert not h.due(0.5)
        assert h.due(1.0)

    def test_healthy_failure_falls_to_suspect_with_quick_retry(self):
        h = fresh()
        h.record_success(0.0, 0.001)
        assert h.record_failure(1.0, "boom") == STATE_SUSPECT
        assert h.flaps == 1
        assert not h.placeable
        assert h.due(1.0 + POLICY.suspect_retry_s)

    def test_consecutive_suspect_failures_quarantine(self):
        h = fresh()
        for _ in range(POLICY.quarantine_after - 1):
            assert h.record_failure(0.0, "down") == STATE_SUSPECT
        assert h.record_failure(0.0, "down") == STATE_QUARANTINED

    def test_quarantine_recovery_demands_sustained_successes(self):
        h = fresh()
        for _ in range(POLICY.quarantine_after):
            h.record_failure(0.0, "down")
        assert h.state == STATE_QUARANTINED
        # one lucky pong is not enough
        assert h.record_success(10.0, 0.001) == STATE_QUARANTINED
        assert not h.placeable
        assert h.record_success(10.5, 0.001) == STATE_HEALTHY
        assert h.placeable

    def test_full_recovery_clears_the_flap_tally(self):
        h = fresh()
        h.record_success(0.0, 0.001)
        h.record_failure(1.0, "flap")           # healthy -> suspect
        assert h.flaps == 1
        for _ in range(POLICY.quarantine_after):
            h.record_failure(1.5, "down")
        assert h.state == STATE_QUARANTINED
        for _ in range(POLICY.recover_after):
            h.record_success(30.0, 0.001)
        assert h.state == STATE_HEALTHY
        assert h.flaps == 0

    def test_flapping_goes_straight_to_quarantine(self):
        h = fresh()
        now = 0.0
        for flap in range(POLICY.flap_quarantine):
            h.record_success(now, 0.001)
            state = h.record_failure(now + 0.5, "flap")
            if flap < POLICY.flap_quarantine - 1:
                assert state == STATE_SUSPECT
                now += 1.0
        # the final fall skipped suspect entirely
        assert state == STATE_QUARANTINED

    def test_mark_lost_demotes_a_healthy_agent_immediately(self):
        h = fresh()
        h.record_success(0.0, 0.001)
        assert h.mark_lost(0.2, "runner lost the host") == STATE_SUSPECT
        assert h.flaps == 1
        assert h.due(0.2), "truth should be re-established promptly"
        assert h.last_error == "runner lost the host"

    def test_mark_lost_is_a_noop_demotion_when_already_suspect(self):
        h = fresh()
        assert h.mark_lost(0.0, "lost") == STATE_SUSPECT
        assert h.flaps == 0


class TestQuarantineBackoff:
    def _quarantined(self, addr: str) -> AgentHealth:
        h = AgentHealth(addr=addr, policy=POLICY)
        for _ in range(POLICY.quarantine_after):
            h.record_failure(0.0, "down")
        return h

    def test_backoff_grows_and_stays_capped(self):
        h = self._quarantined("a:1")
        delays = []
        now = 0.0
        for _ in range(10):
            delays.append(h.next_probe_at - now)
            now = h.next_probe_at
            h.record_failure(now, "still down")
        assert all(0 < d <= POLICY.backoff_cap_s for d in delays)
        # exponential at the front: later delays dwarf the first
        assert max(delays[4:]) > delays[0]

    def test_backoff_is_deterministic_per_agent(self):
        a1 = self._quarantined("a:1")
        a2 = self._quarantined("a:1")
        b = self._quarantined("b:2")
        assert a1.next_probe_at == a2.next_probe_at
        # different agents jitter differently (decorrelated probe storms)
        assert a1.next_probe_at != b.next_probe_at
