"""Cluster e2e: a live daemon dispatching onto a registered agent pool.

The acceptance bar: placed jobs produce digests byte-identical to their
one-shot runs, the ``agents`` RPC/CLI reflect probe truth, a stale
dispatch (agent dead between health check and dial) is requeued onto
survivors, and a SIGKILLed daemon restarted over a partially-healthy
pool still converges to the one-shot digest.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.net.agent import AgentServer
from repro.parallel.backends import fork_available
from repro.service.client import ServiceClient
from repro.service.jobspec import ServiceJobSpec
from repro.service.state import STATE_DONE
from repro.workloads import generate_text_file

from tests.service.conftest import _daemon_env, start_daemon, stop_daemon

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

#: Daemon knobs every cluster test wants: quick probes, quick retries.
FAST_HEALTH = ("--health-interval", "0.2", "--probe-timeout", "1.0")


@pytest.fixture
def agent_pool(tmp_path):
    """Two live in-process agents, closed at teardown."""
    agents = [
        AgentServer(workdir=tmp_path / f"agent{i}", grace_s=0.3).start()
        for i in range(2)
    ]
    yield agents
    for srv in agents:
        srv.close()


@pytest.fixture(scope="module")
def big_corpus(tmp_path_factory) -> Path:
    path = tmp_path_factory.mktemp("cluster-data") / "big.txt"
    generate_text_file(path, 1_500_000, vocab_size=800, seed=7)
    return path


def one_shot_digest(capsys, argv) -> str:
    assert main([*argv, "--json"]) == 0
    return json.loads(capsys.readouterr().out)["digest"]


def sharded_spec(path: Path, chunk: str = "32KB", **kw) -> ServiceJobSpec:
    return ServiceJobSpec(
        app="wordcount", inputs=(str(path),), chunk_size=chunk,
        shards=2, **kw,
    )


def await_settled(client: ServiceClient, timeout_s: float = 15.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        reply = client.agents()
        if reply.get("settled"):
            return reply
        time.sleep(0.05)
    raise AssertionError("agent pool never settled")


def await_states(client, wanted: dict, timeout_s: float = 15.0) -> dict:
    """Poll the agents RPC until every addr reports its wanted state."""
    deadline = time.monotonic() + timeout_s
    states: dict = {}
    while time.monotonic() < deadline:
        states = {
            row["addr"]: row["state"]
            for row in client.agents().get("agents", [])
        }
        if all(states.get(a) == s for a, s in wanted.items()):
            return states
        time.sleep(0.05)
    raise AssertionError(f"agent states never reached {wanted}: {states}")


class TestAgentsRpcAndCli:
    def test_pool_settles_and_reports_health(self, tmp_path, daemon,
                                             agent_pool):
        addrs = ",".join(a.addr for a in agent_pool)
        state_dir = tmp_path / "svc"
        daemon(state_dir, "--agents", addrs, *FAST_HEALTH)
        client = ServiceClient.from_state_dir(state_dir)
        reply = await_settled(client)
        rows = {row["addr"]: row for row in reply["agents"]}
        assert set(rows) == {a.addr for a in agent_pool}
        await_states(client, {a.addr: "healthy" for a in agent_pool})
        for row in client.agents()["agents"]:
            assert row["probes"] >= 1
            assert row["inflight"] == 0
            assert row["latency_ms"] is None or row["latency_ms"] >= 0

        # a dead agent is demoted once its probe fails
        agent_pool[0].close()
        states = await_states(client, {agent_pool[0].addr: "suspect"})
        assert states[agent_pool[1].addr] == "healthy"

    def test_register_and_deregister_over_the_wire(self, tmp_path, daemon,
                                                   agent_pool):
        state_dir = tmp_path / "svc"
        daemon(state_dir, *FAST_HEALTH)
        client = ServiceClient.from_state_dir(state_dir)
        assert client.agents()["agents"] == []
        assert client.agents()["settled"]  # empty pool is settled

        reply = client.register_agent(agent_pool[0].addr)
        assert reply["created"]
        assert not client.register_agent(agent_pool[0].addr)["created"]
        await_states(client, {agent_pool[0].addr: "healthy"})

        assert client.deregister_agent(agent_pool[0].addr)["removed"]
        assert not client.deregister_agent(agent_pool[0].addr)["removed"]
        assert client.agents()["agents"] == []

        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="host:port"):
            client.register_agent("nonsense")

    def test_agents_cli_lists_the_pool(self, tmp_path, daemon, agent_pool):
        addrs = ",".join(a.addr for a in agent_pool)
        state_dir = tmp_path / "svc"
        daemon(state_dir, "--agents", addrs, *FAST_HEALTH)
        client = ServiceClient.from_state_dir(state_dir)
        await_states(client, {a.addr: "healthy" for a in agent_pool})
        out = subprocess.run(
            [sys.executable, "-m", "repro.cli", "agents",
             "--state-dir", str(state_dir)],
            env=_daemon_env(), capture_output=True, text=True, timeout=60,
        )
        assert out.returncode == 0, out.stderr
        assert "agent pool: 2 agent(s), settled" in out.stdout
        for srv in agent_pool:
            assert srv.addr in out.stdout
        assert "healthy" in out.stdout

        reg = subprocess.run(
            [sys.executable, "-m", "repro.cli", "agents",
             "--state-dir", str(state_dir), "--deregister",
             agent_pool[0].addr],
            env=_daemon_env(), capture_output=True, text=True, timeout=60,
        )
        assert reg.returncode == 0, reg.stderr
        assert "deregistered" in reg.stdout


@needs_fork
class TestPlacedDispatch:
    def test_placed_job_digest_matches_one_shot(self, text_file, tmp_path,
                                                daemon, agent_pool, capsys):
        expected = one_shot_digest(capsys, [
            "wordcount", str(text_file), "--chunk-size", "32KB",
            "--shards", "2",
        ])
        addrs = ",".join(a.addr for a in agent_pool)
        state_dir = tmp_path / "svc"
        daemon(state_dir, "--agents", addrs, *FAST_HEALTH)
        client = ServiceClient.from_state_dir(state_dir)
        job_id = client.submit(sharded_spec(text_file))["job_id"]
        record = client.wait(job_id, timeout_s=180)
        assert record.state == STATE_DONE
        assert record.digest == expected
        counters = client.ping()["counters"]
        assert counters["placed"] >= 1
        # the job's in-flight charges were released at completion
        assert all(
            row["inflight"] == 0 for row in client.agents()["agents"]
        )

    def test_stale_dispatch_is_requeued_onto_survivors(self, text_file,
                                                       tmp_path, daemon,
                                                       agent_pool, capsys):
        expected = one_shot_digest(capsys, [
            "wordcount", str(text_file), "--chunk-size", "32KB",
            "--shards", "2",
        ])
        addrs = ",".join(a.addr for a in agent_pool)
        state_dir = tmp_path / "svc"
        daemon(state_dir, "--agents", addrs, *FAST_HEALTH,
               "--faults", "cluster.dispatch.stale=once",
               "--max-attempts", "3")
        client = ServiceClient.from_state_dir(state_dir)
        job_id = client.submit(sharded_spec(text_file))["job_id"]
        record = client.wait(job_id, timeout_s=180)
        assert record.state == STATE_DONE
        assert record.digest == expected
        assert record.attempts == 2, (
            "the poisoned placement should cost exactly one attempt"
        )
        assert client.ping()["counters"]["stale_dispatches"] == 1


@needs_fork
class TestRestartWithPartiallyHealthyPool:
    def _await_remote_workers(self, agent_pool, timeout_s=60.0) -> None:
        """Wait until the placed job's shard workers are live on the
        agents — the job is genuinely mid-flight across hosts."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if any(srv.workers for srv in agent_pool):
                return
            time.sleep(0.01)
        raise AssertionError("no remote shard worker before the timeout")

    def test_sigkill_recovery_requeues_onto_survivors(self, big_corpus,
                                                      tmp_path, daemon,
                                                      agent_pool, capsys):
        expected = one_shot_digest(capsys, [
            "wordcount", str(big_corpus), "--chunk-size", "64KB",
            "--shards", "2",
        ])
        addrs = ",".join(a.addr for a in agent_pool)
        state_dir = tmp_path / "svc"
        proc = start_daemon(state_dir, "--agents", addrs, *FAST_HEALTH)
        try:
            client = ServiceClient.from_state_dir(state_dir)
            spec = sharded_spec(big_corpus, chunk="64KB")
            job_id = client.submit(spec)["job_id"]
            self._await_remote_workers(agent_pool)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            stop_daemon(proc)

        # SIGKILL skipped the drain, so the dead daemon's endpoint
        # advertisement is still on disk; clear it or the restart wait
        # (and the client) would race against the stale port
        (state_dir / "endpoint.json").unlink()

        # one agent never comes back; the daemon restarts over the same
        # state dir with the same --agents list and must converge anyway
        agent_pool[0].close()
        restarted = daemon(state_dir, "--agents", addrs, *FAST_HEALTH)
        assert restarted.poll() is None
        client = ServiceClient.from_state_dir(state_dir)
        record = client.wait(job_id, timeout_s=240)
        assert record.state == STATE_DONE
        assert record.digest == expected, (
            "recovery onto the surviving agent must not change the digest"
        )
        states = await_states(client, {agent_pool[1].addr: "healthy"})
        assert states[agent_pool[0].addr] in ("suspect", "quarantined")
        assert all(
            row["inflight"] == 0 for row in client.agents()["agents"]
        )
