"""The agent registry: membership, probing, placement, fault injection."""

from __future__ import annotations

import pytest

from repro.cluster.health import (
    STATE_HEALTHY,
    STATE_QUARANTINED,
    STATE_SUSPECT,
    HealthPolicy,
)
from repro.cluster.registry import AgentRegistry
from repro.errors import ConfigError
from repro.faults.plan import SITE_CLUSTER_AGENT_FLAP, FaultPlan, FaultSpec

POLICY = HealthPolicy(
    probe_interval_s=1.0, suspect_retry_s=0.25,
    quarantine_after=2, recover_after=2, flap_quarantine=2,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class FakePinger:
    """Scripted probe outcomes: addr -> latency or an exception."""

    def __init__(self, outcomes: dict) -> None:
        self.outcomes = dict(outcomes)
        self.calls: list[str] = []

    def __call__(self, addr: str, timeout_s: float):
        self.calls.append(addr)
        outcome = self.outcomes[addr]
        if isinstance(outcome, Exception):
            raise outcome
        return outcome, {"workers": 0, "counters": {}}


def registry(outcomes: dict, **kw) -> tuple[AgentRegistry, FakeClock]:
    clock = FakeClock()
    reg = AgentRegistry(
        agents=tuple(outcomes), policy=POLICY,
        pinger=FakePinger(outcomes), clock=clock, **kw,
    )
    return reg, clock


class TestMembership:
    def test_register_is_canonicalizing_and_idempotent(self):
        reg = AgentRegistry()
        assert reg.register("h:09") == ("h:9", True)
        assert reg.register("h:9") == ("h:9", False)
        assert len(reg) == 1
        assert reg.addrs() == ("h:9",)

    def test_register_rejects_garbage(self):
        reg = AgentRegistry()
        with pytest.raises(ConfigError, match="host:port"):
            reg.register("nonsense")

    def test_deregister(self):
        reg = AgentRegistry(agents=("a:1",))
        assert reg.deregister("a:1")
        assert not reg.deregister("a:1")
        assert len(reg) == 0

    def test_empty_pool_is_settled(self):
        assert AgentRegistry().settled


class TestProbing:
    def test_pool_settles_after_one_round(self):
        reg, _ = registry({"a:1": 0.001, "b:2": ConnectionRefusedError()})
        assert not reg.settled
        assert reg.probe_round() == 2
        assert reg.settled
        states = {r["addr"]: r["state"] for r in reg.snapshot()}
        assert states == {"a:1": STATE_HEALTHY, "b:2": STATE_SUSPECT}

    def test_probe_schedule_is_honored(self):
        reg, clock = registry({"a:1": 0.001})
        reg.probe_round()
        # not due again until the healthy cadence elapses
        assert reg.probe_round() == 0
        clock.advance(POLICY.probe_interval_s)
        assert reg.probe_round() == 1

    def test_dead_agent_quarantines_then_backs_off(self):
        reg, clock = registry({"a:1": ConnectionRefusedError()})
        for _ in range(POLICY.quarantine_after):
            assert reg.probe_round() == 1
            clock.advance(POLICY.suspect_retry_s)
        row = reg.snapshot()[0]
        assert row["state"] == STATE_QUARANTINED
        # immediately after quarantining the next probe is not yet due,
        # and every further failure widens the gap (exponential backoff)
        assert reg.probe_round() == 0
        gaps = []
        for _ in range(4):
            start = clock.now
            while reg.probe_round() == 0:
                clock.advance(0.05)
            gaps.append(clock.now - start)
        assert gaps[-1] > gaps[0]
        assert reg.snapshot()[0]["state"] == STATE_QUARANTINED

    def test_mark_lost_demotes_and_ignores_unknown_hosts(self):
        reg, _ = registry({"a:1": 0.001})
        reg.probe_round()
        assert reg.healthy() == ("a:1",)
        reg.mark_lost("a:1", "runner reported the host lost")
        assert reg.healthy() == ()
        reg.mark_lost("ghost:9", "never registered")     # no-op
        reg.mark_lost("garbage", "unparsable")           # no-op

    def test_injected_flap_reaches_quarantine_deterministically(self):
        plan = FaultPlan(seed=7, specs=(
            FaultSpec(site=SITE_CLUSTER_AGENT_FLAP, probability=1.0),
        ))
        reg, clock = registry(
            {"a:1": 0.001}, injector=plan.arm(),
        )
        # every probe is forced to fail, so the pinger is never consulted
        rounds = 0
        while reg.snapshot()[0]["state"] != STATE_QUARANTINED:
            assert reg.probe_round() == 1
            clock.advance(POLICY.suspect_retry_s)
            rounds += 1
            assert rounds <= POLICY.quarantine_after
        assert reg.snapshot()[0]["last_error"].startswith("injected")


class TestPlacement:
    def _healthy_pool(self):
        reg, clock = registry({"a:1": 0.001, "b:2": 0.001, "c:3": 0.001})
        reg.probe_round()
        return reg, clock

    def test_unprobed_agents_take_no_work(self):
        reg, _ = registry({"a:1": 0.001})
        assert reg.place("job", 2) == ()

    def test_leases_are_exclusive_per_job(self):
        reg, _ = self._healthy_pool()
        assert reg.place("j1", 1) == ("a:1",)
        assert reg.place("j2", 1) == ("b:2",)
        assert reg.place("j3", 1) == ("c:3",)
        # Every agent carries a job, so a fourth concurrent job gets
        # nothing and runs locally: the agent control protocol is
        # single-coordinator, and a shared agent would splice the two
        # jobs' worker results (and digests) together.
        assert reg.place("j4", 2) == ()
        assert reg.inflight_total() == 3
        # releases free the lease for the next placement
        reg.release("j2")
        assert reg.place("j5", 2) == ("b:2",)
        assert reg.inflight_total() == 3

    def test_release_uncharges_every_agent(self):
        reg, _ = self._healthy_pool()
        reg.place("j1", 3)
        assert reg.inflight_total() == 3
        reg.release("j1")
        assert reg.inflight_total() == 0
        reg.release("j1")  # idempotent
        assert reg.inflight_total() == 0

    def test_want_caps_and_zero_is_empty(self):
        reg, _ = self._healthy_pool()
        assert reg.place("j", 99) == ("a:1", "b:2", "c:3")
        reg.release("j")
        assert reg.place("j", 0) == ()

    def test_only_healthy_agents_are_drawn(self):
        reg, clock = registry({
            "a:1": 0.001, "b:2": ConnectionRefusedError(),
        })
        reg.probe_round()
        assert reg.place("j", 2) == ("a:1",)
        assert reg.healthy_count() == 1


class TestSnapshot:
    def test_rows_carry_the_cli_fields(self):
        reg, _ = registry({"a:1": 0.002})
        reg.probe_round()
        row = reg.snapshot()[0]
        assert row["addr"] == "a:1"
        assert row["state"] == STATE_HEALTHY
        assert row["latency_ms"] == pytest.approx(2.0)
        assert row["inflight"] == 0
        assert row["probes"] == 1
        assert row["flaps"] == 0
        assert row["last_error"] == ""
        assert row["workers"] == 0
