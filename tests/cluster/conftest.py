"""Cluster test fixtures: reuse the service suite's daemon launcher."""

from __future__ import annotations

from tests.service.conftest import daemon  # noqa: F401
