"""Durable service state: CRC envelopes, records, and checkpoint reaping."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.service.jobspec import ServiceJobSpec
from repro.service.state import (
    STATE_DONE,
    STATE_QUEUED,
    STATE_RUNNING,
    JobRecord,
    ServiceState,
    read_json_crc,
    write_json_crc,
)


class TestCrcEnvelope:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "x.json"
        write_json_crc(path, {"a": 1, "nested": {"b": [1, 2]}})
        assert read_json_crc(path) == {"a": 1, "nested": {"b": [1, 2]}}

    def test_bit_flip_is_detected(self, tmp_path):
        path = tmp_path / "x.json"
        write_json_crc(path, {"value": "precious"})
        text = path.read_text().replace("precious", "worthless")
        path.write_text(text)
        with pytest.raises(ServiceError, match="CRC"):
            read_json_crc(path)

    def test_garbage_file_is_a_typed_error(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("this is not json")
        with pytest.raises(ServiceError, match="unreadable"):
            read_json_crc(path)

    def test_write_is_atomic(self, tmp_path):
        path = tmp_path / "x.json"
        write_json_crc(path, {"gen": 1})
        write_json_crc(path, {"gen": 2})
        assert read_json_crc(path) == {"gen": 2}
        assert not path.with_suffix(".json.tmp").exists()


class TestJobRecord:
    def test_round_trip(self):
        record = JobRecord(
            job_id="abc123", state=STATE_DONE, priority=2, seq=7,
            attempts=2, exit_code=0, digest="deadbeef", resumed=True,
            result_fetched=True,
        )
        assert JobRecord.from_dict(record.to_dict()) == record

    def test_unknown_keys_are_ignored(self):
        data = JobRecord(job_id="a", state=STATE_QUEUED).to_dict()
        data["from_the_future"] = True
        assert JobRecord.from_dict(data).job_id == "a"

    def test_finished_property(self):
        assert JobRecord(job_id="a", state=STATE_DONE).finished
        assert not JobRecord(job_id="a", state=STATE_RUNNING).finished


class TestServiceState:
    def _make_job(self, svc, tmp_path, n, **record_kw):
        src = tmp_path / f"in-{n}.txt"
        src.write_text("x y z\n")
        spec = ServiceJobSpec(app="wordcount", inputs=(str(src),))
        record = JobRecord(
            job_id=f"job-{n:02d}", state=STATE_QUEUED, seq=n,
        ).with_(**record_kw)
        svc.create_job(spec, record)
        return record

    def test_endpoint_round_trip(self, tmp_path):
        state = ServiceState(tmp_path / "svc")
        state.write_endpoint("127.0.0.1", 4567)
        assert state.read_endpoint() == ("127.0.0.1", 4567)
        state.clear_endpoint()
        with pytest.raises(ServiceError, match="daemon"):
            state.read_endpoint()

    def test_records_reload_in_admission_order(self, tmp_path):
        state = ServiceState(tmp_path / "svc")
        for n in (2, 0, 1):
            self._make_job(state, tmp_path, n)
        fresh = ServiceState(tmp_path / "svc")
        assert [r.seq for r in fresh.load_all_records()] == [0, 1, 2]

    def test_spec_round_trips_through_disk(self, tmp_path):
        state = ServiceState(tmp_path / "svc")
        record = self._make_job(state, tmp_path, 0)
        fresh = ServiceState(tmp_path / "svc")
        spec = fresh.load_spec(record.job_id)
        assert spec.app == "wordcount"

    def test_result_round_trip(self, tmp_path):
        state = ServiceState(tmp_path / "svc")
        record = self._make_job(state, tmp_path, 0)
        report = json.dumps({"digest": "cafe"})
        state.write_result(record.job_id, report)
        assert json.loads(state.read_result(record.job_id)) == {
            "digest": "cafe"
        }
        with pytest.raises(ServiceError, match="no stored result"):
            state.read_result("nope")

    def test_reap_keeps_retention_most_recent(self, tmp_path):
        state = ServiceState(tmp_path / "svc")
        for n in range(4):
            self._make_job(
                state, tmp_path, n,
                state=STATE_DONE, exit_code=0, result_fetched=True,
            )
        reaped = state.reap_checkpoints(retention=2)
        assert reaped == ["job-00", "job-01"]
        assert not state.checkpoint_dir("job-00").exists()
        assert state.checkpoint_dir("job-02").exists()
        assert state.checkpoint_dir("job-03").exists()
        # records and results survive the reap — only checkpoints go
        assert state.load_record("job-00").state == STATE_DONE

    def test_reap_spares_unfetched_and_live_jobs(self, tmp_path):
        state = ServiceState(tmp_path / "svc")
        self._make_job(state, tmp_path, 0, state=STATE_DONE, exit_code=0)
        self._make_job(state, tmp_path, 1, state=STATE_RUNNING)
        assert state.reap_checkpoints(retention=0) == []
        assert state.checkpoint_dir("job-00").exists()
        assert state.checkpoint_dir("job-01").exists()
