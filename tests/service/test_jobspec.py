"""ServiceJobSpec: serialization, stable ids, and CLI option parity."""

from __future__ import annotations

import pytest

from repro.cli import _options_from, build_parser
from repro.errors import ConfigError
from repro.service.jobspec import ServiceJobSpec


def _spec(**kw) -> ServiceJobSpec:
    base = {"app": "wordcount", "inputs": ("a.txt", "b.txt")}
    base.update(kw)
    return ServiceJobSpec(**base)


class TestSerialization:
    def test_dict_round_trip(self):
        spec = _spec(
            chunk_size="32KB", memory_budget="1MB", backend="process",
            faults="ingest.read=once", retry=2, shards=2, priority=3,
            tag="run-a",
        )
        assert ServiceJobSpec.from_dict(spec.to_dict()) == spec

    def test_defaults_round_trip(self):
        spec = _spec()
        assert ServiceJobSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_is_typed_error(self):
        data = _spec().to_dict()
        data["warp_factor"] = 9
        with pytest.raises(ConfigError, match="warp_factor"):
            ServiceJobSpec.from_dict(data)

    def test_missing_required_field(self):
        with pytest.raises(ConfigError, match="missing"):
            ServiceJobSpec.from_dict({"app": "wordcount"})

    def test_non_object_rejected(self):
        with pytest.raises(ConfigError):
            ServiceJobSpec.from_dict(["not", "a", "dict"])

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigError, match="unknown app"):
            _spec(app="raytracer")

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigError, match="input"):
            _spec(inputs=())


class TestJobId:
    def test_identical_specs_share_an_id(self):
        assert _spec().job_id() == _spec().job_id()

    def test_id_is_12_hex_digits(self):
        job_id = _spec().job_id()
        assert len(job_id) == 12
        int(job_id, 16)

    def test_any_knob_changes_the_id(self):
        base = _spec().job_id()
        assert _spec(mappers=8).job_id() != base
        assert _spec(chunk_size="64KB").job_id() != base
        assert _spec(inputs=("a.txt",)).job_id() != base

    def test_tag_distinguishes_deliberate_duplicates(self):
        assert _spec(tag="one").job_id() != _spec(tag="two").job_id()
        assert _spec(tag="one").job_id() != _spec().job_id()

    def test_id_survives_a_serialization_round_trip(self):
        spec = _spec(memory_budget="2MB", priority=1)
        assert ServiceJobSpec.from_dict(spec.to_dict()).job_id() \
            == spec.job_id()


class TestOptionParity:
    """A submitted spec and the equivalent one-shot CLI invocation must
    lower to the *same* RuntimeOptions — that is what makes their output
    digests byte-identical."""

    def _cli_options(self, argv):
        return _options_from(build_parser().parse_args(argv))

    def test_chunked_wordcount_parity(self):
        cli = self._cli_options([
            "wordcount", "c.txt", "--chunk-size", "32KB",
            "--memory-budget", "1MB", "--backend", "process",
        ])
        spec = ServiceJobSpec(
            app="wordcount", inputs=("c.txt",), chunk_size="32KB",
            memory_budget="1MB", backend="process",
        )
        assert spec.to_options() == cli

    def test_baseline_parity(self):
        cli = self._cli_options(
            ["wordcount", "c.txt", "--baseline", "--mappers", "2"]
        )
        spec = ServiceJobSpec(
            app="wordcount", inputs=("c.txt",), baseline=True, mappers=2,
        )
        assert spec.to_options() == cli

    def test_fault_plan_parity(self):
        cli = self._cli_options([
            "wordcount", "c.txt", "--chunk-size", "16KB",
            "--faults", "ingest.read=once,map.task=0.5",
            "--fault-seed", "7", "--retry", "2", "--skip-budget", "5",
        ])
        spec = ServiceJobSpec(
            app="wordcount", inputs=("c.txt",), chunk_size="16KB",
            faults="ingest.read=once,map.task=0.5", fault_seed=7,
            retry=2, skip_budget=5,
        )
        assert spec.to_options() == cli

    def test_sharded_sort_parity(self):
        cli = self._cli_options(
            ["sort", "r.dat", "--chunk-size", "50KB", "--shards", "2"]
        )
        spec = ServiceJobSpec(
            app="sort", inputs=("r.dat",), chunk_size="50KB", shards=2,
        )
        assert spec.to_options() == cli

    def test_priority_and_tag_do_not_leak_into_options(self):
        plain = _spec(chunk_size="32KB")
        tagged = _spec(chunk_size="32KB", priority=9, tag="x")
        assert plain.to_options() == tagged.to_options()

    def test_service_assigned_dirs(self):
        options = _spec(chunk_size="32KB", shards=2).to_options(
            checkpoint_dir="/tmp/ckpt", resume=True, shard_dir="/tmp/shards",
        )
        assert options.checkpoint_dir == "/tmp/ckpt"
        assert options.resume is True
        assert options.shard_dir == "/tmp/shards"
        assert options.num_shards == 2


class TestBuildJob:
    def test_wordcount_job(self):
        job = _spec().build_job()
        assert job.map_fn is not None

    def test_sort_job(self):
        job = _spec(app="sort", inputs=("r.dat",)).build_job()
        assert job.map_fn is not None


class TestRunnerClassification:
    """A spec carrying a bad knob must exit with the usage code and an
    error.json — never an unhandled traceback (exit 1, no report)."""

    def test_bad_chunk_size_is_classified_usage(self, tmp_path):
        import json

        from repro.exitcodes import EXIT_USAGE
        from repro.service.runner import run_job_dir
        from repro.service.state import write_json_crc

        corpus = tmp_path / "c.txt"
        corpus.write_text("alpha beta alpha\n")
        job_dir = tmp_path / "job"
        job_dir.mkdir()
        spec = _spec(inputs=(str(corpus),), chunk_size="banana")
        write_json_crc(job_dir / "spec.json", spec.to_dict())

        assert run_job_dir(job_dir) == EXIT_USAGE
        error = json.loads((job_dir / "error.json").read_text())
        assert error["exit_code"] == EXIT_USAGE
        assert error["type"] == "ConfigError"
