"""End-to-end service tests against a live daemon subprocess.

The contract under test is the PR's acceptance bar: concurrent
submissions produce digests **byte-identical** to their one-shot CLI
runs, a SIGTERM'd daemon requeues durably and a resubmission after
restart *resumes* from the journal, over-admission is a typed
rejection, and ``submit --wait`` speaks the shared exit-code contract.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import AdmissionError, JobNotFound, ServiceError
from repro.exitcodes import EXIT_DEADLINE
from repro.service.client import ServiceClient
from repro.service.jobspec import ServiceJobSpec
from repro.service.state import STATE_DONE, STATE_QUEUED, ServiceState
from repro.workloads import generate_text_file

from tests.service.conftest import _daemon_env, start_daemon, stop_daemon


@pytest.fixture(scope="module")
def big_corpus(tmp_path_factory) -> Path:
    """~1.5 MB corpus: enough 64 KB rounds that a daemon can be killed
    mid-job with rounds both journaled and still outstanding."""
    path = tmp_path_factory.mktemp("service-data") / "big.txt"
    generate_text_file(path, 1_500_000, vocab_size=800, seed=7)
    return path


def one_shot_digest(capsys, argv) -> str:
    assert main([*argv, "--json"]) == 0
    return json.loads(capsys.readouterr().out)["digest"]


def wc_spec(path: Path, **kw) -> ServiceJobSpec:
    return ServiceJobSpec(
        app="wordcount", inputs=(str(path),), chunk_size="32KB", **kw
    )


class TestConcurrentSubmits:
    def test_digests_match_one_shot_runs(self, text_file, terasort_file,
                                         tmp_path, daemon, capsys):
        wc_expected = one_shot_digest(
            capsys, ["wordcount", str(text_file), "--chunk-size", "32KB"]
        )
        sort_expected = one_shot_digest(
            capsys, ["sort", str(terasort_file), "--chunk-size", "50KB"]
        )
        state_dir = tmp_path / "svc"
        daemon(state_dir)
        client = ServiceClient.from_state_dir(state_dir)

        wc = client.submit(wc_spec(text_file))
        st = client.submit(ServiceJobSpec(
            app="sort", inputs=(str(terasort_file),), chunk_size="50KB",
        ))
        assert wc["job_id"] != st["job_id"]

        wc_rec = client.wait(wc["job_id"], timeout_s=120)
        st_rec = client.wait(st["job_id"], timeout_s=120)
        assert wc_rec.state == STATE_DONE
        assert st_rec.state == STATE_DONE
        assert wc_rec.digest == wc_expected
        assert st_rec.digest == sort_expected

        # the stored report carries the same digest as the record
        report = client.result(wc["job_id"])["report"]
        assert report["digest"] == wc_expected

        # identical resubmission reattaches instead of re-running
        again = client.submit(wc_spec(text_file))
        assert again["reattached"]
        assert again["job_id"] == wc["job_id"]

    def test_status_and_not_finished_errors(self, text_file, tmp_path,
                                            daemon):
        state_dir = tmp_path / "svc"
        daemon(state_dir)
        client = ServiceClient.from_state_dir(state_dir)
        with pytest.raises(JobNotFound):
            client.status("0000deadbeef")
        with pytest.raises(JobNotFound):
            client.result("0000deadbeef")
        submitted = client.submit(wc_spec(text_file))
        reply = client.status(submitted["job_id"])
        assert reply["job"]["state"] in ("queued", "running", "done")
        client.wait(submitted["job_id"], timeout_s=120)


class TestSigtermResume:
    def _await_first_round(self, journal_path: Path, timeout_s=60.0) -> int:
        """Poll the job's journal until at least one round is durable."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if journal_path.exists():
                try:
                    state = json.loads(journal_path.read_text())["payload"]
                except (ValueError, KeyError):
                    time.sleep(0.002)
                    continue
                if state["completed_rounds"] and state["stage"] == "mapping":
                    return len(state["completed_rounds"])
            time.sleep(0.002)
        raise AssertionError("no journaled round before the timeout")

    def test_sigterm_requeues_and_resubmit_resumes(self, big_corpus,
                                                   tmp_path, daemon, capsys):
        expected = one_shot_digest(
            capsys, ["wordcount", str(big_corpus), "--chunk-size", "64KB"]
        )
        state_dir = tmp_path / "svc"
        proc = daemon(state_dir)
        client = ServiceClient.from_state_dir(state_dir)
        spec = ServiceJobSpec(
            app="wordcount", inputs=(str(big_corpus),), chunk_size="64KB",
        )
        job_id = client.submit(spec)["job_id"]

        journal = (ServiceState(state_dir).checkpoint_dir(job_id)
                   / "journal.json")
        rounds = self._await_first_round(journal)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0

        # the drain parked the job durably, ready for the next daemon
        record = ServiceState(state_dir).load_record(job_id)
        assert record.state == STATE_QUEUED
        assert rounds >= 1

        daemon(state_dir)  # restart over the same state dir
        client = ServiceClient.from_state_dir(state_dir)
        again = client.submit(spec)
        assert again["reattached"]
        assert again["job_id"] == job_id
        record = client.wait(job_id, timeout_s=180)
        assert record.state == STATE_DONE
        assert record.digest == expected
        assert record.resumed, (
            "the relaunched attempt should adopt the journaled rounds"
        )


class TestAdmissionOverTheWire:
    def test_queue_full_rejection(self, big_corpus, text_file, tmp_path,
                                  daemon):
        state_dir = tmp_path / "svc"
        daemon(state_dir, "--max-jobs", "1", "--queue-depth", "1")
        client = ServiceClient.from_state_dir(state_dir)
        running = client.submit(ServiceJobSpec(
            app="wordcount", inputs=(str(big_corpus),), chunk_size="64KB",
        ))
        client.submit(wc_spec(text_file, tag="queued"))
        with pytest.raises(AdmissionError) as exc:
            client.submit(wc_spec(text_file, tag="rejected"))
        assert exc.value.code == "queue-full"
        client.cancel(running["job_id"])

    def test_budget_rejection(self, text_file, tmp_path, daemon):
        state_dir = tmp_path / "svc"
        daemon(state_dir, "--service-budget", "1MB")
        client = ServiceClient.from_state_dir(state_dir)
        with pytest.raises(AdmissionError) as exc:
            client.submit(wc_spec(text_file))
        assert exc.value.code == "budget-exceeded"
        admitted = client.submit(wc_spec(text_file, memory_budget="512KB"))
        client.wait(admitted["job_id"], timeout_s=120)

    def test_cancel_queued_job(self, big_corpus, text_file, tmp_path,
                               daemon):
        state_dir = tmp_path / "svc"
        daemon(state_dir, "--max-jobs", "1")
        client = ServiceClient.from_state_dir(state_dir)
        running = client.submit(ServiceJobSpec(
            app="wordcount", inputs=(str(big_corpus),), chunk_size="64KB",
        ))
        queued = client.submit(wc_spec(text_file))
        reply = client.cancel(queued["job_id"])
        assert reply["job"]["state"] == "cancelled"
        client.cancel(running["job_id"])

    def test_shutdown_drains(self, tmp_path, daemon):
        state_dir = tmp_path / "svc"
        proc = daemon(state_dir)
        client = ServiceClient.from_state_dir(state_dir)
        client.shutdown()
        assert proc.wait(timeout=30) == 0
        assert not (state_dir / "endpoint.json").exists()
        with pytest.raises(ServiceError):
            ServiceClient.from_state_dir(state_dir)


class TestCrashRespawn:
    def test_injected_runner_crash_respawns_and_resumes(self, text_file,
                                                        tmp_path, daemon,
                                                        capsys):
        expected = one_shot_digest(
            capsys, ["wordcount", str(text_file), "--chunk-size", "32KB"]
        )
        state_dir = tmp_path / "svc"
        daemon(state_dir, "--faults", "service.job.crash=once")
        client = ServiceClient.from_state_dir(state_dir)
        job_id = client.submit(wc_spec(text_file))["job_id"]
        record = client.wait(job_id, timeout_s=180)
        assert record.state == STATE_DONE
        assert record.attempts == 2, (
            "the crashed attempt should be followed by exactly one respawn"
        )
        assert record.digest == expected


class TestSubmitWaitCli:
    def _submit_cli(self, state_dir, *job_args):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "submit",
             "--state-dir", str(state_dir), "--wait", *job_args],
            env=_daemon_env(), capture_output=True, text=True, timeout=180,
        )

    def test_wait_exit_code_matches_one_shot_contract(self, text_file,
                                                      tmp_path, daemon):
        state_dir = tmp_path / "svc"
        daemon(state_dir)
        done = self._submit_cli(
            state_dir, "wordcount", str(text_file), "--chunk-size", "32KB",
        )
        assert done.returncode == 0, done.stderr
        report = json.loads(done.stdout)
        assert report["digest"]
        assert "job" in done.stderr  # streamed transitions

        expired = self._submit_cli(
            state_dir, "wordcount", str(text_file), "--chunk-size", "32KB",
            "--job-deadline", "0.000001",
        )
        assert expired.returncode == EXIT_DEADLINE, expired.stderr
