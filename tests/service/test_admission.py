"""Admission control, queue ordering, and recovery — unit level.

These tests drive :class:`JobService` in-process: ``_run_job`` is
replaced with a stub that parks until released (so runner slots fill
without spawning subprocesses), or ``_schedule`` is disabled entirely
when only the queue/admission bookkeeping is under test.
"""

from __future__ import annotations

import asyncio
import subprocess
import sys
import time
from dataclasses import dataclass

import pytest

from repro.errors import AdmissionError
from repro.service.jobspec import ServiceJobSpec
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_BUDGET_EXCEEDED,
    ERR_DRAINING,
    ERR_QUEUE_FULL,
)
from repro.service.server import JobService, ServiceConfig
from repro.service.state import STATE_DONE, STATE_QUEUED, STATE_RUNNING


def make_service(tmp_path, **kw) -> JobService:
    return JobService(ServiceConfig(state_dir=str(tmp_path / "state"), **kw))


def make_spec(tmp_path, n=0, **kw) -> ServiceJobSpec:
    path = tmp_path / f"input-{n}.txt"
    if not path.exists():
        path.write_text("alpha beta gamma\n")
    return ServiceJobSpec(app="wordcount", inputs=(str(path),), **kw)


@dataclass
class _HeldRunners:
    """Stub runner pool: jobs park in ``_running`` until released."""

    service: JobService
    started: list = None
    high_water: int = 0

    def __post_init__(self):
        self.started = []
        self.release = asyncio.Event()
        self.service._run_job = self._fake_run

    async def _fake_run(self, record):
        svc = self.service

        class _Held:
            pass

        held = _Held()
        held.record = record
        held.proc = None
        held.cancelling = False
        svc._running[record.job_id] = held
        self.started.append(record.job_id)
        self.high_water = max(self.high_water, len(svc._running))
        await self.release.wait()
        svc._running.pop(record.job_id, None)
        svc.state.save_record(record.with_(state=STATE_DONE, exit_code=0))


class TestQueueAdmission:
    def test_queue_full_is_a_typed_rejection(self, tmp_path):
        async def scenario():
            svc = make_service(tmp_path, max_concurrent=1, max_queue_depth=2)
            _HeldRunners(svc)
            svc.admit(make_spec(tmp_path, 0))   # takes the runner slot
            await asyncio.sleep(0)
            svc.admit(make_spec(tmp_path, 1))   # queued
            svc.admit(make_spec(tmp_path, 2))   # queued (depth limit)
            with pytest.raises(AdmissionError) as exc:
                svc.admit(make_spec(tmp_path, 3))
            assert exc.value.code == ERR_QUEUE_FULL
            assert svc.counters["rejected"] == 1
            assert svc.queue_depth() == 2

        asyncio.run(scenario())

    def test_never_runs_more_than_max_concurrent(self, tmp_path):
        """Regression: a burst of submissions must not over-fill slots
        just because runner registration happens after an await point."""

        async def scenario():
            svc = make_service(tmp_path, max_concurrent=2,
                               max_queue_depth=16)
            held = _HeldRunners(svc)
            for n in range(5):
                svc.admit(make_spec(tmp_path, n))
            await asyncio.sleep(0.01)
            assert len(held.started) == 2
            assert svc.queue_depth() == 3
            held.release.set()
            for _ in range(200):
                await asyncio.sleep(0.005)
                if len(held.started) == 5 and not svc._job_tasks:
                    break
            assert len(held.started) == 5
            assert held.high_water <= 2

        asyncio.run(scenario())

    def test_draining_rejects_submissions(self, tmp_path):
        svc = make_service(tmp_path)
        svc._draining = True
        with pytest.raises(AdmissionError) as exc:
            svc.admit(make_spec(tmp_path))
        assert exc.value.code == ERR_DRAINING


class TestBudgetAdmission:
    def test_budget_must_be_declared(self, tmp_path):
        svc = make_service(tmp_path, service_budget="1MB")
        svc._schedule = lambda: None
        with pytest.raises(AdmissionError) as exc:
            svc.admit(make_spec(tmp_path, 0))
        assert exc.value.code == ERR_BUDGET_EXCEEDED

    def test_budget_sum_is_capped(self, tmp_path):
        svc = make_service(tmp_path, service_budget="1MB")
        svc._schedule = lambda: None
        svc.admit(make_spec(tmp_path, 0, memory_budget="600KB"))
        with pytest.raises(AdmissionError) as exc:
            svc.admit(make_spec(tmp_path, 1, memory_budget="600KB"))
        assert exc.value.code == ERR_BUDGET_EXCEEDED
        # a job that still fits is admitted
        svc.admit(make_spec(tmp_path, 2, memory_budget="300KB"))

    def test_budget_frees_when_jobs_finish(self, tmp_path):
        async def scenario():
            svc = make_service(tmp_path, max_concurrent=1,
                               service_budget="1MB")
            held = _HeldRunners(svc)
            first = make_spec(tmp_path, 0, memory_budget="800KB")
            svc.admit(first)
            await asyncio.sleep(0)
            second = make_spec(tmp_path, 1, memory_budget="800KB")
            with pytest.raises(AdmissionError):
                svc.admit(second)
            held.release.set()
            for _ in range(200):
                await asyncio.sleep(0.005)
                if not svc._running and not svc._job_tasks:
                    break
            record, reattached = svc.admit(second)
            assert not reattached
            assert record.state == STATE_QUEUED

        asyncio.run(scenario())


class TestDedupAndRerun:
    def test_identical_spec_reattaches(self, tmp_path):
        svc = make_service(tmp_path)
        svc._schedule = lambda: None
        spec = make_spec(tmp_path)
        first, reattached = svc.admit(spec)
        assert not reattached
        second, reattached = svc.admit(spec)
        assert reattached
        assert second.job_id == first.job_id
        assert svc.counters["reattached"] == 1
        assert svc.queue_depth() == 1  # not queued twice

    def test_tag_makes_a_distinct_job(self, tmp_path):
        svc = make_service(tmp_path)
        svc._schedule = lambda: None
        first, _ = svc.admit(make_spec(tmp_path))
        second, reattached = svc.admit(make_spec(tmp_path, tag="again"))
        assert not reattached
        assert second.job_id != first.job_id

    def test_rerun_of_a_live_job_is_refused(self, tmp_path):
        svc = make_service(tmp_path)
        svc._schedule = lambda: None
        spec = make_spec(tmp_path)
        svc.admit(spec)
        with pytest.raises(AdmissionError) as exc:
            svc.admit(spec, rerun=True)
        assert exc.value.code == ERR_BAD_REQUEST

    def test_rerun_of_a_finished_job_wipes_its_state(self, tmp_path):
        svc = make_service(tmp_path)
        svc._schedule = lambda: None
        spec = make_spec(tmp_path)
        record, _ = svc.admit(spec)
        svc._queued_ids.discard(record.job_id)
        svc.state.save_record(
            record.with_(state=STATE_DONE, exit_code=0, digest="abc")
        )
        fresh, reattached = svc.admit(spec, rerun=True)
        assert not reattached
        assert fresh.state == STATE_QUEUED
        assert fresh.digest is None


class TestQueueOrdering:
    def test_priority_then_fifo(self, tmp_path):
        svc = make_service(tmp_path, max_queue_depth=16)
        svc._schedule = lambda: None
        ids = [
            svc.admit(make_spec(tmp_path, n, priority=p))[0].job_id
            for n, p in enumerate([0, 5, 0, 5, 2])
        ]
        order = [svc._pop_next().job_id for _ in range(5)]
        assert order == [ids[1], ids[3], ids[4], ids[0], ids[2]]
        assert svc._pop_next() is None

    def test_cancelled_while_queued_is_skipped(self, tmp_path):
        svc = make_service(tmp_path, max_queue_depth=16)
        svc._schedule = lambda: None
        first, _ = svc.admit(make_spec(tmp_path, 0))
        second, _ = svc.admit(make_spec(tmp_path, 1))
        svc._queued_ids.discard(first.job_id)  # lazy cancellation
        assert svc._pop_next().job_id == second.job_id
        assert svc._pop_next() is None


class TestRecovery:
    def test_restart_requeues_interrupted_jobs(self, tmp_path):
        svc = make_service(tmp_path)
        svc._schedule = lambda: None
        queued, _ = svc.admit(make_spec(tmp_path, 0))
        running, _ = svc.admit(make_spec(tmp_path, 1))
        done, _ = svc.admit(make_spec(tmp_path, 2))
        svc.state.save_record(running.with_(state=STATE_RUNNING, attempts=1))
        svc.state.save_record(done.with_(state=STATE_DONE, exit_code=0))

        revived = make_service(tmp_path)
        revived._schedule = lambda: None
        revived._recover()
        assert revived.queue_depth() == 2
        rec = revived.state.load_record(running.job_id)
        assert rec.state == STATE_QUEUED
        assert revived.state.load_record(done.job_id).state == STATE_DONE
        # admission sequence continues past recovered records
        assert revived._seq > done.seq

    def test_recovery_kills_orphan_runners(self, tmp_path):
        svc = make_service(tmp_path)
        svc._schedule = lambda: None
        record, _ = svc.admit(make_spec(tmp_path))
        orphan = subprocess.Popen([sys.executable, "-c",
                                   "import time; time.sleep(60)"])
        try:
            (svc.state.job_dir(record.job_id) / "runner.pid").write_text(
                str(orphan.pid)
            )
            svc.state.save_record(record.with_(state=STATE_RUNNING))

            revived = make_service(tmp_path)
            revived._schedule = lambda: None
            revived._recover()
            deadline = time.monotonic() + 5.0
            while orphan.poll() is None and time.monotonic() < deadline:
                time.sleep(0.02)
            assert orphan.poll() is not None
        finally:
            if orphan.poll() is None:
                orphan.kill()
            orphan.wait()
