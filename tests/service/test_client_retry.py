"""Client-side retry: idempotent RPCs survive severed connections.

A scripted fake daemon plays one misbehaviour per accepted connection
(drop before reply, drop mid-frame, damaged CRC, plain success), so
every test pins exactly how many fresh sockets the client opened and
which failures it refused to retry.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.errors import ProtocolError, ServiceError
from repro.service.client import ServiceClient
from repro.service.protocol import (
    encode_frame,
    ok_reply,
    recv_frame,
    send_frame,
)


def _rst_close(sock: socket.socket) -> None:
    """Abortive close: the peer sees ECONNRESET, not a clean FIN."""
    sock.setsockopt(
        socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
    )
    sock.close()


class _ScriptedServer:
    """Per-connection behaviours, consumed left to right."""

    def __init__(self, script: list[str]) -> None:
        self.script = list(script)
        self.connections = 0
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.port = self.listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while self.script:
            behaviour = self.script.pop(0)
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            self.connections += 1
            conn.settimeout(5.0)
            try:
                self._play(conn, behaviour)
            except OSError:
                pass

    def _play(self, conn: socket.socket, behaviour: str) -> None:
        if behaviour == "refuse-by-reset":
            _rst_close(conn)
            return
        request = recv_frame(conn, timeout_s=5.0)
        assert isinstance(request, dict)
        if behaviour == "reset-before-reply":
            _rst_close(conn)
        elif behaviour == "tear-mid-reply":
            frame = encode_frame(ok_reply(pong=True))
            conn.sendall(frame[: len(frame) // 2])
            _rst_close(conn)
        elif behaviour == "bad-crc-reply":
            frame = bytearray(encode_frame(ok_reply(pong=True)))
            frame[-1] ^= 0x01
            conn.sendall(bytes(frame))
            conn.close()
        elif behaviour == "ok":
            send_frame(conn, ok_reply(pong=True))
            conn.close()
        else:  # pragma: no cover - script typo guard
            raise AssertionError(behaviour)

    def close(self) -> None:
        self.script.clear()
        try:
            self.listener.close()
        except OSError:
            pass
        self._thread.join(timeout=2.0)


def _client(server: _ScriptedServer, retries: int = 3) -> ServiceClient:
    return ServiceClient(
        "127.0.0.1", server.port,
        timeout_s=5.0, max_retries=retries, retry_delay_s=0.01,
    )


class TestIdempotentRetry:
    def test_reset_before_reply_is_retried_on_a_fresh_socket(self):
        server = _ScriptedServer(["reset-before-reply", "ok"])
        try:
            assert _client(server).ping()["pong"] is True
            assert server.connections == 2
        finally:
            server.close()

    def test_mid_frame_tear_is_retried(self):
        server = _ScriptedServer(["tear-mid-reply", "ok"])
        try:
            assert _client(server).ping()["pong"] is True
            assert server.connections == 2
        finally:
            server.close()

    def test_connect_refused_then_recovery(self):
        server = _ScriptedServer(["refuse-by-reset", "refuse-by-reset", "ok"])
        try:
            assert _client(server).ping()["pong"] is True
            assert server.connections == 3
        finally:
            server.close()

    def test_exhaustion_raises_service_error_with_attempt_count(self):
        server = _ScriptedServer(["reset-before-reply"] * 3)
        try:
            with pytest.raises(ServiceError, match="3 time"):
                _client(server, retries=2).ping()
            assert server.connections == 3
        finally:
            server.close()

    def test_unreachable_endpoint_raises_service_error(self):
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(
            "127.0.0.1", port, timeout_s=1.0,
            max_retries=1, retry_delay_s=0.01,
        )
        with pytest.raises(ServiceError, match="2 time"):
            client.ping()

    def test_frame_damage_is_not_retried(self):
        # Garbage from a live peer will be garbage again: one socket,
        # an immediate typed error, no retry storm.
        server = _ScriptedServer(["bad-crc-reply", "ok"])
        try:
            with pytest.raises(ProtocolError) as exc:
                _client(server).ping()
            assert exc.value.reason == "bad-crc"
            assert server.connections == 1
        finally:
            server.close()
