"""Framed wire protocol: round-trips, damage rejection, both transports."""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import pytest

from repro.errors import ProtocolError
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    recv_frame,
    read_frame,
    send_frame,
)

_HEADER_SIZE = 14


class TestRoundTrip:
    def test_json_frame(self):
        msg = {"type": "submit", "spec": {"app": "wordcount", "n": 3}}
        assert decode_frame(encode_frame(msg)) == msg

    def test_empty_object(self):
        assert decode_frame(encode_frame({})) == {}

    def test_unicode_payload(self):
        msg = {"text": "héllo wörld — ¤"}
        assert decode_frame(encode_frame(msg)) == msg

    def test_binary_frame(self):
        blob = bytes(range(256)) * 17
        out = decode_frame(encode_frame(blob))
        assert isinstance(out, bytes)
        assert out == blob

    def test_empty_binary_frame(self):
        assert decode_frame(encode_frame(b"")) == b""

    def test_json_encoding_is_canonical(self):
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b


class TestDamage:
    def test_truncated_header(self):
        frame = encode_frame({"x": 1})
        with pytest.raises(ProtocolError) as exc:
            decode_frame(frame[:_HEADER_SIZE - 3])
        assert exc.value.reason == "truncated"

    def test_truncated_payload(self):
        frame = encode_frame({"x": 1})
        with pytest.raises(ProtocolError) as exc:
            decode_frame(frame[:-2])
        assert exc.value.reason == "truncated"

    def test_corrupt_crc(self):
        frame = bytearray(encode_frame({"x": 1}))
        frame[-1] ^= 0xFF
        with pytest.raises(ProtocolError) as exc:
            decode_frame(bytes(frame))
        assert exc.value.reason == "bad-crc"

    def test_bad_magic(self):
        frame = encode_frame({"x": 1})
        with pytest.raises(ProtocolError) as exc:
            decode_frame(b"XXXX" + frame[4:])
        assert exc.value.reason == "bad-magic"

    def test_version_mismatch(self):
        header = struct.pack(
            ">4sBBII", b"RSVC", PROTOCOL_VERSION + 1, 0, 0, 0
        )
        with pytest.raises(ProtocolError) as exc:
            decode_frame(header)
        assert exc.value.reason == "version"

    def test_unknown_kind(self):
        header = struct.pack(">4sBBII", b"RSVC", PROTOCOL_VERSION, 7, 0, 0)
        with pytest.raises(ProtocolError) as exc:
            decode_frame(header)
        assert exc.value.reason == "bad-payload"

    def test_oversize_length_field(self):
        header = struct.pack(
            ">4sBBII", b"RSVC", PROTOCOL_VERSION, 0, 0, MAX_FRAME_BYTES + 1
        )
        with pytest.raises(ProtocolError) as exc:
            decode_frame(header)
        assert exc.value.reason == "oversize"

    def test_oversize_payload_refused_at_encode(self):
        with pytest.raises(ProtocolError) as exc:
            encode_frame(b"x" * (MAX_FRAME_BYTES + 1))
        assert exc.value.reason == "oversize"

    def test_non_json_payload(self):
        import zlib

        body = b"\xff\xfenot json"
        header = struct.pack(
            ">4sBBII", b"RSVC", PROTOCOL_VERSION, 0,
            zlib.crc32(body), len(body),
        )
        with pytest.raises(ProtocolError) as exc:
            decode_frame(header + body)
        assert exc.value.reason == "bad-payload"

    def test_json_array_payload_rejected(self):
        import json
        import zlib

        body = json.dumps([1, 2, 3]).encode()
        header = struct.pack(
            ">4sBBII", b"RSVC", PROTOCOL_VERSION, 0,
            zlib.crc32(body), len(body),
        )
        with pytest.raises(ProtocolError) as exc:
            decode_frame(header + body)
        assert exc.value.reason == "bad-payload"


class TestBlockingSockets:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        return a, b

    def test_send_recv_round_trip(self):
        a, b = self._pair()
        try:
            send_frame(a, {"hello": "world"})
            send_frame(a, b"\x00\x01binary")
            assert recv_frame(b) == {"hello": "world"}
            assert recv_frame(b) == b"\x00\x01binary"
        finally:
            a.close()
            b.close()

    def test_clean_close_between_frames_is_eof(self):
        a, b = self._pair()
        try:
            send_frame(a, {"one": 1})
            a.close()
            assert recv_frame(b) == {"one": 1}
            with pytest.raises(EOFError):
                recv_frame(b)
        finally:
            b.close()

    def test_close_mid_frame_is_truncated(self):
        a, b = self._pair()
        try:
            frame = encode_frame({"big": "x" * 1000})
            a.sendall(frame[: len(frame) // 2])
            a.close()
            with pytest.raises(ProtocolError) as exc:
                recv_frame(b)
            assert exc.value.reason == "truncated"
        finally:
            b.close()

    def test_large_frame_crosses_recv_chunks(self):
        blob = b"z" * 300_000
        a, b = self._pair()
        try:
            sender = threading.Thread(target=send_frame, args=(a, blob))
            sender.start()
            assert recv_frame(b) == blob
            sender.join(timeout=5.0)
        finally:
            a.close()
            b.close()


class TestAsyncioStreams:
    def _read(self, data: bytes, eof: bool = True):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            if eof:
                reader.feed_eof()
            return await read_frame(reader)

        return asyncio.run(scenario())

    def test_read_frame_round_trip(self):
        assert self._read(encode_frame({"a": [1, 2]})) == {"a": [1, 2]}

    def test_eof_between_frames(self):
        with pytest.raises(EOFError):
            self._read(b"")

    def test_eof_mid_header(self):
        with pytest.raises(ProtocolError) as exc:
            self._read(encode_frame({"a": 1})[:5])
        assert exc.value.reason == "truncated"

    def test_eof_mid_payload(self):
        with pytest.raises(ProtocolError) as exc:
            self._read(encode_frame({"a": 1})[:-1])
        assert exc.value.reason == "truncated"

    def test_corrupt_crc_over_stream(self):
        frame = bytearray(encode_frame({"a": 1}))
        frame[-1] ^= 0x01
        with pytest.raises(ProtocolError) as exc:
            self._read(bytes(frame))
        assert exc.value.reason == "bad-crc"


class TestStallDeadline:
    """The slow-loris guard: a started frame must finish on time."""

    def _pair(self):
        a, b = socket.socketpair()
        return a, b

    def test_half_written_frame_is_stalled_not_a_hang(self):
        a, b = self._pair()
        try:
            frame = encode_frame({"big": "z" * 256})
            a.sendall(frame[: len(frame) // 2])  # ... and then silence
            with pytest.raises(ProtocolError) as exc:
                recv_frame(b, timeout_s=0.3)
            assert exc.value.reason == "stalled"
            assert "mid-payload" in str(exc.value)
        finally:
            a.close()
            b.close()

    def test_half_written_header_is_stalled(self):
        a, b = self._pair()
        try:
            a.sendall(encode_frame({"x": 1})[:7])
            with pytest.raises(ProtocolError) as exc:
                recv_frame(b, timeout_s=0.3)
            assert exc.value.reason == "stalled"
            assert "mid-header" in str(exc.value)
        finally:
            a.close()
            b.close()

    def test_idle_ok_does_not_time_the_first_byte(self):
        a, b = self._pair()
        received = {}

        def reader():
            received["frame"] = recv_frame(b, timeout_s=0.3, idle_ok=True)

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        try:
            # Idle well past the stall deadline *between* frames: with
            # idle_ok that is a healthy quiet connection, not a stall.
            import time as _time

            _time.sleep(0.6)
            send_frame(a, {"late": True})
            t.join(timeout=5.0)
            assert received.get("frame") == {"late": True}
        finally:
            a.close()
            b.close()

    def test_idle_ok_still_bounds_a_started_frame(self):
        a, b = self._pair()
        try:
            frame = encode_frame({"big": "z" * 256})
            a.sendall(frame[: len(frame) - 3])
            with pytest.raises(ProtocolError) as exc:
                recv_frame(b, timeout_s=0.3, idle_ok=True)
            assert exc.value.reason == "stalled"
        finally:
            a.close()
            b.close()

    def test_async_read_frame_stall_deadline(self):
        async def scenario():
            got = {}

            async def on_conn(reader, writer):
                try:
                    await read_frame(reader, stall_timeout_s=0.3)
                except ProtocolError as exc:
                    got["reason"] = exc.reason
                finally:
                    writer.close()

            server = await asyncio.start_server(on_conn, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            _reader, writer = await asyncio.open_connection("127.0.0.1", port)
            frame = encode_frame({"big": "z" * 256})
            writer.write(frame[: len(frame) // 2])
            await writer.drain()
            await asyncio.sleep(0.8)  # stall well past the deadline
            writer.close()
            server.close()
            await server.wait_closed()
            return got

        got = asyncio.run(scenario())
        assert got.get("reason") == "stalled"

    def test_async_first_byte_wait_is_untimed(self):
        async def scenario():
            got = {}

            async def on_conn(reader, writer):
                got["frame"] = await read_frame(reader, stall_timeout_s=0.2)
                writer.close()

            server = await asyncio.start_server(on_conn, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            _reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await asyncio.sleep(0.5)  # idle between frames, not a stall
            writer.write(encode_frame({"late": True}))
            await writer.drain()
            await asyncio.sleep(0.2)
            writer.close()
            server.close()
            await server.wait_closed()
            return got

        got = asyncio.run(scenario())
        assert got.get("frame") == {"late": True}
