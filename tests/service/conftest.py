"""Fixtures for the service tests: live daemons run as subprocesses."""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _daemon_env() -> dict[str, str]:
    env = dict(os.environ)
    extra = env.get("PYTHONPATH")
    env["PYTHONPATH"] = _SRC + (os.pathsep + extra if extra else "")
    return env


def start_daemon(
    state_dir: Path, *extra: str, timeout_s: float = 30.0
) -> subprocess.Popen:
    """Launch ``repro serve`` and wait until it advertises its endpoint."""
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    log = open(state_dir / "daemon.log", "ab")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--state-dir", str(state_dir), *extra],
        env=_daemon_env(), stdout=log, stderr=subprocess.STDOUT,
    )
    log.close()
    endpoint = state_dir / "endpoint.json"
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if endpoint.exists():
            return proc
        if proc.poll() is not None:
            raise RuntimeError(
                "daemon exited before advertising an endpoint: "
                + (state_dir / "daemon.log").read_text()[-2000:]
            )
        time.sleep(0.02)
    proc.kill()
    raise RuntimeError(f"daemon did not come up within {timeout_s}s")


def stop_daemon(proc: subprocess.Popen, timeout_s: float = 30.0) -> None:
    if proc.poll() is None:
        proc.terminate()
        try:
            proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


@pytest.fixture
def daemon():
    """Factory launching daemons that are always torn down after the test."""
    procs: list[subprocess.Popen] = []

    def launch(state_dir: Path, *extra: str) -> subprocess.Popen:
        proc = start_daemon(state_dir, *extra)
        procs.append(proc)
        return proc

    yield launch
    for proc in procs:
        stop_daemon(proc)
