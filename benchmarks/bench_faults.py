"""Fault-hook overhead: what a clean run pays for injectability.

The injection sites sit on hot paths (chunk loads, record iteration,
map-task launch, spill writes), so they must cost ~nothing when no
plan is armed — the unarmed path is a ``None`` check — and stay cheap
when a plan arms *other* sites.  Expected shape: unarmed within noise
of the seed runtime; an armed-but-quiet plan within a few percent; a
firing plan pays only for its recoveries.
"""

from __future__ import annotations

from repro.apps.wordcount import make_wordcount_job, reference_wordcount
from repro.core.options import RuntimeOptions
from repro.core.supmr import run_ingest_mr
from repro.faults.plan import (
    SITE_INGEST_READ,
    SITE_SIM_DISK_SLOW,
    FaultPlan,
    FaultSpec,
)
from repro.faults.policy import RecoveryPolicy

#: Arms only a simulated-hardware site, so every runtime hook checks an
#: armed injector yet no runtime site ever fires.
QUIET_PLAN = FaultPlan(seed=0, specs=(
    FaultSpec(site=SITE_SIM_DISK_SLOW, at_s=1.0),
))

FIRING_PLAN = FaultPlan(seed=0, specs=(
    FaultSpec(site=SITE_INGEST_READ, once_per_scope=True),
))

FAST_RECOVERY = RecoveryPolicy(backoff_base_s=0.0)


def _run(text_file, plan=None):
    options = RuntimeOptions.supmr_interfile("64KB")
    if plan is not None:
        options = options.with_(fault_plan=plan, recovery=FAST_RECOVERY)
    return run_ingest_mr(make_wordcount_job([text_file]), options)


def test_wordcount_no_plan(benchmark, bench_text_file):
    """Baseline: hooks present, no plan armed (the common case)."""
    result = benchmark(_run, bench_text_file)
    assert result.fault_log is None


def test_wordcount_armed_quiet_plan(benchmark, bench_text_file):
    """A plan is armed but no runtime site fires: per-site dict misses."""
    result = benchmark(_run, bench_text_file, QUIET_PLAN)
    assert result.fault_log is not None
    assert result.fault_log.injected == 0


def test_wordcount_firing_plan(benchmark, bench_text_file):
    """One transient read error per chunk, all recovered."""
    result = benchmark(_run, bench_text_file, FIRING_PLAN)
    assert result.fault_log.injected == result.n_chunks
    assert result.fault_log.recoveries == result.n_chunks


def test_overhead_shape(bench_text_file, capsys):
    """Armed-but-quiet must not change the output; report the deltas."""
    import time

    def timed(plan=None):
        t0 = time.perf_counter()
        result = _run(bench_text_file, plan)
        return time.perf_counter() - t0, result

    base_s, base = timed()
    quiet_s, quiet = timed(QUIET_PLAN)
    firing_s, firing = timed(FIRING_PLAN)
    reference = reference_wordcount([bench_text_file])
    assert dict(base.output) == reference
    assert dict(quiet.output) == reference
    assert dict(firing.output) == reference
    with capsys.disabled():
        print(
            f"\nfault-hook overhead: no plan {base_s * 1e3:.1f} ms, "
            f"armed-quiet {quiet_s * 1e3:.1f} ms "
            f"({(quiet_s / base_s - 1) * 100:+.1f}%), "
            f"firing {firing_s * 1e3:.1f} ms "
            f"({(firing_s / base_s - 1) * 100:+.1f}%)"
        )
