"""Fig. 6: SupMR's p-way merge removes the step-down (3.13x merge speedup).

Simulated at paper scale, plus a real-data miniature comparing the two
merge algorithms on actual sorted runs: the p-way merge must touch each
item exactly once while pairwise merging re-touches items once per
round.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig6
from repro.simrt.costmodel import GB_SI, PAPER_SORT
from repro.simrt.supmr_sim import simulate_supmr_job
from repro.sortlib.merge_sort import pairwise_merge_sort, total_items_scanned
from repro.sortlib.pway import pway_merge


def test_fig6_simulated_merge_speedup(benchmark):
    supmr = benchmark(
        simulate_supmr_job, PAPER_SORT, 60 * GB_SI, 1 * GB_SI,
        monitor_interval=10.0,
    )
    assert supmr.timings.merge_s == pytest.approx(61.14, rel=0.01)
    # merge window never drops below full occupancy (no step-down)
    span = [s for s in supmr.spans if s.name == "merge"][0]
    busy = [s.busy_pct for s in supmr.samples
            if span.start <= s.time <= span.end]
    assert min(busy) > 90


def test_fig6_real_pway_vs_pairwise(benchmark, bench_terasort_file):
    """Measure the p-way merge on real sorted runs; compare work counts."""
    from repro.io.records import TeraRecordCodec

    codec = TeraRecordCodec()
    pairs = list(codec.iter_pairs(bench_terasort_file.read_bytes()))
    n_runs = 32
    runs = [sorted(pairs[i::n_runs], key=lambda kv: kv[0])
            for i in range(n_runs)]

    merged = benchmark(pway_merge, runs, 8, key=lambda kv: kv[0])
    reference, rounds = pairwise_merge_sort(runs, key=lambda kv: kv[0])
    assert merged == reference
    assert rounds == 5  # log2(32) re-scan rounds for the baseline

    # work accounting: pairwise touches ~5x the items the single pass does
    touches = total_items_scanned([len(r) for r in runs])
    assert touches == pytest.approx(5 * len(pairs), rel=0.01)


def test_fig6_report(benchmark, capsys):
    result = benchmark.pedantic(
        fig6.run, kwargs={"monitor_interval": 5.0}, rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    (speedup,) = result.comparisons
    assert speedup.measured == pytest.approx(3.13, rel=0.02)
