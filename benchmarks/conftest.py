"""Benchmark fixtures: medium-size real inputs, shared across benches.

The ``bench_*`` files pair a pytest-benchmark measurement with the
paper-shape assertions for the table/figure they regenerate; run them
with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workloads import (
    generate_small_files,
    generate_terasort_file,
    generate_text_file,
)


@pytest.fixture(scope="session")
def bench_text_file(tmp_path_factory: pytest.TempPathFactory) -> Path:
    """~2 MB text corpus for real-runtime benches."""
    path = tmp_path_factory.mktemp("bench") / "corpus.txt"
    generate_text_file(path, 2_000_000, vocab_size=2000, seed=101)
    return path


@pytest.fixture(scope="session")
def bench_terasort_file(tmp_path_factory: pytest.TempPathFactory) -> Path:
    """20k terasort records (~2 MB)."""
    path = tmp_path_factory.mktemp("bench") / "records.dat"
    generate_terasort_file(path, 20_000, seed=102)
    return path


@pytest.fixture(scope="session")
def bench_small_files(tmp_path_factory: pytest.TempPathFactory) -> list[Path]:
    """30 files x 50 KB for intra-file chunking benches."""
    directory = tmp_path_factory.mktemp("bench") / "many"
    return generate_small_files(directory, 30, 50_000, vocab_size=1000, seed=103)
