"""Out-of-core ablation: memory budget vs wall time and spilled bytes.

The spill subsystem trades disk traffic for a hard memory ceiling; this
bench quantifies the trade on an MB-scale word count.  Expected shape:
halving the budget multiplies spill runs (and spilled bytes) while the
output stays byte-identical — the overhead is the price of the ceiling,
not a correctness risk.
"""

from __future__ import annotations

from repro.analysis.tables import AsciiTable
from repro.apps.wordcount import make_wordcount_job
from repro.core.phoenix import PhoenixRuntime
from repro.core.options import RuntimeOptions
from repro.util.units import fmt_bytes, fmt_seconds

BUDGETS = ["1MB", "512KB", "128KB"]


def _run(text_file, budget=None):
    options = RuntimeOptions.baseline()
    if budget is not None:
        options = options.with_(memory_budget=budget)
    return PhoenixRuntime(options).run(make_wordcount_job([text_file]))


def test_wordcount_in_memory(benchmark, bench_text_file):
    result = benchmark(_run, bench_text_file)
    assert result.spill_stats is None


def test_wordcount_budget_1mb(benchmark, bench_text_file):
    result = benchmark(_run, bench_text_file, "1MB")
    assert result.spill_stats.within_budget


def test_wordcount_budget_128kb(benchmark, bench_text_file):
    result = benchmark(_run, bench_text_file, "128KB")
    assert result.spill_stats.within_budget


def test_budget_sweep_shape(bench_text_file, capsys):
    """Tighter budgets spill more; output never changes."""
    reference = _run(bench_text_file)
    table = AsciiTable(
        ["budget", "runs", "spilled", "peak/budget", "spill time", "total"]
    )
    t = reference.timings
    table.add_row("unlimited", "0", "-", "-", "-", fmt_seconds(t.total_s))
    prev_runs = 0
    for budget in BUDGETS:
        result = _run(bench_text_file, budget)
        assert result.output == reference.output  # byte-identical
        s = result.spill_stats
        assert s.within_budget
        assert s.runs > prev_runs  # tighter budget => more runs
        prev_runs = s.runs
        table.add_row(
            budget, str(s.runs), fmt_bytes(s.spilled_bytes),
            f"{fmt_bytes(s.peak_accounted_bytes)}/{fmt_bytes(s.budget_bytes)}",
            fmt_seconds(s.spill_write_s),
            fmt_seconds(result.timings.total_s),
        )
    with capsys.disabled():
        print()
        print(table.render())
