"""Ablation: container choice (section V.B).

Word-count-shaped jobs (many duplicate keys) want the hash container's
on-insert combining; sort-shaped jobs (unique keys) want the unlocked
array container.  Measured on real data with the real runtime: the
pairing the paper prescribes must dominate on intermediate-set size, and
the wrong container for sort must do strictly more bookkeeping work.
"""

from __future__ import annotations

from repro.analysis.tables import AsciiTable
from repro.containers import ArrayContainer, HashContainer, ListCombiner, SumCombiner
from repro.core.job import JobSpec
from repro.core.phoenix import PhoenixRuntime
from repro.io.records import TeraRecordCodec, TextCodec

_TEXT = TextCodec()
_TERA = TeraRecordCodec()


def _wc_job(path, container_factory):
    def map_fn(ctx):
        for word in _TEXT.iter_words(ctx.data):
            ctx.emit(word, 1)

    def reduce_fn(key, values):
        yield (key, sum(values) if isinstance(values[0], int) else len(values))

    return JobSpec(name="wc", inputs=(path,), map_fn=map_fn,
                   reduce_fn=reduce_fn, container_factory=container_factory,
                   codec=_TEXT)


def _sort_job(path, container_factory):
    def map_fn(ctx):
        for key, payload in _TERA.iter_pairs(ctx.data):
            ctx.emit(key, payload)

    def reduce_fn(key, values):
        for value in values:
            yield (key, value)

    return JobSpec(name="sort", inputs=(path,), map_fn=map_fn,
                   reduce_fn=reduce_fn, container_factory=container_factory,
                   codec=_TERA)


def test_wordcount_hash_container(benchmark, bench_text_file):
    result = benchmark(
        PhoenixRuntime().run,
        _wc_job(bench_text_file, lambda: HashContainer(SumCombiner())),
    )
    stats = result.container_stats
    # combining collapses the intermediate set dramatically
    assert stats.distinct_keys < stats.emits / 20


def test_wordcount_array_container_wrong_choice(benchmark, bench_text_file):
    result = benchmark(
        PhoenixRuntime().run, _wc_job(bench_text_file, ArrayContainer),
    )
    stats = result.container_stats
    # no combining: the intermediate set is the whole input's words
    assert stats.distinct_keys == stats.emits


def test_sort_array_container(benchmark, bench_terasort_file):
    result = benchmark(
        PhoenixRuntime().run, _sort_job(bench_terasort_file, ArrayContainer),
    )
    assert result.n_output_pairs == 20_000


def test_sort_hash_container_wrong_choice(benchmark, bench_terasort_file):
    result = benchmark(
        PhoenixRuntime().run,
        _sort_job(bench_terasort_file, lambda: HashContainer(ListCombiner())),
    )
    assert result.n_output_pairs == 20_000


def test_container_pairing_summary(bench_text_file, bench_terasort_file,
                                   capsys):
    rows = []
    for app, path, factory, label in (
        ("wordcount", bench_text_file,
         lambda: HashContainer(SumCombiner()), "hash (paper choice)"),
        ("wordcount", bench_text_file, ArrayContainer, "array"),
        ("sort", bench_terasort_file, ArrayContainer, "array (paper choice)"),
        ("sort", bench_terasort_file,
         lambda: HashContainer(ListCombiner()), "hash"),
    ):
        job = (_wc_job if app == "wordcount" else _sort_job)(path, factory)
        result = PhoenixRuntime().run(job)
        rows.append((app, label, result.container_stats.emits,
                     result.container_stats.distinct_keys,
                     f"{result.timings.total_s:.3f}"))
    table = AsciiTable(["app", "container", "emits", "cells", "total (s)"])
    for row in rows:
        table.add_row(*row)
    with capsys.disabled():
        print()
        print(table.render())
