"""Ablation: ingest chunk size sweep (Conclusion 2).

Two levels: the paper-scale simulated sweep (total time is U-shaped-ish:
tiny chunks pay round overhead, huge chunks lose overlap) and a
real-runtime sweep on actual bytes where the pipelined read+map must
never lose to the baseline by more than the thread-churn overhead.
"""

from __future__ import annotations

from repro.analysis.tables import AsciiTable
from repro.apps.wordcount import make_wordcount_job
from repro.core.options import RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.core.supmr import run_ingest_mr
from repro.simrt.costmodel import GB_SI, PAPER_WORDCOUNT
from repro.simrt.phoenix_sim import simulate_phoenix_job
from repro.simrt.supmr_sim import simulate_supmr_job

SIM_CHUNKS_GB = (0.25, 0.5, 1, 2, 5, 10, 25, 50, 100)


def test_simulated_chunk_sweep(benchmark, capsys):
    def sweep():
        baseline = simulate_phoenix_job(PAPER_WORDCOUNT, 155 * GB_SI,
                                        monitor_interval=20.0)
        rows = [("none", baseline.timings.total_s)]
        for gb in SIM_CHUNKS_GB:
            run = simulate_supmr_job(PAPER_WORDCOUNT, 155 * GB_SI, gb * GB_SI,
                                     monitor_interval=20.0)
            rows.append((f"{gb}GB", run.timings.total_s))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = AsciiTable(["chunk size", "total (s)", "speedup vs none"])
    base_total = rows[0][1]
    for label, total in rows:
        table.add_row(label, f"{total:.2f}", f"{base_total / total:.3f}x")
    with capsys.disabled():
        print()
        print(table.render())

    totals = dict(rows)
    # every chunked configuration beats the baseline...
    assert all(t < totals["none"] for label, t in rows if label != "none")
    # ...and small chunks beat large chunks (Conclusion 2)
    assert totals["1GB"] < totals["50GB"] < totals["none"]


def test_real_chunk_sweep(benchmark, bench_text_file, capsys):
    """Real-runtime sweep at MB scale: output identical, rounds scale."""
    job = lambda: make_wordcount_job([bench_text_file])  # noqa: E731
    baseline = PhoenixRuntime().run(job())

    def sweep():
        out = {}
        for size in ("64KB", "256KB", "1MB"):
            out[size] = run_ingest_mr(
                job(), RuntimeOptions.supmr_interfile(size)
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = AsciiTable(["chunk", "chunks", "read+map (s)", "total (s)"])
    for size, result in results.items():
        table.add_row(size, result.n_chunks,
                      f"{result.timings.read_map_s:.3f}",
                      f"{result.timings.total_s:.3f}")
    with capsys.disabled():
        print()
        print(table.render())
    for result in results.values():
        assert result.output == baseline.output
    assert results["64KB"].n_chunks > results["1MB"].n_chunks
