"""Ablation: merge algorithm (Conclusion 3) — pairwise vs p-way vs
sample sort, on real data and in the simulated testbed.

The paper's merge claim reduces to work accounting: pairwise merging of
k runs re-scans every item ceil(log2 k) times, the p-way pass scans each
item once (with a log2 k heap factor folded into per-item cost but no
re-scans).  At real-data scale under the GIL the wall-clock gap is
modest; the *scan counts* and the simulated wall-clock carry the claim.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import AsciiTable
from repro.simrt.costmodel import GB_SI, PAPER_SORT
from repro.simrt.supmr_sim import simulate_supmr_job
from repro.sortlib.merge_sort import pairwise_merge_sort, total_items_scanned
from repro.sortlib.pway import pway_merge
from repro.sortlib.samplesort import sample_sort


def _make_runs(n_runs=32, per_run=2000, seed=7):
    rng = random.Random(seed)
    return [sorted(rng.randrange(10**6) for _ in range(per_run))
            for _ in range(n_runs)]


def test_merge_pairwise_baseline(benchmark):
    runs = _make_runs()
    merged, rounds = benchmark(pairwise_merge_sort, runs)
    assert rounds == 5
    assert len(merged) == 64_000


def test_merge_pway(benchmark):
    runs = _make_runs()
    merged = benchmark(pway_merge, runs, 8)
    assert merged == sorted(x for r in runs for x in r)


def test_merge_samplesort_extension(benchmark):
    items = [x for r in _make_runs() for x in r]
    merged = benchmark(sample_sort, items, 8)
    assert merged == sorted(items)


def test_scan_count_accounting(capsys):
    """The mechanism behind the 3.13x: re-scan counts per algorithm."""
    runs = _make_runs()
    n = sum(len(r) for r in runs)
    pairwise_touches = total_items_scanned([len(r) for r in runs])
    pway_touches = n  # single pass
    table = AsciiTable(["algorithm", "items touched", "vs single pass"])
    table.add_row("pairwise 2-way rounds", pairwise_touches,
                  f"{pairwise_touches / n:.2f}x")
    table.add_row("p-way single pass", pway_touches, "1.00x")
    with capsys.disabled():
        print()
        print(table.render())
    assert pairwise_touches == 5 * n


def test_simulated_merge_algorithm_swap(benchmark):
    """SupMR with the old merge keeps the step-down; p-way removes it."""
    pway = benchmark.pedantic(
        simulate_supmr_job, args=(PAPER_SORT, 60 * GB_SI, 1 * GB_SI),
        kwargs={"monitor_interval": 10.0, "merge_algorithm": "pway"},
        rounds=1, iterations=1,
    )
    pairwise = simulate_supmr_job(PAPER_SORT, 60 * GB_SI, 1 * GB_SI,
                                  monitor_interval=10.0,
                                  merge_algorithm="pairwise")
    assert pairwise.timings.merge_s == pytest.approx(191.23, rel=0.01)
    assert pway.timings.merge_s == pytest.approx(61.14, rel=0.01)
    # the merge fix alone is worth ~130 s of the 125 s total win (the
    # chunked ingest gives some back on sort — see Table II)
    assert pairwise.timings.total_s - pway.timings.total_s == pytest.approx(
        130.0, abs=3.0
    )
