"""Fig. 1: baseline sort is bottlenecked by ingest and merge.

Benchmarks the trace-producing simulation and asserts the figure's
shape: long low-utilization ingest, brief compute spike, step-down merge
tail, compute window under 25% of the job.
"""

from __future__ import annotations

from repro.analysis.traces import step_levels
from repro.experiments import fig1
from repro.simrt.costmodel import GB_SI, PAPER_SORT
from repro.simrt.phoenix_sim import simulate_phoenix_job


def test_fig1_trace(benchmark, capsys):
    result = benchmark(
        simulate_phoenix_job, PAPER_SORT, 60 * GB_SI, monitor_interval=2.0,
    )
    t = result.timings

    # ingest dominates and runs at iowait-only utilization
    ingest_busy = [s.busy_pct for s in result.samples if s.time < t.read_s]
    assert t.read_s / t.total_s > 0.4
    assert max(ingest_busy) < 5.0

    # the merge tail steps down through halving plateaus
    merge_span = [s for s in result.spans if s.name == "merge"][0]
    levels = [lv for lv in step_levels(result.samples, merge_span.start,
                                       merge_span.end) if lv > 1.0]
    assert len(levels) >= 5
    assert all(a >= b for a, b in zip(levels, levels[1:]))

    # compute (map+reduce) is a small sliver of the job (paper: < 25%)
    assert (t.map_s + t.reduce_s) / t.total_s < 0.25


def test_fig1_report(benchmark, capsys):
    result = benchmark.pedantic(
        fig1.run, kwargs={"monitor_interval": 2.0}, rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    assert any("step curve descends: True" in n for n in result.notes)
