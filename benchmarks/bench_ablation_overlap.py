"""Ablation: does the ingest pipeline's overlap pay on real hardware?

Runs the real SupMR runtime with the ingest thread enabled vs disabled
on real files (file reads release the GIL, so overlap is genuine), and a
map-complexity sweep (Conclusions 1 & 4): the heavier the per-byte map
work, the more the pipeline hides.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import AsciiTable
from repro.apps.wordcount import make_wordcount_job
from repro.core.options import RuntimeOptions
from repro.core.supmr import run_ingest_mr
from repro.simrt.costmodel import GB_SI, PAPER_WORDCOUNT
from repro.simrt.supmr_sim import simulate_supmr_job


def test_real_pipelined_run(benchmark, bench_text_file):
    result = benchmark(
        run_ingest_mr, make_wordcount_job([bench_text_file]),
        RuntimeOptions.supmr_interfile("256KB"),
    )
    assert result.n_chunks == 8


def test_real_unpipelined_run(benchmark, bench_text_file):
    result = benchmark(
        run_ingest_mr, make_wordcount_job([bench_text_file]),
        RuntimeOptions.supmr_interfile("256KB", pipelined_ingest=False),
    )
    assert result.n_chunks == 8


def test_simulated_overlap_gain_tracks_map_share(benchmark, capsys):
    """Conclusion 1/4: pipeline benefit grows with map-phase weight."""
    from dataclasses import replace

    def sweep():
        rows = []
        for factor in (1.0, 2.0, 4.0, 8.0):
            profile = replace(
                PAPER_WORDCOUNT, name=f"wc-x{factor:g}",
                map_bw_per_ctx=PAPER_WORDCOUNT.map_bw_per_ctx / factor,
            )
            piped = simulate_supmr_job(profile, 20 * GB_SI, 1 * GB_SI,
                                       monitor_interval=20.0)
            serial = simulate_supmr_job(profile, 20 * GB_SI, 1 * GB_SI,
                                        monitor_interval=20.0,
                                        pipelined=False)
            saved = serial.timings.total_s - piped.timings.total_s
            rows.append((factor, saved, piped.timings.total_s))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = AsciiTable(["map cost x", "overlap saves (s)", "piped total (s)"])
    for factor, saved, total in rows:
        table.add_row(f"{factor:g}", f"{saved:.2f}", f"{total:.2f}")
    with capsys.disabled():
        print()
        print(table.render())
    savings = [saved for _f, saved, _t in rows]
    assert savings == sorted(savings)  # heavier map => more hidden
    assert savings[-1] > 4 * savings[0]


def test_overlap_bounded_by_map_time(benchmark):
    """The pipeline can hide at most the overlapped map work."""
    piped = benchmark.pedantic(
        simulate_supmr_job, args=(PAPER_WORDCOUNT, 20 * GB_SI, 1 * GB_SI),
        kwargs={"monitor_interval": 20.0}, rounds=1, iterations=1,
    )
    serial = simulate_supmr_job(PAPER_WORDCOUNT, 20 * GB_SI, 1 * GB_SI,
                                monitor_interval=20.0, pipelined=False)
    saved = serial.timings.total_s - piped.timings.total_s
    overlappable_map = PAPER_WORDCOUNT.map_wall_s(19 * GB_SI, 32)
    assert saved <= overlappable_map * 1.05
    assert saved == pytest.approx(overlappable_map, rel=0.15)
