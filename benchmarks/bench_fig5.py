"""Fig. 5: word count utilization across chunk sizes (none / 1 GB / 50 GB).

Asserts the figure's qualitative claims — small chunks give dense spikes
and the best ingest/map speedup; large chunks give sparse spikes; no
chunks gives a long 0%-busy ingest — and the quoted 1.16x speedup.
"""

from __future__ import annotations

import pytest

from repro.analysis.traces import mean_utilization
from repro.experiments import fig5
from repro.simrt.costmodel import GB_SI, PAPER_WORDCOUNT
from repro.simrt.phoenix_sim import simulate_phoenix_job
from repro.simrt.supmr_sim import simulate_supmr_job

WC = 155 * GB_SI


def test_fig5_traces_and_speedups(benchmark):
    traces = benchmark.pedantic(
        fig5.run_traces, kwargs={"monitor_interval": 5.0}, rounds=1,
        iterations=1,
    )
    base = traces["none"].timings
    sp_1gb = (base.read_s + base.map_s) / traces["1GB"].timings.read_map_s
    sp_50gb = (base.read_s + base.map_s) / traces["50GB"].timings.read_map_s
    assert sp_1gb == pytest.approx(1.16, rel=0.02)
    assert sp_50gb == pytest.approx(1.12, rel=0.03)
    assert sp_1gb > sp_50gb  # smaller chunks win (Conclusion 2)

    # utilization during the ingest window: chunked >> unchunked
    busy_none = mean_utilization(
        traces["none"].samples, 0, base.read_s, busy_only=True)
    busy_1gb = mean_utilization(
        traces["1GB"].samples, 0, traces["1GB"].timings.read_map_s,
        busy_only=True)
    assert busy_none < 1.0
    assert busy_1gb > 10.0


def test_fig5_spike_density(benchmark):
    """1 GB chunks spike every ~2.6 s; 50 GB chunks every ~130 s."""
    small = benchmark.pedantic(
        simulate_supmr_job, args=(PAPER_WORDCOUNT, WC, 1 * GB_SI),
        kwargs={"monitor_interval": 1.0}, rounds=1, iterations=1,
    )
    large = simulate_supmr_job(PAPER_WORDCOUNT, WC, 50 * GB_SI,
                               monitor_interval=1.0)

    def spike_count(result):
        window = [s for s in result.samples
                  if s.time <= result.timings.read_map_s]
        spikes = 0
        prev_high = False
        for s in window:
            high = s.busy_pct > 50.0
            if high and not prev_high:
                spikes += 1
            prev_high = high
        return spikes

    assert spike_count(small) > 10 * max(1, spike_count(large))


def test_fig5_report(benchmark, capsys):
    result = benchmark.pedantic(
        fig5.run, kwargs={"monitor_interval": 5.0}, rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    assert all(c.relative_error < 0.05 for c in result.comparisons)
