"""Ablation: chunk size over HDFS (robustness of Conclusion 4).

Fig. 7's lesson is that the HDFS case is link-bound: the pipeline can
only hide the (tiny) map phase, so *no* chunk size buys more than a few
seconds — and too-small chunks start losing to per-read overheads.
"""

from __future__ import annotations

from repro.analysis.tables import AsciiTable
from repro.simrt.costmodel import GB_SI
from repro.simrt.hdfs_case import simulate_hdfs_case_study

SWEEP_GB = (0.5, 1.0, 2.0, 5.0, 10.0)


def test_hdfs_chunk_size_sweep(benchmark, capsys):
    def sweep():
        return {
            gb: simulate_hdfs_case_study(chunk_bytes=gb * GB_SI,
                                         monitor_interval=10.0)
            for gb in SWEEP_GB
        }

    cases = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = AsciiTable(["chunk", "baseline (s)", "supmr (s)", "speedup (s)"])
    for gb, case in cases.items():
        table.add_row(f"{gb:g}GB", f"{case.baseline.timings.total_s:.1f}",
                      f"{case.supmr.timings.total_s:.1f}",
                      f"{case.speedup_seconds:.1f}")
    with capsys.disabled():
        print()
        print(table.render())

    speedups = [case.speedup_seconds for case in cases.values()]
    # Conclusion 4 is chunk-size-robust: every configuration's win is
    # single-digit seconds on a ~260 s job ...
    assert all(0 < s < 15 for s in speedups)
    # ... and tiny chunks do worse than mid-size ones (per-read overhead
    # eats the already-small map overlap)
    assert cases[0.5].speedup_seconds <= cases[2.0].speedup_seconds + 0.5
