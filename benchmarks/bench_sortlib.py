"""Micro-benchmarks of the sort library primitives.

Not a paper artifact per se, but the substrate the merge claims rest on;
useful for tracking regressions in the hot paths.
"""

from __future__ import annotations

import random

from repro.sortlib.kway import kway_merge
from repro.sortlib.merge_sort import pairwise_merge_sort
from repro.sortlib.multiway_partition import multiway_partition
from repro.sortlib.parallel_sort import parallel_sort
from repro.sortlib.pway import pway_merge


def _runs(k=16, n=4000, seed=11):
    rng = random.Random(seed)
    return [sorted(rng.randrange(1 << 30) for _ in range(n)) for _ in range(k)]


def test_bench_kway_merge(benchmark):
    # key=None: delegates straight to heapq.merge (the fast path).
    runs = _runs()
    out = benchmark(kway_merge, runs)
    assert len(out) == 64_000


def test_bench_kway_merge_keyed(benchmark):
    # Explicit identity key: the decorated-tuple heap loop.  The gap
    # between this and the test above is the cost of key decoration.
    runs = _runs()
    out = benchmark(kway_merge, runs, lambda x: x)
    assert len(out) == 64_000


def test_bench_pairwise_merge(benchmark):
    runs = _runs()
    out, _rounds = benchmark(pairwise_merge_sort, runs)
    assert len(out) == 64_000


def test_bench_pway_merge(benchmark):
    runs = _runs()
    out = benchmark(pway_merge, runs, 8)
    assert len(out) == 64_000


def test_bench_multiway_partition(benchmark):
    runs = _runs()
    bounds = benchmark(multiway_partition, runs, 16)
    assert len(bounds) == 17


def test_bench_parallel_sort(benchmark):
    rng = random.Random(13)
    data = [rng.randrange(1 << 30) for _ in range(64_000)]
    out = benchmark(parallel_sort, data, 8)
    assert out[0] <= out[-1]


def test_bench_builtin_sorted_reference(benchmark):
    """Timsort reference point for the parallel_sort numbers above."""
    rng = random.Random(13)
    data = [rng.randrange(1 << 30) for _ in range(64_000)]
    out = benchmark(sorted, data)
    assert len(out) == 64_000
