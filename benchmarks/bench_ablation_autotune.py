"""Ablation: the future-work chunk-size tuners vs fixed sizes.

Quantifies what the paper left on the table: the model-based optimum
and the online feedback loop vs the paper's hand-picked 1 GB / 50 GB,
on the simulated testbed.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import AsciiTable
from repro.simrt.costmodel import GB_SI, PAPER_WORDCOUNT
from repro.simrt.supmr_sim import simulate_supmr_job
from repro.tuning.adaptive_sim import simulate_supmr_adaptive
from repro.tuning.feedback import FeedbackTuner
from repro.tuning.model import optimal_chunk_size

WC = 155 * GB_SI
INTERVAL = 50.0


def test_model_tuner(benchmark):
    result = benchmark(optimal_chunk_size, PAPER_WORDCOUNT, WC)
    # the tuner's pick must beat both of the paper's hand choices
    for paper_gb in (1, 50):
        fixed = simulate_supmr_job(PAPER_WORDCOUNT, WC, paper_gb * GB_SI,
                                   monitor_interval=INTERVAL)
        assert result.predicted_read_map_s <= fixed.timings.read_map_s + 0.01


def test_feedback_tuner_cold_start(benchmark):
    def run():
        tuner = FeedbackTuner(
            initial_chunk_bytes=0.25 * GB_SI,
            round_overhead_s=PAPER_WORDCOUNT.round_overhead_s,
        )
        return simulate_supmr_adaptive(PAPER_WORDCOUNT, WC, tuner,
                                       monitor_interval=INTERVAL)

    adaptive = benchmark.pedantic(run, rounds=1, iterations=1)
    fixed_1gb = simulate_supmr_job(PAPER_WORDCOUNT, WC, 1 * GB_SI,
                                   monitor_interval=INTERVAL)
    # a cold-started feedback loop beats the paper's tuned-by-hand 1 GB
    assert adaptive.timings.total_s < fixed_1gb.timings.total_s


def test_tuner_summary_table(benchmark, capsys):
    def build():
        rows = []
        for label, chunk_gb in (("paper 1GB", 1), ("paper 50GB", 50)):
            run = simulate_supmr_job(PAPER_WORDCOUNT, WC, chunk_gb * GB_SI,
                                     monitor_interval=INTERVAL)
            rows.append((label, run.timings.read_map_s, run.timings.total_s))
        best = optimal_chunk_size(PAPER_WORDCOUNT, WC)
        model_run = simulate_supmr_job(PAPER_WORDCOUNT, WC, best.chunk_bytes,
                                       monitor_interval=INTERVAL)
        rows.append((f"model tuner ({best.chunk_bytes / GB_SI:.1f}GB)",
                     model_run.timings.read_map_s, model_run.timings.total_s))
        tuner = FeedbackTuner(initial_chunk_bytes=0.25 * GB_SI,
                              round_overhead_s=PAPER_WORDCOUNT.round_overhead_s)
        adaptive = simulate_supmr_adaptive(PAPER_WORDCOUNT, WC, tuner,
                                           monitor_interval=INTERVAL)
        rows.append(("feedback tuner (cold)", adaptive.timings.read_map_s,
                     adaptive.timings.total_s))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = AsciiTable(["configuration", "read+map (s)", "total (s)"])
    for label, read_map, total in rows:
        table.add_row(label, f"{read_map:.2f}", f"{total:.2f}")
    with capsys.disabled():
        print()
        print(table.render())
    totals = {label: total for label, _rm, total in rows}
    assert totals[min(totals, key=totals.get)] not in (
        totals["paper 50GB"],
    )
