"""Headline claims (abstract / section VI): speedup and utilization ranges."""

from __future__ import annotations

import pytest

from repro.experiments import claims


def test_claims_report(benchmark, capsys):
    result = benchmark.pedantic(
        claims.run, kwargs={"monitor_interval": 5.0}, rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    by_metric = {c.metric: c for c in result.comparisons}
    # 1.16x - 3.13x phase speedups
    assert by_metric["min phase speedup"].measured == pytest.approx(1.16, abs=0.04)
    assert by_metric["max phase speedup"].measured == pytest.approx(3.13, rel=0.02)
    # 1.10x - 1.46x time-to-result speedups
    assert by_metric["max time-to-result speedup"].measured == pytest.approx(
        1.46, rel=0.02
    )
    assert 1.05 <= by_metric["min time-to-result speedup"].measured <= 1.20
