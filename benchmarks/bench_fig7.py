"""Fig. 7: HDFS case study — high utilization, ~7 s end-to-end speedup."""

from __future__ import annotations

import pytest

from repro.analysis.traces import mean_utilization
from repro.experiments import fig7
from repro.simrt.hdfs_case import simulate_hdfs_case_study


def test_fig7_case_study(benchmark):
    case = benchmark.pedantic(
        simulate_hdfs_case_study, kwargs={"monitor_interval": 5.0},
        rounds=1, iterations=1,
    )
    # the paper's headline: ~7 s despite full overlap
    assert case.speedup_seconds == pytest.approx(7.0, abs=1.5)
    # utilization during ingest rises markedly...
    base_util = mean_utilization(case.baseline.samples, 0,
                                 case.baseline.timings.read_s)
    supmr_util = mean_utilization(case.supmr.samples, 0,
                                  case.supmr.timings.read_map_s)
    assert supmr_util > 2 * base_util
    # ...but the job is link-bound: the map phase is a tiny fraction
    assert (case.baseline.timings.map_s
            / case.baseline.timings.total_s) < 0.08


def test_fig7_longer_map_phase_would_help(benchmark):
    """Conclusion 4 corollary: more map work per byte => bigger speedup."""
    from dataclasses import replace

    from repro.simrt.costmodel import PAPER_WORDCOUNT

    slow_map = replace(PAPER_WORDCOUNT, name="wordcount-slme",
                       map_bw_per_ctx=PAPER_WORDCOUNT.map_bw_per_ctx / 4)
    fast_case = benchmark.pedantic(
        simulate_hdfs_case_study, kwargs={"monitor_interval": 10.0},
        rounds=1, iterations=1,
    )
    slow_case = simulate_hdfs_case_study(profile=slow_map,
                                         monitor_interval=10.0)
    assert slow_case.speedup_seconds > 2 * fast_case.speedup_seconds


def test_fig7_report(benchmark, capsys):
    result = benchmark.pedantic(
        fig7.run, kwargs={"monitor_interval": 5.0}, rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    (speedup,) = result.comparisons
    assert abs(speedup.measured - 7.0) < 1.5
