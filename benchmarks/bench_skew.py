"""Ablation: merge behaviour under key skew.

The p-way merge's balance rests on multisequence selection cutting the
*output* into equal ranges — which holds regardless of key distribution.
Sample sort, the classic alternative, partitions by value and suffers
under skew.  This bench quantifies the difference on Zipf-distributed
keys (duplicate-heavy, like word counts) vs uniform keys.
"""

from __future__ import annotations

import random

import numpy as np

from repro.analysis.tables import AsciiTable
from repro.sortlib.multiway_partition import multiway_partition
from repro.sortlib.pway import pway_merge
from repro.sortlib.samplesort import bucket_sizes, sample_sort
from repro.workloads.zipf import ZipfSampler

P = 8
N = 40_000


def _zipf_keys():
    sampler = ZipfSampler(vocab_size=200, exponent=1.3, seed=5)
    return [int(k) for k in sampler.sample(N)]


def _uniform_keys():
    rng = random.Random(6)
    return [rng.randrange(1 << 20) for _ in range(N)]


def test_pway_merge_skewed_keys(benchmark):
    keys = _zipf_keys()
    runs = [sorted(keys[i::16]) for i in range(16)]
    merged = benchmark(pway_merge, runs, P)
    assert merged == sorted(keys)


def test_samplesort_skewed_keys(benchmark):
    keys = _zipf_keys()
    merged = benchmark(sample_sort, keys, P)
    assert merged == sorted(keys)


def test_partition_balance_under_skew(capsys):
    """Output-rank partitioning stays balanced where value
    partitioning collapses."""
    table = AsciiTable(["distribution", "strategy", "largest share",
                        "ideal share"])
    for label, keys in (("zipf", _zipf_keys()), ("uniform", _uniform_keys())):
        runs = [sorted(keys[i::16]) for i in range(16)]
        bounds = multiway_partition(runs, P)
        pway_shares = [
            sum(b1 - b0 for b0, b1 in zip(bounds[t], bounds[t + 1]))
            for t in range(P)
        ]
        sample_shares = bucket_sizes(keys, P, rng=random.Random(7))
        table.add_row(label, "pway rank cut",
                      f"{max(pway_shares) / N:.3f}", f"{1 / P:.3f}")
        table.add_row(label, "samplesort value cut",
                      f"{max(sample_shares) / N:.3f}", f"{1 / P:.3f}")
        # rank cuts are perfectly balanced even under heavy duplication
        assert max(pway_shares) - min(pway_shares) <= 1
        if label == "zipf":
            # value cuts degrade: the hottest bucket absorbs the skew
            assert max(sample_shares) > 1.5 * (N / P)
    with capsys.disabled():
        print()
        print(table.render())


def test_pway_worker_shares_translate_to_runtime_balance(benchmark):
    """The balanced cuts are what keeps Fig. 6's merge at ~100% busy:
    no worker gets more than 1/p of the output even when one key
    dominates."""
    keys = [0] * (N // 2) + _zipf_keys()[: N // 2]  # half the keys equal
    runs = [sorted(keys[i::32]) for i in range(32)]
    bounds = benchmark(multiway_partition, runs, 32)
    shares = [
        sum(b1 - b0 for b0, b1 in zip(bounds[t], bounds[t + 1]))
        for t in range(32)
    ]
    assert max(shares) - min(shares) <= 1
