"""Table II: regenerate every row and check the published cells.

The benchmark measures the simulated-testbed run that produces each row;
the assertions pin the row's cells to the paper (tolerances per
EXPERIMENTS.md).  ``test_render_table2`` prints the assembled table in
the paper's layout.
"""

from __future__ import annotations

import pytest

from repro.experiments import table2
from repro.simrt.costmodel import GB_SI, PAPER_SORT, PAPER_WORDCOUNT
from repro.simrt.phoenix_sim import simulate_phoenix_job
from repro.simrt.supmr_sim import simulate_supmr_job

INTERVAL = 10.0


def test_table2_wordcount_none(benchmark):
    result = benchmark(
        simulate_phoenix_job, PAPER_WORDCOUNT, 155 * GB_SI,
        monitor_interval=INTERVAL,
    )
    t = result.timings
    assert t.total_s == pytest.approx(471.75, rel=0.01)
    assert t.read_s == pytest.approx(403.90, rel=0.01)
    assert t.map_s == pytest.approx(67.41, rel=0.01)


def test_table2_wordcount_1gb(benchmark):
    result = benchmark(
        simulate_supmr_job, PAPER_WORDCOUNT, 155 * GB_SI, 1 * GB_SI,
        monitor_interval=INTERVAL,
    )
    t = result.timings
    assert t.total_s == pytest.approx(407.58, rel=0.01)
    assert t.read_map_s == pytest.approx(406.14, rel=0.01)
    assert t.reduce_s == pytest.approx(1.08, rel=0.05)


def test_table2_wordcount_50gb(benchmark):
    result = benchmark(
        simulate_supmr_job, PAPER_WORDCOUNT, 155 * GB_SI, 50 * GB_SI,
        monitor_interval=INTERVAL,
    )
    # coarser agreement on this row (see EXPERIMENTS.md) but the ordering
    # 1GB < 50GB < none must hold
    assert result.timings.total_s == pytest.approx(429.76, rel=0.05)
    assert 407.58 < result.timings.total_s < 471.75


def test_table2_sort_none(benchmark):
    result = benchmark(
        simulate_phoenix_job, PAPER_SORT, 60 * GB_SI, monitor_interval=INTERVAL,
    )
    t = result.timings
    assert t.total_s == pytest.approx(397.31, rel=0.01)
    assert t.merge_s == pytest.approx(191.23, rel=0.01)


def test_table2_sort_1gb(benchmark):
    result = benchmark(
        simulate_supmr_job, PAPER_SORT, 60 * GB_SI, 1 * GB_SI,
        monitor_interval=INTERVAL,
    )
    t = result.timings
    assert t.total_s == pytest.approx(272.58, rel=0.01)
    assert t.merge_s == pytest.approx(61.14, rel=0.01)


def test_render_table2(benchmark, capsys):
    result = benchmark.pedantic(
        table2.run, kwargs={"monitor_interval": INTERVAL}, rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    assert result.max_relative_error() < 4.0  # sub-second cells are noisy
    big_cells = [c for c in result.comparisons if c.paper >= 1.0]
    assert all(c.relative_error < 0.05 for c in big_cells)
