"""Extension benches: energy/availability accounting and the scale-out
comparison (paper section VI.C.1 and the conclusion's framing)."""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment
from repro.simhw.power import PowerModel, energy_from_samples
from repro.simrt.costmodel import GB_SI, PAPER_SORT
from repro.simrt.phoenix_sim import simulate_phoenix_job
from repro.simrt.scaleout_sim import ScaleOutSpec, estimate_scaleout_job
from repro.simrt.supmr_sim import simulate_supmr_job


def test_energy_race_to_idle(benchmark, capsys):
    """SupMR's sort finishes 1.46x sooner and saves ~24% energy."""

    def run():
        base = simulate_phoenix_job(PAPER_SORT, 60 * GB_SI,
                                    monitor_interval=2.0)
        supmr = simulate_supmr_job(PAPER_SORT, 60 * GB_SI, 1 * GB_SI,
                                   monitor_interval=2.0)
        model = PowerModel()
        return (energy_from_samples(base.samples, model),
                energy_from_samples(supmr.samples, model))

    base_e, supmr_e = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\nsort energy: baseline {base_e.energy_wh:.1f} Wh "
              f"@ {base_e.mean_power_w:.0f} W mean | SupMR "
              f"{supmr_e.energy_wh:.1f} Wh @ {supmr_e.mean_power_w:.0f} W mean")
    assert supmr_e.energy_j < base_e.energy_j  # race-to-idle wins
    assert supmr_e.mean_power_w > base_e.mean_power_w  # but runs hotter


def test_ext_energy_report(benchmark, capsys):
    result = benchmark.pedantic(
        run_experiment, args=("ext-energy",),
        kwargs={"monitor_interval": 5.0}, rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    # the paper's qualitative direction: chunked runs are hotter
    for comparison in result.comparisons:
        assert comparison.measured > 1.0


def test_ext_scaleout_report(benchmark, capsys):
    result = benchmark.pedantic(
        run_experiment, args=("ext-scaleout",),
        kwargs={"monitor_interval": 10.0}, rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    for comparison in result.comparisons:
        assert comparison.measured > 1.5  # clusters burn multiples


def test_scaleout_estimate_speed(benchmark):
    """The analytic estimator itself is trivially cheap."""
    est = benchmark(estimate_scaleout_job, PAPER_SORT, 60 * GB_SI,
                    ScaleOutSpec(nodes=32))
    assert est.total_s > 0
