"""Fig. 3: OpenMP sort — faster compute, slower time-to-result.

Two measurements: the paper-scale simulation (the 192 s total delta) and
a real-data miniature on actual bytes, where the same structure must
hold: the OpenMP-style baseline's sort phase beats the MapReduce merge
phase, while its sequential parse costs it on total time relative to the
parallel map phase's share of work.
"""

from __future__ import annotations

import pytest

from repro.baselines.openmp_sort import openmp_sort
from repro.experiments import fig3
from repro.simrt.costmodel import GB_SI, PAPER_SORT
from repro.simrt.openmp_sim import simulate_openmp_sort
from repro.simrt.phoenix_sim import simulate_phoenix_job


def test_fig3_simulated_deltas(benchmark):
    openmp = benchmark(
        simulate_openmp_sort, PAPER_SORT, 60 * GB_SI, monitor_interval=10.0,
    )
    mr = simulate_phoenix_job(PAPER_SORT, 60 * GB_SI, monitor_interval=10.0)
    total_delta = openmp.timings.total_s - mr.timings.total_s
    assert total_delta == pytest.approx(192.0, abs=5.0)
    # OpenMP's compute (the sort) is much shorter than MR's merge
    assert openmp.timings.merge_s < mr.timings.merge_s / 2


def test_fig3_real_openmp_baseline(benchmark, bench_terasort_file):
    result = benchmark.pedantic(
        openmp_sort, args=([bench_terasort_file],),
        kwargs={"parallelism": 4}, rounds=1, iterations=1,
    )
    # structural claim on real bytes: ingest+parse dominates the sort
    assert result.ingest_s + result.parse_s > result.sort_s * 0.5
    keys = [k for k, _v in result.output]
    assert keys == sorted(keys)


def test_fig3_report(benchmark, capsys):
    result = benchmark.pedantic(
        fig3.run, kwargs={"monitor_interval": 10.0}, rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    (total_cmp, _compute_cmp) = result.comparisons
    assert total_cmp.relative_error < 0.05
