"""Fault plans: seeded, deterministic specifications of what breaks where.

A :class:`FaultPlan` is pure configuration — a seed plus per-site
:class:`FaultSpec` entries — and is safe to share, hash, and put on the
frozen :class:`~repro.core.options.RuntimeOptions`.  Arming a plan
(:meth:`FaultPlan.arm`) produces a fresh, stateful
:class:`~repro.faults.injector.FaultInjector` per run, so a runtime
object stays reusable and every run with the same seed sees the same
faults.

Determinism does not depend on check *order*: each decision is a pure
function of ``(seed, site, scope, attempt)`` via the same process-stable
FNV hash the partitioner uses, so the pipelined ingest thread and the
mapper pool can race freely without perturbing which faults fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

from repro.errors import ConfigError
from repro.util.hashing import stable_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.faults.injector import FaultInjector
    from repro.faults.policy import RecoveryPolicy

# -- fault sites -----------------------------------------------------------
# Real-runtime sites (checked by the executable pipeline):
SITE_INGEST_READ = "ingest.read"        # io.datafile / chunking.chunk
SITE_RECORD_CORRUPT = "record.corrupt"  # io.records screening
SITE_MAP_TASK = "map.task"              # core.execution / core.scheduler
SITE_SPILL_CORRUPT = "spill.corrupt"    # spill.manager run files
SITE_WORKER_CRASH = "worker.crash"      # resilience.supervisor (worker dies)
SITE_TASK_HANG = "task.hang"            # resilience.supervisor (lease expiry)
SITE_SHARD_WORKER_LOSS = "shard.worker_loss"        # shard.coordinator
SITE_SHARD_EXCHANGE_CORRUPT = "shard.exchange_corrupt"  # shard.exchange
SITE_SHARD_STRAGGLER = "shard.straggler"            # shard.coordinator
SITE_QOS_THROTTLE_STALL = "qos.throttle.stall"      # qos.throttle buckets
# Service-daemon sites (checked by repro.service):
SITE_SERVICE_CONN_DROP = "service.conn.drop"   # service.server connections
SITE_SERVICE_JOB_CRASH = "service.job.crash"   # service runner processes
SITE_QOS_TENANT_SURGE = "qos.tenant.surge"     # service.server admission
# Multi-host transport sites (checked by repro.net / shard.coordinator):
SITE_NET_CONN_DROP = "net.conn.drop"           # net.wire send/fetch attempts
SITE_NET_FRAME_CORRUPT = "net.frame.corrupt"   # net.exchange transfers
SITE_NET_PARTIAL_WRITE = "net.partial.write"   # net.wire torn sends
SITE_NET_HOST_LOSS = "net.host.loss"           # net.agent dies mid-job
SITE_NET_PARTITION = "net.partition"           # net.agent live-but-unreachable
# Cluster sites (checked by repro.cluster / service dispatch):
SITE_CLUSTER_AGENT_FLAP = "cluster.agent.flap"       # registry probe results
SITE_CLUSTER_DISPATCH_STALE = "cluster.dispatch.stale"  # dead-on-dispatch peer
#: Observation-only site: the agent's grace reaper records rows under it
#: (``net.agent.reap``) so post-mortems can tell grace-expiry kills from
#: commanded ones.  It is never *injected*, so it stays out of
#: ``KNOWN_SITES`` — a plan naming it would silently do nothing.
SITE_NET_AGENT_REAP = "net.agent.reap"
# Simulated-hardware sites (applied by faults.simdriver / simrt):
SITE_SIM_DISK_SLOW = "sim.disk.slow"
SITE_SIM_DISK_FAIL = "sim.disk.fail"
SITE_SIM_DATANODE_LOSS = "sim.hdfs.datanode_loss"
SITE_SIM_NET_FLAP = "sim.net.flap"
SITE_SIM_STRAGGLER = "sim.map.straggler"
SITE_SIM_WORKER_CRASH = "sim.worker.crash"

RUNTIME_SITES = (
    SITE_INGEST_READ, SITE_RECORD_CORRUPT, SITE_MAP_TASK, SITE_SPILL_CORRUPT,
    SITE_WORKER_CRASH, SITE_TASK_HANG,
    SITE_SHARD_WORKER_LOSS, SITE_SHARD_EXCHANGE_CORRUPT, SITE_SHARD_STRAGGLER,
    SITE_QOS_THROTTLE_STALL,
)
SERVICE_SITES = (
    SITE_SERVICE_CONN_DROP, SITE_SERVICE_JOB_CRASH, SITE_QOS_TENANT_SURGE,
)
NET_SITES = (
    SITE_NET_CONN_DROP, SITE_NET_FRAME_CORRUPT, SITE_NET_PARTIAL_WRITE,
    SITE_NET_HOST_LOSS, SITE_NET_PARTITION,
)
CLUSTER_SITES = (
    SITE_CLUSTER_AGENT_FLAP, SITE_CLUSTER_DISPATCH_STALE,
)
SIM_SITES = (
    SITE_SIM_DISK_SLOW, SITE_SIM_DISK_FAIL, SITE_SIM_DATANODE_LOSS,
    SITE_SIM_NET_FLAP, SITE_SIM_STRAGGLER, SITE_SIM_WORKER_CRASH,
)
KNOWN_SITES = (
    RUNTIME_SITES + SERVICE_SITES + NET_SITES + CLUSTER_SITES + SIM_SITES
)

#: Fault flavors (``FaultSpec.kind``); sites ignore kinds they do not model.
KIND_ERROR = "error"  # transient I/O error (ingest.read default)
KIND_SHORT = "short"  # short read: fewer bytes than asked for


@dataclass(frozen=True)
class FaultDecision:
    """One positive injection decision handed to the checking site."""

    site: str
    kind: str
    spec: "FaultSpec"

    def describe(self) -> str:
        """Short human-readable label for logs."""
        return f"{self.site} fault ({self.kind})"


@dataclass(frozen=True)
class FaultSpec:
    """When and how one site misbehaves.

    Exactly one trigger discipline applies per spec:

    * ``once_per_scope=True`` — fire on the *first* check of every
      distinct scope (e.g. one transient read error per ingest chunk);
      retries of the same scope pass.
    * otherwise — fire with ``probability`` on every check, re-rolled
      per attempt so retries can succeed.

    ``max_fires`` caps total fires either way.  The ``at_s`` /
    ``duration_s`` / ``factor`` / ``target`` fields configure the timed
    simulated-hardware sites and are ignored by the runtime sites.
    """

    site: str
    probability: float = 1.0
    once_per_scope: bool = False
    max_fires: int | None = None
    kind: str = KIND_ERROR
    #: Simulated time the fault strikes (sim.* sites).
    at_s: float | None = None
    #: How long a slowdown/flap lasts before restoration (sim.* sites).
    duration_s: float | None = None
    #: Bandwidth multiplier during a slowdown, or the straggler's
    #: task-time multiplier (sim.* sites).
    factor: float | None = None
    #: Datanode index to kill (sim.hdfs.datanode_loss); None = next alive.
    target: int | None = None

    def __post_init__(self) -> None:
        if not self.site:
            raise ConfigError("FaultSpec needs a site name")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"{self.site}: probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.max_fires is not None and self.max_fires < 0:
            raise ConfigError(f"{self.site}: max_fires must be >= 0")
        if self.factor is not None and self.factor <= 0:
            raise ConfigError(f"{self.site}: factor must be positive")
        if self.duration_s is not None and self.duration_s < 0:
            raise ConfigError(f"{self.site}: duration_s must be >= 0")
        if self.at_s is not None and self.at_s < 0:
            raise ConfigError(f"{self.site}: at_s must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the per-site specs; pure configuration, reusable."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        seen: set[str] = set()
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigError(f"not a FaultSpec: {spec!r}")
            if spec.site in seen:
                raise ConfigError(f"duplicate fault spec for site {spec.site!r}")
            seen.add(spec.site)

    def spec_for(self, site: str) -> FaultSpec | None:
        """The spec armed for ``site``, or None when the site runs clean."""
        for spec in self.specs:
            if spec.site == site:
                return spec
        return None

    def sites(self) -> tuple[str, ...]:
        """The site names this plan arms, in spec order."""
        return tuple(s.site for s in self.specs)

    def roll(self, site: str, scope: Hashable, attempt: int) -> float:
        """The deterministic uniform draw for one check, in [0, 1).

        A pure function of ``(seed, site, scope, attempt)`` — independent
        of check order, thread interleaving, and PYTHONHASHSEED.
        """
        h = stable_hash((self.seed, site, scope, attempt))
        return (h % (2 ** 53)) / float(2 ** 53)

    def arm(
        self,
        policy: "RecoveryPolicy | None" = None,
        clock=None,
    ) -> "FaultInjector":
        """A fresh stateful injector for one run of this plan."""
        from repro.faults.injector import FaultInjector
        from repro.faults.policy import RecoveryPolicy

        return FaultInjector(self, policy or RecoveryPolicy(), clock=clock)


def parse_faults(text: str, seed: int = 0) -> FaultPlan:
    """Parse the CLI ``--faults`` syntax into a :class:`FaultPlan`.

    Comma-separated entries, each ``site[=trigger][/kind]``:

    * ``site`` alone — fire on every check (probability 1);
    * ``site=0.001`` — fire with that probability per check;
    * ``site=once`` — fire once per scope (e.g. once per ingest chunk);
    * ``/kind`` suffix — fault flavor (``error``, ``short``).

    Example: ``ingest.read=once,record.corrupt=0.001,map.task=0.05/error``
    """
    specs: list[FaultSpec] = []
    for raw_entry in text.split(","):
        entry = raw_entry.strip()
        if not entry:
            continue
        kind = KIND_ERROR
        if "/" in entry:
            entry, kind = entry.rsplit("/", 1)
            if not kind:
                raise ConfigError(f"empty fault kind in {raw_entry!r}")
        site, _, trigger = entry.partition("=")
        site = site.strip()
        if site not in KNOWN_SITES:
            raise ConfigError(
                f"unknown fault site {site!r}; known sites: "
                + ", ".join(KNOWN_SITES)
            )
        trigger = trigger.strip()
        if not trigger:
            specs.append(FaultSpec(site=site, kind=kind))
        elif trigger == "once":
            specs.append(FaultSpec(site=site, once_per_scope=True, kind=kind))
        else:
            try:
                probability = float(trigger)
            except ValueError:
                raise ConfigError(
                    f"bad fault trigger {trigger!r} in {raw_entry!r} "
                    "(want a probability or 'once')"
                ) from None
            specs.append(FaultSpec(site=site, probability=probability, kind=kind))
    if not specs:
        raise ConfigError(f"no fault specs in {text!r}")
    return FaultPlan(seed=seed, specs=tuple(specs))
