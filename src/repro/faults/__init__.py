"""Deterministic fault injection and recovery (``repro.faults``).

The paper's pipeline assumes hardware that never misbehaves; this
package removes that assumption behind two knobs on
:class:`~repro.core.options.RuntimeOptions`:

* a :class:`FaultPlan` — seeded, per-site specs of what breaks where
  (ingest read errors, corrupt records, map-task faults, spill-run
  corruption, and timed simulated-hardware faults);
* a :class:`RecoveryPolicy` — how the runtime answers: bounded retry
  with backoff, bad-record quarantine with a skip budget,
  checksum-verify-then-re-spill, speculative re-execution of simulated
  stragglers, and degraded-mode HDFS reads.

Every action lands in a :class:`FaultLog` surfaced on the job result, so
experiments can report time-under-faults with the evidence attached.
"""

from repro.faults.injector import FaultInjector
from repro.faults.log import FaultEvent, FaultLog
from repro.faults.plan import (
    KNOWN_SITES,
    RUNTIME_SITES,
    SERVICE_SITES,
    SIM_SITES,
    SITE_INGEST_READ,
    SITE_MAP_TASK,
    SITE_RECORD_CORRUPT,
    SITE_SHARD_EXCHANGE_CORRUPT,
    SITE_SERVICE_CONN_DROP,
    SITE_SERVICE_JOB_CRASH,
    SITE_SHARD_STRAGGLER,
    SITE_SHARD_WORKER_LOSS,
    SITE_SIM_DATANODE_LOSS,
    SITE_SIM_DISK_FAIL,
    SITE_SIM_DISK_SLOW,
    SITE_SIM_NET_FLAP,
    SITE_SIM_STRAGGLER,
    SITE_SIM_WORKER_CRASH,
    SITE_SPILL_CORRUPT,
    SITE_TASK_HANG,
    SITE_WORKER_CRASH,
    FaultDecision,
    FaultPlan,
    FaultSpec,
    parse_faults,
)
from repro.faults.policy import DEFAULT_RETRYABLE, RecoveryPolicy
from repro.faults.simdriver import SimFaultDriver

__all__ = [
    "FaultInjector",
    "FaultEvent",
    "FaultLog",
    "FaultDecision",
    "FaultPlan",
    "FaultSpec",
    "RecoveryPolicy",
    "SimFaultDriver",
    "parse_faults",
    "DEFAULT_RETRYABLE",
    "KNOWN_SITES",
    "RUNTIME_SITES",
    "SERVICE_SITES",
    "SIM_SITES",
    "SITE_INGEST_READ",
    "SITE_RECORD_CORRUPT",
    "SITE_MAP_TASK",
    "SITE_SPILL_CORRUPT",
    "SITE_SIM_DISK_SLOW",
    "SITE_SIM_DISK_FAIL",
    "SITE_SIM_DATANODE_LOSS",
    "SITE_SIM_NET_FLAP",
    "SITE_SIM_STRAGGLER",
    "SITE_SIM_WORKER_CRASH",
    "SITE_WORKER_CRASH",
    "SITE_TASK_HANG",
    "SITE_SHARD_WORKER_LOSS",
    "SITE_SHARD_EXCHANGE_CORRUPT",
    "SITE_SHARD_STRAGGLER",
    "SITE_SERVICE_CONN_DROP",
    "SITE_SERVICE_JOB_CRASH",
]
