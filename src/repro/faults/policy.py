"""Recovery policy: how the runtime answers each injected (or real) fault.

One frozen dataclass covers every recovery mechanism the subsystem
implements, so a single knob on :class:`~repro.core.options.RuntimeOptions`
(and the ``--retry`` / ``--skip-budget`` CLI flags) configures them all:

* **bounded retry with exponential backoff** — transient ingest errors
  and injected map-task faults are retried up to ``max_retries`` times;
* **bad-record quarantine** — detected-corrupt records are skipped and
  logged, up to ``skip_budget`` per job (Hadoop's skip-bad-records);
* **checksum-verify-then-re-spill** — spill runs are re-read and
  re-written when their CRC does not survive the disk;
* **speculative re-execution** — the simulator launches a backup copy of
  a straggling map task once it exceeds ``straggler_threshold`` times
  the expected wall time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, FaultInjected

#: Exception types the retry loops treat as transient by default.
#: ``OSError`` covers genuine I/O flakiness; ``FaultInjected`` covers the
#: deterministic testbed.  Application errors (TypeError, user
#: exceptions) always propagate — retrying those would mask bugs.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (FaultInjected, OSError)


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs for every recovery mechanism, validated eagerly."""

    #: Retries after the first failure (0 = fail fast: the first
    #: transient fault raises :class:`~repro.errors.RetryExhausted`).
    max_retries: int = 3
    #: First backoff delay; attempt ``k`` waits ``base * factor**k``
    #: seconds, capped at ``backoff_max_s``.  The default is tiny so
    #: deterministic tests stay fast; production callers raise it.
    backoff_base_s: float = 0.001
    backoff_factor: float = 2.0
    backoff_max_s: float = 0.25
    #: Quarantined records allowed per job before
    #: :class:`~repro.errors.QuarantineOverflow` aborts the run.
    skip_budget: int = 1000
    #: Re-read every spill run after writing and re-spill on checksum
    #: mismatch (only exercised when a fault plan arms ``spill.corrupt``;
    #: clean runs never pay the verify read).
    verify_spills: bool = True
    #: Simulator: launch a backup copy of straggling map tasks.
    speculative: bool = True
    #: Simulator: a task is a straggler once it runs this multiple of
    #: the expected task wall time without finishing.
    straggler_threshold: float = 1.5
    #: Supervisor: seconds a dispatched task may run without reporting a
    #: result before its lease expires and the worker is presumed hung.
    lease_timeout_s: float = 30.0
    #: Supervisor: total worker respawns allowed per supervised wave
    #: before the pool is declared unrecoverable (feeds the degradation
    #: ladder rather than respawning forever).
    worker_respawn_budget: int = 8

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1.0")
        if self.skip_budget < 0:
            raise ConfigError("skip_budget must be >= 0")
        if self.straggler_threshold < 1.0:
            raise ConfigError("straggler_threshold must be >= 1.0")
        if self.lease_timeout_s <= 0:
            raise ConfigError("lease_timeout_s must be positive")
        if self.worker_respawn_budget < 0:
            raise ConfigError("worker_respawn_budget must be >= 0")

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (0-based), exponential + capped."""
        return min(
            self.backoff_base_s * (self.backoff_factor ** attempt),
            self.backoff_max_s,
        )
