"""Timed fault driver for the simulated testbed.

Runtime sites are *checked* by code paths as they execute; simulated
hardware faults instead *strike at a simulated time* — a disk slows at
t=40 s, a datanode dies at t=100 s, the client link flaps for 5 s.
:class:`SimFaultDriver` turns the ``sim.*`` specs of a
:class:`~repro.faults.plan.FaultPlan` into scheduled simulator callbacks
against a :class:`~repro.simhw.machine.ScaleUpMachine` and/or an
:class:`~repro.simhw.hdfs.HdfsCluster`, logging every degradation and
restoration to the shared :class:`~repro.faults.log.FaultLog`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.faults.log import ACTION_DEGRADED, ACTION_INJECTED, ACTION_RECOVERED, FaultLog
from repro.faults.plan import (
    SITE_SIM_DATANODE_LOSS,
    SITE_SIM_DISK_FAIL,
    SITE_SIM_DISK_SLOW,
    SITE_SIM_NET_FLAP,
    FaultPlan,
    FaultSpec,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simhw.hdfs import HdfsCluster
    from repro.simhw.machine import ScaleUpMachine

#: Default link rate multiplier during a network flap.
DEFAULT_FLAP_FACTOR = 0.05


class SimFaultDriver:
    """Arms a plan's ``sim.*`` specs onto simulated hardware."""

    def __init__(
        self,
        plan: FaultPlan,
        log: FaultLog,
        machine: "ScaleUpMachine | None" = None,
        cluster: "HdfsCluster | None" = None,
    ) -> None:
        if machine is None and cluster is None:
            raise SimulationError("SimFaultDriver needs a machine or a cluster")
        self.plan = plan
        self.log = log
        self.machine = machine
        self.cluster = cluster
        sim = machine.sim if machine is not None else cluster.sim
        if cluster is not None and machine is not None and cluster.sim is not sim:
            raise SimulationError("machine and cluster span simulators")
        self.sim = sim

    def arm(self) -> int:
        """Schedule every applicable spec; returns how many were armed."""
        armed = 0
        for spec in self.plan.specs:
            if spec.site == SITE_SIM_DISK_SLOW and self.machine is not None:
                self._arm_disk_slow(spec)
            elif spec.site == SITE_SIM_DISK_FAIL and self.machine is not None:
                self._arm_disk_fail(spec)
            elif spec.site == SITE_SIM_DATANODE_LOSS and self.cluster is not None:
                self._arm_datanode_loss(spec)
            elif spec.site == SITE_SIM_NET_FLAP and self.cluster is not None:
                self._arm_net_flap(spec)
            else:
                continue
            armed += 1
        return armed

    # -- individual fault shapes -------------------------------------------

    def _arm_disk_slow(self, spec: FaultSpec) -> None:
        disk = self.machine.disk
        factor = spec.factor if spec.factor is not None else 0.25
        at = spec.at_s or 0.0

        def strike() -> None:
            disk.degrade(factor)
            self.log.record(
                spec.site, ACTION_INJECTED,
                f"disk slowed to {factor:g}x at t={self.sim.now:g}s",
            )

        def restore() -> None:
            disk.restore()
            self.log.record(
                spec.site, ACTION_RECOVERED,
                f"disk bandwidth restored at t={self.sim.now:g}s",
            )

        self.sim.call_at(at, strike)
        if spec.duration_s is not None:
            self.sim.call_at(at + spec.duration_s, restore)

    def _arm_disk_fail(self, spec: FaultSpec) -> None:
        disk = self.machine.disk
        at = spec.at_s or 0.0

        def strike() -> None:
            survivors = disk.fail_member()
            self.log.record(
                spec.site, ACTION_INJECTED,
                f"disk member lost at t={self.sim.now:g}s; "
                f"{survivors} spindle(s) carry the load",
            )
            self.log.record(
                spec.site, ACTION_DEGRADED,
                f"array bandwidth now {disk.read_bw:g} B/s",
            )

        self.sim.call_at(at, strike)

    def _arm_datanode_loss(self, spec: FaultSpec) -> None:
        cluster = self.cluster
        losses = spec.max_fires if spec.max_fires is not None else 1
        interval = spec.duration_s if spec.duration_s is not None else 0.0
        at = spec.at_s or 0.0

        def strike() -> None:
            try:
                lost = cluster.fail_datanode(spec.target)
            except SimulationError as exc:
                # Degraded mode draws the line at the last survivor.
                self.log.record(spec.site, ACTION_DEGRADED, f"refused: {exc}")
                return
            self.log.record(
                spec.site, ACTION_INJECTED,
                f"datanode dn{lost} lost at t={self.sim.now:g}s",
            )
            self.log.record(
                spec.site, ACTION_DEGRADED,
                f"reads rebalanced across {cluster.surviving} surviving "
                "datanode(s)",
            )

        for i in range(max(1, losses)):
            self.sim.call_at(at + i * interval, strike)

    def _arm_net_flap(self, spec: FaultSpec) -> None:
        link = self.cluster.link
        factor = spec.factor if spec.factor is not None else DEFAULT_FLAP_FACTOR
        at = spec.at_s or 0.0
        duration = spec.duration_s if spec.duration_s is not None else 1.0

        def strike() -> None:
            link.degrade(factor)
            self.log.record(
                spec.site, ACTION_INJECTED,
                f"link flapped to {factor:g}x at t={self.sim.now:g}s",
            )

        def restore() -> None:
            link.restore()
            self.log.record(
                spec.site, ACTION_RECOVERED,
                f"link restored at t={self.sim.now:g}s",
            )

        self.sim.call_at(at, strike)
        self.sim.call_at(at + duration, restore)
