"""The fault log: every injection and every recovery action, in order.

A :class:`FaultLog` is the audit trail the whole subsystem writes to —
the injector records injections, retries, recoveries and quarantines;
the simulated fault driver records hardware degradation and rebalances.
It is surfaced on :class:`~repro.core.result.JobResult` (``fault_log``)
and in ``SimJobResult.extras`` so experiments can report time-under-
faults against clean runs with the evidence attached.

Appends are thread-safe (mapper pools and the ingest thread both write).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterator

#: Actions a :class:`FaultEvent` can record.
ACTION_INJECTED = "injected"
ACTION_RETRIED = "retried"
ACTION_RECOVERED = "recovered"
ACTION_EXHAUSTED = "exhausted"
ACTION_QUARANTINED = "quarantined"
ACTION_RESPILLED = "respilled"
ACTION_DEGRADED = "degraded"
ACTION_SPECULATIVE = "speculative"
ACTION_RESPAWNED = "respawned"
ACTION_CHECKPOINTED = "checkpointed"
ACTION_RESUMED = "resumed"
ACTION_REASSIGNED = "reassigned"
ACTION_REFETCHED = "refetched"
ACTION_REAPED = "reaped"


@dataclass(frozen=True)
class FaultEvent:
    """One injection or recovery action."""

    site: str
    action: str
    detail: str = ""
    scope: str = ""
    attempt: int = 0
    #: Wall-clock (real runtime) or simulated seconds (simrt) when the
    #: event was recorded; the clock is whatever the log was given.
    time_s: float = 0.0


class FaultLog:
    """Append-only, thread-safe record of fault activity for one run.

    ``clock`` supplies event timestamps — ``time.perf_counter`` for the
    real runtimes, ``lambda: sim.now`` for the simulated ones.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._events: list[FaultEvent] = []
        self._lock = threading.Lock()
        self._clock = clock or (lambda: 0.0)

    def record(
        self,
        site: str,
        action: str,
        detail: str = "",
        scope: str = "",
        attempt: int = 0,
    ) -> FaultEvent:
        """Append one event; returns it (timestamped by the log's clock)."""
        event = FaultEvent(
            site=site, action=action, detail=detail, scope=scope,
            attempt=attempt, time_s=self._clock(),
        )
        with self._lock:
            self._events.append(event)
        return event

    # -- queries -----------------------------------------------------------

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def count(self, action: str | None = None, site: str | None = None) -> int:
        """Events matching an action and/or site (None matches all)."""
        return sum(
            1
            for e in self.events
            if (action is None or e.action == action)
            and (site is None or e.site == site)
        )

    @property
    def injected(self) -> int:
        return self.count(ACTION_INJECTED)

    @property
    def retries(self) -> int:
        return self.count(ACTION_RETRIED)

    @property
    def recoveries(self) -> int:
        return self.count(ACTION_RECOVERED)

    @property
    def quarantined(self) -> int:
        return self.count(ACTION_QUARANTINED)

    def summary(self) -> dict[str, int]:
        """Event counts per action (only actions that occurred)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.action] = counts.get(event.action, 0) + 1
        return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultLog {self.summary()!r}>"
