"""The armed injector: checks sites, quarantines records, runs retries.

One :class:`FaultInjector` exists per job run (armed from the plan by the
runtime), and is the only stateful piece of the subsystem: it tracks
per-site fire counts, which scopes already fired (for once-per-scope
specs), and the quarantine tally, all under one lock so mapper threads
and the ingest thread can check sites concurrently.

The retry loop (:meth:`FaultInjector.retrying`) is the shared recovery
primitive: chunk ingest, map tasks, and spill verification all run
through it, so backoff, logging, and
:class:`~repro.errors.RetryExhausted` semantics are identical at every
site.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Hashable, TypeVar

from repro.errors import QuarantineOverflow, RetryExhausted
from repro.faults.log import (
    ACTION_EXHAUSTED,
    ACTION_INJECTED,
    ACTION_QUARANTINED,
    ACTION_RECOVERED,
    ACTION_RETRIED,
    FaultLog,
)
from repro.faults.plan import FaultDecision, FaultPlan
from repro.faults.policy import DEFAULT_RETRYABLE, RecoveryPolicy
from repro.util.backoff import exponential_jitter

T = TypeVar("T")

#: ``fn(attempt)`` body run under :meth:`FaultInjector.retrying`.
AttemptFn = Callable[[int], T]


def _scope_str(scope: Hashable) -> str:
    return repr(scope) if scope != () else ""


class FaultInjector:
    """Stateful per-run view of a :class:`~repro.faults.plan.FaultPlan`."""

    def __init__(
        self,
        plan: FaultPlan,
        policy: RecoveryPolicy,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.plan = plan
        self.policy = policy
        self.log = FaultLog(clock=clock)
        self._sleep = sleep if sleep is not None else time.sleep
        self._lock = threading.Lock()
        self._fires: dict[str, int] = {}
        self._fired_scopes: set[tuple[str, Hashable]] = set()
        self._quarantined = 0

    # -- checking ----------------------------------------------------------

    def armed(self, site: str) -> bool:
        """True when the plan has a spec for ``site`` (cheap fast path)."""
        return self.plan.spec_for(site) is not None

    def check(
        self, site: str, scope: Hashable = (), attempt: int = 0
    ) -> FaultDecision | None:
        """Should a fault fire here, now?  Logs and returns the decision.

        Deterministic in ``(plan.seed, site, scope, attempt)`` regardless
        of thread interleaving; ``once_per_scope`` specs fire on the
        first check of each distinct scope only (so a retry of the same
        scope passes), and ``max_fires`` caps a site's total fires.
        """
        spec = self.plan.spec_for(site)
        if spec is None:
            return None
        with self._lock:
            fires = self._fires.get(site, 0)
            if spec.max_fires is not None and fires >= spec.max_fires:
                return None
            if spec.once_per_scope:
                key = (site, scope)
                if key in self._fired_scopes:
                    return None
                self._fired_scopes.add(key)
            elif self.plan.roll(site, scope, attempt) >= spec.probability:
                return None
            self._fires[site] = fires + 1
        decision = FaultDecision(site=site, kind=spec.kind, spec=spec)
        self.log.record(
            site, ACTION_INJECTED, decision.describe(),
            scope=_scope_str(scope), attempt=attempt,
        )
        return decision

    def fires(self, site: str) -> int:
        """How many times ``site`` has fired so far."""
        with self._lock:
            return self._fires.get(site, 0)

    # -- quarantine --------------------------------------------------------

    @property
    def quarantined(self) -> int:
        with self._lock:
            return self._quarantined

    def quarantine(
        self, site: str, record: bytes, scope: Hashable = ()
    ) -> None:
        """Skip one bad record, charging it against the skip budget.

        Raises :class:`~repro.errors.QuarantineOverflow` when the budget
        is exhausted — a skip budget of 0 aborts on the first bad record.
        """
        with self._lock:
            self._quarantined += 1
            tally = self._quarantined
        if tally > self.policy.skip_budget:
            raise QuarantineOverflow(
                f"{site}: quarantined {tally} records, skip budget is "
                f"{self.policy.skip_budget}",
                site=site,
                quarantined=tally,
            )
        preview = record[:64] + (b"..." if len(record) > 64 else b"")
        self.log.record(
            site, ACTION_QUARANTINED,
            f"skipped {len(record)}-byte record {preview!r}",
            scope=_scope_str(scope),
        )

    # -- retry loop --------------------------------------------------------

    def retrying(
        self,
        site: str,
        fn: AttemptFn,
        scope: Hashable = (),
        retryable: tuple[type[BaseException], ...] | None = None,
    ) -> Any:
        """Run ``fn(attempt)`` under the bounded-backoff retry policy.

        ``fn`` is called with the attempt number (0-based) so injection
        sites inside it can re-roll per attempt.  Exceptions in
        ``retryable`` (default: injected faults and OSError) are caught
        and retried up to ``policy.max_retries`` times with exponential
        backoff; exhaustion raises :class:`~repro.errors.RetryExhausted`
        chained ``from`` the last failure.  Anything else propagates
        immediately.
        """
        kinds = retryable if retryable is not None else DEFAULT_RETRYABLE
        attempt = 0
        while True:
            try:
                result = fn(attempt)
            except kinds as exc:
                if attempt >= self.policy.max_retries:
                    self.log.record(
                        site, ACTION_EXHAUSTED,
                        f"giving up after {attempt + 1} attempt(s): {exc}",
                        scope=_scope_str(scope), attempt=attempt,
                    )
                    raise RetryExhausted(
                        f"{site}: {attempt + 1} attempt(s) failed "
                        f"(retry budget {self.policy.max_retries}); "
                        f"last error: {exc}",
                        site=site,
                        attempts=attempt + 1,
                    ) from exc
                delay = exponential_jitter(
                    attempt,
                    base=self.policy.backoff_base_s,
                    cap=self.policy.backoff_max_s,
                    seed=self.plan.seed,
                    factor=self.policy.backoff_factor,
                )
                self.log.record(
                    site, ACTION_RETRIED,
                    f"attempt {attempt + 1} failed ({exc}); "
                    f"backing off {delay:.3g}s",
                    scope=_scope_str(scope), attempt=attempt,
                )
                if delay > 0:
                    self._sleep(delay)
                attempt += 1
                continue
            if attempt > 0:
                self.log.record(
                    site, ACTION_RECOVERED,
                    f"succeeded on attempt {attempt + 1}",
                    scope=_scope_str(scope), attempt=attempt,
                )
            return result
