"""Byte/size/time formatting helpers used across the CLI and reports."""

from __future__ import annotations

from repro.errors import ConfigError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

_SUFFIXES = {
    "b": 1,
    "k": KB, "kb": KB, "kib": KB,
    "m": MB, "mb": MB, "mib": MB,
    "g": GB, "gb": GB, "gib": GB,
    "t": TB, "tb": TB, "tib": TB,
}


def parse_size(text: str | int | float) -> int:
    """Parse '1GB', '512m', '1024' ... into bytes."""
    if isinstance(text, (int, float)):
        if text < 0:
            raise ConfigError(f"negative size: {text}")
        return int(text)
    s = text.strip().lower().replace(" ", "")
    if not s:
        raise ConfigError("empty size string")
    idx = len(s)
    while idx > 0 and not s[idx - 1].isdigit() and s[idx - 1] != ".":
        idx -= 1
    number, suffix = s[:idx], s[idx:]
    if not number:
        raise ConfigError(f"unparseable size: {text!r}")
    try:
        value = float(number)
    except ValueError as exc:
        raise ConfigError(f"unparseable size: {text!r}") from exc
    if suffix and suffix not in _SUFFIXES:
        raise ConfigError(f"unknown size suffix {suffix!r} in {text!r}")
    if value < 0:
        raise ConfigError(f"negative size: {text!r}")
    return int(value * _SUFFIXES.get(suffix, 1))


def fmt_bytes(n: float) -> str:
    """Human-readable bytes: 1536 -> '1.5KB'."""
    value = float(n)
    for unit, factor in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(value) >= factor:
            return f"{value / factor:.2f}{unit}"
    return f"{value:.0f}B"


def fmt_seconds(s: float) -> str:
    """Paper-style seconds with two decimals: 471.75s."""
    return f"{s:.2f}s"
