"""Small shared utilities (stable hashing, formatting)."""

from repro.util.hashing import stable_hash
from repro.util.units import fmt_bytes, fmt_seconds, parse_size

__all__ = ["stable_hash", "fmt_bytes", "fmt_seconds", "parse_size"]
