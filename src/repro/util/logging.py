"""Library logging conventions.

All runtime logging goes through the ``repro`` logger hierarchy
(``repro.core``, ``repro.pipeline``, ...) with a NullHandler installed at
the root of the hierarchy, per library best practice — applications opt
in with ``logging.basicConfig`` or :func:`enable_console_logging`.

The runtimes log phase transitions and round completions at DEBUG, job
summaries at INFO; nothing is ever printed directly.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger inside the ``repro`` hierarchy (pass ``__name__``)."""
    if not name.startswith(_ROOT_NAME):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stderr handler to the ``repro`` hierarchy (idempotent-ish:
    returns the handler so callers can remove it)."""
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(
        "%(asctime)s %(name)s %(levelname)s %(message)s"
    ))
    logger = logging.getLogger(_ROOT_NAME)
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
