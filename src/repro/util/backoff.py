"""Shared retry backoff: exponential growth with deterministic jitter.

Every retry loop in the tree (the fault injector's bounded retries, the
service client's reconnect loops) sleeps through this one helper, so
backoff semantics cannot drift between subsystems.  The delay grows
exponentially with the attempt number and is capped, like
:meth:`repro.faults.policy.RecoveryPolicy.backoff_s` — but with *equal
jitter* layered on top: attempt ``k`` sleeps a uniform draw from
``[raw/2, raw)`` where ``raw = min(base * factor**k, cap)``, which
de-synchronizes retry storms (many clients hammering a recovering
daemon) without ever collapsing the delay to zero.

The jitter is **deterministic under a seed**: the uniform draw is the
same process-stable FNV hash (:func:`repro.util.hashing.stable_hash`)
the fault plans roll with, keyed on ``(seed, attempt)``.  Fault-matrix
tests that pin exact retry timelines stay reproducible — same seed,
same sleeps — while distinct seeds (distinct fault plans, distinct
clients) spread out.
"""

from __future__ import annotations

from repro.util.hashing import stable_hash

#: Resolution of the deterministic uniform draw.
_DRAW_BITS = 53


def jitter_fraction(seed: int, attempt: int) -> float:
    """The deterministic uniform draw in ``[0, 1)`` for one retry."""
    h = stable_hash((seed, "backoff", attempt))
    return (h % (2 ** _DRAW_BITS)) / float(2 ** _DRAW_BITS)


def exponential_jitter(
    attempt: int,
    base: float,
    cap: float,
    seed: int = 0,
    factor: float = 2.0,
) -> float:
    """Delay before retry ``attempt`` (0-based): capped exponential with
    deterministic equal jitter.

    Returns a value in ``[raw/2, raw)`` where ``raw`` is the classic
    ``min(base * factor**attempt, cap)`` schedule; ``base <= 0`` (or a
    zero cap) short-circuits to 0.0 so "no backoff" configurations never
    sleep at all.
    """
    if base <= 0 or cap <= 0:
        return 0.0
    raw = min(base * (factor ** max(0, attempt)), cap)
    half = raw / 2.0
    return half + half * jitter_fraction(seed, attempt)
