"""Deterministic hashing for partitioning.

CPython randomizes ``hash(str)``/``hash(bytes)`` per process, which would
make reducer partitions (and therefore per-partition test expectations)
unstable across runs.  ``stable_hash`` is a process-independent FNV-1a
over a canonical byte encoding of the common key types.
"""

from __future__ import annotations

from typing import Hashable

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def _fnv1a(data: bytes) -> int:
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK
    return h


def stable_hash(key: Hashable) -> int:
    """64-bit process-independent hash of a key.

    Supports bytes, str, int, float, bool, None and (nested) tuples of
    those; anything else falls back to hashing its ``repr`` (documented
    as stable only if the type's repr is).
    """
    if isinstance(key, bytes):
        return _fnv1a(b"b:" + key)
    if isinstance(key, str):
        return _fnv1a(b"s:" + key.encode("utf-8"))
    if isinstance(key, bool):  # before int: bool is an int subclass
        return _fnv1a(b"B:1" if key else b"B:0")
    if isinstance(key, int):
        return _fnv1a(b"i:" + str(key).encode("ascii"))
    if isinstance(key, float):
        return _fnv1a(b"f:" + repr(key).encode("ascii"))
    if key is None:
        return _fnv1a(b"n:")
    if isinstance(key, tuple):
        h = _FNV_OFFSET
        for item in key:
            h ^= stable_hash(item)
            h = (h * _FNV_PRIME) & _MASK
        return h
    return _fnv1a(b"r:" + repr(key).encode("utf-8", "backslashreplace"))
