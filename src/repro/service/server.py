"""The job-service daemon: asyncio TCP server + queue + admission control.

One :class:`JobService` owns a state directory and serves many
concurrent clients over the framed protocol.  The moving parts:

* **Job queue** — a weighted-fair queue across tenants
  (:class:`repro.qos.scheduling.WeightedFairQueue`): each tenant's
  virtual clock advances per dispatch, within a tenant higher
  ``priority`` goes first (FIFO within a level) softened by priority
  aging so no class starves.  A scheduler fills up to
  ``max_concurrent`` runner subprocesses from it.
* **Admission control** — submissions are *rejected with a typed error*
  rather than queued unboundedly: ``queue-full`` past
  ``max_queue_depth``, ``budget-exceeded`` when the sum of admitted
  jobs' charged memory budgets would pass the service budget (jobs
  without one are charged ``default_job_budget`` when configured),
  ``tenant-budget-exceeded`` past a tenant's concurrency or memory
  caps, ``overloaded`` when aggregate declared I/O demand would swamp
  the configured node bandwidth, ``draining`` during shutdown.
  Submitting a spec identical to a live or finished job
  reattaches/returns it (idempotent resubmission — the behaviour
  that makes "resubmit after a daemon restart" resume from the journal).
* **Bandwidth QoS** — with ``node_bandwidth`` configured, each
  dispatched job that declared an ``io_budget`` is assigned an
  allocator share (:mod:`repro.qos.allocator`) of the node bandwidth,
  written to its job dir as ``qos.json``; the runner enforces it with a
  token bucket on the real I/O edges.
* **Crash safety** — every record mutation is durable before it is
  acknowledged; on startup, jobs found ``queued``/``running`` are
  re-queued (orphaned runners from a killed daemon are reaped first),
  and their journals turn the re-run into a resume.
* **Graceful drain** — SIGTERM stops the listener, terminates running
  runners (their journals hold the completed rounds), re-queues them
  durably, and exits; a restarted daemon picks the queue back up.
* **Fault sites** — ``service.conn.drop`` severs accepted connections
  mid-exchange and ``service.job.crash`` SIGKILLs runners mid-job, so
  the seeded fault matrix covers the daemon the way it covers the
  runtimes.
* **Agent pool** — with ``--agents host:port,...`` (or dynamic
  ``register``/``deregister`` RPCs) the daemon owns an
  :class:`~repro.cluster.registry.AgentRegistry`: a health loop
  actively pings every agent between jobs, sharded jobs are dispatched
  with service-assigned ``--peers`` drawn from the healthy set
  (written per-dispatch to ``placement.json``, never part of the spec
  hash), concurrent jobs spread across hosts, and the bandwidth
  allocator prices co-placed jobs against their *host's* capacity.
  ``cluster.agent.flap`` fails seeded probes; ``cluster.dispatch.stale``
  kills an agent in the window between health check and dispatch — the
  runner exits with ``PeerUnreachable``, the daemon marks the host and
  requeues onto survivors (journal resume keeps the digest identical).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.cluster.health import HealthPolicy
from repro.cluster.registry import AgentRegistry
from repro.errors import AdmissionError, ConfigError, ProtocolError
from repro.faults.log import ACTION_RESPAWNED
from repro.faults.plan import (
    SITE_CLUSTER_DISPATCH_STALE,
    SITE_QOS_TENANT_SURGE,
    SITE_SERVICE_CONN_DROP,
    SITE_SERVICE_JOB_CRASH,
    FaultPlan,
)
from repro.net.peers import parse_peers
from repro.qos.allocator import POLICIES, HostCapacityAllocator
from repro.qos.scheduling import DEFAULT_AGING_EVERY, QueueEntry, WeightedFairQueue
from repro.service import protocol
from repro.service.jobspec import ServiceJobSpec
from repro.service.state import (
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    JobRecord,
    ServiceState,
    write_json_crc,
)
from repro.util.units import parse_size

#: Per-frame stall deadline for daemon-side reads: a frame that has
#: started must finish within this budget (idle between frames stays
#: untimed, so pooled keep-alive connections are unaffected).
FRAME_STALL_S = 30.0

#: The black hole ``cluster.dispatch.stale`` substitutes into a
#: placement: port 1 is reserved and essentially never listening, so
#: the runner's startup connect fails fast with ``PeerUnreachable`` —
#: exactly what an agent that died between health check and dispatch
#: looks like.
STALE_AGENT_ADDR = "127.0.0.1:1"


def signal_runner_tree(pid: int, sig: int = signal.SIGKILL) -> None:
    """Deliver ``sig`` to a runner's whole process tree.

    Runners are spawned as session leaders, so their process group holds
    every shard worker they forked.  Killing only the runner pid leaves
    those workers alive as orphans that keep writing the attempt's
    checkpoint journal, spill runs, and exchange outboxes — and a
    relaunched attempt resuming from that journal then races a concurrent
    writer, which can silently corrupt the resumed container state (the
    digest diverges from the one-shot run).  The group kill closes that
    window; the direct pid kill keeps pre-session-leader runner pids
    (stale ``runner.pid`` files from an older daemon) covered.
    """
    with contextlib.suppress(OSError):
        os.killpg(pid, sig)
    with contextlib.suppress(OSError):
        os.kill(pid, sig)


@dataclass(frozen=True)
class ServiceConfig:
    """Daemon knobs (the ``repro serve`` flags)."""

    state_dir: str
    host: str = "127.0.0.1"
    #: 0 asks the kernel for a free port; the bound port is advertised
    #: in ``state_dir/endpoint.json``.
    port: int = 0
    #: Runner subprocesses allowed to execute at once.
    max_concurrent: int = 2
    #: Queued (not yet running) jobs allowed before ``queue-full``.
    max_queue_depth: int = 16
    #: Cap on the sum of admitted jobs' ``memory_budget`` ("1GB" ok);
    #: None disables budget admission control.
    service_budget: int | str | None = None
    #: Finished jobs whose checkpoint dirs are retained after their
    #: result has been fetched; older ones are purged.
    retention: int = 4
    #: Runner launches per job before it is failed outright.
    max_attempts: int = 3
    #: Hard wall-clock cap per runner attempt; None trusts the job's
    #: own ``job_deadline`` knob.
    job_timeout_s: float | None = None
    #: Seeded service-site fault plan (``service.conn.drop`` /
    #: ``service.job.crash`` / ``qos.tenant.surge``).
    fault_plan: FaultPlan | None = None
    #: The node's disk bandwidth in bytes/second ("200MB" ok); enables
    #: dispatch-time bandwidth share assignment (jobs that declared an
    #: ``io_budget`` get an allocator share of this) and overload
    #: shedding.  None disables both.
    node_bandwidth: int | str | None = None
    #: Bandwidth allocation policy for dispatch-time shares
    #: (:data:`repro.qos.allocator.POLICIES`).
    qos_policy: str = "max-min"
    #: Per-tenant cap on the sum of admitted jobs' memory budgets;
    #: None disables the per-tenant budget check.
    tenant_budget: int | str | None = None
    #: Per-tenant cap on admitted-but-unfinished (queued + running)
    #: jobs; None disables the per-tenant concurrency check.
    tenant_max_concurrent: int | None = None
    #: Memory budget charged to jobs submitted *without* one when the
    #: service enforces ``service_budget``/``tenant_budget``.  None
    #: keeps the strict behaviour: budgetless submissions are rejected.
    default_job_budget: int | str | None = None
    #: Dispatches per priority step of queue aging (0 disables aging).
    aging_every: int = DEFAULT_AGING_EVERY
    #: Overload shedding threshold: submissions are shed once the sum of
    #: declared ``io_budget`` demand would exceed
    #: ``node_bandwidth * shed_factor``.
    shed_factor: float = 2.0
    #: Bootstrap agent pool (``--agents host:port,...``); parsed to a
    #: canonical tuple.  More agents can join/leave at runtime via the
    #: register/deregister RPCs, so () still enables the registry.
    agents: "str | tuple[str, ...] | None" = None
    #: Seconds between health probes of a healthy agent.
    health_interval_s: float = 1.0
    #: Deadline for one agent probe (connect + ping + pong).
    probe_timeout_s: float = 2.0
    #: ``--net-timeout`` handed to placed runners (None keeps the
    #: runtime default).
    net_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ConfigError("max_concurrent must be >= 1")
        if self.max_queue_depth < 1:
            raise ConfigError("max_queue_depth must be >= 1")
        if self.retention < 0:
            raise ConfigError("retention must be >= 0")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.service_budget is not None:
            object.__setattr__(
                self, "service_budget", parse_size(self.service_budget)
            )
        if self.node_bandwidth is not None:
            node_bw = parse_size(self.node_bandwidth)
            if node_bw < 1:
                raise ConfigError("node_bandwidth must be >= 1 byte/second")
            object.__setattr__(self, "node_bandwidth", node_bw)
        if self.qos_policy not in POLICIES:
            raise ConfigError(
                f"unknown qos_policy {self.qos_policy!r}; known policies: "
                + ", ".join(sorted(POLICIES))
            )
        if self.tenant_budget is not None:
            object.__setattr__(
                self, "tenant_budget", parse_size(self.tenant_budget)
            )
        if self.tenant_max_concurrent is not None and self.tenant_max_concurrent < 1:
            raise ConfigError("tenant_max_concurrent must be >= 1")
        if self.default_job_budget is not None:
            object.__setattr__(
                self, "default_job_budget", parse_size(self.default_job_budget)
            )
        if self.aging_every < 0:
            raise ConfigError("aging_every must be >= 0")
        if self.shed_factor <= 0:
            raise ConfigError("shed_factor must be positive")
        if self.agents:
            object.__setattr__(self, "agents", parse_peers(self.agents))
        else:
            object.__setattr__(self, "agents", ())
        if self.health_interval_s <= 0:
            raise ConfigError("health_interval_s must be positive")
        if self.probe_timeout_s <= 0:
            raise ConfigError("probe_timeout_s must be positive")
        if self.net_timeout_s is not None and self.net_timeout_s <= 0:
            raise ConfigError("net_timeout_s must be positive")


@dataclass
class _RunningJob:
    record: JobRecord
    proc: "asyncio.subprocess.Process"
    cancelling: bool = False


@dataclass
class JobService:
    """A running daemon instance (construct, then :meth:`run_until_stopped`)."""

    config: ServiceConfig
    state: ServiceState = field(init=False)

    def __post_init__(self) -> None:
        self.state = ServiceState(Path(self.config.state_dir))
        self._queue = WeightedFairQueue(aging_every=self.config.aging_every)
        self._queued_ids: set[str] = set()
        self._running: dict[str, _RunningJob] = {}
        self._job_tasks: set[asyncio.Task] = set()
        self._watchers: dict[str, list[asyncio.Queue]] = {}
        self._seq = 0
        self._conn_seq = 0
        self._draining = False
        self._stop = asyncio.Event()
        self._server: asyncio.AbstractServer | None = None
        self._injector = (
            self.config.fault_plan.arm()
            if self.config.fault_plan is not None else None
        )
        #: Dispatch-time bandwidth shares of currently running jobs
        #: (job_id -> assigned bytes/second); must drain back to {} —
        #: a non-empty map at shutdown means tokens leaked.
        self._io_assigned: dict[str, int] = {}
        #: The agent pool.  Always constructed (dynamic registration
        #: works on a daemon started without ``--agents``); placement
        #: only engages while it is non-empty.
        self._registry = AgentRegistry(
            agents=self.config.agents or (),
            policy=HealthPolicy(
                probe_interval_s=self.config.health_interval_s,
            ),
            probe_timeout_s=self.config.probe_timeout_s,
            injector=self._injector,
        )
        #: Service-assigned peers of currently running jobs
        #: (job_id -> placement tuple); like ``_io_assigned``, must
        #: drain back to {} — a leftover entry means a leaked in-flight
        #: charge on some agent.
        self._placements: dict[str, tuple[str, ...]] = {}
        self._health_task: "asyncio.Task | None" = None
        #: Per-tenant completion tallies accumulated from finished jobs'
        #: result counters (jobs, throttled bytes, waiting done).
        self.tenant_stats: dict[str, dict[str, float]] = {}
        self.counters: dict[str, int] = {
            "admitted": 0, "reattached": 0, "rejected": 0,
            "completed": 0, "failed": 0, "cancelled": 0,
            "runner_crashes": 0, "conn_drops": 0, "reaped": 0,
            "shed": 0, "tenant_rejected": 0,
            "placed": 0, "stale_dispatches": 0, "hosts_lost": 0,
        }

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind, recover durable state, and start serving; returns the
        advertised (host, port)."""
        self._recover()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port,
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.state.write_endpoint(host, port)
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self.request_stop)
        self._health_task = asyncio.ensure_future(self._health_loop())
        self._schedule()
        return host, port

    async def _health_loop(self) -> None:
        """Probe the agent pool on its schedule, forever.

        The probes themselves are blocking socket I/O, so each round
        runs on an executor thread; the tick is deliberately finer than
        ``health_interval_s`` because suspect quick-retries and
        quarantine re-probes come due off-cycle.  Every round that
        probed anything re-runs the scheduler — a pool that just
        settled (or an agent that just recovered) may unblock queued
        placement-hungry jobs.
        """
        loop = asyncio.get_running_loop()
        tick = max(0.05, min(0.25, self.config.health_interval_s / 4))
        while not self._stop.is_set():
            if len(self._registry):
                probed = await loop.run_in_executor(
                    None, self._registry.probe_round
                )
                if probed:
                    self._schedule()
            try:
                await asyncio.wait_for(self._stop.wait(), timeout=tick)
            except asyncio.TimeoutError:
                continue

    async def run_until_stopped(self) -> None:
        """Serve until :meth:`request_stop` (SIGTERM/shutdown), then drain."""
        if self._server is None:
            await self.start()
        await self._stop.wait()
        await self._drain()

    def request_stop(self) -> None:
        """Begin the graceful drain (idempotent, signal-safe)."""
        self._draining = True
        self._stop.set()

    async def _drain(self) -> None:
        """Stop accepting, stop runners (journals keep their progress),
        re-queue them durably, and clear the endpoint."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
        for running in list(self._running.values()):
            signal_runner_tree(running.proc.pid, signal.SIGTERM)
        if self._job_tasks:
            done, pending = await asyncio.wait(
                list(self._job_tasks), timeout=10.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=5.0)
        # anything the tasks left running goes back to the queue
        for job_id, running in list(self._running.items()):
            signal_runner_tree(running.proc.pid, signal.SIGKILL)
            self._set_state(running.record.with_(state=STATE_QUEUED))
            del self._running[job_id]
        self.state.clear_endpoint()

    def _recover(self) -> None:
        """Reload records; re-queue interrupted jobs; reap orphan runners."""
        for record in self.state.load_all_records():
            self._seq = max(self._seq, record.seq + 1)
            if record.state == STATE_RUNNING:
                self._kill_orphan_runner(record.job_id)
                record = record.with_(state=STATE_QUEUED)
                self.state.save_record(record)
            if record.state == STATE_QUEUED:
                self._push(record)

    def _kill_orphan_runner(self, job_id: str) -> None:
        """SIGKILL a runner left over from a daemon that died mid-job —
        the whole process group, not just the runner pid, so its forked
        shard workers can never race the relaunched attempt over the
        checkpoint journal."""
        pid_path = self.state.job_dir(job_id) / "runner.pid"
        try:
            pid = int(pid_path.read_text().strip())
        except (OSError, ValueError):
            return
        signal_runner_tree(pid, signal.SIGKILL)
        pid_path.unlink(missing_ok=True)

    # -- queue + scheduler ---------------------------------------------------

    def _tenant_of(self, job_id: str) -> str:
        try:
            spec = self.state.load_spec(job_id)
        except Exception:
            return "default"
        return getattr(spec, "tenant", "default") or "default"

    def _push(self, record: JobRecord) -> None:
        self._queue.push(QueueEntry(
            job_id=record.job_id,
            tenant=self._tenant_of(record.job_id),
            priority=record.priority,
            seq=record.seq,
        ))
        self._queued_ids.add(record.job_id)

    def _needs_placement(self, job_id: str) -> bool:
        """Does this job want service-assigned peers at dispatch?

        Sharded jobs without user-pinned ``peers`` are placed from the
        registry whenever the pool is non-empty; everything else runs
        locally exactly as before.
        """
        if not len(self._registry):
            return False
        try:
            spec = self.state.load_spec(job_id)
        except Exception:  # noqa: BLE001 - unreadable spec: run local
            return False
        return bool(getattr(spec, "shards", None)) and not bool(
            getattr(spec, "peers", None)
        )

    def _pop_next(self) -> JobRecord | None:
        eligible = None
        if len(self._registry) and not self._registry.settled:
            # Health-gated dispatch: until the first probe round has
            # measured the pool, placement-hungry jobs wait (the health
            # loop re-schedules the moment the pool settles); jobs that
            # never wanted placement flow through unimpeded.
            def eligible(entry: QueueEntry) -> bool:
                return not self._needs_placement(entry.job_id)
        while len(self._queue):
            entry = self._queue.pop(eligible)
            if entry is None:
                return None  # nothing eligible right now
            if entry.job_id not in self._queued_ids:
                continue  # cancelled while queued
            self._queued_ids.discard(entry.job_id)
            record = self.state.load_record(entry.job_id)
            if record is not None and record.state == STATE_QUEUED:
                return record
        return None

    def queue_depth(self) -> int:
        """Jobs admitted but not yet running."""
        return len(self._queued_ids)

    def _schedule(self) -> None:
        """Fill free runner slots from the queue (never blocks).

        Slots are counted via ``_job_tasks`` (one task per live runner
        attempt) rather than ``_running``: a task occupies its slot from
        the synchronous moment it is created, so a burst of submissions
        cannot launch more than ``max_concurrent`` runners.
        """
        if self._draining:
            return
        while len(self._job_tasks) < self.config.max_concurrent:
            record = self._pop_next()
            if record is None:
                return
            task = asyncio.ensure_future(self._run_job(record))
            self._job_tasks.add(task)
            task.add_done_callback(self._job_done)

    def _job_done(self, task: asyncio.Task) -> None:
        """Free the slot and refill (runs after ``_run_job`` returns)."""
        self._job_tasks.discard(task)
        self._schedule()

    # -- admission -----------------------------------------------------------

    def _charged_budget(self, spec: ServiceJobSpec) -> int:
        """Memory bytes one spec is charged against the budget caps.

        Jobs submitted without a ``memory_budget`` are charged the
        configured ``default_job_budget`` — previously they were charged
        nothing, which let budgetless jobs slip past the service-wide
        Σ-budget cap entirely.
        """
        if spec.memory_budget is not None:
            return parse_size(spec.memory_budget)
        if self.config.default_job_budget is not None:
            return self.config.default_job_budget
        return 0

    def _admitted_budget_bytes(self, tenant: "str | None" = None) -> int:
        """Charged memory bytes across queued + running jobs.

        With ``tenant`` the sum covers that tenant's jobs only (the
        per-tenant budget check); without it, every admitted job.
        """
        total = 0
        for job_id in (*self._queued_ids, *self._running):
            spec = self.state.load_spec(job_id)
            if tenant is not None and getattr(spec, "tenant", "default") != tenant:
                continue
            total += self._charged_budget(spec)
        return total

    def _tenant_active_jobs(self, tenant: str) -> int:
        """Queued + running jobs currently accounted to one tenant."""
        return sum(
            1 for job_id in (*self._queued_ids, *self._running)
            if getattr(self.state.load_spec(job_id), "tenant", "default")
            == tenant
        )

    def _declared_io_demand(self) -> int:
        """Sum of declared ``io_budget`` across queued + running jobs."""
        total = 0
        for job_id in (*self._queued_ids, *self._running):
            spec = self.state.load_spec(job_id)
            if getattr(spec, "io_budget", None) is not None:
                total += parse_size(spec.io_budget)
        return total

    def admit(
        self, spec: ServiceJobSpec, rerun: bool = False
    ) -> tuple[JobRecord, bool]:
        """Admit one submission; returns ``(record, reattached)``.

        Raises :class:`~repro.errors.AdmissionError` instead of queuing
        unboundedly — the caller turns it into a typed error reply.
        Checks run cheapest-first: drain state, dedup, the
        ``qos.tenant.surge`` shedding site, queue depth, per-tenant
        concurrency and memory budgets, the service-wide memory budget,
        and finally bandwidth-overload shedding.
        """
        if self._draining:
            raise AdmissionError(
                "service is draining and accepts no new jobs",
                code=protocol.ERR_DRAINING,
            )
        job_id = spec.job_id()
        existing = self.state.load_record(job_id)
        if existing is not None and not rerun:
            # live → reattach; finished → idempotent result handle
            self.counters["reattached"] += 1
            return existing, True
        if existing is not None and rerun:
            if job_id in self._running or job_id in self._queued_ids:
                raise AdmissionError(
                    f"job {job_id} is {existing.state}; cancel it before "
                    "rerunning", code=protocol.ERR_BAD_REQUEST,
                )
            import shutil

            shutil.rmtree(self.state.job_dir(job_id), ignore_errors=True)
        if self._injector is not None:
            # The chaos half of overload protection: an injected tenant
            # surge sheds this admission exactly as a real overload
            # would.  The scope includes the job id, so a once-per-scope
            # spec lets the client's resubmission of the same job pass.
            decision = self._injector.check(
                SITE_QOS_TENANT_SURGE, scope=(spec.tenant, job_id)
            )
            if decision is not None:
                self.counters["shed"] += 1
                self.counters["rejected"] += 1
                raise AdmissionError(
                    f"tenant {spec.tenant!r} admission surge shed "
                    "(injected); resubmit",
                    code=protocol.ERR_OVERLOADED,
                )
        if self.queue_depth() >= self.config.max_queue_depth:
            self.counters["rejected"] += 1
            raise AdmissionError(
                f"queue depth {self.queue_depth()} is at the limit "
                f"({self.config.max_queue_depth}); retry later",
                code=protocol.ERR_QUEUE_FULL,
            )
        if self.config.tenant_max_concurrent is not None:
            active = self._tenant_active_jobs(spec.tenant)
            if active >= self.config.tenant_max_concurrent:
                self.counters["tenant_rejected"] += 1
                self.counters["rejected"] += 1
                raise AdmissionError(
                    f"tenant {spec.tenant!r} already has {active} admitted "
                    f"job(s); the per-tenant limit is "
                    f"{self.config.tenant_max_concurrent}",
                    code=protocol.ERR_TENANT_BUDGET,
                )
        if self.config.tenant_budget is not None:
            tenant_admitted = self._admitted_budget_bytes(spec.tenant)
            asked = self._charged_budget(spec)
            if tenant_admitted + asked > self.config.tenant_budget:
                self.counters["tenant_rejected"] += 1
                self.counters["rejected"] += 1
                raise AdmissionError(
                    f"admitting {asked} budget bytes for tenant "
                    f"{spec.tenant!r} on top of {tenant_admitted} would "
                    f"exceed its budget ({self.config.tenant_budget})",
                    code=protocol.ERR_TENANT_BUDGET,
                )
        if self.config.service_budget is not None:
            if (
                spec.memory_budget is None
                and self.config.default_job_budget is None
            ):
                self.counters["rejected"] += 1
                raise AdmissionError(
                    "this service enforces a memory budget; submit with "
                    "a per-job memory_budget",
                    code=protocol.ERR_BUDGET_EXCEEDED,
                )
            admitted = self._admitted_budget_bytes()
            asked = self._charged_budget(spec)
            if admitted + asked > self.config.service_budget:
                self.counters["rejected"] += 1
                raise AdmissionError(
                    f"admitting {asked} budget bytes on top of {admitted} "
                    f"would exceed the service budget "
                    f"({self.config.service_budget})",
                    code=protocol.ERR_BUDGET_EXCEEDED,
                )
        if (
            self.config.node_bandwidth is not None
            and getattr(spec, "io_budget", None) is not None
        ):
            demand = self._declared_io_demand() + parse_size(spec.io_budget)
            limit = self.config.node_bandwidth * self.config.shed_factor
            if demand > limit:
                self.counters["shed"] += 1
                self.counters["rejected"] += 1
                raise AdmissionError(
                    f"aggregate declared I/O demand ({demand} B/s) would "
                    f"exceed {self.config.shed_factor}x the node bandwidth "
                    f"({self.config.node_bandwidth} B/s); shedding load",
                    code=protocol.ERR_OVERLOADED,
                )
        record = JobRecord(
            job_id=job_id, state=STATE_QUEUED, priority=spec.priority,
            seq=self._seq,
        )
        self._seq += 1
        self.state.create_job(spec, record)
        self.counters["admitted"] += 1
        self._push(record)
        self._schedule()
        return record, False

    # -- execution -----------------------------------------------------------

    def _primary_host(self, job_id: str) -> str:
        """The host a job's bandwidth is charged against.

        Placed jobs charge the first agent of their placement (where
        the coordinator lands the heaviest exchange traffic); local
        jobs all share the daemon host's capacity, which is exactly the
        pre-cluster behaviour.
        """
        placed = self._placements.get(job_id)
        return placed[0] if placed else "local"

    def _assign_io_share(self, job_id: str) -> "int | None":
        """Dispatch-time bandwidth share for one job (bytes/second).

        With ``node_bandwidth`` configured, the job's declared demand is
        run through the configured allocator policy alongside the
        demands of every currently running job *on the same host*:
        the per-host composition means two jobs placed on one agent
        split that host's capacity, while jobs on different hosts do
        not contend (each agent brings its own disk).  The job's share
        — not its raw ask — becomes the token-bucket rate the runner
        enforces.  Jobs with no declared ``io_budget`` run unthrottled
        and return None.
        """
        if self.config.node_bandwidth is None:
            return None
        spec = self.state.load_spec(job_id)
        if getattr(spec, "io_budget", None) is None:
            return None
        allocator = HostCapacityAllocator(
            self.config.node_bandwidth, inner_policy=self.config.qos_policy
        )
        allocator.register(
            job_id, parse_size(spec.io_budget),
            priority=getattr(spec, "io_priority", 0),
            host=self._primary_host(job_id),
        )
        for other_id in self._running:
            other = self.state.load_spec(other_id)
            if getattr(other, "io_budget", None) is None:
                continue
            allocator.register(
                other_id, parse_size(other.io_budget),
                priority=getattr(other, "io_priority", 0),
                host=self._primary_host(other_id),
            )
        shares = allocator.allocate()
        return max(1, int(shares[job_id]))

    def _place_job(self, job_id: str, attempt: int) -> tuple[str, ...]:
        """Service-assigned peers for one dispatch.

        Placement is *per attempt* and travels beside the spec as
        ``placement.json`` (CRC-enveloped), never inside it — the job
        id must not change because the pool did — so a requeued job is
        automatically re-placed onto whoever survives.  An empty
        placement (no healthy agent) falls back to a local run: the
        job still finishes with the same digest, just without the
        fan-out.
        """
        job_dir = self.state.job_dir(job_id)
        placement_path = job_dir / "placement.json"
        if not self._needs_placement(job_id):
            placement_path.unlink(missing_ok=True)
            return ()
        spec = self.state.load_spec(job_id)
        placement = self._registry.place(job_id, int(spec.shards))
        if placement and self._injector is not None:
            # The stale-dispatch window: the agent passed its health
            # check but died before the runner dialed it.  Substituting
            # a black-hole address reproduces exactly that — the
            # runner's startup connect fails with PeerUnreachable.
            decision = self._injector.check(
                SITE_CLUSTER_DISPATCH_STALE, scope=job_id, attempt=attempt
            )
            if decision is not None:
                placement = (STALE_AGENT_ADDR,) + placement[1:]
        if not placement:
            placement_path.unlink(missing_ok=True)
            return ()
        payload: dict[str, Any] = {"peers": list(placement)}
        if self.config.net_timeout_s is not None:
            payload["net_timeout"] = self.config.net_timeout_s
        write_json_crc(placement_path, payload)
        self._placements[job_id] = placement
        self.counters["placed"] += 1
        return placement

    async def _run_job(self, record: JobRecord) -> None:
        job_id = record.job_id
        attempt = record.attempts + 1
        record = record.with_(state=STATE_RUNNING, attempts=attempt)
        job_dir = self.state.job_dir(job_id)
        placement = self._place_job(job_id, attempt)
        assigned = self._assign_io_share(job_id)
        if assigned is not None:
            spec = self.state.load_spec(job_id)
            write_json_crc(job_dir / "qos.json", {
                "io_budget": assigned,
                "tenant": getattr(spec, "tenant", "default"),
                "io_priority": getattr(spec, "io_priority", 0),
            })
            self._io_assigned[job_id] = assigned
        argv = [sys.executable, "-m", "repro.service.runner", str(job_dir)]
        if self._injector is not None:
            decision = self._injector.check(
                SITE_SERVICE_JOB_CRASH, scope=job_id, attempt=attempt
            )
            if decision is not None:
                argv += ["--crash-after-round", "1"]
        log_fh = open(self.state.runner_log_path(job_id), "ab")
        try:
            # start_new_session makes the runner a session (and process
            # group) leader: its forked shard workers share the group,
            # so every kill site can reap the whole tree at once.
            proc = await asyncio.create_subprocess_exec(
                *argv, stdout=log_fh, stderr=log_fh,
                start_new_session=True,
            )
        except OSError as exc:
            log_fh.close()
            self._io_assigned.pop(job_id, None)
            self._placements.pop(job_id, None)
            self._registry.release(job_id)
            self._finish(record.with_(
                state=STATE_FAILED, error=f"runner launch failed: {exc}",
                exit_code=1,
            ))
            return
        (job_dir / "runner.pid").write_text(str(proc.pid))
        running = _RunningJob(record=record, proc=proc)
        self._running[job_id] = running
        self._set_state(record)
        try:
            try:
                rc = await asyncio.wait_for(
                    proc.wait(), timeout=self.config.job_timeout_s
                )
            except asyncio.TimeoutError:
                signal_runner_tree(proc.pid, signal.SIGKILL)
                await proc.wait()
                self._finish(running.record.with_(
                    state=STATE_FAILED, exit_code=4,
                    error=f"runner exceeded the service job timeout "
                          f"({self.config.job_timeout_s}s)",
                ))
                return
        finally:
            # However the runner died (clean exit, injected crash,
            # timeout, cancel), no shard worker of this attempt may
            # outlive it: a survivor would keep writing the checkpoint
            # journal the requeued attempt is about to resume from.
            with contextlib.suppress(OSError):
                os.killpg(proc.pid, signal.SIGKILL)
            log_fh.close()
            self._running.pop(job_id, None)
            self._io_assigned.pop(job_id, None)
            self._placements.pop(job_id, None)
            self._registry.release(job_id)
            (job_dir / "runner.pid").unlink(missing_ok=True)
        if self._draining:
            # drain terminated the runner; put the job back for the
            # next daemon instance (the journal keeps its rounds)
            self._set_state(running.record.with_(state=STATE_QUEUED))
            return
        if running.cancelling:
            self._finish(running.record.with_(
                state=STATE_CANCELLED, exit_code=rc,
                error="cancelled while running",
            ))
        elif rc == 0 or rc == 4:
            self._record_success(running.record, rc)
        elif rc in (1, 2, 3):
            error = self._read_error(job_dir)
            if (
                rc == 2 and placement
                and error.partition(":")[0] == "PeerUnreachable"
            ):
                # Stale dispatch: *we* handed the runner a peer that
                # died between the health check and the dial — not the
                # user's mistake, so this is retried, not failed.  The
                # unreachable host is marked (all of them, when the
                # message names none) and the requeued attempt is
                # re-placed onto survivors; the journal turns the rerun
                # into a resume, so nothing is double-counted.
                self.counters["stale_dispatches"] += 1
                stale = [a for a in placement if a in error] or list(placement)
                for addr in stale:
                    self._registry.mark_lost(
                        addr, "unreachable at dispatch"
                    )
                if attempt < self.config.max_attempts:
                    requeued = running.record.with_(state=STATE_QUEUED)
                    self.state.save_record(requeued)
                    self._push(requeued)
                    self._broadcast(requeued)
                    return
                error += f"; attempts exhausted ({attempt})"
            self._finish(running.record.with_(
                state=STATE_FAILED, exit_code=rc, error=error,
            ))
        else:
            # killed by a signal or an unclassified crash: relaunch and
            # resume from the journal, bounded by max_attempts
            self.counters["runner_crashes"] += 1
            if self._injector is not None:
                self._injector.log.record(
                    SITE_SERVICE_JOB_CRASH, ACTION_RESPAWNED,
                    f"runner for {job_id} exited {rc}; relaunching",
                    scope=job_id, attempt=attempt,
                )
            if attempt >= self.config.max_attempts:
                self._finish(running.record.with_(
                    state=STATE_FAILED, exit_code=1,
                    error=f"runner crashed (exit {rc}) "
                          f"{attempt} time(s); attempts exhausted",
                ))
            else:
                requeued = running.record.with_(state=STATE_QUEUED)
                self.state.save_record(requeued)
                self._push(requeued)
                self._broadcast(requeued)

    def _record_success(self, record: JobRecord, rc: int) -> None:
        job_dir = self.state.job_dir(record.job_id)
        digest = None
        resumed = False
        try:
            report = json.loads((job_dir / "result.json").read_text())
            digest = report.get("digest")
            resumed = bool(report.get("counters", {}).get("resumed"))
        except (OSError, ValueError):
            self._finish(record.with_(
                state=STATE_FAILED, exit_code=1,
                error="runner exited 0 without a readable result.json",
            ))
            return
        counters = report.get("counters", {}) or {}
        for addr in counters.get("net_hosts_lost") or ():
            # The runner's host-loss ladder already absorbed this agent
            # mid-job; fold the loss into the registry so the next
            # placement does not hand the dead host out again.
            self._registry.mark_lost(str(addr), "lost mid-job")
            self.counters["hosts_lost"] += 1
        tenant = counters.get("tenant") or self._tenant_of(record.job_id)
        stats = self.tenant_stats.setdefault(tenant, {
            "jobs": 0, "throttle_bytes": 0, "throttle_wait_s": 0.0,
        })
        stats["jobs"] += 1
        stats["throttle_bytes"] += int(counters.get("throttle_bytes", 0))
        stats["throttle_wait_s"] = round(
            stats["throttle_wait_s"]
            + float(counters.get("throttle_wait_s", 0.0)), 6,
        )
        self._finish(record.with_(
            state=STATE_DONE, exit_code=rc, digest=digest, resumed=resumed,
        ))

    def _read_error(self, job_dir: Path) -> str:
        try:
            err = json.loads((job_dir / "error.json").read_text())
            return f"{err.get('type')}: {err.get('message')}"
        except (OSError, ValueError):
            return "runner failed without an error report"

    def _finish(self, record: JobRecord) -> None:
        if record.state == STATE_DONE:
            self.counters["completed"] += 1
        elif record.state == STATE_FAILED:
            self.counters["failed"] += 1
        elif record.state == STATE_CANCELLED:
            self.counters["cancelled"] += 1
        self._set_state(record)

    def _qos_counters(self) -> dict[str, int]:
        """The counters dict plus the queue's live aging tally."""
        return {**self.counters, "aged": self._queue.aged}

    def _tenant_overview(self) -> dict[str, dict[str, Any]]:
        """Per-tenant queue depth and finished-job QoS stats."""
        overview: dict[str, dict[str, Any]] = {}
        for tenant, depth in self._queue.tenants().items():
            overview.setdefault(tenant, {})["queued"] = depth
        for tenant, stats in self.tenant_stats.items():
            overview.setdefault(tenant, {}).update(stats)
        return overview

    # -- state broadcast -----------------------------------------------------

    def _set_state(self, record: JobRecord) -> None:
        self.state.save_record(record)
        self._broadcast(record)

    def _broadcast(self, record: JobRecord) -> None:
        for queue in self._watchers.get(record.job_id, ()):
            queue.put_nowait(record)
        if record.finished:
            self._watchers.pop(record.job_id, None)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conn_seq += 1
        conn_id = self._conn_seq
        msg_index = 0
        try:
            while True:
                try:
                    # Idle keep-alive is fine (the wait for a frame's
                    # first byte is untimed), but a started frame must
                    # finish within the stall deadline or the slot is
                    # reclaimed — one slow-loris client cannot pin a
                    # daemon connection open forever.
                    msg = await protocol.read_frame(
                        reader, stall_timeout_s=FRAME_STALL_S
                    )
                except EOFError:
                    return
                except ProtocolError as exc:
                    with contextlib.suppress(ConnectionError):
                        await protocol.write_frame(writer, protocol.error_reply(
                            protocol.ERR_BAD_REQUEST,
                            f"protocol violation: {exc}",
                        ))
                    return
                msg_index += 1
                if self._injector is not None:
                    decision = self._injector.check(
                        SITE_SERVICE_CONN_DROP, scope=(conn_id, msg_index)
                    )
                    if decision is not None:
                        self.counters["conn_drops"] += 1
                        return  # sever without a reply; client retries
                if not isinstance(msg, dict):
                    await protocol.write_frame(writer, protocol.error_reply(
                        protocol.ERR_BAD_REQUEST,
                        "binary frames carry no requests",
                    ))
                    continue
                done = await self._dispatch(msg, writer)
                if done:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _dispatch(
        self, msg: dict[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        """Handle one request; True ends the connection (shutdown/watch)."""
        req = msg.get("type")
        try:
            if req == protocol.REQ_PING:
                await protocol.write_frame(writer, protocol.ok_reply(
                    version=protocol.PROTOCOL_VERSION,
                    draining=self._draining,
                    running=len(self._running),
                    queued=self.queue_depth(),
                    counters=self._qos_counters(),
                    io_assigned_bps=sum(self._io_assigned.values()),
                    tenants=self._tenant_overview(),
                ))
            elif req == protocol.REQ_SUBMIT:
                await self._handle_submit(msg, writer)
            elif req == protocol.REQ_STATUS:
                await self._handle_status(msg, writer)
            elif req == protocol.REQ_RESULT:
                await self._handle_result(msg, writer)
            elif req == protocol.REQ_CANCEL:
                await self._handle_cancel(msg, writer)
            elif req == protocol.REQ_WATCH:
                await self._handle_watch(msg, writer)
                return True
            elif req == protocol.REQ_AGENTS:
                await protocol.write_frame(writer, protocol.ok_reply(
                    agents=self._registry.snapshot(),
                    settled=self._registry.settled,
                ))
            elif req == protocol.REQ_REGISTER:
                addr, created = self._registry.register(
                    str(msg.get("addr", ""))
                )
                await protocol.write_frame(writer, protocol.ok_reply(
                    addr=addr, created=created,
                ))
            elif req == protocol.REQ_DEREGISTER:
                removed = self._registry.deregister(
                    str(msg.get("addr", ""))
                )
                await protocol.write_frame(writer, protocol.ok_reply(
                    removed=removed,
                ))
            elif req == protocol.REQ_SHUTDOWN:
                await protocol.write_frame(writer, protocol.ok_reply(
                    draining=True
                ))
                self.request_stop()
                return True
            else:
                await protocol.write_frame(writer, protocol.error_reply(
                    protocol.ERR_BAD_REQUEST,
                    f"unknown request type {req!r}",
                ))
        except AdmissionError as exc:
            await protocol.write_frame(
                writer, protocol.error_reply(exc.code, str(exc))
            )
        except ConfigError as exc:
            await protocol.write_frame(
                writer, protocol.error_reply(protocol.ERR_BAD_REQUEST, str(exc))
            )
        return False

    async def _handle_submit(
        self, msg: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        spec = ServiceJobSpec.from_dict(msg.get("spec"))
        record, reattached = self.admit(spec, rerun=bool(msg.get("rerun")))
        await protocol.write_frame(writer, protocol.ok_reply(
            job_id=record.job_id, state=record.state,
            reattached=reattached, position=self.queue_depth(),
        ))

    def _record_reply(self, record: JobRecord) -> dict[str, Any]:
        return record.to_dict()

    async def _handle_status(
        self, msg: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job_id = msg.get("job_id")
        if job_id is None:
            records = [self._record_reply(r)
                       for r in self.state.load_all_records()]
            await protocol.write_frame(writer, protocol.ok_reply(
                jobs=records, running=len(self._running),
                queued=self.queue_depth(), counters=self._qos_counters(),
                io_assigned_bps=sum(self._io_assigned.values()),
                tenants=self._tenant_overview(),
            ))
            return
        record = self.state.load_record(str(job_id))
        if record is None:
            await protocol.write_frame(writer, protocol.error_reply(
                protocol.ERR_NOT_FOUND, f"no such job: {job_id}",
            ))
            return
        await protocol.write_frame(
            writer, protocol.ok_reply(job=self._record_reply(record))
        )

    async def _handle_result(
        self, msg: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job_id = str(msg.get("job_id"))
        record = self.state.load_record(job_id)
        if record is None:
            await protocol.write_frame(writer, protocol.error_reply(
                protocol.ERR_NOT_FOUND, f"no such job: {job_id}",
            ))
            return
        if not record.finished:
            await protocol.write_frame(writer, protocol.error_reply(
                protocol.ERR_NOT_FINISHED,
                f"job {job_id} is {record.state}; no result yet",
            ))
            return
        report = None
        if record.state == STATE_DONE:
            report = json.loads(self.state.read_result(job_id))
        if not record.result_fetched:
            record = record.with_(result_fetched=True)
            self.state.save_record(record)
        reaped = self.state.reap_checkpoints(self.config.retention)
        self.counters["reaped"] += len(reaped)
        await protocol.write_frame(writer, protocol.ok_reply(
            job=self._record_reply(record), report=report,
        ))

    async def _handle_cancel(
        self, msg: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job_id = str(msg.get("job_id"))
        record = self.state.load_record(job_id)
        if record is None:
            await protocol.write_frame(writer, protocol.error_reply(
                protocol.ERR_NOT_FOUND, f"no such job: {job_id}",
            ))
            return
        if record.finished:
            await protocol.write_frame(
                writer, protocol.ok_reply(job=self._record_reply(record))
            )
            return
        running = self._running.get(job_id)
        if running is not None:
            running.cancelling = True
            signal_runner_tree(running.proc.pid, signal.SIGTERM)
            await protocol.write_frame(writer, protocol.ok_reply(
                job=self._record_reply(running.record), cancelling=True,
            ))
            return
        # queued: drop it from the fair queue
        self._queue.remove(job_id)
        self._queued_ids.discard(job_id)
        record = record.with_(
            state=STATE_CANCELLED, error="cancelled while queued"
        )
        self.counters["cancelled"] += 1
        self._set_state(record)
        await protocol.write_frame(
            writer, protocol.ok_reply(job=self._record_reply(record))
        )

    async def _handle_watch(
        self, msg: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        """Stream state transitions for one job until it finishes."""
        job_id = str(msg.get("job_id"))
        record = self.state.load_record(job_id)
        if record is None:
            await protocol.write_frame(writer, protocol.error_reply(
                protocol.ERR_NOT_FOUND, f"no such job: {job_id}",
            ))
            return
        queue: asyncio.Queue = asyncio.Queue()
        if not record.finished:
            self._watchers.setdefault(job_id, []).append(queue)
        await protocol.write_frame(writer, protocol.ok_reply(
            event="state", job=self._record_reply(record),
        ))
        try:
            while not record.finished:
                record = await queue.get()
                await protocol.write_frame(writer, protocol.ok_reply(
                    event="state", job=self._record_reply(record),
                ))
        finally:
            watchers = self._watchers.get(job_id)
            if watchers and queue in watchers:
                watchers.remove(queue)

    # -- convenience ---------------------------------------------------------

    @property
    def fault_events(self) -> list:
        """Service-site fault-log events (for status/tests)."""
        if self._injector is None:
            return []
        return list(self._injector.log.events)


async def serve(config: ServiceConfig) -> None:
    """Run a daemon until SIGTERM/shutdown; the ``repro serve`` body."""
    service = JobService(config)
    host, port = await service.start()
    print(f"repro service listening on {host}:{port} "
          f"(state dir {config.state_dir})", flush=True)
    await service.run_until_stopped()
    print("repro service drained; exiting", flush=True)
