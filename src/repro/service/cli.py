"""Service subcommand bodies (``repro serve`` / ``submit`` / ``status`` /
``result`` / ``cancel`` / ``shutdown``).

The argument surface lives in :mod:`repro.cli` (so ``--help`` shows one
coherent tool); these functions are imported lazily from there and do
the work.  ``submit --wait`` streams state transitions and exits with
the **same** :mod:`repro.exitcodes` the equivalent one-shot invocation
would have, so scripts can branch on outcome without caring which path
ran the job.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.errors import ServiceError
from repro.exitcodes import EXIT_FAILURE, EXIT_OK
from repro.service.client import ServiceClient
from repro.service.jobspec import ServiceJobSpec
from repro.service.server import ServiceConfig, serve
from repro.service.state import STATE_DONE, JobRecord


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the daemon in the foreground until SIGTERM/shutdown."""
    fault_plan = None
    if getattr(args, "faults", None):
        from repro.faults import parse_faults

        fault_plan = parse_faults(args.faults, seed=args.fault_seed)
    extra: dict = {}
    if getattr(args, "aging_every", None) is not None:
        extra["aging_every"] = args.aging_every
    if getattr(args, "shed_factor", None) is not None:
        extra["shed_factor"] = args.shed_factor
    if getattr(args, "agents", None):
        extra["agents"] = args.agents
    if getattr(args, "health_interval", None) is not None:
        extra["health_interval_s"] = args.health_interval
    if getattr(args, "probe_timeout", None) is not None:
        extra["probe_timeout_s"] = args.probe_timeout
    if getattr(args, "net_timeout", None) is not None:
        extra["net_timeout_s"] = args.net_timeout
    config = ServiceConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        max_concurrent=args.max_jobs,
        max_queue_depth=args.queue_depth,
        service_budget=args.service_budget,
        retention=args.retention,
        max_attempts=args.max_attempts,
        job_timeout_s=args.job_timeout,
        fault_plan=fault_plan,
        node_bandwidth=getattr(args, "node_bandwidth", None),
        qos_policy=getattr(args, "qos_policy", "max-min"),
        tenant_budget=getattr(args, "tenant_budget", None),
        tenant_max_concurrent=getattr(args, "tenant_jobs", None),
        default_job_budget=getattr(args, "default_job_budget", None),
        **extra,
    )
    asyncio.run(serve(config))
    return EXIT_OK


def _client(args: argparse.Namespace) -> ServiceClient:
    return ServiceClient.from_state_dir(args.state_dir)


def spec_from_args(args: argparse.Namespace) -> ServiceJobSpec:
    """Build the wire spec from the shared runtime-args namespace."""
    if args.app == "wordcount":
        inputs = tuple(args.files)
    else:
        inputs = (args.file,)
    return ServiceJobSpec(
        app=args.app,
        inputs=inputs,
        mappers=args.mappers,
        reducers=args.reducers,
        baseline=bool(getattr(args, "baseline", False)),
        chunk_size=getattr(args, "chunk_size", None),
        files_per_chunk=getattr(args, "files_per_chunk", None),
        memory_budget=getattr(args, "memory_budget", None),
        backend=getattr(args, "backend", None),
        faults=getattr(args, "faults", None),
        fault_seed=getattr(args, "fault_seed", 0),
        retry=getattr(args, "retry", None),
        skip_budget=getattr(args, "skip_budget", None),
        job_deadline=getattr(args, "job_deadline", None),
        no_supervise=bool(getattr(args, "no_supervise", False)),
        shards=getattr(args, "shards", None),
        peers=getattr(args, "peers", None),
        net_timeout=getattr(args, "net_timeout", None),
        priority=getattr(args, "priority", 0),
        tag=getattr(args, "tag", ""),
        tenant=getattr(args, "tenant", "default") or "default",
        io_budget=getattr(args, "io_budget", None),
        io_priority=getattr(args, "io_priority", 0),
        transport=getattr(args, "transport", None),
        no_persistent_pool=bool(getattr(args, "no_persistent_pool", False)),
        ingest_readers=getattr(args, "ingest_readers", None),
        ingest_depth=getattr(args, "ingest_depth", None),
    )


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one job; with ``--wait``, stream transitions and exit with
    the one-shot exit code."""
    spec = spec_from_args(args)
    # validate eagerly: a bad knob (unparsable --chunk-size, invalid
    # combo) should exit with the usage code here, not after a daemon
    # round trip and a failed runner attempt.
    spec.to_options()
    client = _client(args)
    if not args.wait:
        reply = client.submit(spec, rerun=args.rerun)
        verb = "reattached to" if reply.get("reattached") else "submitted"
        print(f"{verb} job {reply['job_id']} ({reply['state']})")
        return EXIT_OK

    def on_transition(record: JobRecord) -> None:
        line = f"job {record.job_id}: {record.state}"
        if record.attempts > 1 and record.state == "running":
            line += f" (attempt {record.attempts})"
        print(line, file=sys.stderr, flush=True)

    record, report = client.submit_and_wait(
        spec, rerun=args.rerun, on_transition=on_transition,
        timeout_s=args.wait_timeout,
    )
    if report is not None:
        print(json.dumps(report, indent=2, sort_keys=True))
    elif record.error:
        print(f"error: job {record.job_id} {record.state}: {record.error}",
              file=sys.stderr)
    code = record.exit_code
    return code if code is not None else (
        EXIT_OK if record.state == STATE_DONE else EXIT_FAILURE
    )


def cmd_status(args: argparse.Namespace) -> int:
    """Show one job's record, or a table of every known job."""
    client = _client(args)
    if args.job_id:
        reply = client.status(args.job_id)
        print(json.dumps(reply["job"], indent=2, sort_keys=True))
        return EXIT_OK
    reply = client.status()
    jobs = reply.get("jobs", [])
    print(f"service: {reply.get('running', 0)} running, "
          f"{reply.get('queued', 0)} queued, {len(jobs)} known job(s)")
    qos = reply.get("counters") or {}
    tenants = reply.get("tenants") or {}
    if qos.get("shed") or qos.get("tenant_rejected") or qos.get("aged") \
            or reply.get("io_assigned_bps") or tenants:
        print(f"qos: {reply.get('io_assigned_bps', 0)} B/s assigned; "
              f"{qos.get('shed', 0)} shed, "
              f"{qos.get('tenant_rejected', 0)} tenant-rejected, "
              f"{qos.get('aged', 0)} aged dispatch(es)")
        for name in sorted(tenants):
            t = tenants[name]
            print(f"  tenant {name}: {t.get('queued', 0)} queued, "
                  f"{int(t.get('jobs', 0))} finished, "
                  f"{int(t.get('throttle_bytes', 0))} B metered, "
                  f"{t.get('throttle_wait_s', 0.0):.3f}s throttled")
    for job in jobs:
        marks = []
        if job.get("digest"):
            marks.append(f"digest {job['digest'][:12]}…")
        if job.get("resumed"):
            marks.append("resumed")
        if job.get("error"):
            marks.append(job["error"])
        suffix = f"  ({'; '.join(marks)})" if marks else ""
        print(f"  {job['job_id']}  {job['state']:<9s} "
              f"attempts={job.get('attempts', 0)}{suffix}")
    return EXIT_OK


def cmd_result(args: argparse.Namespace) -> int:
    """Print a finished job's stored report; exits with its code."""
    client = _client(args)
    reply = client.result(args.job_id)
    record = JobRecord.from_dict(reply["job"])
    report = reply.get("report")
    if report is not None:
        print(json.dumps(report, indent=2, sort_keys=True))
    elif record.error:
        print(f"error: job {record.job_id} {record.state}: {record.error}",
              file=sys.stderr)
    code = record.exit_code
    return code if code is not None else (
        EXIT_OK if record.state == STATE_DONE else EXIT_FAILURE
    )


def cmd_cancel(args: argparse.Namespace) -> int:
    """Cancel a queued or running job."""
    client = _client(args)
    reply = client.cancel(args.job_id)
    job = reply.get("job", {})
    state = "cancelling" if reply.get("cancelling") else job.get("state")
    print(f"job {args.job_id}: {state}")
    return EXIT_OK


def cmd_agents(args: argparse.Namespace) -> int:
    """Show (or edit) the daemon's agent pool."""
    client = _client(args)
    if getattr(args, "register", None):
        reply = client.register_agent(args.register)
        verb = "registered" if reply.get("created") else "already registered"
        print(f"agent {reply['addr']}: {verb}")
        return EXIT_OK
    if getattr(args, "deregister", None):
        reply = client.deregister_agent(args.deregister)
        verb = "deregistered" if reply.get("removed") else "not in the pool"
        print(f"agent {args.deregister}: {verb}")
        return EXIT_OK
    reply = client.agents()
    agents = reply.get("agents", [])
    settled = "settled" if reply.get("settled") else "probing"
    print(f"agent pool: {len(agents)} agent(s), {settled}")
    for row in agents:
        latency = row.get("latency_ms")
        latency_text = f"{latency:.1f}ms" if latency is not None else "-"
        line = (f"  {row['addr']}  {row['state']:<11s} "
                f"ping={latency_text}  inflight={row.get('inflight', 0)}  "
                f"probes={row.get('probes', 0)}  flaps={row.get('flaps', 0)}")
        if row.get("last_error"):
            line += f"  ({row['last_error']})"
        print(line)
    return EXIT_OK


def cmd_shutdown(args: argparse.Namespace) -> int:
    """Ask the daemon to drain running jobs and exit."""
    client = _client(args)
    try:
        client.shutdown()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    print("service draining")
    return EXIT_OK
