"""Durable service state: one directory per job, CRC-enveloped records.

The daemon keeps everything it must survive a ``kill -9`` with on disk,
under its **state dir**:

.. code-block:: text

    state_dir/
      endpoint.json            # host, port, pid of the live daemon
      jobs/<job_id>/
        record.json            # JobRecord (state machine position)
        spec.json              # the submitted ServiceJobSpec
        checkpoint/            # the job's JobJournal (crash resume)
        result.json            # one-shot-identical JSON report (done jobs)
        runner.log             # the runner subprocess's stdout+stderr

Records use the same CRC-inside-JSON + write-to-temp + ``os.replace``
envelope as the job journal, so a record is always either the old or the
new consistent value.  On restart the daemon reloads every record and
re-queues jobs that were ``queued`` or ``running`` when it died — their
checkpoints make the re-run resume instead of restart.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.errors import ServiceError
from repro.service.jobspec import ServiceJobSpec

#: Job lifecycle states.
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"

#: States a job cannot leave.
TERMINAL_STATES = (STATE_DONE, STATE_FAILED, STATE_CANCELLED)


def write_json_crc(path: Path, payload: dict[str, Any]) -> None:
    """Atomically persist ``payload`` inside a CRC envelope."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    envelope = {"crc32": zlib.crc32(encoded.encode()), "payload": payload}
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w") as fh:
        json.dump(envelope, fh, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def read_json_crc(path: Path) -> dict[str, Any]:
    """Load a CRC-enveloped JSON file; :class:`ServiceError` on damage."""
    try:
        envelope = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ServiceError(f"{path}: unreadable state file: {exc}") from exc
    payload = envelope.get("payload")
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    if envelope.get("crc32") != zlib.crc32(encoded.encode()):
        raise ServiceError(f"{path}: state file failed its CRC check")
    if not isinstance(payload, dict):
        raise ServiceError(f"{path}: state payload is not an object")
    return payload


@dataclass(frozen=True)
class JobRecord:
    """One job's position in the service state machine."""

    job_id: str
    state: str
    priority: int = 0
    #: Admission order within a priority level (FIFO tiebreak).
    seq: int = 0
    #: Runner launches so far (1 on the first run; crashes increment).
    attempts: int = 0
    #: Runner exit code of the last finished attempt (None while live).
    exit_code: int | None = None
    #: Human-readable failure summary (failed jobs).
    error: str | None = None
    #: Output digest (done jobs) — identical to the one-shot CLI's.
    digest: str | None = None
    #: True when the last attempt resumed journaled work.
    resumed: bool = False
    #: Set after the result has been fetched at least once (GC hint).
    result_fetched: bool = False

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dictionary; :meth:`from_dict` inverts it."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "priority": self.priority,
            "seq": self.seq,
            "attempts": self.attempts,
            "exit_code": self.exit_code,
            "error": self.error,
            "digest": self.digest,
            "resumed": self.resumed,
            "result_fetched": self.result_fetched,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobRecord":
        import dataclasses

        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})

    def with_(self, **changes: Any) -> "JobRecord":
        """A copy with ``changes`` applied (records are immutable)."""
        return replace(self, **changes)

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES


@dataclass
class ServiceState:
    """Filesystem view of one daemon's durable state."""

    state_dir: Path
    _specs: dict[str, ServiceJobSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.state_dir = Path(self.state_dir)
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

    # -- paths --------------------------------------------------------------

    @property
    def jobs_dir(self) -> Path:
        return self.state_dir / "jobs"

    @property
    def endpoint_path(self) -> Path:
        return self.state_dir / "endpoint.json"

    def job_dir(self, job_id: str) -> Path:
        """One job's directory under ``jobs/``."""
        return self.jobs_dir / job_id

    def checkpoint_dir(self, job_id: str) -> Path:
        """The job's JobJournal directory (crash resume)."""
        return self.job_dir(job_id) / "checkpoint"

    def spec_path(self, job_id: str) -> Path:
        """The submitted spec's on-disk path."""
        return self.job_dir(job_id) / "spec.json"

    def record_path(self, job_id: str) -> Path:
        """The durable JobRecord's on-disk path."""
        return self.job_dir(job_id) / "record.json"

    def result_path(self, job_id: str) -> Path:
        """The stored JSON report's on-disk path (done jobs)."""
        return self.job_dir(job_id) / "result.json"

    def runner_log_path(self, job_id: str) -> Path:
        """The runner subprocess log (stdout+stderr, all attempts)."""
        return self.job_dir(job_id) / "runner.log"

    # -- endpoint -----------------------------------------------------------

    def write_endpoint(self, host: str, port: int) -> None:
        """Advertise the live daemon's (host, port, pid)."""
        write_json_crc(
            self.endpoint_path,
            {"host": host, "port": port, "pid": os.getpid()},
        )

    def read_endpoint(self) -> tuple[str, int]:
        """The advertised (host, port); :class:`ServiceError` if absent."""
        if not self.endpoint_path.exists():
            raise ServiceError(
                f"no service endpoint under {self.state_dir} "
                "(is the daemon running?)"
            )
        data = read_json_crc(self.endpoint_path)
        return str(data["host"]), int(data["port"])

    def clear_endpoint(self) -> None:
        """Remove the advertisement (daemon drained or dead)."""
        self.endpoint_path.unlink(missing_ok=True)

    # -- job records --------------------------------------------------------

    def create_job(self, spec: ServiceJobSpec, record: JobRecord) -> None:
        """Lay out a new job dir: spec, record, empty checkpoint."""
        job_dir = self.job_dir(record.job_id)
        job_dir.mkdir(parents=True, exist_ok=True)
        self.checkpoint_dir(record.job_id).mkdir(parents=True, exist_ok=True)
        write_json_crc(self.spec_path(record.job_id), spec.to_dict())
        self._specs[record.job_id] = spec
        self.save_record(record)

    def save_record(self, record: JobRecord) -> None:
        """Durably persist one state-machine transition."""
        write_json_crc(self.record_path(record.job_id), record.to_dict())

    def load_record(self, job_id: str) -> JobRecord | None:
        """The job's record, or None when the job is unknown."""
        path = self.record_path(job_id)
        if not path.exists():
            return None
        return JobRecord.from_dict(read_json_crc(path))

    def load_spec(self, job_id: str) -> ServiceJobSpec:
        """The job's submitted spec (cached after first read)."""
        if job_id in self._specs:
            return self._specs[job_id]
        spec = ServiceJobSpec.from_dict(read_json_crc(self.spec_path(job_id)))
        self._specs[job_id] = spec
        return spec

    def load_all_records(self) -> list[JobRecord]:
        """Every job record on disk, in admission (``seq``) order."""
        records = []
        if not self.jobs_dir.exists():
            return records
        for entry in sorted(self.jobs_dir.iterdir()):
            record = self.load_record(entry.name)
            if record is not None:
                records.append(record)
        records.sort(key=lambda r: r.seq)
        return records

    def write_result(self, job_id: str, report_json: str) -> None:
        """Atomically store the one-shot-identical JSON report."""
        path = self.result_path(job_id)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(report_json)
        os.replace(tmp, path)

    def read_result(self, job_id: str) -> str:
        """The stored report; :class:`ServiceError` when absent."""
        path = self.result_path(job_id)
        if not path.exists():
            raise ServiceError(f"job {job_id} has no stored result")
        return path.read_text()

    # -- garbage collection -------------------------------------------------

    def reap_checkpoints(self, retention: int) -> list[str]:
        """Drop checkpoint dirs of finished, fetched jobs beyond the
        ``retention`` most recently admitted; returns reaped job ids."""
        from repro.resilience.journal import JobJournal

        finished = [
            r for r in self.load_all_records()
            if r.finished and r.result_fetched
            and self.checkpoint_dir(r.job_id).exists()
        ]
        finished.sort(key=lambda r: r.seq)
        reaped: list[str] = []
        excess = len(finished) - max(0, retention)
        for record in finished[:max(0, excess)]:
            if JobJournal.purge_dir(self.checkpoint_dir(record.job_id)):
                # the job's shard exchange dir rides along with the
                # checkpoint: both only matter to a resumable job
                shutil.rmtree(self.job_dir(record.job_id) / "shards",
                              ignore_errors=True)
                reaped.append(record.job_id)
        return reaped
