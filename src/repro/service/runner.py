"""The per-job runner subprocess (``python -m repro.service.runner``).

The daemon never runs MapReduce work in-process: each admitted job gets
a runner subprocess over its job directory, so a job that crashes, leaks
memory, or gets killed takes itself out — not the service.  The runner:

1. loads the CRC-enveloped ``spec.json`` the daemon wrote at admission;
2. lowers it to :class:`~repro.core.options.RuntimeOptions` with the
   job's own ``checkpoint/`` dir and ``resume=True``, so *every*
   submitted job is automatically crash-resumable via the
   :class:`~repro.resilience.journal.JobJournal` — a relaunched runner
   picks up where the dead one's journal left off;
3. runs the job on the same runtime dispatch the one-shot CLI uses
   (plain, Phoenix, or sharded) — digests are byte-identical;
4. writes ``result.json`` (the one-shot ``--json`` report) on success or
   ``error.json`` on failure, and exits with the shared
   :mod:`repro.exitcodes` so the daemon can classify the outcome.

``--crash-after-round N`` arms the ``service.job.crash`` fault site: a
watchdog thread SIGKILLs the runner once N ingest rounds are journaled,
letting the fault matrix prove that a mid-job runner death is recovered
by relaunch + journal resume.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from pathlib import Path

from repro.exitcodes import EXIT_FAILURE, classify_exception, classify_result
from repro.service.jobspec import ServiceJobSpec
from repro.service.state import read_json_crc

#: How often the crash watchdog polls the journal.
_WATCH_INTERVAL_S = 0.002


def _arm_crash_watchdog(checkpoint_dir: Path, after_rounds: int) -> None:
    """SIGKILL this process once ``after_rounds`` rounds are journaled."""

    def watch() -> None:
        journal = checkpoint_dir / "journal.json"
        while True:
            try:
                state = json.loads(journal.read_text())["payload"]
                if len(state.get("completed_rounds", ())) >= after_rounds:
                    os.kill(os.getpid(), signal.SIGKILL)
            except (OSError, ValueError, KeyError):
                pass
            time.sleep(_WATCH_INTERVAL_S)

    threading.Thread(target=watch, name="crash-watchdog", daemon=True).start()


def run_job_dir(job_dir: Path, crash_after_round: int | None = None) -> int:
    """Execute the job described by ``job_dir``; returns the exit code."""
    spec = ServiceJobSpec.from_dict(read_json_crc(job_dir / "spec.json"))
    checkpoint = job_dir / "checkpoint"
    checkpoint.mkdir(parents=True, exist_ok=True)
    shard_dir = None
    if spec.shards is not None:
        shard_dir = job_dir / "shards"
        shard_dir.mkdir(parents=True, exist_ok=True)
    try:
        # option lowering and job construction are classified too: a spec
        # carrying a bad knob (e.g. an unparsable --chunk-size) must exit
        # with the usage code and an error.json, not a bare traceback.
        # The daemon's placement (placement.json) names the agents this
        # dispatch should fan out onto.  It is re-written every attempt
        # from the live healthy pool, so a requeued job lands on the
        # survivors; its absence means a local run.
        placement_peers = None
        placement_timeout = None
        placement_path = job_dir / "placement.json"
        if placement_path.exists():
            placement = read_json_crc(placement_path)
            placement_peers = tuple(
                str(p) for p in placement.get("peers", ())
            ) or None
            raw_timeout = placement.get("net_timeout")
            if raw_timeout is not None:
                placement_timeout = float(raw_timeout)
        options = spec.to_options(
            checkpoint_dir=str(checkpoint),
            resume=True,
            shard_dir=str(shard_dir) if shard_dir else None,
            peers=placement_peers,
            net_timeout=placement_timeout,
        )
        # The daemon's dispatch-time bandwidth assignment (qos.json)
        # overrides the spec's raw io_budget ask: under contention the
        # allocator hands this job its *share* of the node bandwidth.
        qos_path = job_dir / "qos.json"
        if qos_path.exists():
            qos = read_json_crc(qos_path)
            options = options.with_(
                io_budget=int(qos["io_budget"]),
                tenant=str(qos.get("tenant", spec.tenant)),
                io_priority=int(qos.get("io_priority", spec.io_priority)),
            )
        if crash_after_round is not None:
            _arm_crash_watchdog(checkpoint, crash_after_round)

        job = spec.build_job()
        if options.num_shards is not None:
            from repro.shard import ShardedRuntime

            result = ShardedRuntime(options).run(job)
        elif options.chunk_strategy.value == "none":
            from repro.core.phoenix import PhoenixRuntime

            result = PhoenixRuntime(options).run(job)
        else:
            from repro.core.supmr import SupMRRuntime

            result = SupMRRuntime(options).run(job)
    except Exception as exc:  # noqa: BLE001 - classified and reported below
        try:
            code = classify_exception(exc)
        except Exception:
            # classify_exception re-raises anything that is not a
            # ReproError; report it, then let the traceback escape.
            _write_error(job_dir, exc, EXIT_FAILURE)
            raise
        _write_error(job_dir, exc, code)
        return code

    from repro.analysis.report import to_json

    report = to_json(result)
    tmp = job_dir / "result.json.tmp"
    tmp.write_text(report)
    os.replace(tmp, job_dir / "result.json")
    return classify_result(result.counters)


def _write_error(job_dir: Path, exc: BaseException, code: int) -> None:
    payload = {
        "type": type(exc).__name__,
        "message": str(exc),
        "site": getattr(exc, "site", ""),
        "exit_code": code,
    }
    try:
        tmp = job_dir / "error.json.tmp"
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, job_dir / "error.json")
    except OSError:  # pragma: no cover - best-effort error report
        pass


def main(argv: "list[str] | None" = None) -> int:
    """Run one job directory to completion; exit code per repro.exitcodes."""
    parser = argparse.ArgumentParser(prog="repro.service.runner")
    parser.add_argument("job_dir")
    parser.add_argument("--crash-after-round", type=int, default=None)
    args = parser.parse_args(argv)
    return run_job_dir(Path(args.job_dir), args.crash_after_round)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
