"""Serializable job specifications for the service.

A :class:`ServiceJobSpec` is the wire form of "run this job with these
knobs": the application name, its inputs, and **every** runtime option
the one-shot CLI exposes (``--backend``, ``--memory-budget``,
``--faults``, ``--shards``, …).  It round-trips through JSON
(:meth:`to_dict`/:meth:`from_dict`), hashes to a stable :meth:`job_id`,
and lowers to the same :class:`~repro.core.options.RuntimeOptions` the
one-shot path builds — :func:`build_options` is shared with
``repro.cli``, so a submitted job and the equivalent CLI invocation
cannot drift apart (their output digests are byte-identical).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.core.job import JobSpec
from repro.core.options import RuntimeOptions
from repro.errors import ConfigError

#: Applications a spec may name, mapped to their job factories.
KNOWN_APPS = ("wordcount", "sort")


def build_options(spec: Any) -> RuntimeOptions:
    """Lower CLI-shaped knobs to :class:`RuntimeOptions`.

    Duck-typed over attribute access so the one-shot CLI's
    ``argparse.Namespace`` and :class:`ServiceJobSpec` share one code
    path (missing attributes mean "not set").
    """
    budget = getattr(spec, "memory_budget", None)
    if getattr(spec, "baseline", False):
        options = RuntimeOptions.baseline(spec.mappers, spec.reducers)
    elif getattr(spec, "files_per_chunk", None):
        options = RuntimeOptions.supmr_intrafile(
            spec.files_per_chunk, spec.mappers, spec.reducers
        )
    elif getattr(spec, "chunk_size", None):
        options = RuntimeOptions.supmr_interfile(
            spec.chunk_size, spec.mappers, spec.reducers
        )
    else:
        options = RuntimeOptions.baseline(spec.mappers, spec.reducers)
    if budget is not None:
        options = options.with_(memory_budget=budget)
    backend = getattr(spec, "backend", None)
    if backend is not None:
        options = options.with_(executor_backend=backend)
    if getattr(spec, "faults", None):
        from repro.faults import RecoveryPolicy, parse_faults

        plan = parse_faults(spec.faults, seed=getattr(spec, "fault_seed", 0))
        retry = getattr(spec, "retry", None)
        skip_budget = getattr(spec, "skip_budget", None)
        recovery = RecoveryPolicy(
            max_retries=retry if retry is not None else 3,
            skip_budget=skip_budget if skip_budget is not None else 1000,
        )
        options = options.with_(fault_plan=plan, recovery=recovery)
    if getattr(spec, "checkpoint_dir", None):
        options = options.with_(
            checkpoint_dir=spec.checkpoint_dir,
            resume=bool(getattr(spec, "resume", False)),
        )
    if getattr(spec, "job_deadline", None) is not None:
        options = options.with_(job_deadline_s=spec.job_deadline)
    if getattr(spec, "no_supervise", False):
        options = options.with_(
            supervised_pool=False, degrade_on_pool_failure=False
        )
    if getattr(spec, "shards", None) is not None:
        options = options.with_(num_shards=spec.shards)
    if getattr(spec, "peers", None):
        options = options.with_(peers=spec.peers)
    if getattr(spec, "net_timeout", None) is not None:
        options = options.with_(net_timeout_s=spec.net_timeout)
    if getattr(spec, "shard_dir", None):
        options = options.with_(shard_dir=spec.shard_dir)
    if getattr(spec, "io_budget", None) is not None:
        options = options.with_(io_budget=spec.io_budget)
    if getattr(spec, "io_burst", None) is not None:
        options = options.with_(io_burst=spec.io_burst)
    if getattr(spec, "tenant", None):
        options = options.with_(tenant=spec.tenant)
    if getattr(spec, "io_priority", None):
        options = options.with_(io_priority=spec.io_priority)
    if getattr(spec, "transport", None):
        options = options.with_(transport=spec.transport)
    if getattr(spec, "no_persistent_pool", False):
        options = options.with_(persistent_pool=False)
    if getattr(spec, "ingest_readers", None) is not None:
        options = options.with_(ingest_readers=spec.ingest_readers)
    if getattr(spec, "ingest_depth", None) is not None:
        options = options.with_(ingest_depth=spec.ingest_depth)
    return options


@dataclass(frozen=True)
class ServiceJobSpec:
    """One submittable job: app + inputs + every one-shot CLI knob.

    Field names deliberately mirror the CLI flags (``chunk_size`` ↔
    ``--chunk-size``) so :func:`build_options` serves both.  ``priority``
    orders the service queue (higher first, FIFO within a level) and
    ``tag`` distinguishes deliberate duplicate submissions — two specs
    that differ only in ``tag`` get distinct job ids.
    """

    app: str
    inputs: tuple[str, ...]
    mappers: int = 4
    reducers: int = 4
    baseline: bool = False
    chunk_size: str | None = None
    files_per_chunk: int | None = None
    memory_budget: str | None = None
    backend: str | None = None
    faults: str | None = None
    fault_seed: int = 0
    retry: int | None = None
    skip_budget: int | None = None
    job_deadline: float | None = None
    no_supervise: bool = False
    shards: int | None = None
    #: Remote agent endpoints (``"host:port,..."``) the sharded run may
    #: place worker groups on; requires ``shards``.
    peers: str | None = None
    #: Liveness/transfer deadline for ``peers`` runs, in seconds.
    net_timeout: float | None = None
    priority: int = 0
    tag: str = ""
    #: Tenant the job is accounted to (per-tenant budgets, weighted-fair
    #: queueing, QoS counters).
    tenant: str = "default"
    #: Declared I/O bandwidth demand in bytes/second ("64MB" ok); feeds
    #: the service's dispatch-time share assignment and the runtime's
    #: token-bucket throttle.  None runs unthrottled.
    io_budget: str | None = None
    #: Bandwidth priority class for priority-aware allocation policies.
    io_priority: int = 0
    #: Result transport for the process backend: ``auto`` (shared memory
    #: when ``/dev/shm`` works, else pipes), ``shm``, or ``pipe``.
    transport: str | None = None
    #: Opt out of the persistent pre-forked worker pool (fall back to
    #: fork-per-wave).
    no_persistent_pool: bool = False
    #: Concurrent ingest prefetch readers (>1 enables the multi-queue
    #: async ingest pipeline).
    ingest_readers: int | None = None
    #: Buffered-chunk window for the prefetch pipeline (defaults to
    #: ``ingest_readers + 1``).
    ingest_depth: int | None = None

    def __post_init__(self) -> None:
        if self.app not in KNOWN_APPS:
            raise ConfigError(
                f"unknown app {self.app!r}; known apps: "
                + ", ".join(KNOWN_APPS)
            )
        object.__setattr__(
            self, "inputs", tuple(str(p) for p in self.inputs)
        )
        if not self.inputs:
            raise ConfigError("a job spec needs at least one input file")
        if not self.tenant:
            raise ConfigError("tenant must be a non-empty string")

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dictionary; :meth:`from_dict` inverts it exactly."""
        data = dataclasses.asdict(self)
        data["inputs"] = list(self.inputs)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServiceJobSpec":
        """Parse a submitted spec; unknown keys are a typed error."""
        if not isinstance(data, dict):
            raise ConfigError(f"job spec must be an object, got {type(data)}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown job spec field(s): {', '.join(sorted(unknown))}"
            )
        missing = {"app", "inputs"} - set(data)
        if missing:
            raise ConfigError(
                f"job spec missing field(s): {', '.join(sorted(missing))}"
            )
        try:
            return cls(**{k: v for k, v in data.items()})
        except TypeError as exc:
            raise ConfigError(f"malformed job spec: {exc}") from exc

    def canonical_json(self) -> str:
        """The byte-stable encoding :meth:`job_id` hashes."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def job_id(self) -> str:
        """Stable 12-hex-digit id derived from the spec contents.

        Identical specs (same app, inputs, knobs, and ``tag``) get the
        same id, which is what makes "resubmit after a daemon restart"
        reattach to the original job's checkpoint dir and resume from
        its journal instead of starting over.
        """
        digest = hashlib.sha256(self.canonical_json().encode()).hexdigest()
        return digest[:12]

    # -- lowering -----------------------------------------------------------

    def to_options(
        self,
        checkpoint_dir: str | None = None,
        resume: bool = False,
        shard_dir: str | None = None,
        peers: "tuple[str, ...] | str | None" = None,
        net_timeout: float | None = None,
    ) -> RuntimeOptions:
        """The :class:`RuntimeOptions` this spec describes.

        ``checkpoint_dir``/``resume``/``shard_dir`` are service-assigned
        (per-job dirs under the state dir), not part of the submitted
        spec, so they arrive as parameters.  ``peers``/``net_timeout``
        likewise override the spec's own fields when the *service*
        placed the job on its agent pool — placement lives outside the
        spec (and its hash) because the job's identity must not change
        when the pool does.
        """
        class _WithDirs:
            pass

        proxy = _WithDirs()
        for f in dataclasses.fields(self):
            setattr(proxy, f.name, getattr(self, f.name))
        proxy.checkpoint_dir = checkpoint_dir
        proxy.resume = resume
        proxy.shard_dir = shard_dir
        if peers is not None:
            proxy.peers = (
                peers if isinstance(peers, str) else ",".join(peers)
            )
        if net_timeout is not None:
            proxy.net_timeout = net_timeout
        return build_options(proxy)

    def build_job(self) -> JobSpec:
        """The executable :class:`~repro.core.job.JobSpec`."""
        if self.app == "wordcount":
            from repro.apps.wordcount import make_wordcount_job

            return make_wordcount_job(self.inputs)
        from repro.apps.sortapp import make_sort_job

        return make_sort_job(list(self.inputs))
