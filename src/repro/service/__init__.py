"""Long-lived multi-job daemon (``repro.service``).

The paper argues one scale-up box replaces a cluster for most MapReduce
jobs — but a production box serves *many* jobs from many users, not one
CLI invocation at a time.  This package wraps the existing runtimes
(:class:`~repro.core.supmr.SupMRRuntime`,
:class:`~repro.core.phoenix.PhoenixRuntime`,
:class:`~repro.shard.ShardedRuntime`) in a persistent daemon:

* :mod:`repro.service.protocol` — length-prefixed, CRC-framed JSON and
  binary messages over TCP, versioned;
* :mod:`repro.service.server` — an ``asyncio`` daemon with a
  FIFO+priority job queue, admission control, per-job checkpoint dirs
  (every submitted job is crash-resumable), and graceful SIGTERM drain;
* :mod:`repro.service.runner` — the per-job subprocess that actually
  executes a job, crash-isolated from the daemon;
* :mod:`repro.service.client` + :mod:`repro.service.jobspec` — a typed
  blocking client and a serializable job spec that round-trips every
  one-shot CLI knob;
* :mod:`repro.service.cli` — ``serve`` / ``submit`` / ``status`` /
  ``result`` / ``cancel`` / ``shutdown`` subcommand implementations.
"""

from repro.service.client import ServiceClient
from repro.service.jobspec import ServiceJobSpec
from repro.service.protocol import PROTOCOL_VERSION, decode_frame, encode_frame
from repro.service.state import (
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    JobRecord,
    ServiceState,
)

__all__ = [
    "ServiceClient",
    "ServiceJobSpec",
    "ServiceState",
    "JobRecord",
    "PROTOCOL_VERSION",
    "encode_frame",
    "decode_frame",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "STATE_DONE",
    "STATE_FAILED",
    "STATE_CANCELLED",
]
