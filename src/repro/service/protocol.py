"""Framed wire protocol for the job service.

Every message on a service connection — requests, replies, and streamed
state transitions — travels as one **frame**:

.. code-block:: text

    +-------+---------+------+-------+--------+----------------+
    | magic | version | kind | crc32 | length |    payload     |
    | 4s    | B       | B    | I     | I      | length bytes   |
    +-------+---------+------+-------+--------+----------------+
           big-endian header (14 bytes), then the payload

``kind`` selects the payload encoding: ``KIND_JSON`` (a UTF-8 JSON
object — every control message) or ``KIND_BYTES`` (an opaque binary
blob — the transport the next step reuses to ship shard run files
between hosts).  The CRC is ``zlib.crc32`` over the raw payload, the
same envelope discipline the job journal and the spill run files use,
so a torn or bit-flipped frame is rejected with a typed
:class:`~repro.errors.ProtocolError` instead of being half-parsed.

Both an ``asyncio`` stream API (used by the server) and a blocking
socket API (used by the client) are provided over the same
``encode_frame``/``decode_frame`` core, so the two sides cannot drift.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import time
from typing import Any

from repro.errors import ProtocolError

#: Bumped on incompatible frame-layout or message-schema changes; a
#: mismatched peer is rejected with ``reason="version"``.
PROTOCOL_VERSION = 1

#: Payload encodings.
KIND_JSON = 0
KIND_BYTES = 1

#: Upper bound on one frame's payload; guards the daemon against a
#: garbage length field allocating gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_MAGIC = b"RSVC"
_HEADER = struct.Struct(">4sBBII")  # magic, version, kind, crc32, length

# -- core encode/decode ------------------------------------------------------


def encode_frame(payload: "dict[str, Any] | bytes") -> bytes:
    """One wire frame for a JSON object or an opaque binary blob."""
    import zlib

    if isinstance(payload, (bytes, bytearray, memoryview)):
        kind, body = KIND_BYTES, bytes(payload)
    else:
        kind = KIND_JSON
        body = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit", reason="oversize",
        )
    header = _HEADER.pack(
        _MAGIC, PROTOCOL_VERSION, kind, zlib.crc32(body), len(body)
    )
    return header + body


def decode_header(header: bytes) -> tuple[int, int, int]:
    """Validate a 14-byte header; returns ``(kind, crc32, length)``."""
    if len(header) < _HEADER.size:
        raise ProtocolError(
            f"truncated frame header ({len(header)} of {_HEADER.size} bytes)",
            reason="truncated",
        )
    magic, version, kind, crc, length = _HEADER.unpack_from(header)
    if magic != _MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (not a service connection?)",
            reason="bad-magic",
        )
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"peer speaks protocol version {version}, "
            f"this side speaks {PROTOCOL_VERSION}", reason="version",
        )
    if kind not in (KIND_JSON, KIND_BYTES):
        raise ProtocolError(
            f"unknown frame kind {kind}", reason="bad-payload"
        )
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame claims {length} payload bytes, over the "
            f"{MAX_FRAME_BYTES}-byte limit", reason="oversize",
        )
    return kind, crc, length


def decode_payload(kind: int, crc: int, body: bytes) -> "dict[str, Any] | bytes":
    """CRC-check and decode one payload read after :func:`decode_header`."""
    import zlib

    if zlib.crc32(body) != crc:
        raise ProtocolError(
            "frame payload failed its CRC check", reason="bad-crc"
        )
    if kind == KIND_BYTES:
        return body
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(
            f"frame payload is not valid JSON: {exc}", reason="bad-payload"
        ) from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            "JSON frame payload must be an object", reason="bad-payload"
        )
    return obj


def decode_frame(data: bytes) -> "dict[str, Any] | bytes":
    """Decode one complete frame held in memory (tests, buffers)."""
    kind, crc, length = decode_header(data[:_HEADER.size])
    body = data[_HEADER.size:]
    if len(body) != length:
        raise ProtocolError(
            f"frame payload truncated ({len(body)} of {length} bytes)",
            reason="truncated",
        )
    return decode_payload(kind, crc, body)


# -- asyncio stream API (server side) ----------------------------------------


async def read_frame(
    reader: asyncio.StreamReader,
    stall_timeout_s: float | None = None,
) -> "dict[str, Any] | bytes":
    """Read one frame; raises :class:`ProtocolError` on any damage and
    :class:`EOFError` on a clean close between frames.

    ``stall_timeout_s`` bounds how long a *started* frame may dribble in:
    waiting for the first byte is untimed (an idle keep-alive connection
    is legitimate), but once a frame has begun, a peer that stalls
    mid-frame past the deadline — the slow-loris pattern — is rejected
    with a typed ``ProtocolError(reason="stalled")`` instead of holding
    the reader forever.
    """
    try:
        first = await reader.readexactly(1)
    except asyncio.IncompleteReadError as exc:
        raise EOFError("connection closed between frames") from exc
    try:
        header = first + await _timed(
            reader.readexactly(_HEADER.size - 1), stall_timeout_s, "header"
        )
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-header "
            f"({1 + len(exc.partial)} of {_HEADER.size} bytes)",
            reason="truncated",
        ) from exc
    kind, crc, length = decode_header(header)
    try:
        body = await _timed(
            reader.readexactly(length), stall_timeout_s, "payload"
        )
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-payload "
            f"({len(exc.partial)} of {length} bytes)", reason="truncated",
        ) from exc
    return decode_payload(kind, crc, body)


async def _timed(coro: Any, timeout_s: float | None, mid: str) -> bytes:
    if timeout_s is None:
        return await coro
    try:
        return await asyncio.wait_for(coro, timeout_s)
    except asyncio.TimeoutError:
        raise ProtocolError(
            f"peer stalled mid-{mid} for over {timeout_s:.3g}s",
            reason="stalled",
        ) from None


async def write_frame(
    writer: asyncio.StreamWriter, payload: "dict[str, Any] | bytes"
) -> None:
    """Encode, send, and drain one frame."""
    writer.write(encode_frame(payload))
    await writer.drain()


# -- blocking socket API (client side) ---------------------------------------


def send_frame(sock: socket.socket, payload: "dict[str, Any] | bytes") -> None:
    """Send one frame over a connected blocking socket."""
    sock.sendall(encode_frame(payload))


def recv_frame(
    sock: socket.socket,
    timeout_s: float | None = None,
    idle_ok: bool = False,
) -> "dict[str, Any] | bytes":
    """Receive one frame; :class:`EOFError` on a clean close between
    frames, :class:`ProtocolError` on a torn or corrupt one.

    ``timeout_s`` is the per-frame stall deadline: a peer that goes
    silent mid-frame past it raises ``ProtocolError(reason="stalled")``
    rather than blocking forever.  With ``idle_ok=True`` the wait for
    the frame's *first* byte is untimed (long-lived control connections
    are legitimately idle between frames); the deadline starts once the
    frame begins.
    """
    deadline = None
    if timeout_s is not None and not idle_ok:
        deadline = time.monotonic() + timeout_s
    first = _recv_exactly(sock, 1, mid="header", deadline=deadline)
    if timeout_s is not None and deadline is None:
        deadline = time.monotonic() + timeout_s
    header = first + _recv_exactly(
        sock, _HEADER.size - 1, mid="header", deadline=deadline, started=1
    )
    kind, crc, length = decode_header(header)
    body = _recv_exactly(sock, length, mid="payload", deadline=deadline)
    return decode_payload(kind, crc, body)


def _recv_exactly(
    sock: socket.socket,
    n: int,
    mid: str,
    deadline: float | None = None,
    started: int = 0,
) -> bytes:
    chunks: list[bytes] = []
    got = 0
    previous_timeout = sock.gettimeout() if deadline is not None else None
    try:
        while got < n:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ProtocolError(
                        f"peer stalled mid-{mid} "
                        f"({started + got} of {started + n} bytes)",
                        reason="stalled",
                    )
                sock.settimeout(remaining)
            try:
                chunk = sock.recv(min(65536, n - got))
            except (socket.timeout, TimeoutError):
                raise ProtocolError(
                    f"peer stalled mid-{mid} "
                    f"({started + got} of {started + n} bytes)",
                    reason="stalled",
                ) from None
            if not chunk:
                if not got and not started and mid == "header":
                    raise EOFError("connection closed between frames")
                raise ProtocolError(
                    f"connection closed mid-{mid} "
                    f"({started + got} of {started + n} bytes)",
                    reason="truncated",
                )
            chunks.append(chunk)
            got += len(chunk)
    finally:
        if deadline is not None:
            sock.settimeout(previous_timeout)
    return b"".join(chunks)


# -- message helpers ---------------------------------------------------------

#: Request types the server understands.
REQ_PING = "ping"
REQ_SUBMIT = "submit"
REQ_STATUS = "status"
REQ_RESULT = "result"
REQ_CANCEL = "cancel"
REQ_WATCH = "watch"
REQ_SHUTDOWN = "shutdown"
REQ_AGENTS = "agents"
REQ_REGISTER = "register-agent"
REQ_DEREGISTER = "deregister-agent"

#: Typed error codes carried on error replies.
ERR_QUEUE_FULL = "queue-full"
ERR_BUDGET_EXCEEDED = "budget-exceeded"
ERR_TENANT_BUDGET = "tenant-budget-exceeded"
ERR_OVERLOADED = "overloaded"
ERR_DRAINING = "draining"
ERR_NOT_FOUND = "not-found"
ERR_BAD_REQUEST = "bad-request"
ERR_NOT_FINISHED = "not-finished"


def request(req_type: str, **fields: Any) -> dict[str, Any]:
    """A request message (the client's side of one exchange)."""
    msg = {"type": req_type}
    msg.update(fields)
    return msg


def ok_reply(**fields: Any) -> dict[str, Any]:
    """A successful reply message."""
    msg: dict[str, Any] = {"ok": True}
    msg.update(fields)
    return msg


def error_reply(code: str, message: str) -> dict[str, Any]:
    """A typed error reply (``code`` is one of the ``ERR_*`` values)."""
    return {"ok": False, "error": {"code": code, "message": message}}
