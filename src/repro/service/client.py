"""Typed blocking client for the job service.

One :class:`ServiceClient` talks the framed protocol over TCP.  Every
RPC opens a fresh connection (requests are idempotent — submission
dedupes on the spec hash, results are durable), which is what makes the
bounded retry loop safe: a connection the daemon severed mid-exchange
(the ``service.conn.drop`` fault site, or a real network flap) is simply
retried against a new socket.

Typed failures: admission rejections raise
:class:`~repro.errors.AdmissionError` (with the server's rejection
code), unknown jobs raise :class:`~repro.errors.JobNotFound`, transport
damage raises :class:`~repro.errors.ProtocolError`, and everything else
service-side raises :class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any, Callable

from repro.errors import (
    AdmissionError,
    JobNotFound,
    ProtocolError,
    ServiceError,
)
from repro.service import protocol
from repro.service.jobspec import ServiceJobSpec
from repro.service.state import JobRecord, ServiceState
from repro.util.backoff import exponential_jitter

#: Error codes that map to AdmissionError.
_ADMISSION_CODES = (
    protocol.ERR_QUEUE_FULL,
    protocol.ERR_BUDGET_EXCEEDED,
    protocol.ERR_TENANT_BUDGET,
    protocol.ERR_OVERLOADED,
    protocol.ERR_DRAINING,
)


class ServiceClient:
    """Blocking client bound to one daemon endpoint."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        max_retries: int = 3,
        retry_delay_s: float = 0.05,
        retry_seed: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.retry_delay_s = retry_delay_s
        self.retry_seed = retry_seed

    def _backoff(self, attempt: int) -> float:
        """Seeded exponential backoff with jitter for retry ``attempt``.

        Jitter decorrelates a fleet of clients that all saw the same
        drop (no thundering-herd reconnect); the seed keeps each
        client's delays reproducible under test.
        """
        return exponential_jitter(
            attempt,
            base=self.retry_delay_s,
            cap=self.retry_delay_s * 8,
            seed=self.retry_seed,
        )

    @classmethod
    def from_state_dir(cls, state_dir: "str | Path", **kw: Any) -> "ServiceClient":
        """Connect to the daemon advertised in ``state_dir/endpoint.json``."""
        host, port = ServiceState(Path(state_dir)).read_endpoint()
        return cls(host, port, **kw)

    # -- transport -----------------------------------------------------------

    def _connect(self) -> socket.socket:
        """A fresh connection; raises raw ``OSError`` on failure so the
        retry loops treat a refused/reset *connect* exactly like a
        severed mid-stream read — both get a fresh socket and another
        attempt, and only exhaustion surfaces a typed ServiceError."""
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )

    def _rpc(self, msg: dict[str, Any]) -> dict[str, Any]:
        """One request/reply exchange, retried over a fresh socket.

        Retryable: connect failures (``ConnectionRefusedError``…), a
        mid-stream ``ECONNRESET``/``EOF`` during the response read, a
        socket timeout, and frames torn (``truncated``) or stalled
        (``stalled``) mid-transfer — every RPC is idempotent, so a
        reply lost in transit is safe to re-request.  Frame *damage*
        (bad CRC, bad magic, version skew) is not retried: garbage from
        a live peer will be garbage again.
        """
        last: Exception | None = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                time.sleep(self._backoff(attempt - 1))
            try:
                with self._connect() as sock:
                    protocol.send_frame(sock, msg)
                    reply = protocol.recv_frame(sock)
            except (EOFError, OSError) as exc:
                last = exc
                continue
            except ProtocolError as exc:
                if exc.reason in ("truncated", "stalled"):
                    last = exc  # severed/stalled mid-frame: retryable
                    continue
                raise
            return self._check_reply(reply)
        raise ServiceError(
            f"service at {self.host}:{self.port} was unreachable or "
            f"dropped the connection {self.max_retries + 1} time(s): {last}"
        ) from last

    @staticmethod
    def _check_reply(reply: "dict[str, Any] | bytes") -> dict[str, Any]:
        if not isinstance(reply, dict):
            raise ProtocolError(
                "expected a JSON reply frame", reason="bad-payload"
            )
        if reply.get("ok"):
            return reply
        error = reply.get("error") or {}
        code = error.get("code", "")
        message = error.get("message", "service error")
        if code in _ADMISSION_CODES:
            raise AdmissionError(message, code=code)
        if code == protocol.ERR_NOT_FOUND:
            raise JobNotFound(message)
        raise ServiceError(f"[{code}] {message}")

    # -- RPCs ----------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        """Liveness + queue/counter snapshot from the daemon."""
        return self._rpc(protocol.request(protocol.REQ_PING))

    def submit(
        self, spec: ServiceJobSpec, rerun: bool = False
    ) -> dict[str, Any]:
        """Submit a job; returns ``{job_id, state, reattached, position}``."""
        return self._rpc(protocol.request(
            protocol.REQ_SUBMIT, spec=spec.to_dict(), rerun=rerun,
        ))

    def status(self, job_id: str | None = None) -> dict[str, Any]:
        """One job's record, or every known job plus service counters."""
        msg = protocol.request(protocol.REQ_STATUS)
        if job_id is not None:
            msg["job_id"] = job_id
        return self._rpc(msg)

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job's record + stored report (DONE jobs)."""
        return self._rpc(protocol.request(protocol.REQ_RESULT, job_id=job_id))

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a queued or running job (terminal states are a no-op)."""
        return self._rpc(protocol.request(protocol.REQ_CANCEL, job_id=job_id))

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to drain and exit."""
        return self._rpc(protocol.request(protocol.REQ_SHUTDOWN))

    def agents(self) -> dict[str, Any]:
        """The agent pool snapshot: per-agent state, latency, inflight."""
        return self._rpc(protocol.request(protocol.REQ_AGENTS))

    def register_agent(self, addr: str) -> dict[str, Any]:
        """Add one agent to the pool; returns ``{addr, created}``."""
        return self._rpc(protocol.request(protocol.REQ_REGISTER, addr=addr))

    def deregister_agent(self, addr: str) -> dict[str, Any]:
        """Drop one agent from the pool; returns ``{removed}``."""
        return self._rpc(protocol.request(protocol.REQ_DEREGISTER, addr=addr))

    # -- waiting -------------------------------------------------------------

    def wait(
        self,
        job_id: str,
        on_transition: "Callable[[JobRecord], None] | None" = None,
        timeout_s: float | None = None,
    ) -> JobRecord:
        """Stream state transitions until the job finishes.

        Uses the server's ``watch`` stream; a dropped stream re-watches
        (transitions may be re-observed, never lost).  ``on_transition``
        fires once per distinct observed state.
        """
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        last_state: str | None = None
        drops = 0
        while True:
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} "
                    f"(last state: {last_state})"
                )
            try:
                with self._connect() as sock:
                    protocol.send_frame(sock, protocol.request(
                        protocol.REQ_WATCH, job_id=job_id,
                    ))
                    while True:
                        reply = self._check_reply(protocol.recv_frame(sock))
                        record = JobRecord.from_dict(reply["job"])
                        drops = 0
                        if record.state != last_state:
                            last_state = record.state
                            if on_transition is not None:
                                on_transition(record)
                        if record.finished:
                            return record
            except (EOFError, OSError) as exc:
                drops += 1
                if drops > self.max_retries:
                    raise ServiceError(
                        f"watch stream for {job_id} dropped "
                        f"{drops} time(s): {exc}"
                    ) from exc
                time.sleep(self._backoff(drops - 1))
            except ProtocolError as exc:
                if exc.reason not in ("truncated", "stalled"):
                    raise
                drops += 1
                if drops > self.max_retries:
                    raise ServiceError(
                        f"watch stream for {job_id} dropped "
                        f"{drops} time(s): {exc}"
                    ) from exc
                time.sleep(self._backoff(drops - 1))

    def submit_and_wait(
        self,
        spec: ServiceJobSpec,
        rerun: bool = False,
        on_transition: "Callable[[JobRecord], None] | None" = None,
        timeout_s: float | None = None,
    ) -> tuple[JobRecord, "dict[str, Any] | None"]:
        """Submit, stream transitions, then fetch the stored report."""
        submitted = self.submit(spec, rerun=rerun)
        record = self.wait(
            submitted["job_id"], on_transition=on_transition,
            timeout_s=timeout_s,
        )
        reply = self.result(record.job_id)
        return JobRecord.from_dict(reply["job"]), reply.get("report")
