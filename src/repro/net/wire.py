"""Deadline-bounded framed transport with seeded fault injection.

Thin wrappers over :mod:`repro.service.protocol`'s encode/decode core —
the net layer and the job service speak byte-identical frames — adding
the three things a multi-host coordinator needs:

* **per-call deadlines** — every connect, send, and recv is bounded, so
  a partitioned peer can never hang a caller (the coordinator's only
  unbounded waits are its own leases);
* **seeded wire faults** — ``net.conn.drop`` (the socket dies before
  the frame is written) and ``net.partial.write`` (half a frame is
  written, then the socket dies) fire deterministically from the armed
  :class:`~repro.faults.injector.FaultInjector`, exercising the exact
  failure surfaces real networks produce;
* **jittered bounded retries** — :func:`with_retries` runs any network
  call through :func:`repro.util.backoff.exponential_jitter`, raising
  :class:`~repro.errors.PeerUnreachable` only on exhaustion.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Callable, TypeVar

from repro.errors import PeerUnreachable, ProtocolError
from repro.faults.plan import SITE_NET_CONN_DROP, SITE_NET_PARTIAL_WRITE
from repro.net.peers import split_addr
from repro.service.protocol import encode_frame, recv_frame
from repro.util.backoff import exponential_jitter

T = TypeVar("T")

#: Default per-call deadline when options carry none.
DEFAULT_TIMEOUT_S = 10.0
#: First retry delay for reconnect loops (grows exponentially, capped).
RETRY_BASE_S = 0.05

#: ProtocolError reasons that mean "the connection was damaged in
#: transit" — retryable over a fresh socket, unlike structural garbage
#: (bad magic, version skew) which would be garbage again.
TRANSIENT_REASONS = ("truncated", "stalled", "bad-crc")


def connect(addr: str, timeout_s: float = DEFAULT_TIMEOUT_S) -> socket.socket:
    """One TCP connection to ``host:port``; raw ``OSError`` on failure."""
    host, port = split_addr(addr)
    sock = socket.create_connection((host, port), timeout=timeout_s)
    sock.settimeout(timeout_s)
    # Shard traffic is bursty command/result frames; never batch them.
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def send_frame_faulted(
    sock: socket.socket,
    payload: "dict[str, Any] | bytes",
    injector: Any = None,
    scope: tuple = (),
) -> None:
    """Send one frame, subject to the seeded wire-fault sites.

    ``net.conn.drop`` severs the socket *before* any byte is written
    (the peer sees a clean close); ``net.partial.write`` writes half
    the frame and then severs (the peer sees a torn frame).  Both
    surface to the caller as ``ConnectionResetError`` so the retry
    path is identical to a genuine network flap.
    """
    data = encode_frame(payload)
    if injector is not None:
        if injector.check(SITE_NET_CONN_DROP, scope=scope) is not None:
            _sever(sock)
            raise ConnectionResetError(
                f"injected {SITE_NET_CONN_DROP} at {scope!r}"
            )
        if injector.check(SITE_NET_PARTIAL_WRITE, scope=scope) is not None:
            try:
                sock.sendall(data[: max(1, len(data) // 2)])
            except OSError:
                pass
            _sever(sock)
            raise ConnectionResetError(
                f"injected {SITE_NET_PARTIAL_WRITE} at {scope!r}"
            )
    sock.sendall(data)


def _sever(sock: socket.socket) -> None:
    """Hard-close one socket (RST where the platform allows it)."""
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER,
            b"\x01\x00\x00\x00\x00\x00\x00\x00",
        )
    except OSError:  # pragma: no cover - platform-specific
        pass
    try:
        sock.close()
    except OSError:  # pragma: no cover - already dead
        pass


def recv_frame_idle(
    sock: socket.socket, stall_timeout_s: "float | None" = None
) -> "dict[str, Any] | bytes":
    """Receive one frame from a long-lived connection.

    Idle between frames is legitimate (control connections sit quiet
    while workers compute), so only a *started* frame is held to the
    stall deadline — the same discipline the service daemon applies.
    """
    return recv_frame(sock, timeout_s=stall_timeout_s, idle_ok=True)


def with_retries(
    fn: "Callable[[int], T]",
    retries: int = 3,
    seed: int = 0,
    label: str = "",
    peer: str = "",
    base_s: float = RETRY_BASE_S,
    sleep: "Callable[[float], None]" = time.sleep,
) -> T:
    """Run ``fn(attempt)`` with jittered backoff over transient failures.

    Retryable: any ``OSError`` (connect refused, reset, timeout), a
    clean ``EOFError`` mid-exchange, and transport damage
    (``truncated`` / ``stalled`` / ``bad-crc`` frames).  Exhaustion
    raises :class:`~repro.errors.PeerUnreachable` chained to the last
    underlying failure.
    """
    last: Exception | None = None
    for attempt in range(retries + 1):
        if attempt:
            sleep(exponential_jitter(
                attempt - 1, base=base_s, cap=base_s * 8, seed=seed,
            ))
        try:
            return fn(attempt)
        except (EOFError, OSError) as exc:
            last = exc
        except ProtocolError as exc:
            if exc.reason not in TRANSIENT_REASONS:
                raise
            last = exc
    raise PeerUnreachable(
        f"{label or 'network call'}: {retries + 1} attempt(s) failed; "
        f"last error: {last}", peer=peer,
    ) from last
