"""The coordinator's side of one agent connection.

:class:`AgentLink` owns the control connection to one ``supmr agent``:
it relays spawn/command/kill traffic out (seq-stamped, retried over a
fresh socket with jittered backoff when a frame is dropped or torn),
and pumps the agent's result frames into the coordinator's existing
result queue — so the lease/respawn/speculation machinery in
:mod:`repro.shard.coordinator` is *unchanged* whether a worker blob
crossed a process boundary or a host boundary.

Liveness is active, not assumed: a pinger thread expects pong traffic
within ``net_timeout_s``; silence past it (an injected or genuine
partition) marks the link **unusable** and closes it, at which point a
partitioned peer is indistinguishable from a dead one — the coordinator
respawns its shards locally and any late traffic from the old peer is
discarded with the socket.  Every wait on this path is bounded; the
link can never hang the coordinator.

:class:`RemoteHandle` is the per-worker facade over a link, exposing
the same ``send``/``alive``/``kill`` surface the coordinator's local
fork handles expose.
"""

from __future__ import annotations

import pickle
import threading
import time
import uuid
from typing import Any, Callable

from repro.errors import ProtocolError
from repro.net import wire
from repro.service.protocol import recv_frame, send_frame
from repro.util.backoff import exponential_jitter
from repro.util.logging import get_logger

logger = get_logger(__name__)


class AgentLink:
    """One control connection to a remote agent, with liveness tracking."""

    def __init__(
        self,
        addr: str,
        index: int = 0,
        net_timeout_s: float = 10.0,
        retries: int = 3,
    ) -> None:
        self.addr = addr
        self.index = index
        self.net_timeout_s = net_timeout_s
        self.retries = retries
        #: Control-session ownership token.  Stable across *this* link's
        #: reconnects (so the agent's resend-tail protocol still serves
        #: a mere network blip) but unique per coordinator incarnation —
        #: the agent kills workers left by a previous owner on attach
        #: instead of handing their results to the wrong job.
        self.owner = uuid.uuid4().hex
        #: Worker exits reported by the agent: ``(sid, wid) -> exitcode``.
        self.exited: dict[tuple[int, int], "int | None"] = {}
        self._seq = 0
        self._dead = False
        self._closing = False
        self._dead_reason = ""
        self._sink: "Callable[[bytes], None] | None" = None
        self._injector: Any = None
        self._send_lock = threading.RLock()
        self._last_heard = time.monotonic()
        #: Highest agent result-frame rseq seen: the at-least-once
        #: resend protocol's dedup watermark, echoed back as ``ack``.
        self._last_rseq = -1
        self._threads: list[threading.Thread] = []
        # Startup connect is the one failure that is *not* degraded
        # around: an unreachable peer on the command line is a usage
        # error (exit 2), surfaced by PeerUnreachable from with_retries.
        self._sock = wire.with_retries(
            lambda _attempt: self._dial(),
            retries=retries, seed=index,
            label=f"connect to agent {addr}", peer=addr,
        )

    def _dial(self):
        sock = wire.connect(self.addr, timeout_s=self.net_timeout_s)
        try:
            send_frame(sock, {"type": "hello", "owner": self.owner})
        except OSError:
            sock.close()
            raise
        return sock

    # -- lifecycle -----------------------------------------------------------

    def attach(self, sink: "Callable[[bytes], None]", injector: Any = None) -> None:
        """Start relaying: worker blobs go to ``sink``, faults arm sends."""
        self._sink = sink
        self._injector = injector
        for target in (self._read_loop, self._ping_loop):
            t = threading.Thread(target=target, daemon=True)
            t.start()
            self._threads.append(t)

    @property
    def usable(self) -> bool:
        """Whether the coordinator may still place or command work here."""
        return not self._dead and not self._closing

    def close(self) -> None:
        """Best-effort worker cleanup, then sever the connection."""
        if self._closing:
            return
        if not self._dead:
            self.send({"cmd": "kill-all"})
        self._closing = True
        self._drop_socket()
        for t in self._threads:
            t.join(timeout=1.0)

    def _drop_socket(self) -> None:
        with self._send_lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _mark_dead(self, reason: str) -> None:
        if self._dead:
            return
        self._dead = True
        self._dead_reason = reason
        logger.warning("agent %s marked unreachable: %s", self.addr, reason)
        self._drop_socket()

    # -- outbound ------------------------------------------------------------

    def send(self, cmd: "dict[str, Any]") -> bool:
        """Ship one seq-stamped command, reconnecting across failures.

        Transient damage (reset, torn frame, injected ``net.conn.drop``
        or ``net.partial.write``) is retried over a fresh connection
        under jittered backoff; the agent deduplicates by ``seq``, so a
        resend of a frame that did arrive is a no-op.  Exhaustion marks
        the link unusable and returns ``False`` — callers never see an
        exception, the coordinator's sweep sees a dead worker instead.
        """
        with self._send_lock:
            if self._dead or self._closing:
                return False
            cmd = dict(cmd)
            cmd["seq"] = self._seq
            self._seq += 1
            payload = pickle.dumps(cmd)
            for attempt in range(self.retries + 1):
                if attempt:
                    time.sleep(exponential_jitter(
                        attempt - 1, base=0.02, cap=0.2,
                        seed=self.index * 7919 + cmd["seq"],
                    ))
                sock = self._sock
                if sock is None:
                    try:
                        sock = self._dial()
                    except OSError:
                        continue
                    self._sock = sock
                try:
                    wire.send_frame_faulted(
                        sock, payload, self._injector,
                        scope=("ctl", self.index, cmd["seq"]),
                    )
                    return True
                except (OSError, ProtocolError):
                    if self._sock is sock:
                        self._sock = None
                    try:
                        sock.close()
                    except OSError:
                        pass
            self._mark_dead(
                f"{self.retries + 1} send attempt(s) failed for command "
                f"{cmd.get('cmd')!r}"
            )
            return False

    def spawn(
        self,
        sid: int,
        wid: int,
        job: dict,
        options: dict,
        chunks: list,
        num_partitions: int,
    ) -> bool:
        """Ask the agent to fork one shard worker from wire forms."""
        return self.send({
            "cmd": "spawn", "sid": sid, "wid": wid, "job": job,
            "options": options, "chunks": chunks,
            "num_partitions": num_partitions,
        })

    def inject_death(self, after_relays: int = 1) -> bool:
        """Command the seeded ``net.host.loss`` site: die mid-phase."""
        return self.send({"cmd": "die", "after_relays": after_relays})

    def inject_partition(self, duration_s: float) -> bool:
        """Command the seeded ``net.partition`` site: go silent."""
        return self.send({"cmd": "mute", "duration_s": duration_s})

    # -- inbound -------------------------------------------------------------

    def _read_loop(self) -> None:
        while not self._closing and not self._dead:
            sock = self._sock
            if sock is None:
                time.sleep(0.02)
                continue
            try:
                frame = recv_frame(sock, timeout_s=None, idle_ok=True)
            except (EOFError, ProtocolError, OSError) as exc:
                if self._closing or self._dead:
                    return
                if (
                    isinstance(exc, ProtocolError)
                    and exc.reason == "stalled"
                    and sock is self._sock
                ):
                    # The socket's own timeout elapsed between frames —
                    # an idle tick, not damage; liveness is the pinger's
                    # job.  (A rare stall *mid*-frame realigns on the
                    # next read and is then caught as bad-magic.)
                    continue
                # The send path owns reconnection; just detach the
                # broken socket so the next send (or ping) re-dials.
                with self._send_lock:
                    if self._sock is sock:
                        self._sock = None
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            self._last_heard = time.monotonic()
            if not isinstance(frame, bytes):
                continue
            try:
                tag, rseq, payload = pickle.loads(frame)
            except Exception:  # noqa: BLE001 - damaged frame; resent anyway
                continue
            if tag != "res":
                continue
            if rseq <= self._last_rseq:
                continue  # resent tail after a reconnect; already seen
            self._last_rseq = rseq
            if isinstance(payload, bytes):
                if self._sink is not None:
                    self._sink(payload)
            elif payload.get("type") == "worker-exit":
                self.exited[(int(payload["sid"]), int(payload["wid"]))] = (
                    payload.get("exitcode")
                )

    def _ping_loop(self) -> None:
        interval = max(0.05, min(0.5, self.net_timeout_s / 4))
        while not self._closing and not self._dead:
            time.sleep(interval)
            if self._closing or self._dead:
                return
            if time.monotonic() - self._last_heard > self.net_timeout_s:
                self._mark_dead(
                    f"no traffic for over {self.net_timeout_s:.3g}s "
                    "(partitioned or dead)"
                )
                return
            # The piggybacked ack lets the agent trim its resend buffer.
            self.send({"cmd": "ping", "ack": self._last_rseq})


class RemoteHandle:
    """One remote shard worker, behind the local-handle interface."""

    is_remote = True
    #: Remote pids are agent-host facts; the coordinator's pid files
    #: only ever describe processes on its own host.
    pid = None

    def __init__(self, link: AgentLink, sid: int, wid: int) -> None:
        self.link = link
        self.sid = sid
        self.wid = wid
        self.name = f"repro-shard-{sid}.{wid}@{link.addr}"

    @property
    def fetch_addr(self) -> str:
        """Where this worker's published runs can be fetched from."""
        return self.link.addr

    def send(self, msg: Any) -> None:
        """Relay one command dict to the worker's inbox on its host."""
        self.link.send({
            "cmd": "send", "sid": self.sid, "wid": self.wid, "msg": msg,
        })

    def alive(self) -> bool:
        """Best knowledge of liveness: link up, no exit reported."""
        return self.link.usable and (self.sid, self.wid) not in self.link.exited

    def kill(self) -> None:
        """Ask the agent to kill the worker (fire-and-forget)."""
        self.link.send({"cmd": "kill", "sid": self.sid, "wid": self.wid})

    def stop(self) -> None:
        """The graceful sentinel a local worker gets on its inbox."""
        self.send(None)

    def join(self, timeout: "float | None" = None) -> None:
        """No blocking join across hosts; exits arrive as frames."""

    def discard(self) -> None:
        """Nothing host-side to release for a remote worker."""

    def describe_exit(self) -> str:
        """Human-readable cause of death for recovery log lines."""
        if not self.link.usable:
            return f"its host {self.link.addr} became unreachable"
        code = self.link.exited.get((self.sid, self.wid))
        return f"exited with code {code}"


def ping_agent(
    addr: str, timeout_s: float = 2.0
) -> "tuple[float, dict[str, Any]]":
    """One standalone health probe of a ``supmr agent``.

    Opens a fresh connection, sends the one-frame ``ping`` session kind
    (which never touches the agent's control session — probing a busy
    agent must not steal the coordinator's socket), and measures the
    round trip.  Returns ``(latency_s, pong_payload)``; the payload
    carries the agent's hosted-worker count and its counters
    (``agent_reaped`` among them).  Raises ``OSError`` on connect/reset,
    ``socket.timeout`` on a stalled reply (a partitioned agent accepts
    the connection but never answers), and
    :class:`~repro.errors.ProtocolError` on a malformed one — the
    caller treats them all as "probe failed".
    """
    start = time.monotonic()
    sock = wire.connect(addr, timeout_s=timeout_s)
    try:
        send_frame(sock, {"type": "ping"})
        reply = recv_frame(sock, timeout_s=timeout_s)
    finally:
        try:
            sock.close()
        except OSError:
            pass
    if not isinstance(reply, dict) or reply.get("type") != "pong":
        raise ProtocolError(
            f"agent {addr} answered the ping with a non-pong frame",
            reason="bad-payload",
        )
    return time.monotonic() - start, reply
