"""Remote run exchange: partition runs fetched over the framed wire.

On one host the reduce phase *copies* each source run out of the owning
shard's outbox and CRC-verifies the copy (:func:`repro.shard.exchange.
fetch_run`).  Across hosts the copy becomes a transfer: the reducer
opens a **fetch session** to the host holding the outbox and pulls the
run down in bounded range requests.  The same integrity discipline
applies end to end —

* every frame is CRC-framed by the transport, and the assembled file is
  re-verified against the run's own checksum before adoption (a copy
  that fails is deleted and refetched, bounded by the retry budget);
* a connection that dies mid-transfer is reopened and the transfer
  **resumes from the last received byte** (range requests make the
  retry incremental, not from-scratch);
* the whole transfer runs under a wall-clock deadline, so a partitioned
  or wedged peer surfaces as a typed error instead of a hang.

The seeded sites ``net.frame.corrupt`` (damage the received bytes, so
verification must catch it) and ``net.conn.drop`` (sever mid-transfer,
so resume must cover it) are decided by the coordinator per
``(partition, source)`` and arrive pre-rolled in the reduce command,
exactly like the local exchange's ``shard.exchange_corrupt`` schedule.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any, Sequence

from repro.errors import NetError, PeerUnreachable, ProtocolError, SpillError
from repro.errors import RetryExhausted
from repro.faults.log import ACTION_REFETCHED, ACTION_RETRIED
from repro.faults.plan import SITE_NET_CONN_DROP, SITE_NET_FRAME_CORRUPT
from repro.net import wire
from repro.service.protocol import recv_frame, send_frame
from repro.shard.exchange import EventRow
from repro.spill.manager import _flip_byte
from repro.spill.runfile import HEADER_BYTES, RunReader

#: Range-request size.  One run travels as ``ceil(size / CHUNK_BYTES)``
#: data frames; small enough to keep resume granularity useful, large
#: enough that the header overhead is noise.
CHUNK_BYTES = 256 * 1024

#: Default whole-transfer deadline when the caller supplies none.
DEFAULT_DEADLINE_S = 30.0


# -- server side (shared by the agent and the coordinator) -------------------


def serve_fetch_session(
    sock: socket.socket, base_dir: Path, stall_timeout_s: float = 30.0
) -> None:
    """Answer one fetch connection's requests until it closes.

    Requests are JSON frames: ``{"op": "stat", "path"}`` answers the
    file size; ``{"op": "read", "path", "offset", "length"}`` answers
    one ``KIND_BYTES`` frame of at most ``length`` bytes from
    ``offset`` (empty at EOF).  Paths must resolve inside ``base_dir``
    — a fetch server only ever exports its own exchange workdir.
    """
    base = base_dir.resolve()
    while True:
        try:
            req = recv_frame(sock, timeout_s=stall_timeout_s, idle_ok=True)
        except (EOFError, ProtocolError, OSError):
            return
        if not isinstance(req, dict):
            send_frame(sock, {"ok": False, "error": "expected a JSON request"})
            continue
        try:
            path = _exported_path(base, str(req.get("path", "")))
            if req.get("op") == "stat":
                send_frame(sock, {"ok": True, "size": path.stat().st_size})
            elif req.get("op") == "read":
                offset = int(req.get("offset", 0))
                length = min(int(req.get("length", 0)), CHUNK_BYTES)
                with open(path, "rb") as f:
                    f.seek(offset)
                    data = f.read(max(0, length))
                send_frame(sock, data)
            else:
                send_frame(
                    sock, {"ok": False, "error": f"unknown op {req.get('op')!r}"}
                )
        except OSError as exc:
            try:
                send_frame(sock, {"ok": False, "error": str(exc)})
            except OSError:
                return


def _exported_path(base: Path, raw: str) -> Path:
    """Resolve one requested path, refusing escapes from the export root."""
    path = Path(raw).resolve()
    if base != path and base not in path.parents:
        raise FileNotFoundError(f"{raw!r} is outside the exported directory")
    return path


# -- client side --------------------------------------------------------------


class _FetchConn:
    """One open fetch session to a peer's run exporter."""

    def __init__(self, addr: str, timeout_s: float) -> None:
        self.addr = addr
        self.sock = wire.connect(addr, timeout_s=timeout_s)
        send_frame(self.sock, {"type": "fetch"})

    def stat(self, path: str) -> int:
        send_frame(self.sock, {"op": "stat", "path": path})
        return int(_ok(self.recv(), self.addr, path)["size"])

    def read_range(self, path: str, offset: int, length: int) -> bytes:
        send_frame(
            self.sock,
            {"op": "read", "path": path, "offset": offset, "length": length},
        )
        reply = self.recv()
        if isinstance(reply, dict):
            _ok(reply, self.addr, path)
            raise NetError(f"{self.addr}: expected a data frame for {path}")
        return reply

    def recv(self) -> "dict[str, Any] | bytes":
        return recv_frame(self.sock, timeout_s=10.0, idle_ok=False)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already dead
            pass


def _ok(reply: "dict[str, Any] | bytes", addr: str, path: str) -> dict:
    if isinstance(reply, dict) and not reply.get("ok", True):
        raise NetError(f"{addr}: fetch of {path} refused: {reply.get('error')}")
    return reply if isinstance(reply, dict) else {}


def fetch_run_remote(
    addr: str,
    src: "str | Path",
    dst: Path,
    corrupt_attempts: Sequence[int] = (),
    drop_attempts: Sequence[int] = (),
    max_retries: int = 3,
    deadline_s: float = DEFAULT_DEADLINE_S,
    events: "list[EventRow] | None" = None,
    scope: str = "",
) -> tuple[RunReader, int]:
    """Fetch one exchange run from ``addr`` and verify it before adoption.

    The remote twin of :func:`repro.shard.exchange.fetch_run`: same
    verify-then-refetch loop, same retry bound, same return shape —
    but the bytes arrive over the framed transport, severed connections
    resume from the received offset, and the whole call is bounded by
    ``deadline_s`` (exceeding it raises
    :class:`~repro.errors.PeerUnreachable`, never a hang).
    """
    deadline = time.monotonic() + deadline_s
    last: Exception | None = None
    for attempt in range(max_retries + 1):
        try:
            _download(
                addr, str(src), dst,
                drop=attempt in drop_attempts,
                deadline=deadline, events=events, scope=scope,
                attempt=attempt,
            )
        except PeerUnreachable:
            raise
        except (OSError, EOFError, ProtocolError, NetError) as exc:
            last = exc
            dst.unlink(missing_ok=True)
            if events is not None and attempt < max_retries:
                events.append((
                    SITE_NET_CONN_DROP, ACTION_RETRIED,
                    f"transfer attempt {attempt + 1} from {addr} failed "
                    f"({exc}); refetching", scope, attempt,
                ))
            continue
        if attempt in corrupt_attempts:
            # The seeded net.frame.corrupt site: damage the *received*
            # bytes (the remote original stays pristine), so the
            # verify-then-refetch path must catch and repair it.
            size = dst.stat().st_size
            offset = (
                HEADER_BYTES + (size - HEADER_BYTES) // 2
                if size > HEADER_BYTES else max(0, size - 1)
            )
            _flip_byte(dst, offset)
        try:
            reader = RunReader(dst)
            if not reader.verify():
                raise SpillError(
                    f"{dst}: remotely fetched run failed its checksum"
                )
        except SpillError as exc:
            last = exc
            dst.unlink(missing_ok=True)
            if events is not None and attempt < max_retries:
                events.append((
                    SITE_NET_FRAME_CORRUPT, ACTION_REFETCHED,
                    f"attempt {attempt + 1} rejected ({exc}); "
                    f"refetching from {addr}", scope, attempt,
                ))
            continue
        return reader, attempt
    raise RetryExhausted(
        f"{SITE_NET_FRAME_CORRUPT}: {max_retries + 1} remote fetch "
        f"attempt(s) of {Path(src).name} from {addr} failed; "
        f"last error: {last}",
        site=SITE_NET_FRAME_CORRUPT,
        attempts=max_retries + 1,
    ) from last


def _download(
    addr: str,
    path: str,
    dst: Path,
    drop: bool,
    deadline: float,
    events: "list[EventRow] | None",
    scope: str,
    attempt: int,
) -> None:
    """One full transfer attempt, resuming across severed connections."""
    conn = _open(addr, deadline, path)
    try:
        size = conn.stat(path)
        step = CHUNK_BYTES
        if drop and size > 1:
            # Guarantee the injected sever lands mid-transfer even for
            # runs smaller than one range, so resume is always exercised.
            step = min(step, max(1, (size + 1) // 2))
        offset = 0
        dropped = False
        with open(dst, "wb") as out:
            while offset < size:
                _check_deadline(addr, path, deadline)
                try:
                    data = conn.read_range(
                        path, offset, min(step, size - offset)
                    )
                except (OSError, EOFError, ProtocolError) as exc:
                    _note_resume(events, scope, attempt, addr, offset, exc)
                    conn.close()
                    conn = _open(addr, deadline, path)
                    continue
                if not data:
                    raise NetError(
                        f"{addr}: {path} shrank mid-transfer "
                        f"(EOF at {offset}/{size})"
                    )
                out.write(data)
                offset += len(data)
                if drop and not dropped and offset < size:
                    dropped = True
                    _note_resume(
                        events, scope, attempt, addr, offset,
                        f"injected {SITE_NET_CONN_DROP}",
                    )
                    conn.close()
                    conn = _open(addr, deadline, path)
    finally:
        conn.close()


def _open(addr: str, deadline: float, path: str) -> _FetchConn:
    _check_deadline(addr, path, deadline)
    remaining = deadline - time.monotonic()
    return _FetchConn(addr, timeout_s=max(0.05, min(10.0, remaining)))


def _check_deadline(addr: str, path: str, deadline: float) -> None:
    if time.monotonic() >= deadline:
        raise PeerUnreachable(
            f"transfer deadline exceeded fetching {path} from {addr}",
            peer=addr,
        )


def _note_resume(
    events: "list[EventRow] | None",
    scope: str,
    attempt: int,
    addr: str,
    offset: int,
    cause: Any,
) -> None:
    if events is not None:
        events.append((
            SITE_NET_CONN_DROP, ACTION_RETRIED,
            f"connection to {addr} dropped at byte {offset} ({cause}); "
            "resuming from the received offset", scope, attempt,
        ))
