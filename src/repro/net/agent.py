"""The ``supmr agent`` daemon: shard workers hosted on a remote peer.

One agent process serves one listen port with two connection types,
distinguished by the first (JSON) frame:

* ``{"type": "hello"}`` — the coordinator's **control session**.
  Subsequent frames are pickled command dicts (spawn a shard worker,
  relay a map/reduce command to its inbox, kill, ping); the agent
  streams back rseq-stamped ``("res", rseq, payload)`` frames whose
  payloads are the workers' pickled result blobs — heartbeats,
  ``map_done`` wave stats, fault event rows — plus small control dicts
  (``pong``, ``worker-exit``), so the coordinator's lease/respawn/
  speculation machinery sees exactly what a local fork would have sent.
* ``{"type": "fetch"}`` — a **fetch session** exporting the agent's
  exchange workdir (:func:`repro.net.exchange.serve_fetch_session`),
  which is how reducers on other hosts pull this host's map outboxes.

Robustness contract: delivery is at-least-once with dedup in **both**
directions — commands carry a monotonically increasing ``seq`` and are
deduplicated here, result frames carry ``rseq`` and are kept until the
coordinator acks them (piggybacked on pings), resent across reconnects,
and deduplicated there; a lost control connection starts a
**grace timer** — workers survive a reconnect inside it, and are killed
(no orphans) once it expires or the agent exits.  Forked workers also
watch the agent's pid and die with it, so even ``SIGKILL`` of the agent
leaks nothing.

The seeded ``net.host.loss`` and ``net.partition`` sites are commanded
*into* the agent by the coordinator (``die`` / ``mute``) — the same
decided-at-the-coordinator pattern every shard-level fault site uses —
so a fault run replays identically wherever the workers land.
"""

from __future__ import annotations

import argparse
import os
import pickle
import shutil
import signal
import socket
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from queue import Empty
from typing import Any

import multiprocessing

from repro.errors import ProtocolError, ReproError
from repro.faults.log import ACTION_REAPED, FaultLog
from repro.faults.plan import SITE_NET_AGENT_REAP
from repro.net.exchange import serve_fetch_session
from repro.net.jobs import chunks_from_wire, job_from_wire, options_from_wire
from repro.net.peers import format_addr, split_addr
from repro.parallel.shard_worker import (
    MSG_MAP,
    MSG_REDUCE,
    SHARD_CRASH_EXIT,
    shard_worker_main,
)
from repro.service.protocol import recv_frame, send_frame
from repro.util.logging import get_logger

logger = get_logger(__name__)

#: Seconds a *started* frame may stall before the session is dropped.
FRAME_STALL_S = 30.0
#: Default orphan-cleanup grace after losing the control connection.
DEFAULT_GRACE_S = 10.0


def _watch_parent(parent_pid: int) -> None:
    """Die with the agent: a re-parented worker is an orphan, not work."""
    while True:
        if os.getppid() != parent_pid:
            os._exit(SHARD_CRASH_EXIT)
        time.sleep(0.2)


def _worker_shell(parent_pid: int, *args: Any) -> None:
    """Worker entrypoint: the shard worker body plus a parent watchdog.

    The watchdog is what makes ``SIGKILL`` of the agent equivalent to
    losing the whole host — every worker notices the re-parenting and
    exits, so the smoke tests' no-orphan check holds even for the
    ungraceful death paths.
    """
    threading.Thread(
        target=_watch_parent, args=(parent_pid,), daemon=True
    ).start()
    shard_worker_main(*args)


@dataclass
class _WorkerRec:
    """One hosted shard worker process and its command inbox."""

    proc: multiprocessing.process.BaseProcess
    inbox: Any


class AgentServer:
    """One listening agent: control session + fetch exports + workers."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workdir: "str | Path | None" = None,
        grace_s: float = DEFAULT_GRACE_S,
        accept_control: bool = True,
    ) -> None:
        self.listener = socket.create_server((host, port))
        self.host = host
        self.port = self.listener.getsockname()[1]
        self.addr = format_addr(host, self.port)
        self.grace_s = grace_s
        self.accept_control = accept_control
        self._owns_workdir = workdir is None
        self.workdir = Path(
            workdir or tempfile.mkdtemp(prefix="repro-agent-")
        )
        self.workdir.mkdir(parents=True, exist_ok=True)
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        #: At-least-once outbound delivery.  Every frame to the
        #: coordinator is stamped with ``rseq`` and kept here until the
        #: coordinator acks it (piggybacked on pings) — a torn
        #: connection, or an RST that destroys frames already handed to
        #: the kernel, just means the unacked tail is resent on the next
        #: reconnect and deduplicated at the far end.  Losing a
        #: ``map_done`` silently would stall its shard for a full lease.
        self._unsent: deque = deque()
        self._rseq = 0
        self._sent_upto = -1
        #: Ownership epoch: bumped (under the send lock) on takeover so
        #: a result blob pumped out of the queue just before the switch
        #: can never be posted to the new owner.
        self._epoch = 0
        self.workers: dict[tuple[int, int], _WorkerRec] = {}
        self._ctl: "socket.socket | None" = None
        #: Current control-session owner token (None until a coordinator
        #: that identifies itself attaches, or for legacy/anonymous
        #: sessions, which keep reconnect semantics).
        self._owner: "str | None" = None
        self._last_seq = -1
        self._mute_until = 0.0
        self._die_after: "int | None" = None
        self._relays = 0
        self._threads: list[threading.Thread] = []
        #: Post-mortem surface: the grace reaper logs every orphan kill
        #: here (site ``net.agent.reap``), and the counters separate
        #: grace-expiry reaps from commanded kills — both are exposed
        #: through the ``ping`` session for health probes and tests.
        self.fault_log = FaultLog(clock=time.monotonic)
        self.counters: dict[str, int] = {
            "agent_reaped": 0, "agent_killed": 0,
        }
        if accept_control:
            # A fetch-only instance (the coordinator's own run exporter)
            # never forks workers, so it skips the worker plumbing.
            self.ctx = multiprocessing.get_context("fork")
            self.results = self.ctx.Queue()
            for target in (self._pump, self._reap):
                t = threading.Thread(target=target, daemon=True)
                t.start()
                self._threads.append(t)

    # -- accept loop ---------------------------------------------------------

    def start(self) -> "AgentServer":
        """Serve in a background thread (tests, embedded fetch server)."""
        t = threading.Thread(target=self.serve_forever, daemon=True)
        t.start()
        self._threads.append(t)
        return self

    def serve_forever(self) -> None:
        """Accept connections until :meth:`close`."""
        self.listener.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _peer = self.listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._session, args=(conn,), daemon=True
            ).start()

    def _session(self, conn: socket.socket) -> None:
        try:
            hello = recv_frame(conn, timeout_s=FRAME_STALL_S)
        except (EOFError, ProtocolError, OSError):
            conn.close()
            return
        kind = hello.get("type") if isinstance(hello, dict) else None
        if kind == "fetch":
            try:
                serve_fetch_session(conn, self.workdir, FRAME_STALL_S)
            finally:
                conn.close()
        elif kind == "hello" and self.accept_control:
            self._control_session(conn, owner=hello.get("owner"))
        elif kind == "ping":
            self._ping_session(conn)
        else:
            conn.close()

    def _ping_session(self, conn: socket.socket) -> None:
        """One-shot health probe: answer and close.

        Deliberately *not* a control session — a ``hello`` would steal
        the coordinator's control socket mid-job (the agent keeps
        exactly one), so the registry's probes use this side door.
        During an injected partition the probe is swallowed like all
        other traffic: the prober sees the silence a real partition
        would produce.
        """
        try:
            if time.monotonic() < self._mute_until:
                return
            with self._lock:
                workers = len(self.workers)
            send_frame(conn, {
                "type": "pong",
                "addr": self.addr,
                "workers": workers,
                "counters": dict(self.counters),
                "reap_rows": self.fault_log.count(action=ACTION_REAPED),
            })
        except (OSError, ProtocolError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # -- control session -----------------------------------------------------

    def _control_session(
        self, conn: socket.socket, owner: "str | None" = None
    ) -> None:
        if owner is not None and owner != self._owner:
            # A *different* coordinator is taking the agent over (a new
            # job, or a relaunched attempt of the same one).  Workers
            # and queued results belong to the previous owner: handing
            # either to the newcomer would silently splice one job's
            # exchange data into another's digest.  Kill the leftovers
            # (audited as reaps), drop the unacked tail, and reset the
            # inbound dedup watermark — the new owner's seq starts at 0.
            # Anonymous hellos (owner None) keep the legacy reconnect
            # semantics: same session, tail resent.
            self._takeover(owner)
        with self._send_lock:
            old, self._ctl = self._ctl, conn
            # A reconnect re-delivers the whole unacked tail: frames the
            # torn connection ate, and frames that *did* arrive but were
            # not acked yet (the coordinator deduplicates by rseq).
            self._sent_upto = (
                self._unsent[0][0] - 1 if self._unsent else self._rseq - 1
            )
            self._flush_locked()
        if old is not None:
            try:
                old.close()
            except OSError:
                pass
        logger.debug("agent %s: coordinator attached", self.addr)
        try:
            while not self._stop.is_set():
                try:
                    frame = recv_frame(
                        conn, timeout_s=FRAME_STALL_S, idle_ok=True
                    )
                except (EOFError, ProtocolError, OSError):
                    break
                if not isinstance(frame, bytes):
                    continue
                try:
                    cmd = pickle.loads(frame)
                except Exception:  # noqa: BLE001 - hostile/corrupt command
                    continue
                self._handle(cmd)
        finally:
            with self._send_lock:
                if self._ctl is conn:
                    self._ctl = None
                    threading.Thread(
                        target=self._grace_reaper, daemon=True
                    ).start()
            try:
                conn.close()
            except OSError:
                pass

    def _takeover(self, owner: str) -> None:
        """Transfer control-session ownership to a new coordinator."""
        had_state = (
            self._owner is not None or bool(self.workers)
            or self._last_seq >= 0
        )
        previous, self._owner = self._owner, owner
        if not had_state:
            return
        with self._lock:
            keys = list(self.workers)
        for key in keys:
            self._kill(key, reaped=True, detail=(
                f"control session taken over by a new coordinator "
                f"(previous owner {previous or 'anonymous'}); "
                f"killed worker {key[0]}.{key[1]}"
            ))
        # The killed workers are joined, so nothing new lands in the
        # results queue; drain what already did.
        while True:
            try:
                self.results.get_nowait()
            except (Empty, OSError, ValueError):
                break
        with self._send_lock:
            self._epoch += 1
            self._unsent.clear()
        self._last_seq = -1
        logger.debug(
            "agent %s: ownership transferred (%s -> %s)",
            self.addr, previous, owner,
        )

    def _grace_reaper(self) -> None:
        """Kill orphaned workers once the reconnect grace expires."""
        deadline = time.monotonic() + self.grace_s
        while time.monotonic() < deadline:
            if self._stop.is_set() or self._ctl is not None:
                return
            time.sleep(0.05)
        if self._ctl is None:
            logger.debug(
                "agent %s: no coordinator for %.3gs; reaping workers",
                self.addr, self.grace_s,
            )
            self._kill_all(reaped=True)

    def _handle(self, cmd: dict) -> None:
        ack = cmd.get("ack")
        if ack is not None:
            with self._send_lock:
                while self._unsent and self._unsent[0][0] <= int(ack):
                    self._unsent.popleft()
        seq = int(cmd.get("seq", -1))
        if seq >= 0:
            if seq <= self._last_seq:
                return  # idempotent resend after a reconnect
            self._last_seq = seq
        if time.monotonic() < self._mute_until:
            return  # injected partition: inbound commands are "lost" too
        op = cmd.get("cmd")
        if op == "ping":
            self._post({"type": "pong", "seq": seq})
        elif op == "spawn":
            self._spawn(cmd)
        elif op == "send":
            self._relay(cmd)
        elif op == "kill":
            self._kill((int(cmd["sid"]), int(cmd["wid"])))
        elif op == "kill-all":
            self._kill_all()
        elif op == "mute":
            self._mute_until = (
                time.monotonic() + float(cmd.get("duration_s", 5.0))
            )
        elif op == "die":
            self._die_after = self._relays + int(cmd.get("after_relays", 1))

    def _spawn(self, cmd: dict) -> None:
        sid, wid = int(cmd["sid"]), int(cmd["wid"])
        try:
            job = job_from_wire(cmd["job"])
            options = options_from_wire(cmd["options"])
            chunks = chunks_from_wire(cmd["chunks"])
        except ReproError as exc:
            # Surface as the worker-error row a local fork would produce.
            self.results.put(pickle.dumps(
                ("error", sid, f"agent {self.addr} could not rebuild the "
                               f"job: {exc}")
            ))
            return
        inbox = self.ctx.Queue()
        proc = self.ctx.Process(
            target=_worker_shell,
            args=(
                os.getpid(), sid, job, options, chunks,
                int(cmd["num_partitions"]), inbox, self.results,
            ),
            daemon=True,
            name=f"repro-agent-shard-{sid}.{wid}",
        )
        proc.start()
        with self._lock:
            self.workers[(sid, wid)] = _WorkerRec(proc=proc, inbox=inbox)

    def _relay(self, cmd: dict) -> None:
        sid, wid = int(cmd["sid"]), int(cmd["wid"])
        with self._lock:
            rec = self.workers.get((sid, wid))
        if rec is None:
            return
        msg = cmd["msg"]
        if isinstance(msg, dict):
            msg = dict(msg)
            if msg.get("kind") == MSG_MAP:
                # Paths in the command are coordinator-host paths; the
                # work happens here, so the outbox moves to the agent's
                # workdir (advertised back verbatim in ``map_done``) and
                # checkpointing — a coordinator-host directory — is off.
                msg["outbox"] = str(self.workdir / f"out-{sid}.{wid}")
                msg["ckpt"] = None
                msg["resume"] = False
            elif msg.get("kind") == MSG_REDUCE:
                msg["workdir"] = str(self.workdir / f"in-{sid}.{wid}")
                msg["self_addr"] = self.addr
        rec.inbox.put(msg)

    def _kill(
        self,
        key: tuple[int, int],
        reaped: bool = False,
        detail: "str | None" = None,
    ) -> None:
        with self._lock:
            rec = self.workers.pop(key, None)
        if rec is None:
            return
        rec.proc.kill()
        rec.proc.join(timeout=5.0)
        rec.inbox.cancel_join_thread()
        rec.inbox.close()
        if reaped:
            # A grace-expiry (or takeover) kill is an *event*, not an
            # order: nobody asked for it, so post-mortems need the audit
            # row to tell "the agent cleaned up abandoned workers" apart
            # from "the coordinator commanded a kill".
            self.counters["agent_reaped"] += 1
            self.fault_log.record(
                SITE_NET_AGENT_REAP, ACTION_REAPED,
                detail or (
                    f"grace {self.grace_s:.3g}s expired with no "
                    f"coordinator; killed worker {key[0]}.{key[1]}"
                ),
                scope=f"{key[0]}.{key[1]}",
            )
        else:
            self.counters["agent_killed"] += 1

    def _kill_all(self, reaped: bool = False) -> None:
        with self._lock:
            keys = list(self.workers)
        for key in keys:
            self._kill(key, reaped=reaped)

    # -- outbound ------------------------------------------------------------

    def _post(
        self,
        payload: "dict[str, Any] | bytes",
        epoch: "int | None" = None,
    ) -> None:
        """Queue one rseq-stamped frame for the coordinator.

        Frames stay in :attr:`_unsent` until *acked*, not merely until
        written — an injected RST can destroy frames the kernel already
        accepted, so "send succeeded" proves nothing.  During an
        injected partition frames really are lost: a partitioned host's
        traffic never arrives, late or otherwise, because the
        coordinator writes the host off and closes the link for good.
        """
        if time.monotonic() < self._mute_until:
            return
        with self._send_lock:
            if epoch is not None and epoch != self._epoch:
                return  # pumped before a takeover: the old owner's data
            self._unsent.append((self._rseq, payload))
            self._rseq += 1
            self._flush_locked()

    def _flush_locked(self) -> None:
        """Ship every not-yet-written unacked frame (lock held)."""
        for rseq, payload in list(self._unsent):
            if rseq <= self._sent_upto:
                continue
            if self._ctl is None:
                return
            try:
                send_frame(self._ctl, pickle.dumps(("res", rseq, payload)))
            except (OSError, ProtocolError):
                self._ctl = None
                threading.Thread(
                    target=self._grace_reaper, daemon=True
                ).start()
                return
            self._sent_upto = rseq

    def _pump(self) -> None:
        """Relay worker result blobs; honors mute and commanded death."""
        while not self._stop.is_set():
            if time.monotonic() < self._mute_until:
                time.sleep(0.02)
                continue
            epoch = self._epoch
            try:
                blob = self.results.get(timeout=0.1)
            except (Empty, OSError, ValueError):
                continue
            self._post(blob, epoch=epoch)
            self._relays += 1
            if self._die_after is not None and self._relays >= self._die_after:
                # Injected net.host.loss: the whole "host" goes away
                # mid-phase — workers die with the agent, abruptly.
                logger.debug("agent %s: injected host loss", self.addr)
                self._kill_all()
                os._exit(1)

    def _reap(self) -> None:
        """Report worker exits so the coordinator can settle quickly."""
        while not self._stop.is_set():
            with self._lock:
                items = list(self.workers.items())
            for (sid, wid), rec in items:
                if not rec.proc.is_alive():
                    rec.proc.join(timeout=0.1)
                    with self._lock:
                        self.workers.pop((sid, wid), None)
                    rec.inbox.cancel_join_thread()
                    rec.inbox.close()
                    self._post({
                        "type": "worker-exit", "sid": sid, "wid": wid,
                        "exitcode": rec.proc.exitcode,
                    })
            time.sleep(0.05)

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting, kill workers, release the workdir."""
        self._stop.set()
        try:
            self.listener.close()
        except OSError:
            pass
        if self.accept_control:
            self._kill_all()
            self.results.cancel_join_thread()
            self.results.close()
        with self._send_lock:
            if self._ctl is not None:
                try:
                    self._ctl.close()
                except OSError:
                    pass
                self._ctl = None
        if self._owns_workdir:
            shutil.rmtree(self.workdir, ignore_errors=True)


# -- CLI entrypoint ----------------------------------------------------------


def cmd_agent(args: argparse.Namespace) -> int:
    """``supmr agent``: serve until SIGTERM/SIGINT, then clean up."""
    host, port = split_addr(args.listen, listen=True)
    server = AgentServer(
        host=host, port=port, workdir=args.workdir, grace_s=args.grace
    )
    print(f"supmr agent listening on {server.addr}", flush=True)
    if args.addr_file:
        Path(args.addr_file).write_text(server.addr + "\n")

    def _terminate(_signum: int, _frame: Any) -> None:
        server._stop.set()
        try:
            server.listener.close()
        except OSError:
            pass

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    try:
        server.serve_forever()
    finally:
        server.close()
    return 0
