"""Multi-host shard transport (``repro.net``).

Lets the sharded coordinator (:mod:`repro.shard.coordinator`) place
shard worker groups on remote hosts, talking the same CRC-framed wire
protocol the job service speaks (:mod:`repro.service.protocol`):

* :func:`parse_peers` / :func:`split_addr` — the ``--peers
  host:port,...`` surface;
* :mod:`repro.net.wire` — deadline-bounded framed send/recv with
  seeded ``net.conn.drop`` / ``net.partial.write`` injection and
  jittered reconnect;
* :class:`AgentServer` / :func:`agent_main` — the ``supmr agent``
  daemon hosting shard workers as subprocesses and relaying their
  heartbeats/results back to the coordinator;
* :func:`fetch_run_remote` — the remote run-exchange path: resumable
  range requests, CRC verify-then-refetch, per-transfer deadlines;
* :class:`AgentLink` / :class:`RemoteHandle` — the coordinator's side
  of one agent connection (command stream, ping liveness, result
  relay into the existing lease machinery).

Everything here degrades instead of failing: an unreachable agent's
shards respawn locally, and total peer loss falls back to single-host
execution with the same byte-identical digest.
"""

from repro.net.peers import format_addr, parse_peers, split_addr

__all__ = [
    "AgentLink",
    "AgentServer",
    "RemoteHandle",
    "agent_main",
    "fetch_run_remote",
    "format_addr",
    "parse_peers",
    "split_addr",
]


def __getattr__(name: str):
    """Lazily import the heavier exports (PEP 562).

    The agent/link layers import the shard worker entrypoint, which
    would close an import cycle with :mod:`repro.core.options` (options
    must stay importable from ``repro.net.peers`` alone).
    """
    if name in ("AgentServer", "agent_main"):
        from repro.net import agent

        return getattr(agent, name)
    if name in ("AgentLink", "RemoteHandle"):
        from repro.net import remote

        return getattr(remote, name)
    if name == "fetch_run_remote":
        from repro.net.exchange import fetch_run_remote

        return fetch_run_remote
    raise AttributeError(f"module 'repro.net' has no attribute {name!r}")
