"""Wire forms for dispatching shard work to a remote agent.

A local shard worker fork inherits the job callables, options, and
chunk block copy-on-write; a remote worker gets none of that, so the
spawn command must carry a JSON-safe description the agent can rebuild
the identical objects from:

* the **job** travels as its app name + input paths (the same registry
  the job service uses — callables never cross the wire);
* the **options** travel as the subset a shard worker actually reads
  (mapper/reducer counts, memory budget, fault plan + recovery policy,
  QoS knobs) — ``task_id_base`` math and fault scopes stay identical,
  which is what keeps digests byte-identical across placements;
* the **chunks** travel as their source descriptors (path, offset,
  length) — inputs are expected on a shared filesystem, exactly like
  every production MapReduce's input contract.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Sequence

from repro.chunking.chunk import Chunk, ChunkSource
from repro.core.job import JobSpec
from repro.core.options import MergeAlgorithm, RuntimeOptions
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.policy import RecoveryPolicy

#: Apps a remote spawn may name (the job-service registry).
KNOWN_APPS = ("wordcount", "sort")


def job_to_wire(job: JobSpec) -> dict[str, Any]:
    """``{"app", "inputs"}`` for a job built by a known app factory."""
    if job.name not in KNOWN_APPS:
        raise ConfigError(
            f"remote shard execution needs a registered app; job "
            f"{job.name!r} is not one of {', '.join(KNOWN_APPS)}"
        )
    return {"app": job.name, "inputs": [str(p) for p in job.inputs]}


def job_from_wire(data: dict[str, Any]) -> JobSpec:
    """Rebuild the executable job from its wire form."""
    app = data.get("app")
    inputs = data.get("inputs") or ()
    if app == "wordcount":
        from repro.apps.wordcount import make_wordcount_job

        return make_wordcount_job(inputs)
    if app == "sort":
        from repro.apps.sortapp import make_sort_job

        return make_sort_job(list(inputs))
    raise ConfigError(f"unknown remote app {app!r}")


def options_to_wire(options: RuntimeOptions) -> dict[str, Any]:
    """The worker-relevant option subset, JSON-safe.

    Deliberately excludes placement-side knobs (``peers``, shard and
    checkpoint directories, executor backend — workers run their block
    serially either way) so the same wire form is valid on any host.
    """
    wire: dict[str, Any] = {
        "num_mappers": options.num_mappers,
        "num_reducers": options.num_reducers,
        "memory_budget": options.memory_budget,
        "spill_merge_fan_in": options.spill_merge_fan_in,
        "merge_algorithm": options.merge_algorithm.value,
        "io_budget": options.io_budget,
        "io_burst": options.io_burst,
        "tenant": options.tenant,
        "io_priority": options.io_priority,
    }
    if options.fault_plan is not None:
        wire["fault_plan"] = {
            "seed": options.fault_plan.seed,
            "specs": [
                dataclasses.asdict(spec) for spec in options.fault_plan.specs
            ],
        }
    wire["recovery"] = dataclasses.asdict(options.recovery)
    return wire


def options_from_wire(data: dict[str, Any]) -> RuntimeOptions:
    """Rebuild worker options from :func:`options_to_wire`'s form."""
    plan = None
    if data.get("fault_plan"):
        plan = FaultPlan(
            seed=int(data["fault_plan"].get("seed", 0)),
            specs=tuple(
                FaultSpec(**spec) for spec in data["fault_plan"]["specs"]
            ),
        )
    recovery = RecoveryPolicy(**data.get("recovery", {}))
    return RuntimeOptions(
        num_mappers=int(data.get("num_mappers", 4)),
        num_reducers=int(data.get("num_reducers", 4)),
        memory_budget=data.get("memory_budget"),
        spill_merge_fan_in=int(data.get("spill_merge_fan_in", 8)),
        merge_algorithm=MergeAlgorithm(data.get("merge_algorithm", "pairwise")),
        io_budget=data.get("io_budget"),
        io_burst=data.get("io_burst"),
        tenant=data.get("tenant", "default"),
        io_priority=int(data.get("io_priority", 0)),
        fault_plan=plan,
        recovery=recovery,
    )


def chunks_to_wire(chunks: Sequence[Chunk]) -> list[dict[str, Any]]:
    """Chunk descriptors as JSON-safe source lists."""
    return [
        {
            "index": chunk.index,
            "sources": [
                [str(s.path), s.offset, s.length] for s in chunk.sources
            ],
        }
        for chunk in chunks
    ]


def chunks_from_wire(data: Sequence[dict[str, Any]]) -> list[Chunk]:
    """Rebuild the chunk block (paths must resolve on this host)."""
    return [
        Chunk(
            index=int(entry["index"]),
            sources=tuple(
                ChunkSource(path=Path(p), offset=int(off), length=int(ln))
                for p, off, ln in entry["sources"]
            ),
        )
        for entry in data
    ]
