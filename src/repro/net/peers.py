"""Peer address parsing for the ``--peers`` surface.

Kept dependency-light on purpose: :mod:`repro.core.options` validates
its ``peers`` field through this module, so nothing here may import
options, the coordinator, or the agent (that would close an import
cycle).
"""

from __future__ import annotations

from repro.errors import ConfigError


def split_addr(addr: str, listen: bool = False) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; typed error on bad syntax.

    ``listen=True`` (the agent's ``--listen`` flag) additionally allows
    port 0, the OS's "pick an ephemeral port for me" — meaningless as a
    peer to *dial*, so the default range stays 1..65535.
    """
    host, sep, port_text = addr.rpartition(":")
    if not sep or not host:
        raise ConfigError(
            f"bad peer address {addr!r}: expected host:port"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigError(
            f"bad peer address {addr!r}: port {port_text!r} is not an integer"
        ) from None
    floor = -1 if listen else 0
    if not floor < port < 65536:
        raise ConfigError(
            f"bad peer address {addr!r}: port must be in 1..65535"
        )
    return host, port


def format_addr(host: str, port: int) -> str:
    """The canonical ``host:port`` string :func:`split_addr` inverts."""
    return f"{host}:{port}"


def parse_peers(text: "str | tuple[str, ...] | list[str]") -> tuple[str, ...]:
    """Parse ``--peers host:port,host:port,...`` into canonical form.

    Accepts a comma-separated string or an already-split sequence.
    Surrounding whitespace is stripped, but every remaining entry must
    be a valid ``host:port`` — an empty segment (``"a:1,,b:2"``, a
    trailing comma) is a typed :class:`~repro.errors.ConfigError`
    rather than being silently dropped, because a list that *parses* to
    fewer peers than the operator typed turns into a confusing connect
    failure (or a silently narrower pool) much later.  Duplicates are a
    typed error too: the check runs on the *canonical* form, so
    ``a:01`` and ``a:1`` collide (two shards pointed at one agent
    *instance* is fine — the same address listed twice is almost
    certainly a typo).
    """
    if isinstance(text, str):
        entries = [e.strip() for e in text.split(",")]
    else:
        entries = [str(e).strip() for e in text]
    if not any(entries):
        raise ConfigError("peers must name at least one host:port")
    if "" in entries:
        raise ConfigError(
            f"empty segment in peers list {','.join(entries)!r}; "
            "remove the stray comma"
        )
    peers = tuple(format_addr(*split_addr(entry)) for entry in entries)
    if len(set(peers)) != len(peers):
        raise ConfigError(f"duplicate peer address in {peers!r}")
    return peers
