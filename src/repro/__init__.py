"""SupMR reproduction — scale-up MapReduce with ingest chunk pipelining.

This package reproduces *SupMR: Circumventing Disk and Memory Bandwidth
Bottlenecks for Scale-up MapReduce* (Sevilla et al., IPPS 2014).

It contains two cooperating halves:

* an **executable runtime** (:mod:`repro.core`, :mod:`repro.pipeline`,
  :mod:`repro.containers`, :mod:`repro.chunking`, :mod:`repro.sortlib`,
  :mod:`repro.apps`) — a real, pure-Python Phoenix++-style scale-up
  MapReduce runtime plus the SupMR modifications, which runs on real bytes
  and is what tests/examples exercise; and
* a **simulated testbed** (:mod:`repro.simhw`, :mod:`repro.simrt`) — a
  from-scratch discrete-event model of the paper's 32-context RAID-0
  machine, used to regenerate the paper's tables and CPU-utilization
  figures at 60-155 GB scale, which a 1-core GIL-bound interpreter cannot
  measure natively.

The top-level namespace re-exports the public API most users need.
"""

from repro._version import __version__
from repro.core.job import JobSpec
from repro.core.options import ChunkStrategy, MergeAlgorithm, RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.core.result import JobResult, PhaseTimings
from repro.core.supmr import SupMRRuntime, run_ingest_mr

__all__ = [
    "__version__",
    "JobSpec",
    "RuntimeOptions",
    "ChunkStrategy",
    "MergeAlgorithm",
    "PhoenixRuntime",
    "SupMRRuntime",
    "run_ingest_mr",
    "JobResult",
    "PhaseTimings",
]
