"""Memory accounting for the out-of-core spill subsystem.

The paper's runtimes assume the intermediate container fits in RAM — on
the 384 GB testbed it always does.  A production deployment needs a hard
ceiling instead: :class:`MemoryAccountant` charges every container
insert against a configurable byte budget so the runtime can spill the
live container to disk *before* the budget is crossed, never after.

Charges are estimates (Python object sizes are approximations by
nature), but they are deterministic and conservative: combining
containers are charged per emit even when the emit collapses into an
existing cell, so the accountant over- rather than under-states
pressure.
"""

from __future__ import annotations

import sys
import threading
from typing import Any

from repro.errors import SpillError

#: Fixed per-pair overhead: the (key, value) tuple, the container cell
#: it lands in, and the bookkeeping references around it.
PAIR_OVERHEAD_BYTES = 64


def estimate_value_bytes(value: Any) -> int:
    """Approximate resident bytes of one key or value object.

    ``bytes``/``str`` dominate real workloads and are sized exactly via
    ``sys.getsizeof``; tuples and lists are sized recursively one level
    deep per element; everything else falls back to ``sys.getsizeof``
    with a small default for exotic objects that refuse it.
    """
    if isinstance(value, (list, tuple)):
        try:
            base = sys.getsizeof(value)
        except TypeError:  # pragma: no cover - exotic sequence type
            base = 56 + 8 * len(value)
        return base + sum(estimate_value_bytes(v) for v in value)
    try:
        return sys.getsizeof(value)
    except TypeError:  # pragma: no cover - objects without a C size
        return 64


def estimate_pair_bytes(key: Any, value: Any) -> int:
    """Charged size of one emitted (key, value) pair."""
    return (
        PAIR_OVERHEAD_BYTES
        + estimate_value_bytes(key)
        + estimate_value_bytes(value)
    )


class MemoryAccountant:
    """Charges container inserts against a byte budget.

    The contract the spill subsystem builds on: ``current`` never
    exceeds ``budget_bytes``, because callers ask :meth:`would_exceed`
    *before* charging and spill (then :meth:`release`) first when the
    answer is yes.  ``peak`` records the high-water mark so results can
    prove the invariant held for a whole job.
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes < 1:
            raise SpillError("memory budget must be >= 1 byte")
        self.budget_bytes = int(budget_bytes)
        self._current = 0
        self._peak = 0
        self._charges = 0
        self._lock = threading.Lock()

    @property
    def current(self) -> int:
        """Bytes currently accounted to the live container."""
        return self._current

    @property
    def peak(self) -> int:
        """High-water mark of :attr:`current` over the accountant's life."""
        return self._peak

    @property
    def charges(self) -> int:
        """Number of successful :meth:`charge` calls (one per emit)."""
        return self._charges

    def would_exceed(self, nbytes: int) -> bool:
        """True if charging ``nbytes`` now would cross the budget."""
        return self._current + nbytes > self.budget_bytes

    def charge(self, nbytes: int) -> None:
        """Account ``nbytes`` to the live container.

        Raises :class:`~repro.errors.SpillError` if the charge would
        cross the budget — the caller must spill first.  A single pair
        larger than the whole budget is a configuration error surfaced
        the same way.
        """
        with self._lock:
            if self._current + nbytes > self.budget_bytes:
                raise SpillError(
                    f"charge of {nbytes} B would exceed the "
                    f"{self.budget_bytes} B budget "
                    f"({self._current} B accounted); spill first"
                )
            self._current += nbytes
            self._charges += 1
            if self._current > self._peak:
                self._peak = self._current

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the budget (after a spill or teardown)."""
        with self._lock:
            if nbytes > self._current:
                raise SpillError(
                    f"release of {nbytes} B exceeds the "
                    f"{self._current} B currently accounted"
                )
            self._current -= nbytes

    def release_all(self) -> int:
        """Zero the account (the live container was fully drained)."""
        with self._lock:
            released = self._current
            self._current = 0
            return released
