"""External p-way merge: stream spill runs + the resident container.

The in-memory p-way merge (:mod:`repro.sortlib.pway`) is what SupMR
uses when everything fits in RAM; this is its out-of-core counterpart.
Each pass streams at most ``fan_in`` key-sorted sources through the
heap-based :func:`repro.sortlib.kway.iter_kway_merge` (which accepts
lazy iterators, so run files never materialize); when more sources
exist than the fan-in allows, the oldest ``fan_in`` runs are merged
into a new intermediate run on disk and the pass repeats — the classic
external merge sort, with memory bounded by ``fan_in`` read buffers
regardless of how much was spilled.

Sources yield ``(key, values_tuple)`` groups sorted by the manager's
``sort_key``; the merged output concatenates values of equal keys in
source order (oldest spill first, resident data last), which preserves
emit order the same way the in-memory containers do.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.sortlib.kway import iter_kway_merge
from repro.spill.manager import Group, SpillManager, group_sorted_pairs


class ExternalPwayMerge:
    """Bounded-memory p-way merge over spill runs and resident data.

    ``fan_in`` defaults to the manager's; the number of passes actually
    performed is reported back through
    :meth:`SpillManager.record_merge` and the stats counters.
    """

    def __init__(self, manager: SpillManager, fan_in: int | None = None) -> None:
        self.manager = manager
        self.fan_in = max(2, fan_in or manager.merge_fan_in)
        self.passes = 0

    def _merge_once(self, sources: list[Iterable[Group]]) -> Iterator[Group]:
        """One streaming p-way pass over up to ``fan_in`` sources."""
        key_fn = self.manager.sort_key
        merged = iter_kway_merge(sources, key=lambda group: key_fn(group[0]))
        return group_sorted_pairs(merged)

    def merge(self, sources: list[Iterable[Group]]) -> Iterator[Group]:
        """Merge all sources into one grouped, key-sorted stream.

        Consolidation passes write intermediate runs via the manager;
        the final pass streams straight to the caller.  ``self.passes``
        counts every pass including the final one.
        """
        if not sources:
            self.passes = 0
            self.manager.record_merge(0)
            return iter(())
        work = list(sources)
        self.passes = 1
        while len(work) > self.fan_in:
            # Consolidate the oldest fan_in sources into one on-disk run;
            # oldest-first keeps cross-run value order stable.
            batch, work = work[: self.fan_in], work[self.fan_in:]
            info = self.manager.write_merged(self._merge_once(batch))
            work.insert(0, self.manager.open_run(info))
            self.passes += 1
        self.manager.record_merge(self.passes)
        return self._merge_once(work)


def merge_spilled(
    manager: SpillManager,
    resident: Iterable[Group],
    fan_in: int | None = None,
) -> Iterator[Group]:
    """Merge every run the manager holds plus the resident stream."""
    merger = ExternalPwayMerge(manager, fan_in=fan_in)
    sources: list[Iterable[Group]] = [
        manager.open_run(info) for info in manager.runs
    ]
    sources.append(resident)
    return merger.merge(sources)
