"""Spill run files: sorted on-disk runs of intermediate (key, values).

A run file is the unit the spill subsystem writes when the live
container crosses its memory budget.  The format is deliberately dumb
and verifiable:

* a fixed-size **checksummed header** — magic, version, record count,
  payload length, CRC-32 of the payload section;
* a payload of length-prefixed frames (:class:`repro.io.writer`
  framing), one frame per record, each frame the pickle of one
  ``(key, values_tuple)`` group, **sorted by key** and with equal keys
  already grouped.

The header is written last (the writer seeks back over a placeholder),
so a crash mid-spill leaves a file that fails validation instead of a
file that silently merges garbage.  :class:`RunReader` validates the
header and the physical length eagerly on open — a truncated run is
rejected before the merge starts — and verifies the CRC incrementally
while streaming, so reading stays O(1) in memory.
"""

from __future__ import annotations

import mmap
import pickle
import struct
import threading
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, BinaryIO, Hashable, Iterable, Iterator

from repro.errors import SpillError
from repro.io.writer import _FRAME_PREFIX, FramedRecordWriter, iter_framed_records

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.qos.throttle import TokenBucket

MAGIC = b"SPRN"
VERSION = 1

_VERIFY_BLOCK = 1 << 20

#: Per-thread reusable scratch for :meth:`RunReader.verify` — the CRC
#: re-scan reads whole runs in 1 MiB blocks, and ``fetch_run`` re-scans
#: every exchanged run, so recycling one buffer per thread keeps the
#: verify path allocation-free.
_verify_local = threading.local()


def _verify_scratch() -> memoryview:
    buf = getattr(_verify_local, "buf", None)
    if buf is None:
        buf = bytearray(_VERIFY_BLOCK)
        _verify_local.buf = buf
    return memoryview(buf)

#: magic(4s) version(H) reserved(H) records(Q) payload_len(Q) crc32(I)
_HEADER = struct.Struct(">4sHHQQI")
HEADER_BYTES = _HEADER.size

Group = tuple[Hashable, tuple[Any, ...]]


class RunWriter:
    """Writes one sorted run file; use as a context manager.

    The caller streams already-sorted, already-grouped records through
    :meth:`write_group`; the writer frames and checksums them and
    finalizes the header on close.  A ``throttle``
    (:class:`repro.qos.throttle.TokenBucket`) charges the payload bytes
    against the job's I/O budget when the run is sealed — the spill-write
    half of bandwidth isolation.
    """

    def __init__(
        self, path: str | Path, throttle: "TokenBucket | None" = None
    ) -> None:
        self.path = Path(path)
        self._throttle = throttle
        self._fh: BinaryIO | None = open(self.path, "wb")
        self._fh.write(b"\0" * HEADER_BYTES)  # placeholder header
        self._framer = FramedRecordWriter(self._fh)

    def write_group(self, key: Hashable, values: Iterable[Any]) -> None:
        """Append one (key, grouped values) record."""
        if self._fh is None:
            raise SpillError(f"write to closed run file {self.path}")
        payload = pickle.dumps(
            (key, tuple(values)), protocol=pickle.HIGHEST_PROTOCOL
        )
        self._framer.write(payload)

    @property
    def records(self) -> int:
        """Records written so far."""
        return self._framer.records

    @property
    def payload_bytes(self) -> int:
        """Payload-section bytes written so far (frames included)."""
        return self._framer.payload_bytes

    def close(self) -> None:
        """Flush, write the real header, and close the file."""
        if self._fh is None:
            return
        if self._throttle is not None:
            self._throttle.acquire(self._framer.payload_bytes)
        self._framer.flush()
        header = _HEADER.pack(
            MAGIC, VERSION, 0,
            self._framer.records, self._framer.payload_bytes,
            self._framer.crc32,
        )
        self._fh.seek(0)
        self._fh.write(header)
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "RunWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class _Crc32Reader:
    """File wrapper accumulating a CRC-32 over every byte read."""

    def __init__(self, fh: BinaryIO) -> None:
        self._fh = fh
        self.crc32 = 0

    def read(self, n: int = -1) -> bytes:
        """Read and fold the bytes into the running checksum."""
        data = self._fh.read(n)
        self.crc32 = zlib.crc32(data, self.crc32)
        return data


class RunReader:
    """Validated streaming reader over one run file.

    Construction parses and checks the header (magic, version) and
    rejects files whose physical size disagrees with the recorded
    payload length — the truncation case.  Iteration yields the
    ``(key, values_tuple)`` groups in on-disk (key-sorted) order and
    verifies the payload CRC as the last frame is consumed, raising
    :class:`~repro.errors.SpillError` on mismatch.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            size = self.path.stat().st_size
            with open(self.path, "rb") as fh:
                raw = fh.read(HEADER_BYTES)
        except OSError as exc:
            raise SpillError(f"cannot open run file {self.path}: {exc}") from exc
        if len(raw) < HEADER_BYTES:
            raise SpillError(f"run file {self.path} too short for a header")
        magic, version, _reserved, records, payload_len, crc = _HEADER.unpack(raw)
        if magic != MAGIC:
            raise SpillError(f"{self.path} is not a spill run file")
        if version != VERSION:
            raise SpillError(
                f"{self.path}: unsupported run format version {version}"
            )
        if size != HEADER_BYTES + payload_len:
            raise SpillError(
                f"{self.path} is truncated or padded: header promises "
                f"{payload_len} payload bytes, file holds "
                f"{size - HEADER_BYTES}"
            )
        self.records = records
        self.payload_bytes = payload_len
        self.crc32 = crc

    def __iter__(self) -> Iterator[Group]:
        """Stream the (key, values) groups, CRC-checking along the way.

        The payload is walked through an ``mmap`` of the file: each
        frame is a ``memoryview`` slice fed straight to the CRC and the
        unpickler, so no per-frame bytes object and no read-buffer copy
        chain — the buffer-backed twin of :meth:`Chunk.load`'s ingest
        path.  Falls back to the plain streaming reader when the file
        cannot be mapped (exotic filesystems).
        """
        try:
            fh = open(self.path, "rb")
        except OSError as exc:
            raise SpillError(f"cannot open run file {self.path}: {exc}") from exc
        with fh:
            try:
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):
                yield from self._iter_streaming(fh)
                return
            with mm:
                view = memoryview(mm)
                try:
                    yield from self._iter_view(view)
                finally:
                    view.release()

    def _iter_view(self, view: memoryview) -> Iterator[Group]:
        """Frame-walk a mapped payload section; zero-copy until unpickle."""
        crc = 0
        offset = HEADER_BYTES
        end = len(view)
        for index in range(self.records):
            if offset + _FRAME_PREFIX.size > end:
                raise SpillError(
                    f"{self.path}: frame {index} runs past the payload"
                )
            (length,) = _FRAME_PREFIX.unpack_from(view, offset)
            stop = offset + _FRAME_PREFIX.size + length
            if stop > end:
                raise SpillError(
                    f"{self.path}: frame {index} runs past the payload"
                )
            crc = zlib.crc32(view[offset:stop], crc)
            try:
                key, values = pickle.loads(
                    view[offset + _FRAME_PREFIX.size:stop]
                )
            except Exception as exc:
                raise SpillError(
                    f"{self.path}: undecodable spill record: {exc}"
                ) from exc
            yield key, values
            offset = stop
        if crc != self.crc32:
            raise SpillError(
                f"{self.path}: payload checksum mismatch "
                f"(header {self.crc32:#010x}, computed {crc:#010x})"
            )

    def _iter_streaming(self, fh: BinaryIO) -> Iterator[Group]:
        """The pre-mmap reader, kept as the unmappable-file fallback."""
        fh.seek(HEADER_BYTES)
        tracker = _Crc32Reader(fh)
        for payload in iter_framed_records(tracker, self.records):
            try:
                key, values = pickle.loads(payload)
            except Exception as exc:
                raise SpillError(
                    f"{self.path}: undecodable spill record: {exc}"
                ) from exc
            yield key, values
        if tracker.crc32 != self.crc32:
            raise SpillError(
                f"{self.path}: payload checksum mismatch "
                f"(header {self.crc32:#010x}, "
                f"computed {tracker.crc32:#010x})"
            )

    def verify(self) -> bool:
        """Re-scan the payload bytes against the header CRC.

        Cheaper than iterating (no unpickling) — this is the
        verify-after-spill check the recovery policy runs before a run
        is allowed into the merge inventory, and the adoption gate
        :func:`repro.shard.exchange.fetch_run` runs on every exchanged
        copy.  Blocks are ``readinto`` a per-thread reusable scratch, so
        the scan allocates nothing per run.
        """
        crc = 0
        view = _verify_scratch()
        with open(self.path, "rb") as fh:
            fh.seek(HEADER_BYTES)
            while True:
                got = fh.readinto(view)
                if not got:
                    break
                crc = zlib.crc32(view[:got], crc)
        return crc == self.crc32

    def __len__(self) -> int:
        return self.records
