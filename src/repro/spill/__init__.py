"""Out-of-core intermediate store: memory budget, spill runs, external merge.

The paper's 384 GB testbed never leaves the everything-fits-in-RAM
regime; production scale-up deployments do.  This package closes that
gap with a bounded-memory execution mode both runtimes share:

* :class:`~repro.spill.accountant.MemoryAccountant` charges container
  inserts against a configurable budget;
* :class:`~repro.spill.container.SpillableContainer` wraps any
  intermediate container, draining it into checksummed, key-sorted
  **run files** (:mod:`repro.spill.runfile`) whenever the next insert
  would cross the budget — applying the job's combiner on the way out
  (combine-on-spill, as in Hadoop-style in-node combining);
* :class:`~repro.spill.external_merge.ExternalPwayMerge` streams all
  runs plus the resident container back through the heap-based k-way
  machinery in bounded memory, consolidating with ``fan_in``-way
  passes when needed;
* :class:`~repro.spill.stats.SpillStats` reports runs, bytes, combine
  reduction and merge fan-in on every job result.

Activate it with ``RuntimeOptions(memory_budget="64MB")`` — both the
Phoenix baseline and the SupMR runtime honour it.
"""

from repro.spill.accountant import (
    MemoryAccountant,
    estimate_pair_bytes,
    estimate_value_bytes,
)
from repro.spill.container import SpillableContainer
from repro.spill.external_merge import ExternalPwayMerge, merge_spilled
from repro.spill.manager import (
    DEFAULT_MERGE_FAN_IN,
    RunInfo,
    SpillManager,
    group_sorted_pairs,
)
from repro.spill.runfile import RunReader, RunWriter
from repro.spill.stats import SpillStats

__all__ = [
    "MemoryAccountant",
    "estimate_pair_bytes",
    "estimate_value_bytes",
    "SpillableContainer",
    "ExternalPwayMerge",
    "merge_spilled",
    "SpillManager",
    "RunInfo",
    "group_sorted_pairs",
    "DEFAULT_MERGE_FAN_IN",
    "RunReader",
    "RunWriter",
    "SpillStats",
]
