"""Spill counters reported on job results.

The runtime surfaces these so out-of-core runs can be audited: how many
runs were written, how many bytes, how much combine-on-spill saved, and
what the external merge looked like (fan-in, passes).  The
``peak_accounted_bytes <= budget_bytes`` pair is the bounded-memory
proof carried on every result.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SpillStats:
    """Counters for one memory-budgeted job."""

    #: Configured memory budget in bytes.
    budget_bytes: int = 0
    #: High-water mark of accounted container memory (never > budget).
    peak_accounted_bytes: int = 0
    #: Spill runs written while mapping.
    runs: int = 0
    #: Payload bytes across all spill runs.
    spilled_bytes: int = 0
    #: Grouped records across all spill runs.
    spilled_records: int = 0
    #: Raw pairs drained into spills (before grouping/combining).
    combine_pairs_in: int = 0
    #: Records written after combine-on-spill grouping.
    combine_pairs_out: int = 0
    #: Streams merged per external-merge pass.
    merge_fan_in: int = 0
    #: External merge passes (1 = single pass; >1 = intermediate runs).
    merge_passes: int = 0
    #: Extra bytes rewritten by intermediate merge passes.
    merge_rewritten_bytes: int = 0
    #: Wall-clock seconds spent writing spill runs.
    spill_write_s: float = 0.0

    @property
    def combine_reduction(self) -> float:
        """Pairs in per record out (>= 1.0 when combining helps)."""
        if self.combine_pairs_out <= 0:
            return 1.0
        return self.combine_pairs_in / self.combine_pairs_out

    @property
    def within_budget(self) -> bool:
        """True iff accounted memory never crossed the budget."""
        return self.peak_accounted_bytes <= self.budget_bytes
