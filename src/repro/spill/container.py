"""Budget-enforcing container wrapper: the spill subsystem's front door.

:class:`SpillableContainer` wraps any :class:`repro.containers.base.Container`
and gives it out-of-core semantics: every emit is charged to the
manager's :class:`~repro.spill.accountant.MemoryAccountant` *before* it
lands, and when the next emit would cross the budget the live inner
container is drained — sorted, grouped, optionally combined — into a
run file and replaced by a fresh one.  ``partitions(n)`` then streams
all runs plus the resident container through the external p-way merge.

Two properties the rest of the system relies on:

* **Zero-spill transparency** — if the budget is never crossed,
  ``partitions(n)`` delegates to the inner container untouched, so a
  budgeted run that happens to fit in memory is *bit-identical* to an
  unbudgeted one by construction.
* **Spilled equivalence** — with spills, partitions are formed by key
  hash over the merged stream (the same
  :func:`~repro.util.hashing.stable_hash` discipline the hash container
  uses), values of equal keys concatenated oldest-run-first.  Jobs with
  unique keys (sort) or per-key aggregation (word count) produce
  byte-identical final output either way; the tests pin this.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable

from repro.containers.base import (
    Container,
    ContainerDelta,
    ContainerStats,
    Emitter,
)
from repro.errors import ContainerError, SpillError
from repro.spill.accountant import estimate_pair_bytes
from repro.spill.external_merge import ExternalPwayMerge
from repro.spill.manager import SpillManager, group_sorted_pairs
from repro.util.hashing import stable_hash


class _SpillEmitter(Emitter):
    """Task-bound handle routing emits through the budget gate."""

    __slots__ = ()

    def emit(self, key: Hashable, value: Any) -> None:
        """Charge the pair against the budget, spilling first if needed."""
        self.container._insert(key, value, self.task_id)  # type: ignore[attr-defined]


class SpillableContainer(Container):
    """Wraps an inner container with memory accounting and spilling."""

    def __init__(
        self,
        inner_factory: Callable[[], Container],
        manager: SpillManager,
    ) -> None:
        super().__init__()
        self._inner_factory = inner_factory
        self.manager = manager
        self._inner = inner_factory()
        # Hash-style containers combine on insert; their drains carry
        # per-key aggregates, which combine-on-spill must not re-fold.
        self._inner_combines = hasattr(self._inner, "combiner")
        if manager.combiner is None and self._inner_combines:
            manager.combiner = self._inner.combiner  # type: ignore[attr-defined]
        self._lock = threading.RLock()
        self._task_emitters: dict[int, Emitter] = {}
        self._emits = 0
        self._emits_at_spill = 0
        self._distinct_keys: int | None = None
        # Synthetic task ids for absorbed segments (negative so they can
        # never collide with real mapper task ids).
        self._absorb_task_id = -1

    # -- lifecycle ---------------------------------------------------------

    def begin_round(self) -> None:
        """Start a mapper wave on the wrapper and the live inner container."""
        super().begin_round()
        with self._lock:
            self._inner.begin_round()

    def seal(self) -> None:
        """No more emits; the inner container is sealed alongside."""
        super().seal()
        with self._lock:
            if not self._inner.sealed:
                self._inner.seal()

    # -- emit path ---------------------------------------------------------

    def emitter(self, task_id: int) -> Emitter:
        """A task-bound handle; inner handles are re-bound after spills."""
        return _SpillEmitter(self, task_id)

    def _insert(self, key: Hashable, value: Any, task_id: int) -> None:
        cost = estimate_pair_bytes(key, value)
        with self._lock:
            self._check_open()
            if self.manager.accountant.would_exceed(cost):
                self._spill_live()
            self.manager.accountant.charge(cost)
            emitter = self._task_emitters.get(task_id)
            if emitter is None:
                emitter = self._inner.emitter(task_id)
                self._task_emitters[task_id] = emitter
            emitter.emit(key, value)
            self._emits += 1

    def _spill_live(self) -> None:
        """Drain the live inner container to a run file and start fresh."""
        if self._emits == self._emits_at_spill:
            raise SpillError(
                "memory budget too small to hold a single emitted pair; "
                "raise RuntimeOptions.memory_budget"
            )
        self._inner.seal()
        pairs = self._inner.partitions(1)[0]
        self.manager.spill_pairs(pairs, raw=not self._inner_combines)
        self.manager.accountant.release_all()
        self._inner = self._inner_factory()
        self._inner.begin_round()
        self._task_emitters.clear()
        self._emits_at_spill = self._emits

    # -- process-boundary transport ----------------------------------------

    def drain(self) -> ContainerDelta:
        """Pack the *live* inner container's contents for transport.

        Spilled runs are already durable on disk and travel separately
        (the job journal records their inventory); this drains only the
        resident, post-last-spill state — exactly what a checkpoint
        snapshot needs.
        """
        with self._lock:
            return self._inner.drain()

    def absorb(self, delta: ContainerDelta) -> None:
        """Fold a worker's delta in while honoring the memory budget.

        Workers run the *unwrapped* inner container (the budget is a
        parent-side resource), so the deltas arriving here are plain
        hash/array/fixed deltas.  Every absorbed pair passes the same
        charge-or-spill gate as a directly emitted one, which keeps
        budgeted process runs within budget — and spill-file contents
        deterministic, because absorption happens in task order.
        """
        with self._lock:
            self._check_open()
            if delta.kind == "hash":
                self._absorb_hash(delta)
            elif delta.kind == "array":
                self._absorb_array(delta)
            elif delta.kind == "fixed":
                self._absorb_fixed(delta)
            else:
                raise ContainerError(
                    f"SpillableContainer cannot absorb a {delta.kind!r} delta"
                )

    def _absorb_hash(self, delta: ContainerDelta) -> None:
        for key, state in delta.items:
            cost = estimate_pair_bytes(key, state)
            if self.manager.accountant.would_exceed(cost):
                self._spill_live()
            self.manager.accountant.charge(cost)
            self._inner.absorb(
                ContainerDelta(kind="hash", emits=0, items=[(key, state)])
            )
            self._emits += 1  # per-pair, so _spill_live sees progress
        # True up to the pre-combine emit count for stats parity.
        self._emits += delta.emits - len(delta.items)

    def _absorb_array(self, delta: ContainerDelta) -> None:
        # Re-emit through _insert so the per-pair budget gate runs; one
        # synthetic task id per segment keeps the inner array container's
        # segment structure (and thus its reducer partitioning) identical
        # to the serial backend's one-segment-per-task layout.
        for segment in delta.items:
            task_id = self._absorb_task_id
            self._absorb_task_id -= 1
            for key, value in segment:
                self._insert(key, value, task_id)

    def _absorb_fixed(self, delta: ContainerDelta) -> None:
        cost = int(getattr(delta.items, "nbytes", 0)) or estimate_pair_bytes(
            0, delta.items
        )
        if self.manager.accountant.would_exceed(cost):
            self._spill_live()
        self.manager.accountant.charge(cost)
        self._inner.absorb(delta)
        self._emits += delta.emits

    # -- reduce-side -------------------------------------------------------

    def partitions(self, n: int) -> list[list[tuple[Hashable, Any]]]:
        """Reducer partitions, merged externally when spills happened."""
        if n < 1:
            raise ContainerError("need at least one reducer partition")
        if not self.sealed:
            raise ContainerError("partitions() before seal()")
        if not self.manager.runs:
            # Never spilled: the inner container's own partitioning,
            # bit-identical to an unbudgeted run.
            self.manager.record_merge(0)
            return self._inner.partitions(n)
        resident = sorted(
            self._inner.partitions(1)[0],
            key=lambda kv: self.manager.sort_key(kv[0]),
        )
        merger = ExternalPwayMerge(self.manager)
        sources: list[Any] = [
            self.manager.open_run(info) for info in self.manager.runs
        ]
        sources.append(group_sorted_pairs(resident))
        parts: list[list[tuple[Hashable, Any]]] = [[] for _ in range(n)]
        distinct = 0
        for key, values in merger.merge(sources):
            distinct += 1
            parts[stable_hash(key) % n].append((key, list(values)))
        self._distinct_keys = distinct
        self.manager.accountant.release_all()
        return parts

    # -- reporting ---------------------------------------------------------

    def stats(self) -> ContainerStats:
        """Emit/key counters across every generation of the inner container.

        ``distinct_keys`` is exact after ``partitions()`` ran over a
        spilled job; before that it falls back to the live container
        plus spilled-record counts (an upper bound when keys repeat
        across runs).
        """
        inner = self._inner.stats()
        if self._distinct_keys is not None:
            distinct = self._distinct_keys
        else:
            distinct = inner.distinct_keys + self.manager.stats().spilled_records
        return ContainerStats(
            emits=self._emits, distinct_keys=distinct, rounds=self.rounds
        )
