"""Spill orchestration: budget, run directory, combine-on-spill.

:class:`SpillManager` owns everything the spillable container needs
that is not container semantics: the :class:`MemoryAccountant`, the
spill directory, the run inventory, and the combine-on-spill policy.
Hadoop-style in-node combining (Lee et al.) happens here: when a drain
hands over *raw* emitted pairs (array-style containers that do not
combine on insert), the job's combiner — if any — folds each key's
values before the run hits disk, so spilled bytes shrink by the same
ratio in-memory combining would have bought.

Pairs drained from a combining container (e.g. the hash container) are
already per-key aggregates; re-folding those through an emit-level
combiner would double-count (``CountCombiner`` is the obvious casualty),
so the manager only applies the combiner when the drain is marked raw —
grouping equal keys and concatenating their values is always safe and
happens regardless.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable, Iterator

from repro.containers.combiners import Combiner
from repro.errors import SpillError
from repro.faults.log import ACTION_RESPILLED
from repro.faults.plan import SITE_SPILL_CORRUPT
from repro.spill.accountant import MemoryAccountant
from repro.spill.runfile import HEADER_BYTES, RunReader, RunWriter
from repro.spill.stats import SpillStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.qos.throttle import TokenBucket

#: Streams merged per external-merge pass when the caller does not say.
DEFAULT_MERGE_FAN_IN = 8

Pair = tuple[Hashable, Any]
Group = tuple[Hashable, tuple[Any, ...]]
SortKeyFn = Callable[[Hashable], Any]


@dataclass(frozen=True)
class RunInfo:
    """One spill run on disk."""

    index: int
    path: Path
    records: int
    payload_bytes: int


def _flip_byte(path: Path, offset: int) -> None:
    """Invert one byte of ``path`` in place (injected bit rot)."""
    with open(path, "r+b") as fh:
        fh.seek(offset)
        original = fh.read(1)
        fh.seek(offset)
        fh.write(bytes(((original[0] ^ 0xFF),)) if original else b"\xff")


def group_sorted_pairs(
    pairs: Iterable[tuple[Hashable, Iterable[Any]]],
) -> Iterator[Group]:
    """Collapse adjacent equal-key entries of a key-sorted pair stream.

    Input entries carry *iterables* of values (drained container
    partitions already wrap values in lists); output groups concatenate
    them in arrival order.
    """
    current_key: Hashable = None
    current_values: list[Any] = []
    have = False
    for key, values in pairs:
        if have and key == current_key:
            current_values.extend(values)
        else:
            if have:
                yield current_key, tuple(current_values)
            current_key = key
            current_values = list(values)
            have = True
    if have:
        yield current_key, tuple(current_values)


class SpillManager:
    """Owns the budget, the spill directory, and the run inventory.

    ``combiner`` is the emit-level combiner applied to raw drains
    (combine-on-spill); ``sort_key`` orders keys within and across runs
    (default: the key itself, which must then be totally orderable —
    true for the bytes/str/int keys every bundled app uses).
    """

    def __init__(
        self,
        budget_bytes: int,
        spill_dir: str | Path | None = None,
        combiner: Combiner | None = None,
        sort_key: SortKeyFn | None = None,
        merge_fan_in: int = DEFAULT_MERGE_FAN_IN,
        injector: "FaultInjector | None" = None,
        throttle: "TokenBucket | None" = None,
    ) -> None:
        if merge_fan_in < 2:
            raise SpillError("merge_fan_in must be >= 2")
        self.injector = injector
        self.throttle = throttle
        self.accountant = MemoryAccountant(budget_bytes)
        self._owns_dir = spill_dir is None
        self.spill_dir = Path(
            spill_dir
            if spill_dir is not None
            else tempfile.mkdtemp(prefix="repro-spill-")
        )
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        self.combiner = combiner
        self.sort_key: SortKeyFn = sort_key or (lambda key: key)
        self.merge_fan_in = merge_fan_in
        self.runs: list[RunInfo] = []
        self._next_index = 0
        self._stats = SpillStats(
            budget_bytes=int(budget_bytes), merge_fan_in=merge_fan_in
        )

    # -- spilling ----------------------------------------------------------

    def spill_pairs(
        self, pairs: list[tuple[Hashable, Iterable[Any]]], raw: bool
    ) -> RunInfo:
        """Sort, group, optionally combine, and persist one run.

        ``pairs`` is a drained container partition — ``(key, values)``
        entries in container order.  ``raw=True`` marks values as
        original emits (array-style drain), enabling combine-on-spill.
        """
        if not pairs:
            raise SpillError("refusing to spill an empty container")
        started = time.perf_counter()
        pairs.sort(key=lambda kv: self.sort_key(kv[0]))
        n_in = sum(1 for _k, values in pairs for _v in values)
        groups = self._combined(group_sorted_pairs(pairs), raw)
        injector = self.injector
        if injector is not None and injector.armed(SITE_SPILL_CORRUPT):
            # Re-spilling needs the groups again, so materialize them;
            # only paid when the spill.corrupt site is actually armed.
            info = self._write_run_verified(list(groups), injector)
        else:
            info = self._write_run(groups)
        self._stats.runs += 1
        self._stats.spilled_bytes += info.payload_bytes
        self._stats.spilled_records += info.records
        self._stats.combine_pairs_in += n_in
        self._stats.combine_pairs_out += info.records
        self._stats.spill_write_s += time.perf_counter() - started
        return info

    def _combined(
        self, groups: Iterator[Group], raw: bool
    ) -> Iterator[Group]:
        """Apply combine-on-spill to raw groups; pass aggregates through."""
        if not raw or self.combiner is None:
            yield from groups
            return
        for key, values in groups:
            state = self.combiner.initial(values[0])
            for value in values[1:]:
                state = self.combiner.update(state, value)
            yield key, tuple(self.combiner.finish(state))

    def _write_run(self, groups: Iterator[Group]) -> RunInfo:
        index = self._next_index
        self._next_index += 1
        path = self.spill_dir / f"run-{index:05d}.spl"
        with RunWriter(path, throttle=self.throttle) as writer:
            for key, values in groups:
                writer.write_group(key, values)
            records, payload = writer.records, writer.payload_bytes
        info = RunInfo(
            index=index, path=path, records=records, payload_bytes=payload
        )
        self.runs.append(info)
        return info

    def _write_run_verified(
        self, groups: list[Group], injector: "FaultInjector"
    ) -> RunInfo:
        """Write one run under the ``spill.corrupt`` site with recovery.

        The run index (and so the on-disk path) is reserved once; each
        attempt rewrites the same file, optionally gets a payload byte
        flipped by the injector, and is then CRC-verified against its own
        header.  A verification failure raises
        :class:`~repro.errors.SpillError` into the bounded retry loop,
        which re-spills the materialized groups — the
        checksum-verify-then-re-spill answer.  With
        ``policy.verify_spills`` off, corruption sails through here and
        the merge-time streaming CRC check aborts the job instead.
        """
        index = self._next_index
        self._next_index += 1
        path = self.spill_dir / f"run-{index:05d}.spl"

        def attempt_fn(attempt: int) -> RunInfo:
            with RunWriter(path, throttle=self.throttle) as writer:
                for key, values in groups:
                    writer.write_group(key, values)
                records, payload = writer.records, writer.payload_bytes
            decision = injector.check(
                SITE_SPILL_CORRUPT, scope=(index,), attempt=attempt
            )
            if decision is not None:
                _flip_byte(path, HEADER_BYTES + payload // 2)
            if injector.policy.verify_spills:
                if not RunReader(path).verify():
                    raise SpillError(
                        f"{path}: post-spill checksum verification failed"
                    )
                if attempt > 0:
                    injector.log.record(
                        SITE_SPILL_CORRUPT, ACTION_RESPILLED,
                        f"run {index} rewritten cleanly on attempt "
                        f"{attempt + 1}",
                        scope=f"run-{index}", attempt=attempt,
                    )
            return RunInfo(
                index=index, path=path, records=records,
                payload_bytes=payload,
            )

        info = injector.retrying(
            SITE_SPILL_CORRUPT, attempt_fn,
            scope=(index,), retryable=(SpillError,),
        )
        self.runs.append(info)
        return info

    def write_merged(self, groups: Iterator[Group]) -> RunInfo:
        """Persist an intermediate external-merge pass as a new run."""
        info = self._write_run(groups)
        self._stats.merge_rewritten_bytes += info.payload_bytes
        return info

    # -- reading -----------------------------------------------------------

    def open_run(self, info: RunInfo) -> RunReader:
        """A validated streaming reader over one run."""
        return RunReader(info.path)

    # -- resume ------------------------------------------------------------

    def adopt_runs(self, infos: "Iterable[RunInfo]") -> None:
        """Take ownership of runs a previous (crashed) job sealed.

        Each run is re-verified against its header checksum before
        adoption — a run that rotted on disk between the crash and the
        resume raises :class:`~repro.errors.SpillError` rather than
        silently merging garbage.  Adopted runs count into the stats so
        a resumed job reports its true spill totals, and new spills are
        numbered after the adopted ones.
        """
        for info in infos:
            if not info.path.exists():
                raise SpillError(f"cannot adopt missing spill run {info.path}")
            if not RunReader(info.path).verify():
                raise SpillError(
                    f"spill run {info.path} failed its checksum on resume"
                )
            self.runs.append(info)
            self._next_index = max(self._next_index, info.index + 1)
            self._stats.runs += 1
            self._stats.spilled_bytes += info.payload_bytes
            self._stats.spilled_records += info.records

    # -- reporting / teardown ----------------------------------------------

    def record_merge(self, passes: int) -> None:
        """Note how many external-merge passes the job needed."""
        self._stats.merge_passes = passes

    def stats(self) -> SpillStats:
        """The job's spill counters (peak memory filled in live)."""
        self._stats.peak_accounted_bytes = self.accountant.peak
        return self._stats

    def cleanup(self) -> None:
        """Delete run files (and the directory, when the manager made it)."""
        if self._owns_dir:
            shutil.rmtree(self.spill_dir, ignore_errors=True)
        else:
            for info in self.runs:
                info.path.unlink(missing_ok=True)
        self.runs.clear()
