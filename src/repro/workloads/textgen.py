"""Text generation for word count: one big file or many small files.

Hadoop word count inputs come as either a single large file (inter-file
chunking territory) or directories of many small files (intra-file
chunking — the paper's "30 files with an intra-file chunk size of 4"
example).  Both shapes are generated here from the same Zipf word source,
so inter- vs intra-file experiments see identical word statistics.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import WorkloadError
from repro.io.datafile import ensure_dir
from repro.workloads.zipf import ZipfSampler

_WORD_CHARS = "abcdefghijklmnopqrstuvwxyz"


def make_vocabulary(size: int, seed: int = 7) -> list[bytes]:
    """Deterministic pseudo-words, short for frequent ranks (Zipf-ish)."""
    if size < 1:
        raise WorkloadError("vocabulary size must be >= 1")
    rng = np.random.default_rng(seed)
    vocab: list[bytes] = []
    seen: set[bytes] = set()
    while len(vocab) < size:
        length = 3 + int(rng.integers(0, 7))
        word = "".join(
            _WORD_CHARS[int(c)] for c in rng.integers(0, len(_WORD_CHARS), length)
        ).encode("ascii")
        if word not in seen:
            seen.add(word)
            vocab.append(word)
    return vocab


def _render_text(
    nbytes: int, sampler: ZipfSampler, vocab: list[bytes], line_words: int = 12
) -> bytes:
    """About ``nbytes`` of space-separated, newline-broken words."""
    if nbytes < 0:
        raise WorkloadError("nbytes must be non-negative")
    pieces: list[bytes] = []
    size = 0
    while size < nbytes:
        ranks = sampler.sample(line_words)
        line = b" ".join(vocab[int(r)] for r in ranks) + b"\n"
        pieces.append(line)
        size += len(line)
    return b"".join(pieces)[:nbytes] if pieces else b""


def generate_text_file(
    path: str | Path,
    nbytes: int,
    vocab_size: int = 5000,
    exponent: float = 1.1,
    seed: int = 0,
) -> int:
    """One big text file of ~``nbytes``; returns bytes written.

    The final byte is forced to a newline so the file is a whole number
    of records.
    """
    vocab = make_vocabulary(vocab_size, seed=seed + 1)
    sampler = ZipfSampler(vocab_size, exponent, seed=seed)
    data = bytearray(_render_text(nbytes, sampler, vocab))
    if data:
        data[-1:] = b"\n"
    with open(path, "wb") as fh:
        fh.write(bytes(data))
    return len(data)


def generate_small_files(
    directory: str | Path,
    n_files: int,
    bytes_per_file: int,
    vocab_size: int = 5000,
    exponent: float = 1.1,
    seed: int = 0,
) -> list[Path]:
    """``n_files`` text files of ~``bytes_per_file`` each; returns paths
    in name order (the order intra-file chunking will coalesce them)."""
    if n_files < 1:
        raise WorkloadError("n_files must be >= 1")
    out_dir = ensure_dir(directory)
    vocab = make_vocabulary(vocab_size, seed=seed + 1)
    paths: list[Path] = []
    width = max(5, len(str(n_files)))
    for i in range(n_files):
        sampler = ZipfSampler(vocab_size, exponent, seed=seed + 100 + i)
        data = bytearray(_render_text(bytes_per_file, sampler, vocab))
        if data:
            data[-1:] = b"\n"
        path = out_dir / f"part-{i:0{width}d}.txt"
        path.write_bytes(bytes(data))
        paths.append(path)
    return paths
