"""valsort-style output validation for sort jobs.

The sort benchmark's contract (mirroring gensort's ``valsort``):

* records are well-formed,
* keys are non-decreasing across the whole output,
* nothing was lost or invented — checked with an order-independent
  multiset fingerprint (XOR-fold of per-record hashes) plus counts, so
  a validation of the output against the *input* file needs no second
  sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import WorkloadError
from repro.io.records import TeraRecordCodec
from repro.util.hashing import stable_hash


@dataclass(frozen=True)
class ValsortReport:
    """What valsort prints: counts, order, duplicates, fingerprint."""

    records: int
    sorted_ok: bool
    first_unordered_index: int | None
    duplicate_keys: int
    checksum: int

    @property
    def valid(self) -> bool:
        return self.sorted_ok


def _fingerprint(pairs: Iterable[tuple[bytes, bytes]]) -> tuple[int, int, int]:
    """(count, xor-fold checksum, duplicate-key count) in one pass."""
    count = 0
    checksum = 0
    dups = 0
    prev_key: bytes | None = None
    for key, payload in pairs:
        count += 1
        checksum ^= stable_hash((key, payload))
        if prev_key is not None and key == prev_key:
            dups += 1
        prev_key = key
    return count, checksum, dups


def validate_pairs(pairs: Iterable[tuple[bytes, bytes]]) -> ValsortReport:
    """Validate an in-memory output sequence."""
    count = 0
    checksum = 0
    dups = 0
    prev_key: bytes | None = None
    sorted_ok = True
    first_bad: int | None = None
    for idx, (key, payload) in enumerate(pairs):
        count += 1
        checksum ^= stable_hash((key, payload))
        if prev_key is not None:
            if key < prev_key and sorted_ok:
                sorted_ok = False
                first_bad = idx
            if key == prev_key:
                dups += 1
        prev_key = key
    return ValsortReport(records=count, sorted_ok=sorted_ok,
                         first_unordered_index=first_bad,
                         duplicate_keys=dups, checksum=checksum)


def validate_file(
    path: str | Path, codec: TeraRecordCodec | None = None
) -> ValsortReport:
    """Validate a terasort-format output file."""
    codec = codec or TeraRecordCodec()
    data = Path(path).read_bytes()
    return validate_pairs(codec.iter_pairs(data))


def same_multiset(
    a: Iterable[tuple[bytes, bytes]], b: Iterable[tuple[bytes, bytes]]
) -> bool:
    """Order-independent equality via count + XOR fingerprint.

    XOR folding is collision-prone only for adversarial inputs; for
    validation of our own pipelines it detects any lost, duplicated or
    corrupted record with overwhelming probability.
    """
    ca, fa, _ = _fingerprint(a)
    cb, fb, _ = _fingerprint(b)
    return ca == cb and fa == fb


def check_sort_job(
    input_path: str | Path,
    output_pairs: Iterable[tuple[bytes, bytes]],
    codec: TeraRecordCodec | None = None,
) -> ValsortReport:
    """Full valsort: output ordered AND a permutation of the input."""
    codec = codec or TeraRecordCodec()
    output = list(output_pairs)
    report = validate_pairs(output)
    if not report.sorted_ok:
        return report
    input_pairs = codec.iter_pairs(Path(input_path).read_bytes())
    if not same_multiset(input_pairs, output):
        raise WorkloadError(
            "output is ordered but is not a permutation of the input "
            "(records lost, duplicated, or corrupted)"
        )
    return report
