"""Synthetic workload generators.

The paper evaluates on Hadoop-shaped inputs: one big Terasort file for
sort and many text files (or one big text file) for word count.  These
generators produce deterministic, seeded equivalents at any scale:

* :mod:`repro.workloads.teragen` — gensort-style ``\\r\\n``-terminated
  100-byte records;
* :mod:`repro.workloads.textgen` — Zipf-distributed word text, as one big
  file or many small files (the intra-file chunking workload);
* :mod:`repro.workloads.zipf` — the underlying Zipf sampler.
"""

from repro.workloads.teragen import generate_terasort_file, teragen_records
from repro.workloads.textgen import (
    generate_small_files,
    generate_text_file,
    make_vocabulary,
)
from repro.workloads.valsort import ValsortReport, check_sort_job, validate_file, validate_pairs
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "teragen_records",
    "generate_terasort_file",
    "generate_text_file",
    "generate_small_files",
    "make_vocabulary",
    "ZipfSampler",
    "ValsortReport",
    "validate_pairs",
    "validate_file",
    "check_sort_job",
]
