"""Bounded Zipf sampler for realistic word-frequency text.

Word counts in natural text follow a Zipf law; the sampler draws ranks
from a truncated Zipf(s) over a fixed vocabulary, which gives word count
its characteristic many-duplicates key distribution (the reason the hash
container shrinks the intermediate set, paper section V.B).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


class ZipfSampler:
    """Draw vocabulary ranks 0..V-1 with P(rank k) proportional to 1/(k+1)^s."""

    def __init__(self, vocab_size: int, exponent: float = 1.1, seed: int = 0) -> None:
        if vocab_size < 1:
            raise WorkloadError("vocab_size must be >= 1")
        if exponent <= 0:
            raise WorkloadError("Zipf exponent must be positive")
        self.vocab_size = vocab_size
        self.exponent = exponent
        weights = 1.0 / np.power(np.arange(1, vocab_size + 1, dtype=np.float64),
                                 exponent)
        self._cdf = np.cumsum(weights / weights.sum())
        self._rng = np.random.default_rng(seed)

    def sample(self, n: int) -> np.ndarray:
        """``n`` ranks as an int64 array."""
        if n < 0:
            raise WorkloadError("sample size must be non-negative")
        u = self._rng.random(n)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def expected_top_fraction(self, k: int) -> float:
        """Probability mass of the ``k`` most frequent words."""
        if not 1 <= k <= self.vocab_size:
            raise WorkloadError(f"k must be in [1, {self.vocab_size}]")
        return float(self._cdf[k - 1])
