r"""Terasort-format data generation (``teragen`` equivalent).

Records are ``key_len`` ASCII key bytes, a space, a payload padding the
record to ``record_len`` bytes including the ``\r\n`` terminator — the
one-big-file Hadoop workload the paper's sort experiments ingest with
inter-file chunking.  Generation is vectorized with NumPy and fully
deterministic for a given seed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.io.records import TeraRecordCodec

_KEY_ALPHABET = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


def teragen_records(
    n_records: int,
    seed: int = 0,
    codec: TeraRecordCodec | None = None,
) -> Iterator[bytes]:
    """Yield ``n_records`` raw records (terminator included)."""
    if n_records < 0:
        raise WorkloadError("n_records must be non-negative")
    codec = codec or TeraRecordCodec()
    payload_len = codec.record_len - codec.key_len - 1 - len(codec.delimiter)
    if payload_len < 0:
        raise WorkloadError("record_len too small for key + space + delimiter")
    rng = np.random.default_rng(seed)
    batch = 65536
    emitted = 0
    while emitted < n_records:
        take = min(batch, n_records - emitted)
        keys = rng.integers(0, len(_KEY_ALPHABET), size=(take, codec.key_len))
        key_bytes = np.frombuffer(_KEY_ALPHABET, dtype=np.uint8)[keys]
        for row_idx in range(take):
            key = key_bytes[row_idx].tobytes()
            payload = _payload_for(emitted + row_idx, payload_len)
            yield key + b" " + payload + codec.delimiter
        emitted += take


def _payload_for(index: int, payload_len: int) -> bytes:
    """Deterministic printable filler encoding the record's index."""
    stamp = f"{index:016x}".encode("ascii")
    if payload_len <= len(stamp):
        return stamp[:payload_len]
    reps = (payload_len - len(stamp)) // 4 + 1
    return (stamp + b"...." * reps)[:payload_len]


def generate_terasort_file(
    path: str | Path,
    n_records: int,
    seed: int = 0,
    codec: TeraRecordCodec | None = None,
) -> int:
    """Write a terasort input file; returns bytes written."""
    codec = codec or TeraRecordCodec()
    written = 0
    with open(path, "wb") as fh:
        buf: list[bytes] = []
        buffered = 0
        for record in teragen_records(n_records, seed, codec):
            buf.append(record)
            buffered += len(record)
            if buffered >= 1 << 20:
                fh.write(b"".join(buf))
                written += buffered
                buf, buffered = [], 0
        if buf:
            fh.write(b"".join(buf))
            written += buffered
    return written
