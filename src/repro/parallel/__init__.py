"""Process-backed execution engine: real multicore for the runtimes.

The package splits into three small layers:

* :mod:`repro.parallel.backends` — the backend vocabulary
  (``serial`` / ``thread`` / ``process``) and parent-side pool factory.
* :mod:`repro.parallel.fork_pool` — fork-at-call-time task fan-out that
  inherits jobs and buffers copy-on-write instead of pickling them.
* :mod:`repro.parallel.splits` — ``(path, offset, length)`` split
  descriptors so workers mmap their own input (zero-copy ingest).
"""

from repro.parallel.backends import (
    ExecutorBackend,
    SerialExecutor,
    fork_available,
    make_pool,
    require_process_backend,
    resolve_backend,
)
from repro.parallel.fork_pool import ForkExecutor, fork_map
from repro.parallel.splits import ChunkHandle, SplitRef, split_refs_for_chunk

__all__ = [
    "ChunkHandle",
    "ExecutorBackend",
    "ForkExecutor",
    "SerialExecutor",
    "SplitRef",
    "fork_available",
    "fork_map",
    "make_pool",
    "require_process_backend",
    "resolve_backend",
    "split_refs_for_chunk",
]
