"""Execution backends: how map/reduce/merge tasks actually run.

CPython's GIL means the repo's original ``ThreadPoolExecutor`` waves are
concurrent but not *parallel* for CPU-bound phases — the direct analog of
the bandwidth bottleneck SupMR circumvents, one layer down.  This module
names the three disciplines and builds their parent-side pools:

* ``serial`` — everything inline on the calling thread.  Zero overhead,
  fully deterministic scheduling; the reference for equivalence tests.
* ``thread`` — the historical default: a ``ThreadPoolExecutor``.  Real
  overlap for I/O (file reads release the GIL), fake overlap for
  CPU-bound map/merge work.
* ``process`` — genuine multicore via forked workers
  (:mod:`repro.parallel.fork_pool`): map tasks read their input splits
  through ``mmap`` in the worker (zero-copy ingest), combine in-worker,
  and return compact container deltas the parent absorbs.

The parent-side pool built here is what the *thread-path* code uses; the
process backend forks per phase instead (workers inherit the job and its
closures by fork, so nothing needs to be picklable except results), so
its ``make_pool`` entry is an inert :class:`SerialExecutor`.
"""

from __future__ import annotations

import enum
import multiprocessing
from concurrent.futures import Executor, Future, ThreadPoolExecutor

from repro.errors import ConfigError


class ExecutorBackend(enum.Enum):
    """Which execution engine runs mapper/reducer/merge tasks."""

    #: Inline on the calling thread (deterministic reference).
    SERIAL = "serial"
    #: ``ThreadPoolExecutor`` — concurrency without CPU parallelism.
    THREAD = "thread"
    #: Forked worker processes — real multicore, zero-copy ingest.
    PROCESS = "process"


def resolve_backend(value: "ExecutorBackend | str") -> ExecutorBackend:
    """``value`` as an :class:`ExecutorBackend` (accepts the CLI strings)."""
    if isinstance(value, ExecutorBackend):
        return value
    try:
        return ExecutorBackend(str(value).lower())
    except ValueError:
        raise ConfigError(
            f"unknown executor backend {value!r}; choose one of "
            + ", ".join(b.value for b in ExecutorBackend)
        ) from None


def fork_available() -> bool:
    """True when the platform can fork worker processes (POSIX)."""
    return "fork" in multiprocessing.get_all_start_methods()


def require_process_backend() -> None:
    """Raise :class:`~repro.errors.ConfigError` where fork is missing.

    The process backend inherits the job (including closures) by fork —
    a spawn-based pool would need every callback picklable, which the
    Phoenix++-style API deliberately does not require.  Platforms
    without fork (Windows) must use ``thread`` or ``serial``.
    """
    if not fork_available():
        raise ConfigError(
            "the 'process' executor backend requires os.fork (POSIX); "
            "use --backend thread or serial on this platform"
        )


class SerialExecutor(Executor):
    """`concurrent.futures` executor that runs everything inline.

    ``submit`` executes immediately on the calling thread and returns an
    already-resolved future, so any code written against the executor
    protocol (mapper waves, ``Executor.map``) runs serially without a
    second code path.
    """

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Run ``fn`` now, inline; the returned future is already done."""
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - parked on the future
            future.set_exception(exc)
        return future


def make_pool(
    backend: "ExecutorBackend | str", max_workers: int
) -> Executor:
    """The parent-side pool for ``backend`` (use as a context manager).

    ``thread`` gets a real :class:`ThreadPoolExecutor`; ``serial`` and
    ``process`` get a :class:`SerialExecutor` — the process backend runs
    its parallel phases through per-phase forks, not a standing pool,
    so anything still routed through the parent pool (e.g. the pipeline
    bookkeeping) must not multiply threads under it.
    """
    backend = resolve_backend(backend)
    if backend is ExecutorBackend.THREAD:
        return ThreadPoolExecutor(max_workers=max_workers)
    if backend is ExecutorBackend.PROCESS:
        require_process_backend()
    return SerialExecutor()
