"""Split descriptors: name a mapper's input without shipping its bytes.

The process backend's ingest contract: the parent decides *where* each
mapper's split begins and ends (record-aligned, exactly as
``split_for_mappers`` would cut it), but only the worker ever reads the
split's bytes — through an ``mmap`` of the source file, so the kernel
pages data straight into the worker that consumes it.  A
:class:`SplitRef` is that decision: ``(path, offset, length)`` in
absolute file coordinates.

To plan the cuts without reading the chunk, the parent mmaps the file
itself and runs the *same* ``split_for_mappers`` over a zero-copy
:class:`~repro.io.span.ByteSpan` window — only the pages around each
candidate boundary actually fault in.  Because planner and worker share
one splitting function, their boundaries agree by construction.

Chunks backed by multiple file ranges (interfile chunking over many
small inputs) have no single contiguous window to describe, so
:func:`split_refs_for_chunk` declines (returns ``None``) and the caller
falls back to loading bytes in the parent — still parallel, just not
zero-copy.
"""

from __future__ import annotations

import mmap
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.io.span import ByteSpan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chunking.chunk import Chunk


@dataclass(frozen=True)
class SplitRef:
    """One mapper's input: a record-aligned byte range of a file."""

    path: str
    offset: int
    length: int

    def resolve(self) -> ByteSpan:
        """Open the range as a zero-copy window (mmap-backed).

        Called in the worker.  The file descriptor is closed immediately
        — the mapping survives it — and the mapping itself is released
        when the returned span (which keeps the ``mmap`` alive via its
        ``base`` reference) is garbage collected.
        """
        if self.length == 0:
            return ByteSpan(b"")
        with open(self.path, "rb") as f:
            mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
        stop = min(self.offset + self.length, len(mm))
        return ByteSpan(mm, min(self.offset, stop), stop)


class ChunkHandle:
    """A chunk the runtime has *named* but deliberately not loaded.

    The SupMR ingest pipeline hands each round's input to the mapper
    wave as a bytes-like object.  Under the process backend the parent
    should not materialize those bytes at all — the workers read them
    through :class:`SplitRef` windows — so the pipeline carries this
    handle instead.  It knows its length (the pipeline and the wave size
    splits from it) and still knows how to produce real bytes when a
    fallback path needs them.
    """

    __slots__ = ("chunk",)

    def __init__(self, chunk: "Chunk") -> None:
        self.chunk = chunk

    def __len__(self) -> int:
        return self.chunk.length

    def load(self) -> bytes:
        """Materialize the chunk's bytes (fallback paths only)."""
        return bytes(self.chunk.load())

    def __repr__(self) -> str:
        return f"ChunkHandle(chunk={self.chunk.index}, {len(self)}B)"


def split_refs_for_chunk(
    chunk: "Chunk", n_splits: int, delimiter: bytes
) -> list[SplitRef] | None:
    """Plan record-aligned :class:`SplitRef` ranges for ``chunk``.

    Returns ``None`` when the chunk cannot be described as one
    contiguous file range (multi-source chunks, vanished files) — the
    caller then falls back to parent-loaded bytes.  Boundary planning
    reuses :func:`~repro.core.execution.split_for_mappers` over an
    mmap-backed span, so the cuts are byte-identical to what the
    load-everything path would produce.
    """
    # Imported here: core.execution imports this module for its process
    # dispatch, and planning needs execution's splitter back.
    from repro.core.execution import split_for_mappers

    if len(chunk.sources) != 1:
        return None
    src = chunk.sources[0]
    try:
        size = os.path.getsize(src.path)
    except OSError:
        return None
    start = min(src.offset, size)
    stop = min(src.offset + src.length, size)
    if start >= stop:
        return []
    with open(src.path, "rb") as f:
        mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    try:
        window = ByteSpan(mm, start, stop)
        spans = split_for_mappers(window, n_splits, delimiter)
        return [
            SplitRef(src.path, span.start, span.stop - span.start)
            for span in spans
        ]
    finally:
        mm.close()
