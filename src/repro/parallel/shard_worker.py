"""Shard worker entrypoint: one supervised process group member.

Each shard of a :class:`~repro.shard.coordinator.ShardedRuntime` job is
one forked process running :func:`shard_worker_main`.  The contract
mirrors the resilience supervisor's worker protocol — the job, options,
and chunk block ride into the fork copy-on-write; only small command
dicts and pickled result blobs cross the queues — but a shard worker is
long-lived and *phased*: it serves a ``map`` command (map its contiguous
chunk block, publish per-partition exchange runs to its outbox), then
any number of ``reduce`` commands (fetch + CRC-verify the named
partitions' runs from every shard's outbox and reduce them), until the
``None`` sentinel.

Fault-site split: the **shard-level** sites (``shard.worker_loss``,
``shard.straggler``, ``shard.exchange_corrupt``) are decided by the
coordinator at dispatch time and arrive pre-resolved inside the command
(``mode``/``corrupt`` — and, on multi-host runs, the ``net.*`` transfer
fault tables), keeping the schedule deterministic no matter how workers
race.  The **task-level** sites (``ingest.read``,
``record.corrupt``, ``map.task``...) are armed *inside* the worker
against the same plan, with globally-stable scopes, and the resulting
fault events are shipped back for replay into the coordinator's log.
"""

from __future__ import annotations

import os
import pickle
import time
from pathlib import Path
from typing import Any, Sequence

from repro.chunking.chunk import Chunk
from repro.core.execution import build_container, run_mapper_wave
from repro.core.job import JobSpec
from repro.core.options import RuntimeOptions
from repro.errors import ParallelError
from repro.faults.plan import SITE_INGEST_READ
from repro.parallel.backends import ExecutorBackend, SerialExecutor
from repro.resilience.journal import JobJournal, job_fingerprint
from repro.shard.exchange import (
    EventRow,
    fetch_run,
    merged_partition_groups,
    reduce_partition,
    run_name,
    write_partition_runs,
)

#: Exit code for a commanded (injected) shard-worker death — same value
#: the task supervisor uses, so process post-mortems read uniformly.
SHARD_CRASH_EXIT = 37

#: Message kinds the worker understands.
MSG_MAP = "map"
MSG_REDUCE = "reduce"
#: Dispatch modes for both phases (pre-resolved shard-level faults).
MODE_RUN = "run"
MODE_LOSS = "loss"
MODE_STRAGGLE = "straggle"


def shard_fingerprint(job: JobSpec, options: RuntimeOptions, shard_id: int) -> str:
    """Per-shard journal fingerprint: the job fingerprint, salted.

    Salting with the shard id stops shard 2 resuming from shard 1's
    checkpoint after a reassignment reshuffles directories.
    """
    return f"{job_fingerprint(job, options)}:shard-{shard_id}"


def _post(results: Any, payload: tuple) -> None:
    """Ship one result tuple, downgrading unpicklables to an error."""
    try:
        blob = pickle.dumps(payload)
    except Exception as exc:  # noqa: BLE001 - unpicklable result
        blob = pickle.dumps((
            "error", payload[1] if len(payload) > 1 else -1,
            f"shard result could not be pickled: {exc!r}",
        ))
    results.put(blob)


def _log_rows(injector: Any) -> list[EventRow]:
    """The worker injector's fault events as transportable rows."""
    if injector is None:
        return []
    return [
        (e.site, e.action, e.detail, e.scope, e.attempt)
        for e in injector.log.events
    ]


def _serve_map(
    shard_id: int,
    job: JobSpec,
    options: RuntimeOptions,
    chunks: Sequence[Chunk],
    num_partitions: int,
    msg: dict,
    results: Any,
) -> None:
    """Map the shard's chunk block and publish its exchange runs."""
    mode = msg.get("mode", MODE_RUN)
    if mode == MODE_LOSS and not chunks:
        # Nothing to checkpoint first: die straight away.
        os._exit(SHARD_CRASH_EXIT)
    straggle_s = float(msg.get("straggle_s") or 0.0)
    # Task-level sites are re-armed per attempt inside the worker; the
    # shard-level sites were already resolved by the coordinator.
    injector = None
    if options.fault_plan is not None:
        injector = options.fault_plan.arm(
            options.recovery, clock=time.perf_counter
        )
    journal = None
    if msg.get("ckpt"):
        journal = JobJournal(
            msg["ckpt"],
            shard_fingerprint(job, options, shard_id),
            resume=bool(msg.get("resume")),
        )
    container, spill_mgr = build_container(
        job, options, injector,
        spill_dir=str(journal.spill_dir) if journal is not None else None,
    )
    serial = options.with_(executor_backend=ExecutorBackend.SERIAL)
    pool = SerialExecutor()
    restored: frozenset[int] = frozenset()
    map_tasks = 0
    if journal is not None and journal.resumed:
        if journal.restore(container, spill_mgr):
            restored = journal.completed_rounds
            map_tasks = journal.map_tasks
    rounds_run = 0
    for chunk in chunks:
        if chunk.index in restored:
            continue
        if mode == MODE_STRAGGLE and straggle_s > 0:
            time.sleep(straggle_s)
        if injector is not None and injector.armed(SITE_INGEST_READ):
            data = injector.retrying(
                SITE_INGEST_READ,
                lambda attempt: chunk.load(injector, attempt),
                scope=(chunk.index,),
            )
        else:
            data = chunk.load()
        if job.set_data is not None:
            job.set_data(chunk, len(data))
        # task_id_base is a pure function of the *global* chunk index,
        # so (chunk, task) fault scopes are shard-count invariant.
        launched = run_mapper_wave(
            job, container, data, serial, pool,
            chunk_index=chunk.index,
            task_id_base=chunk.index * options.num_mappers,
            injector=injector,
        )
        map_tasks += launched
        rounds_run += 1
        if journal is not None:
            journal.record_round(chunk.index, container, map_tasks, spill_mgr)
        _post(results, ("hb", shard_id, msg.get("attempt", 0), chunk.index))
        if mode == MODE_LOSS:
            # Die *after* the first journaled round, exactly the window
            # the checkpoint/resume path has to cover.
            os._exit(SHARD_CRASH_EXIT)
    if mode == MODE_LOSS:
        # Every round was restored from the journal, so the per-chunk
        # death window never opened — but the coordinator has already
        # consumed the shard.worker_loss injection, so honor it anyway
        # to keep the seeded schedule and fault log in step.
        os._exit(SHARD_CRASH_EXIT)
    manifest = write_partition_runs(
        container, num_partitions, msg["outbox"]
    )
    if journal is not None:
        journal.finalize()
    if spill_mgr is not None:
        spill_mgr.cleanup()
    stats = container.stats()
    _post(results, (
        "map_done", shard_id, msg.get("attempt", 0),
        {
            "manifest": manifest,
            "outbox": msg["outbox"],
            "rounds": rounds_run,
            "restored_rounds": len(restored),
            "map_tasks": map_tasks,
            "emits": stats.emits,
            "distinct_keys": stats.distinct_keys,
            "events": _log_rows(injector),
        },
    ))


def _serve_reduce(
    shard_id: int,
    job: JobSpec,
    options: RuntimeOptions,
    msg: dict,
    results: Any,
) -> None:
    """Fetch, verify, merge, and reduce the commanded partitions."""
    if msg.get("mode", MODE_RUN) == MODE_LOSS:
        os._exit(SHARD_CRASH_EXIT)
    sources: dict[int, str] = msg["sources"]
    corrupt: dict[tuple[int, int], list[int]] = msg.get("corrupt", {})
    # Multi-host extras: where each source outbox actually lives.  A
    # source whose address matches this worker's own host (or is empty)
    # is a plain file copy; anything else goes over the resumable,
    # verify-then-refetch TCP fetch path.
    via: dict[int, str] = msg.get("via") or {}
    self_addr: str = msg.get("self_addr", "")
    net_corrupt: dict[tuple[int, int], list[int]] = msg.get("net_corrupt", {})
    net_drop: dict[tuple[int, int], list[int]] = msg.get("net_drop", {})
    net_timeout = float(msg.get("net_timeout_s") or 10.0)
    inbox_dir = Path(msg["workdir"])
    inbox_dir.mkdir(parents=True, exist_ok=True)
    events: list[EventRow] = []
    refetches = 0
    parts: dict[int, list] = {}
    for p in msg["partitions"]:
        readers = []
        for src in sorted(sources):
            dst = inbox_dir / f"p{p:05d}-from-{src:05d}.spl"
            addr = via.get(src, "")
            if addr and addr != self_addr:
                from repro.net.exchange import fetch_run_remote

                reader, attempts = fetch_run_remote(
                    addr,
                    Path(sources[src]) / run_name(p),
                    dst,
                    corrupt_attempts=net_corrupt.get((p, src), ()),
                    drop_attempts=net_drop.get((p, src), ()),
                    max_retries=options.recovery.max_retries,
                    deadline_s=net_timeout,
                    events=events,
                    scope=repr((p, src)),
                )
            else:
                reader, attempts = fetch_run(
                    Path(sources[src]) / run_name(p),
                    dst,
                    corrupt_attempts=corrupt.get((p, src), ()),
                    max_retries=options.recovery.max_retries,
                    events=events,
                    scope=repr((p, src)),
                )
            refetches += attempts
            readers.append(reader)
        parts[p] = reduce_partition(job, merged_partition_groups(readers))
        _post(results, ("hb", shard_id, 0, p))
    _post(results, (
        "reduce_done", shard_id,
        {"parts": parts, "events": events, "refetches": refetches},
    ))


def shard_worker_main(
    shard_id: int,
    job: JobSpec,
    options: RuntimeOptions,
    chunks: Sequence[Chunk],
    num_partitions: int,
    inbox: Any,
    results: Any,
) -> None:
    """Worker body: serve map/reduce commands until the ``None`` sentinel.

    Everything positional is inherited by the fork (never pickled);
    commands are small dicts, results are pre-pickled blobs.  Exceptions
    are transported back as ``("error", shard_id, detail)`` rows rather
    than killing the process — only a commanded loss exits.
    """
    while True:
        msg = inbox.get()
        if msg is None:
            return
        try:
            if msg["kind"] == MSG_MAP:
                _serve_map(
                    shard_id, job, options, chunks, num_partitions,
                    msg, results,
                )
            elif msg["kind"] == MSG_REDUCE:
                _serve_reduce(shard_id, job, options, msg, results)
            else:
                raise ParallelError(
                    f"shard worker got an unknown command {msg['kind']!r}"
                )
        except BaseException as exc:  # noqa: BLE001 - transported to parent
            _post(results, ("error", shard_id, f"{type(exc).__name__}: {exc}"))
