"""Fork-based task fan-out: real multicore without a picklable API.

The Phoenix++-style job contract is built on closures (``make_sort_job``
and friends capture their codec in ``map_fn``), so a conventional
``ProcessPoolExecutor`` — which pickles the callable — cannot run it.
:func:`fork_map` sidesteps pickling entirely: the workers are **forked
at call time**, so the function, the job, and any input buffers are
inherited copy-on-write; only *results* cross a pipe back to the
parent.  That is the zero-copy half of the process backend's bargain —
input bytes never serialize, and map results are compact in-worker
combined container deltas rather than raw emits.

Work is assigned by stride (worker ``w`` takes items ``w, w+W, ...``),
results are reordered by item index in the parent, and the first failing
item's exception is re-raised after all results arrive — the same
"first future wins" semantics as the thread backend's wave loop.

Results cross back through a :mod:`repro.xfer` transport: the default
pipe transport is the original synchronous-pickle-over-the-queue path;
handing in a shared-memory transport moves large payloads out of the
pipe entirely.  The parent never polls — it blocks in
``multiprocessing.connection.wait`` on the result pipe *and* every
worker sentinel, so a result wakes it instantly and so does a death.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
from concurrent.futures import Future
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import ParallelError
from repro.parallel.backends import require_process_backend
from repro.xfer.transport import PipeTransport, ShmTransport

T = TypeVar("T")
R = TypeVar("R")

#: How long the silent result pipe is given to flush buffered frames
#: after every worker has exited, before declaring the wave crashed.
_DRAIN_GRACE_S = 0.2


def _run_assigned(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    worker: int,
    stride: int,
    results: Any,
    transport: "PipeTransport | ShmTransport",
) -> None:
    """Worker body: compute this worker's strided share of ``items``.

    Every outcome — value or exception — is posted as ``(index, ok,
    payload)``.  The payload is packed *here*, synchronously, because
    ``Queue.put`` pickles in a feeder thread where failures cannot be
    caught — anything unpicklable is downgraded to a
    :class:`~repro.errors.ParallelError` carrying its ``repr`` so the
    parent still learns what happened.
    """
    for idx in range(worker, len(items), stride):
        try:
            payload = (idx, True, fn(items[idx]))
        except BaseException as exc:  # noqa: BLE001 - transported to parent
            payload = (idx, False, exc)
        try:
            frame = transport.pack(payload)
        except Exception:  # noqa: BLE001 - unpicklable result or error
            kind = "result" if payload[1] else "error"
            frame = transport.pack((
                idx, False,
                ParallelError(
                    f"worker {kind} for item {idx} could not be pickled: "
                    f"{payload[2]!r}"
                ),
            ))
        results.put(frame)


def fork_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int,
    transport: "PipeTransport | ShmTransport | None" = None,
) -> list[R]:
    """Run ``fn`` over ``items`` in forked worker processes.

    Returns results in item order.  ``fn``, ``items``, and everything
    they close over are inherited by fork (never pickled); each result
    crosses back once through ``transport`` (default: the pipe codec).
    Raises the lowest-index item's exception after the whole wave has
    reported, or :class:`~repro.errors.ParallelError` if a worker dies
    without reporting (e.g. killed by the OOM killer).
    """
    items = list(items)
    if not items:
        return []
    require_process_backend()
    transport = transport or PipeTransport()
    workers = max(1, min(workers, len(items), (os.cpu_count() or 1) * 4))
    ctx = multiprocessing.get_context("fork")
    results_q = ctx.Queue()
    procs = [
        ctx.Process(
            target=_run_assigned,
            args=(fn, items, w, workers, results_q, transport),
            daemon=True,
            name=f"repro-fork-{w}",
        )
        for w in range(workers)
    ]
    for p in procs:
        p.start()

    out: list[Any] = [None] * len(items)
    failures: dict[int, BaseException] = {}
    pending = len(items)
    reader = results_q._reader
    try:
        while pending:
            # Block until a frame lands or a worker's sentinel trips —
            # no fixed-interval polling, so results wake the parent
            # instantly and a small wave pays zero idle latency.
            live = [p.sentinel for p in procs if p.is_alive()]
            ready = mp_connection.wait(
                [reader, *live],
                timeout=None if live else _DRAIN_GRACE_S,
            )
            if reader not in ready:
                if ready or live:
                    # A worker exited (cleanly or not); reassess.  Any
                    # frames it flushed first are already in the pipe.
                    continue
                # Every worker is gone and the pipe stayed silent for
                # the grace window: the missing results are never
                # coming.  Drop the queue's feeder thread before
                # raising: with a worker dead mid-put, join-on-close
                # could hang shutdown.
                results_q.cancel_join_thread()
                dead = ", ".join(
                    f"{p.name}={p.exitcode}" for p in procs
                )
                raise ParallelError(
                    f"{pending} of {len(items)} fork-map tasks never "
                    f"reported; a worker process died ({dead})"
                )
            try:
                frame = results_q.get_nowait()
            except queue_mod.Empty:  # pragma: no cover - partial write
                continue
            pending -= 1
            try:
                idx, ok, payload = transport.unpack(frame)
            except Exception as exc:  # noqa: BLE001 - corrupt transport
                results_q.cancel_join_thread()
                raise ParallelError(
                    f"could not decode a fork-map worker result: {exc!r}"
                ) from exc
            if ok:
                out[idx] = payload
            else:
                failures[idx] = payload
    finally:
        for p in procs:
            p.join(timeout=5.0)
        for p in procs:
            if p.is_alive():  # pragma: no cover - defensive cleanup
                p.terminate()
                p.join(timeout=1.0)
        results_q.close()
    if failures:
        raise failures[min(failures)]
    return out


class ForkExecutor:
    """Minimal executor facade over :func:`fork_map` for the sort library.

    ``sortlib.pway_merge`` / ``parallel_sort`` drive their workers
    through ``executor.map``; handing them a ``ForkExecutor`` makes the
    merge phase genuinely parallel — each forked worker inherits the
    sorted runs copy-on-write and sends back only its output range.
    """

    def __init__(
        self,
        workers: int,
        transport: "PipeTransport | ShmTransport | None" = None,
    ) -> None:
        if workers < 1:
            raise ParallelError("ForkExecutor needs at least one worker")
        self.workers = workers
        self.transport = transport

    def map(self, fn: Callable[..., R], *iterables: Iterable[Any]) -> list[R]:
        """`Executor.map` semantics (results in order, eager)."""
        if len(iterables) == 1:
            items = list(iterables[0])
            return fork_map(fn, items, self.workers, transport=self.transport)
        packed = list(zip(*iterables))
        return fork_map(
            lambda args: fn(*args), packed, self.workers,
            transport=self.transport,
        )

    def submit(self, fn: Callable[..., R], /, *args: Any, **kwargs: Any) -> Future:
        """Single-task form; runs one forked worker synchronously."""
        future: Future = Future()
        try:
            result = fork_map(lambda _: fn(*args, **kwargs), [None], 1)[0]
            future.set_result(result)
        except BaseException as exc:  # noqa: BLE001 - parked on the future
            future.set_exception(exc)
        return future
