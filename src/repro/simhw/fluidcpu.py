"""Fluid (time-sliced) CPU model — the oversubscription alternative.

The default :class:`~repro.simhw.cpu.CpuBank` grants whole contexts FIFO:
with more runnable threads than contexts, excess threads *queue*.  Real
kernels time-slice instead: 64 runnable threads on 32 contexts each run
at half speed.  :class:`FluidCpuBank` models that with the same
fluid-flow machinery the disks use — total capacity = ``contexts``
context-seconds per second, each thread capped at one context — and
keeps the same user/sys/iowait accounting surface, so it can stand in
for ``CpuBank`` anywhere the monitor is involved.

The paper-scale simulations keep the FIFO bank (their runtimes never
oversubscribe on purpose); this model exists for ablations that do —
e.g. "what if SupMR spawned a wave per chunk without joining?" — and is
exercised by its own test suite.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import SimulationError
from repro.simhw.cpu import CpuClass
from repro.simhw.events import Simulator
from repro.simhw.resources import BandwidthResource


class FluidCpuBank:
    """Time-sliced CPU: n contexts shared max-min fairly among threads."""

    def __init__(self, sim: Simulator, contexts: int, name: str = "fluidcpu") -> None:
        if contexts < 1:
            raise SimulationError(f"{name}: need at least one context")
        self.sim = sim
        self.contexts = contexts
        self.name = name
        # capacity in context-seconds per second; one thread <= 1 context
        self._chan = BandwidthResource(sim, float(contexts), per_flow_cap=1.0,
                                       name=f"{name}.slices")
        self.io_blocked = 0

    # -- execution -----------------------------------------------------------

    def occupy(self, seconds: float, cls: CpuClass = CpuClass.USER) -> Iterator:
        """Consume ``seconds`` of CPU work, time-sliced with whatever else
        runs; wall-clock stretches when the bank is oversubscribed."""
        if seconds < 0:
            raise SimulationError(f"{self.name}: negative compute time")
        yield self._chan.transfer(seconds, tag=cls.value)

    # -- instantaneous state (monitor-compatible) ------------------------------

    def busy(self, cls: CpuClass) -> float:
        """Contexts-worth of ``cls`` work running right now (fractional)."""
        return self._chan.allocated_rate(tag=cls.value)

    @property
    def busy_total(self) -> float:
        """Total contexts-worth of work running right now."""
        return self._chan.allocated_rate()

    @property
    def idle(self) -> float:
        """Unallocated context capacity right now."""
        return self.contexts - self.busy_total

    def fraction(self, cls: CpuClass) -> float:
        """Instantaneous utilization fraction for one class."""
        return self.busy(cls) / self.contexts

    def iowait_fraction(self) -> float:
        """collectl iowait: idle capacity attributable to blocked IO."""
        return min(float(self.io_blocked), self.idle) / self.contexts

    @property
    def runnable_threads(self) -> int:
        """Threads currently holding or sharing slices."""
        return self._chan.active_flows

    @property
    def consumed(self) -> dict[CpuClass, float]:
        """Cumulative context-seconds (all classes pooled under USER for
        compatibility; per-class split is not tracked fluidly)."""
        return {CpuClass.USER: self._chan.delivered, CpuClass.SYS: 0.0}
