"""Thread-operation cost model.

The paper attributes part of the small-chunk penalty to "repetitive thread
operations": every map/ingest round spawns and tears down a wave of
threads, burning kernel (sys) time.  This module centralizes those costs
so the simulated runtimes charge them consistently.

Costs are charged as ``sys``-class CPU occupancy on the spawning context,
which is what collectl shows as the sys component between utilization
spikes in Fig. 5b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigError
from repro.simhw.cpu import CpuBank, CpuClass


@dataclass(frozen=True)
class ThreadCosts:
    """Per-operation kernel costs, in seconds.

    Defaults approximate pthread costs on the paper-era Xeon (spawn ~25 us,
    join ~10 us, one barrier/synchronization episode ~5 us).
    """

    spawn_s: float = 25e-6
    join_s: float = 10e-6
    sync_s: float = 5e-6

    def __post_init__(self) -> None:
        for field in ("spawn_s", "join_s", "sync_s"):
            if getattr(self, field) < 0:
                raise ConfigError(f"ThreadCosts.{field} must be non-negative")

    def wave_overhead(self, nthreads: int) -> float:
        """Total sys seconds to spawn + join a wave of ``nthreads``."""
        if nthreads < 0:
            raise ConfigError("nthreads must be non-negative")
        return nthreads * (self.spawn_s + self.join_s)


def charge_spawn(cpu: CpuBank, costs: ThreadCosts, nthreads: int) -> Iterator:
    """Charge the sys time for spawning a wave of threads (serially, on
    the coordinating context — pthread_create is called in a loop)."""
    yield from cpu.occupy(costs.spawn_s * nthreads, CpuClass.SYS)


def charge_join(cpu: CpuBank, costs: ThreadCosts, nthreads: int) -> Iterator:
    """Charge the sys time for joining a wave of threads."""
    yield from cpu.occupy(costs.join_s * nthreads, CpuClass.SYS)


def charge_sync(cpu: CpuBank, costs: ThreadCosts, episodes: int = 1) -> Iterator:
    """Charge synchronization (lock/barrier) kernel time."""
    yield from cpu.occupy(costs.sync_s * episodes, CpuClass.SYS)
