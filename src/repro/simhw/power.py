"""Power, energy, thermal-throttle and availability accounting.

Section VI.C.1 lists the costs of small ingest chunks: "high energy
consumption ... long periods of very high CPU utilizations and stresses
the thread library ... CPU heat thresholds were occasionally breached
leading to throttling.  Also, increasing the CPU utilization decreases
the availability of the system."  The conclusions call utilization and
energy "significant factors in comparing this approach to an
'equivalent' scale-out implementation."

This module quantifies those factors from a utilization trace:

* :func:`energy_from_samples` — integrate a :class:`PowerModel` over the
  collectl samples (idle floor + per-busy-context increment + disk);
* :func:`throttle_exposure` — seconds spent in sustained >threshold
  busy episodes (the paper's heat-threshold breaches);
* :func:`availability_loss` — mean busy fraction, i.e. capacity *not*
  available to co-scheduled jobs.

Default power numbers approximate a 2-socket Sandy-Bridge-era server:
~150 W idle chassis, ~7 W incremental per busy hardware context
(2x95 W TDP spread over 32 contexts, ~60% dynamic), ~8 W per active
spindle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.simhw.monitor import UtilizationSample


@dataclass(frozen=True)
class PowerModel:
    """Server power as a function of instantaneous activity."""

    idle_w: float = 150.0
    active_w_per_ctx: float = 7.0
    disk_active_w: float = 8.0
    contexts: int = 32

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.active_w_per_ctx < 0 or self.disk_active_w < 0:
            raise ConfigError("power terms must be non-negative")
        if self.contexts < 1:
            raise ConfigError("contexts must be >= 1")

    def instantaneous_w(self, sample: UtilizationSample) -> float:
        """Power draw at one collectl sample."""
        busy_contexts = sample.busy_pct / 100.0 * self.contexts
        disks = self.disk_active_w * min(sample.disk_active, 3)
        return self.idle_w + busy_contexts * self.active_w_per_ctx + disks


@dataclass(frozen=True)
class EnergyReport:
    """Integrated energy figures for one run."""

    energy_j: float
    duration_s: float
    mean_power_w: float
    peak_power_w: float

    @property
    def energy_wh(self) -> float:
        return self.energy_j / 3600.0


def energy_from_samples(
    samples: Sequence[UtilizationSample],
    model: PowerModel | None = None,
) -> EnergyReport:
    """Trapezoidal integration of power over the sampled trace."""
    model = model or PowerModel()
    if len(samples) < 2:
        raise ConfigError("need at least two samples to integrate energy")
    energy = 0.0
    peak = 0.0
    for prev, cur in zip(samples, samples[1:]):
        dt = cur.time - prev.time
        if dt < 0:
            raise ConfigError("samples must be time-ordered")
        p0 = model.instantaneous_w(prev)
        p1 = model.instantaneous_w(cur)
        energy += 0.5 * (p0 + p1) * dt
        peak = max(peak, p0, p1)
    duration = samples[-1].time - samples[0].time
    mean = energy / duration if duration > 0 else 0.0
    return EnergyReport(energy_j=energy, duration_s=duration,
                        mean_power_w=mean, peak_power_w=peak)


def throttle_exposure(
    samples: Sequence[UtilizationSample],
    threshold_pct: float = 90.0,
    min_duration_s: float = 5.0,
) -> float:
    """Seconds inside sustained high-utilization episodes.

    An episode is a maximal run of consecutive samples with busy% above
    ``threshold_pct``; episodes shorter than ``min_duration_s`` don't
    count (brief spikes don't heat the package).
    """
    if not samples:
        return 0.0
    total = 0.0
    episode_start: float | None = None
    last_time = samples[0].time
    for s in samples:
        if s.busy_pct >= threshold_pct:
            if episode_start is None:
                episode_start = s.time
        else:
            if episode_start is not None:
                length = last_time - episode_start
                if length >= min_duration_s:
                    total += length
                episode_start = None
        last_time = s.time
    if episode_start is not None:
        length = last_time - episode_start
        if length >= min_duration_s:
            total += length
    return total


def availability_loss(samples: Sequence[UtilizationSample]) -> float:
    """Mean busy fraction in [0, 1]: capacity unavailable to other jobs."""
    if not samples:
        return 0.0
    return sum(s.busy_pct for s in samples) / (100.0 * len(samples))
